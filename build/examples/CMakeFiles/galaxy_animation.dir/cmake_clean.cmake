file(REMOVE_RECURSE
  "CMakeFiles/galaxy_animation.dir/galaxy_animation.cpp.o"
  "CMakeFiles/galaxy_animation.dir/galaxy_animation.cpp.o.d"
  "galaxy_animation"
  "galaxy_animation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galaxy_animation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
