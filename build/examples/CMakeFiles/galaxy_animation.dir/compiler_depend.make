# Empty compiler generated dependencies file for galaxy_animation.
# This may be replaced when dependencies are built.
