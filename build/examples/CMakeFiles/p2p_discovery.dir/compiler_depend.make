# Empty compiler generated dependencies file for p2p_discovery.
# This may be replaced when dependencies are built.
