file(REMOVE_RECURSE
  "CMakeFiles/p2p_discovery.dir/p2p_discovery.cpp.o"
  "CMakeFiles/p2p_discovery.dir/p2p_discovery.cpp.o.d"
  "p2p_discovery"
  "p2p_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
