# Empty dependencies file for cheating_volunteer.
# This may be replaced when dependencies are built.
