file(REMOVE_RECURSE
  "CMakeFiles/cheating_volunteer.dir/cheating_volunteer.cpp.o"
  "CMakeFiles/cheating_volunteer.dir/cheating_volunteer.cpp.o.d"
  "cheating_volunteer"
  "cheating_volunteer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cheating_volunteer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
