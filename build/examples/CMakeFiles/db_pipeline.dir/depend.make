# Empty dependencies file for db_pipeline.
# This may be replaced when dependencies are built.
