file(REMOVE_RECURSE
  "CMakeFiles/db_pipeline.dir/db_pipeline.cpp.o"
  "CMakeFiles/db_pipeline.dir/db_pipeline.cpp.o.d"
  "db_pipeline"
  "db_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
