file(REMOVE_RECURSE
  "CMakeFiles/inspiral_search.dir/inspiral_search.cpp.o"
  "CMakeFiles/inspiral_search.dir/inspiral_search.cpp.o.d"
  "inspiral_search"
  "inspiral_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspiral_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
