# Empty compiler generated dependencies file for inspiral_search.
# This may be replaced when dependencies are built.
