file(REMOVE_RECURSE
  "CMakeFiles/test_rm.dir/test_rm.cpp.o"
  "CMakeFiles/test_rm.dir/test_rm.cpp.o.d"
  "test_rm"
  "test_rm.pdb"
  "test_rm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
