file(REMOVE_RECURSE
  "CMakeFiles/test_core_dist.dir/test_core_dist.cpp.o"
  "CMakeFiles/test_core_dist.dir/test_core_dist.cpp.o.d"
  "test_core_dist"
  "test_core_dist.pdb"
  "test_core_dist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
