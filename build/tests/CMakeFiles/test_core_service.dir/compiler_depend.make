# Empty compiler generated dependencies file for test_core_service.
# This may be replaced when dependencies are built.
