file(REMOVE_RECURSE
  "CMakeFiles/test_core_service.dir/test_core_service.cpp.o"
  "CMakeFiles/test_core_service.dir/test_core_service.cpp.o.d"
  "test_core_service"
  "test_core_service.pdb"
  "test_core_service[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
