file(REMOVE_RECURSE
  "CMakeFiles/test_repo.dir/test_repo.cpp.o"
  "CMakeFiles/test_repo.dir/test_repo.cpp.o.d"
  "test_repo"
  "test_repo.pdb"
  "test_repo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_repo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
