# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_serial[1]_include.cmake")
include("/root/repo/build/tests/test_xml[1]_include.cmake")
include("/root/repo/build/tests/test_dsp[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_p2p[1]_include.cmake")
include("/root/repo/build/tests/test_sandbox[1]_include.cmake")
include("/root/repo/build/tests/test_repo[1]_include.cmake")
include("/root/repo/build/tests/test_rm[1]_include.cmake")
include("/root/repo/build/tests/test_churn[1]_include.cmake")
include("/root/repo/build/tests/test_core_types[1]_include.cmake")
include("/root/repo/build/tests/test_core_graph[1]_include.cmake")
include("/root/repo/build/tests/test_core_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_core_dist[1]_include.cmake")
include("/root/repo/build/tests/test_core_service[1]_include.cmake")
include("/root/repo/build/tests/test_gw[1]_include.cmake")
include("/root/repo/build/tests/test_galaxy[1]_include.cmake")
include("/root/repo/build/tests/test_db[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_supervisor[1]_include.cmake")
