file(REMOVE_RECURSE
  "libcg_serial.a"
)
