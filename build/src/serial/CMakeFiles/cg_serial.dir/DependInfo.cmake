
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/serial/crc32.cpp" "src/serial/CMakeFiles/cg_serial.dir/crc32.cpp.o" "gcc" "src/serial/CMakeFiles/cg_serial.dir/crc32.cpp.o.d"
  "/root/repo/src/serial/frame.cpp" "src/serial/CMakeFiles/cg_serial.dir/frame.cpp.o" "gcc" "src/serial/CMakeFiles/cg_serial.dir/frame.cpp.o.d"
  "/root/repo/src/serial/reader.cpp" "src/serial/CMakeFiles/cg_serial.dir/reader.cpp.o" "gcc" "src/serial/CMakeFiles/cg_serial.dir/reader.cpp.o.d"
  "/root/repo/src/serial/writer.cpp" "src/serial/CMakeFiles/cg_serial.dir/writer.cpp.o" "gcc" "src/serial/CMakeFiles/cg_serial.dir/writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
