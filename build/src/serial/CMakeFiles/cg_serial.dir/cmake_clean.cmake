file(REMOVE_RECURSE
  "CMakeFiles/cg_serial.dir/crc32.cpp.o"
  "CMakeFiles/cg_serial.dir/crc32.cpp.o.d"
  "CMakeFiles/cg_serial.dir/frame.cpp.o"
  "CMakeFiles/cg_serial.dir/frame.cpp.o.d"
  "CMakeFiles/cg_serial.dir/reader.cpp.o"
  "CMakeFiles/cg_serial.dir/reader.cpp.o.d"
  "CMakeFiles/cg_serial.dir/writer.cpp.o"
  "CMakeFiles/cg_serial.dir/writer.cpp.o.d"
  "libcg_serial.a"
  "libcg_serial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_serial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
