# Empty dependencies file for cg_serial.
# This may be replaced when dependencies are built.
