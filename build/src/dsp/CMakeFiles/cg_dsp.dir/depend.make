# Empty dependencies file for cg_dsp.
# This may be replaced when dependencies are built.
