file(REMOVE_RECURSE
  "libcg_dsp.a"
)
