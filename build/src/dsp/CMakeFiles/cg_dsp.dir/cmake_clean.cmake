file(REMOVE_RECURSE
  "CMakeFiles/cg_dsp.dir/correlate.cpp.o"
  "CMakeFiles/cg_dsp.dir/correlate.cpp.o.d"
  "CMakeFiles/cg_dsp.dir/fft.cpp.o"
  "CMakeFiles/cg_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/cg_dsp.dir/spectrum.cpp.o"
  "CMakeFiles/cg_dsp.dir/spectrum.cpp.o.d"
  "CMakeFiles/cg_dsp.dir/stats.cpp.o"
  "CMakeFiles/cg_dsp.dir/stats.cpp.o.d"
  "CMakeFiles/cg_dsp.dir/window.cpp.o"
  "CMakeFiles/cg_dsp.dir/window.cpp.o.d"
  "libcg_dsp.a"
  "libcg_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
