# Empty compiler generated dependencies file for cg_xml.
# This may be replaced when dependencies are built.
