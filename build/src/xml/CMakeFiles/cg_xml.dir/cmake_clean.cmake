file(REMOVE_RECURSE
  "CMakeFiles/cg_xml.dir/node.cpp.o"
  "CMakeFiles/cg_xml.dir/node.cpp.o.d"
  "CMakeFiles/cg_xml.dir/parse.cpp.o"
  "CMakeFiles/cg_xml.dir/parse.cpp.o.d"
  "CMakeFiles/cg_xml.dir/write.cpp.o"
  "CMakeFiles/cg_xml.dir/write.cpp.o.d"
  "libcg_xml.a"
  "libcg_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
