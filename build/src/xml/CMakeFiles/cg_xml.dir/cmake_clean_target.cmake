file(REMOVE_RECURSE
  "libcg_xml.a"
)
