# Empty dependencies file for cg_p2p.
# This may be replaced when dependencies are built.
