file(REMOVE_RECURSE
  "CMakeFiles/cg_p2p.dir/advert.cpp.o"
  "CMakeFiles/cg_p2p.dir/advert.cpp.o.d"
  "CMakeFiles/cg_p2p.dir/cache.cpp.o"
  "CMakeFiles/cg_p2p.dir/cache.cpp.o.d"
  "CMakeFiles/cg_p2p.dir/discovery.cpp.o"
  "CMakeFiles/cg_p2p.dir/discovery.cpp.o.d"
  "CMakeFiles/cg_p2p.dir/messages.cpp.o"
  "CMakeFiles/cg_p2p.dir/messages.cpp.o.d"
  "CMakeFiles/cg_p2p.dir/peer_node.cpp.o"
  "CMakeFiles/cg_p2p.dir/peer_node.cpp.o.d"
  "CMakeFiles/cg_p2p.dir/pipes.cpp.o"
  "CMakeFiles/cg_p2p.dir/pipes.cpp.o.d"
  "libcg_p2p.a"
  "libcg_p2p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_p2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
