file(REMOVE_RECURSE
  "libcg_p2p.a"
)
