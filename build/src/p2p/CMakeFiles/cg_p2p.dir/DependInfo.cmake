
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/p2p/advert.cpp" "src/p2p/CMakeFiles/cg_p2p.dir/advert.cpp.o" "gcc" "src/p2p/CMakeFiles/cg_p2p.dir/advert.cpp.o.d"
  "/root/repo/src/p2p/cache.cpp" "src/p2p/CMakeFiles/cg_p2p.dir/cache.cpp.o" "gcc" "src/p2p/CMakeFiles/cg_p2p.dir/cache.cpp.o.d"
  "/root/repo/src/p2p/discovery.cpp" "src/p2p/CMakeFiles/cg_p2p.dir/discovery.cpp.o" "gcc" "src/p2p/CMakeFiles/cg_p2p.dir/discovery.cpp.o.d"
  "/root/repo/src/p2p/messages.cpp" "src/p2p/CMakeFiles/cg_p2p.dir/messages.cpp.o" "gcc" "src/p2p/CMakeFiles/cg_p2p.dir/messages.cpp.o.d"
  "/root/repo/src/p2p/peer_node.cpp" "src/p2p/CMakeFiles/cg_p2p.dir/peer_node.cpp.o" "gcc" "src/p2p/CMakeFiles/cg_p2p.dir/peer_node.cpp.o.d"
  "/root/repo/src/p2p/pipes.cpp" "src/p2p/CMakeFiles/cg_p2p.dir/pipes.cpp.o" "gcc" "src/p2p/CMakeFiles/cg_p2p.dir/pipes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/cg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/cg_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/cg_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/cg_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
