file(REMOVE_RECURSE
  "libcg_net.a"
)
