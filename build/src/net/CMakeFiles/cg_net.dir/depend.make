# Empty dependencies file for cg_net.
# This may be replaced when dependencies are built.
