file(REMOVE_RECURSE
  "CMakeFiles/cg_net.dir/inproc.cpp.o"
  "CMakeFiles/cg_net.dir/inproc.cpp.o.d"
  "CMakeFiles/cg_net.dir/sim_network.cpp.o"
  "CMakeFiles/cg_net.dir/sim_network.cpp.o.d"
  "CMakeFiles/cg_net.dir/tcp.cpp.o"
  "CMakeFiles/cg_net.dir/tcp.cpp.o.d"
  "libcg_net.a"
  "libcg_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
