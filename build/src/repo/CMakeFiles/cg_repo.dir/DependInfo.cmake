
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/repo/artifact.cpp" "src/repo/CMakeFiles/cg_repo.dir/artifact.cpp.o" "gcc" "src/repo/CMakeFiles/cg_repo.dir/artifact.cpp.o.d"
  "/root/repo/src/repo/code_exchange.cpp" "src/repo/CMakeFiles/cg_repo.dir/code_exchange.cpp.o" "gcc" "src/repo/CMakeFiles/cg_repo.dir/code_exchange.cpp.o.d"
  "/root/repo/src/repo/module_cache.cpp" "src/repo/CMakeFiles/cg_repo.dir/module_cache.cpp.o" "gcc" "src/repo/CMakeFiles/cg_repo.dir/module_cache.cpp.o.d"
  "/root/repo/src/repo/repository.cpp" "src/repo/CMakeFiles/cg_repo.dir/repository.cpp.o" "gcc" "src/repo/CMakeFiles/cg_repo.dir/repository.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/serial/CMakeFiles/cg_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/cg_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
