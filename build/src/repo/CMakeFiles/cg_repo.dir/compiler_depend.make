# Empty compiler generated dependencies file for cg_repo.
# This may be replaced when dependencies are built.
