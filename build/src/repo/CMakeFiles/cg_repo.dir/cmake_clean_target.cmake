file(REMOVE_RECURSE
  "libcg_repo.a"
)
