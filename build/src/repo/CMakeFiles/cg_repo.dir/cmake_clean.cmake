file(REMOVE_RECURSE
  "CMakeFiles/cg_repo.dir/artifact.cpp.o"
  "CMakeFiles/cg_repo.dir/artifact.cpp.o.d"
  "CMakeFiles/cg_repo.dir/code_exchange.cpp.o"
  "CMakeFiles/cg_repo.dir/code_exchange.cpp.o.d"
  "CMakeFiles/cg_repo.dir/module_cache.cpp.o"
  "CMakeFiles/cg_repo.dir/module_cache.cpp.o.d"
  "CMakeFiles/cg_repo.dir/repository.cpp.o"
  "CMakeFiles/cg_repo.dir/repository.cpp.o.d"
  "libcg_repo.a"
  "libcg_repo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_repo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
