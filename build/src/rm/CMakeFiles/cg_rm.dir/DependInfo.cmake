
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rm/batch_queue.cpp" "src/rm/CMakeFiles/cg_rm.dir/batch_queue.cpp.o" "gcc" "src/rm/CMakeFiles/cg_rm.dir/batch_queue.cpp.o.d"
  "/root/repo/src/rm/manager.cpp" "src/rm/CMakeFiles/cg_rm.dir/manager.cpp.o" "gcc" "src/rm/CMakeFiles/cg_rm.dir/manager.cpp.o.d"
  "/root/repo/src/rm/thread_pool.cpp" "src/rm/CMakeFiles/cg_rm.dir/thread_pool.cpp.o" "gcc" "src/rm/CMakeFiles/cg_rm.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/cg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/cg_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/cg_serial.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
