# Empty dependencies file for cg_rm.
# This may be replaced when dependencies are built.
