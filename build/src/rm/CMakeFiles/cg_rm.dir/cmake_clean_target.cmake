file(REMOVE_RECURSE
  "libcg_rm.a"
)
