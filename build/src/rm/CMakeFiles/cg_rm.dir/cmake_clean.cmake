file(REMOVE_RECURSE
  "CMakeFiles/cg_rm.dir/batch_queue.cpp.o"
  "CMakeFiles/cg_rm.dir/batch_queue.cpp.o.d"
  "CMakeFiles/cg_rm.dir/manager.cpp.o"
  "CMakeFiles/cg_rm.dir/manager.cpp.o.d"
  "CMakeFiles/cg_rm.dir/thread_pool.cpp.o"
  "CMakeFiles/cg_rm.dir/thread_pool.cpp.o.d"
  "libcg_rm.a"
  "libcg_rm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_rm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
