
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/checkpoint/checkpoint.cpp" "src/core/CMakeFiles/cg_core.dir/checkpoint/checkpoint.cpp.o" "gcc" "src/core/CMakeFiles/cg_core.dir/checkpoint/checkpoint.cpp.o.d"
  "/root/repo/src/core/dist/policy.cpp" "src/core/CMakeFiles/cg_core.dir/dist/policy.cpp.o" "gcc" "src/core/CMakeFiles/cg_core.dir/dist/policy.cpp.o.d"
  "/root/repo/src/core/engine/runtime.cpp" "src/core/CMakeFiles/cg_core.dir/engine/runtime.cpp.o" "gcc" "src/core/CMakeFiles/cg_core.dir/engine/runtime.cpp.o.d"
  "/root/repo/src/core/graph/group_ops.cpp" "src/core/CMakeFiles/cg_core.dir/graph/group_ops.cpp.o" "gcc" "src/core/CMakeFiles/cg_core.dir/graph/group_ops.cpp.o.d"
  "/root/repo/src/core/graph/taskgraph.cpp" "src/core/CMakeFiles/cg_core.dir/graph/taskgraph.cpp.o" "gcc" "src/core/CMakeFiles/cg_core.dir/graph/taskgraph.cpp.o.d"
  "/root/repo/src/core/graph/taskgraph_xml.cpp" "src/core/CMakeFiles/cg_core.dir/graph/taskgraph_xml.cpp.o" "gcc" "src/core/CMakeFiles/cg_core.dir/graph/taskgraph_xml.cpp.o.d"
  "/root/repo/src/core/graph/validate.cpp" "src/core/CMakeFiles/cg_core.dir/graph/validate.cpp.o" "gcc" "src/core/CMakeFiles/cg_core.dir/graph/validate.cpp.o.d"
  "/root/repo/src/core/service/controller.cpp" "src/core/CMakeFiles/cg_core.dir/service/controller.cpp.o" "gcc" "src/core/CMakeFiles/cg_core.dir/service/controller.cpp.o.d"
  "/root/repo/src/core/service/describe.cpp" "src/core/CMakeFiles/cg_core.dir/service/describe.cpp.o" "gcc" "src/core/CMakeFiles/cg_core.dir/service/describe.cpp.o.d"
  "/root/repo/src/core/service/protocol.cpp" "src/core/CMakeFiles/cg_core.dir/service/protocol.cpp.o" "gcc" "src/core/CMakeFiles/cg_core.dir/service/protocol.cpp.o.d"
  "/root/repo/src/core/service/service.cpp" "src/core/CMakeFiles/cg_core.dir/service/service.cpp.o" "gcc" "src/core/CMakeFiles/cg_core.dir/service/service.cpp.o.d"
  "/root/repo/src/core/service/supervisor.cpp" "src/core/CMakeFiles/cg_core.dir/service/supervisor.cpp.o" "gcc" "src/core/CMakeFiles/cg_core.dir/service/supervisor.cpp.o.d"
  "/root/repo/src/core/types/data_item.cpp" "src/core/CMakeFiles/cg_core.dir/types/data_item.cpp.o" "gcc" "src/core/CMakeFiles/cg_core.dir/types/data_item.cpp.o.d"
  "/root/repo/src/core/unit/builtin_sinks.cpp" "src/core/CMakeFiles/cg_core.dir/unit/builtin_sinks.cpp.o" "gcc" "src/core/CMakeFiles/cg_core.dir/unit/builtin_sinks.cpp.o.d"
  "/root/repo/src/core/unit/builtin_sources.cpp" "src/core/CMakeFiles/cg_core.dir/unit/builtin_sources.cpp.o" "gcc" "src/core/CMakeFiles/cg_core.dir/unit/builtin_sources.cpp.o.d"
  "/root/repo/src/core/unit/builtin_transforms.cpp" "src/core/CMakeFiles/cg_core.dir/unit/builtin_transforms.cpp.o" "gcc" "src/core/CMakeFiles/cg_core.dir/unit/builtin_transforms.cpp.o.d"
  "/root/repo/src/core/unit/proxy_units.cpp" "src/core/CMakeFiles/cg_core.dir/unit/proxy_units.cpp.o" "gcc" "src/core/CMakeFiles/cg_core.dir/unit/proxy_units.cpp.o.d"
  "/root/repo/src/core/unit/registry.cpp" "src/core/CMakeFiles/cg_core.dir/unit/registry.cpp.o" "gcc" "src/core/CMakeFiles/cg_core.dir/unit/registry.cpp.o.d"
  "/root/repo/src/core/unit/unit.cpp" "src/core/CMakeFiles/cg_core.dir/unit/unit.cpp.o" "gcc" "src/core/CMakeFiles/cg_core.dir/unit/unit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/serial/CMakeFiles/cg_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/cg_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/cg_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/p2p/CMakeFiles/cg_p2p.dir/DependInfo.cmake"
  "/root/repo/build/src/sandbox/CMakeFiles/cg_sandbox.dir/DependInfo.cmake"
  "/root/repo/build/src/repo/CMakeFiles/cg_repo.dir/DependInfo.cmake"
  "/root/repo/build/src/rm/CMakeFiles/cg_rm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
