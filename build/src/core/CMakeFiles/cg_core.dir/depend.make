# Empty dependencies file for cg_core.
# This may be replaced when dependencies are built.
