# Empty dependencies file for cg_sandbox.
# This may be replaced when dependencies are built.
