file(REMOVE_RECURSE
  "CMakeFiles/cg_sandbox.dir/account.cpp.o"
  "CMakeFiles/cg_sandbox.dir/account.cpp.o.d"
  "CMakeFiles/cg_sandbox.dir/sandbox.cpp.o"
  "CMakeFiles/cg_sandbox.dir/sandbox.cpp.o.d"
  "CMakeFiles/cg_sandbox.dir/trust.cpp.o"
  "CMakeFiles/cg_sandbox.dir/trust.cpp.o.d"
  "libcg_sandbox.a"
  "libcg_sandbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_sandbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
