file(REMOVE_RECURSE
  "libcg_sandbox.a"
)
