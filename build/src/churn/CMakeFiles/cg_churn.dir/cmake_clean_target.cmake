file(REMOVE_RECURSE
  "libcg_churn.a"
)
