file(REMOVE_RECURSE
  "CMakeFiles/cg_churn.dir/availability.cpp.o"
  "CMakeFiles/cg_churn.dir/availability.cpp.o.d"
  "CMakeFiles/cg_churn.dir/driver.cpp.o"
  "CMakeFiles/cg_churn.dir/driver.cpp.o.d"
  "libcg_churn.a"
  "libcg_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
