# Empty dependencies file for cg_churn.
# This may be replaced when dependencies are built.
