# Empty compiler generated dependencies file for cg_db.
# This may be replaced when dependencies are built.
