file(REMOVE_RECURSE
  "libcg_db.a"
)
