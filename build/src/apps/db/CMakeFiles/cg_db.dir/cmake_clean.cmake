file(REMOVE_RECURSE
  "CMakeFiles/cg_db.dir/store.cpp.o"
  "CMakeFiles/cg_db.dir/store.cpp.o.d"
  "CMakeFiles/cg_db.dir/units.cpp.o"
  "CMakeFiles/cg_db.dir/units.cpp.o.d"
  "libcg_db.a"
  "libcg_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
