# CMake generated Testfile for 
# Source directory: /root/repo/src/apps/db
# Build directory: /root/repo/build/src/apps/db
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
