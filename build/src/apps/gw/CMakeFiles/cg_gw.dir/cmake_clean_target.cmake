file(REMOVE_RECURSE
  "libcg_gw.a"
)
