file(REMOVE_RECURSE
  "CMakeFiles/cg_gw.dir/chirp.cpp.o"
  "CMakeFiles/cg_gw.dir/chirp.cpp.o.d"
  "CMakeFiles/cg_gw.dir/search.cpp.o"
  "CMakeFiles/cg_gw.dir/search.cpp.o.d"
  "CMakeFiles/cg_gw.dir/template_bank.cpp.o"
  "CMakeFiles/cg_gw.dir/template_bank.cpp.o.d"
  "CMakeFiles/cg_gw.dir/units.cpp.o"
  "CMakeFiles/cg_gw.dir/units.cpp.o.d"
  "libcg_gw.a"
  "libcg_gw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_gw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
