# Empty compiler generated dependencies file for cg_gw.
# This may be replaced when dependencies are built.
