file(REMOVE_RECURSE
  "libcg_galaxy.a"
)
