file(REMOVE_RECURSE
  "CMakeFiles/cg_galaxy.dir/snapshot.cpp.o"
  "CMakeFiles/cg_galaxy.dir/snapshot.cpp.o.d"
  "CMakeFiles/cg_galaxy.dir/sph.cpp.o"
  "CMakeFiles/cg_galaxy.dir/sph.cpp.o.d"
  "CMakeFiles/cg_galaxy.dir/units.cpp.o"
  "CMakeFiles/cg_galaxy.dir/units.cpp.o.d"
  "libcg_galaxy.a"
  "libcg_galaxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_galaxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
