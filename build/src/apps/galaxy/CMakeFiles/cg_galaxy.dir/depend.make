# Empty dependencies file for cg_galaxy.
# This may be replaced when dependencies are built.
