# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("serial")
subdirs("xml")
subdirs("dsp")
subdirs("net")
subdirs("p2p")
subdirs("sandbox")
subdirs("repo")
subdirs("rm")
subdirs("churn")
subdirs("core")
subdirs("apps/gw")
subdirs("apps/galaxy")
subdirs("apps/db")
