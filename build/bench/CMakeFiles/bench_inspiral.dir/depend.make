# Empty dependencies file for bench_inspiral.
# This may be replaced when dependencies are built.
