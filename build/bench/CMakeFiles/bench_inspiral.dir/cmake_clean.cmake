file(REMOVE_RECURSE
  "CMakeFiles/bench_inspiral.dir/bench_inspiral.cpp.o"
  "CMakeFiles/bench_inspiral.dir/bench_inspiral.cpp.o.d"
  "bench_inspiral"
  "bench_inspiral.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_inspiral.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
