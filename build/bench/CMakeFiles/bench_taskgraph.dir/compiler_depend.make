# Empty compiler generated dependencies file for bench_taskgraph.
# This may be replaced when dependencies are built.
