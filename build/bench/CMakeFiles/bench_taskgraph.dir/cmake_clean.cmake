file(REMOVE_RECURSE
  "CMakeFiles/bench_taskgraph.dir/bench_taskgraph.cpp.o"
  "CMakeFiles/bench_taskgraph.dir/bench_taskgraph.cpp.o.d"
  "bench_taskgraph"
  "bench_taskgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_taskgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
