
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_codecache.cpp" "bench/CMakeFiles/bench_codecache.dir/bench_codecache.cpp.o" "gcc" "bench/CMakeFiles/bench_codecache.dir/bench_codecache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/repo/CMakeFiles/cg_repo.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/cg_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/cg_serial.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
