# Empty dependencies file for bench_codecache.
# This may be replaced when dependencies are built.
