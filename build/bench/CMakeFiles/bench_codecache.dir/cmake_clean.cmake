file(REMOVE_RECURSE
  "CMakeFiles/bench_codecache.dir/bench_codecache.cpp.o"
  "CMakeFiles/bench_codecache.dir/bench_codecache.cpp.o.d"
  "bench_codecache"
  "bench_codecache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_codecache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
