# Empty dependencies file for bench_galaxy.
# This may be replaced when dependencies are built.
