file(REMOVE_RECURSE
  "CMakeFiles/bench_galaxy.dir/bench_galaxy.cpp.o"
  "CMakeFiles/bench_galaxy.dir/bench_galaxy.cpp.o.d"
  "bench_galaxy"
  "bench_galaxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_galaxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
