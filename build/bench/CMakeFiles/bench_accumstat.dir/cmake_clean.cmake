file(REMOVE_RECURSE
  "CMakeFiles/bench_accumstat.dir/bench_accumstat.cpp.o"
  "CMakeFiles/bench_accumstat.dir/bench_accumstat.cpp.o.d"
  "bench_accumstat"
  "bench_accumstat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_accumstat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
