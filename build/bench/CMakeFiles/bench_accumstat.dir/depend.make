# Empty dependencies file for bench_accumstat.
# This may be replaced when dependencies are built.
