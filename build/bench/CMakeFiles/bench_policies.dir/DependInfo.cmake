
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_policies.cpp" "bench/CMakeFiles/bench_policies.dir/bench_policies.cpp.o" "gcc" "bench/CMakeFiles/bench_policies.dir/bench_policies.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/p2p/CMakeFiles/cg_p2p.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/cg_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/sandbox/CMakeFiles/cg_sandbox.dir/DependInfo.cmake"
  "/root/repo/build/src/repo/CMakeFiles/cg_repo.dir/DependInfo.cmake"
  "/root/repo/build/src/rm/CMakeFiles/cg_rm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/cg_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/cg_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
