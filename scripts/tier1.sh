#!/usr/bin/env bash
# ConGrid tier-1 gate: full build + test suite, then a sanitizer pass over
# the reliability/chaos tests (the code most exposed to lifetime bugs --
# retransmit timers and fault hooks firing into torn-down objects).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "== tier-1: ASan/UBSan chaos pass =="
cmake -B build-asan -S . -DCONGRID_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j --target test_reliable test_chaos test_net
for t in test_reliable test_chaos test_net; do
  ./build-asan/tests/"$t"
done

echo "tier-1: OK"
