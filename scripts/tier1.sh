#!/usr/bin/env bash
# ConGrid tier-1 gate: full build + test suite, then a sanitizer pass over
# the reliability/chaos/observability tests (the code most exposed to
# lifetime bugs -- retransmit timers and fault hooks firing into torn-down
# objects, and the metrics instruments they report into).
#
# Usage: tier1.sh [BUILD_DIR] [ASAN_BUILD_DIR]
#   BUILD_DIR      normal build tree (default: build)
#   ASAN_BUILD_DIR sanitizer build tree (default: ${BUILD_DIR}-asan)
# CI passes distinct directories so the two trees cache independently.
#
# Usage: tier1.sh tsan [TSAN_BUILD_DIR]
#   Builds the tree under ThreadSanitizer and runs the tests that exercise
#   the wave scheduler and the thread pool (the code that actually shares
#   state across threads). CI runs this as its own job; locally it is the
#   fastest way to vet a scheduler change for races.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "tsan" ]]; then
  TSAN_DIR="${2:-build-tsan}"
  echo "== tier-1: TSan pass over the parallel engine (${TSAN_DIR}) =="
  cmake -B "${TSAN_DIR}" -S . -DCONGRID_SANITIZE=thread >/dev/null
  # test_wire joins the TSan tier for its cross-thread socket test: the
  # epoll reactor's handler runs against sends from another thread.
  # test_overlay rides along: single-threaded by design, but the overlay's
  # timer closures must stay race-free if a threaded scheduler hosts them.
  # test_obs_http scrapes /metrics from client threads while a mutator
  # thread pounds the instruments -- the exact race surface of the obs
  # HTTP plane.
  cmake --build "${TSAN_DIR}" -j --target \
    test_parallel_runtime test_rm test_core_runtime test_cas test_chaos \
    test_wire test_overlay test_obs_http
  for t in test_parallel_runtime test_rm test_core_runtime test_cas \
           test_chaos test_wire test_overlay test_obs_http; do
    "./${TSAN_DIR}/tests/${t}"
  done
  echo "tier-1 (tsan): OK"
  exit 0
fi

BUILD_DIR="${1:-build}"
ASAN_DIR="${2:-${BUILD_DIR}-asan}"

echo "== tier-1: build + ctest (${BUILD_DIR}) =="
cmake -B "${BUILD_DIR}" -S . >/dev/null
cmake --build "${BUILD_DIR}" -j
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"

echo "== tier-1: ASan/UBSan chaos pass (${ASAN_DIR}) =="
# test_wire and test_tcp_parity run the real-socket tier under ASan too:
# the epoll reactor and the zero-copy decoder path are exactly where a
# lifetime bug would hide (buffers retired mid-writev, spans into a
# decoder that reallocated).
cmake -B "${ASAN_DIR}" -S . -DCONGRID_SANITIZE=address,undefined >/dev/null
# test_overlay joins the ASan tier: lookup/find state machines erase their
# own entries from inside timer closures, the classic shape for a
# use-after-free when a late reply races a timeout.
cmake --build "${ASAN_DIR}" -j --target test_reliable test_chaos test_net \
  test_obs test_obs_http test_wire test_tcp_parity test_overlay
for t in test_reliable test_chaos test_net test_obs test_obs_http \
         test_wire test_tcp_parity test_overlay; do
  "./${ASAN_DIR}/tests/${t}"
done

echo "tier-1: OK"
