#!/usr/bin/env python3
"""Gate a bench JSON artifact against a checked-in baseline.

Usage:
  bench_compare.py --baseline bench/baselines/galaxy.json \
                   --current BENCH_galaxy.json \
                   [--key threads] [--metric throughput] [--threshold 0.15]

Both files hold {"bench": NAME, "rows": [{...}]}. Rows are matched on
--key (default "threads"); the gate fails when the current --metric
(default "throughput") falls more than --threshold (default 15%) below
the baseline row, or when a baseline row is missing from the current run.

--mode picks the direction: "floor" (default) treats the baseline as a
minimum the metric must stay above (throughput-style, higher is better);
"ceiling" treats it as a maximum the metric must stay below
(message-count or latency-style, lower is better), failing when the
current value rises more than --threshold above the baseline.

A markdown delta table is printed to stdout and, when the
GITHUB_STEP_SUMMARY environment variable is set, appended to the job
summary. Exit status: 0 = within budget, 1 = regression, 2 = bad input.

Baselines are conservative floors (roughly half the throughput measured
on a dev box), so runner-to-runner noise does not trip the gate while a
real serialisation bug -- which costs the parallel rows their entire
speedup -- still does. To refresh after an intentional change: run the
bench locally or download the bench-json CI artifact, halve the
throughput values, and commit them to bench/baselines/.
"""

import argparse
import json
import os
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument("--key", default="threads")
    ap.add_argument("--metric", default="throughput")
    ap.add_argument("--threshold", type=float, default=0.15)
    ap.add_argument("--mode", choices=["floor", "ceiling"], default="floor")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    if base.get("bench") != cur.get("bench"):
        print(
            f"bench_compare: bench name mismatch: baseline is "
            f"{base.get('bench')!r}, current is {cur.get('bench')!r}",
            file=sys.stderr,
        )
        sys.exit(2)

    ceiling = args.mode == "ceiling"
    cur_rows = {row[args.key]: row for row in cur.get("rows", [])}
    lines = [
        f"### bench_{base.get('bench')}: {args.metric} vs baseline "
        f"(gate: {'+' if ceiling else '-'}{args.threshold:.0%})",
        "",
        f"| {args.key} | baseline | current | delta | status |",
        "| --- | --- | --- | --- | --- |",
    ]
    failed = False
    for brow in base.get("rows", []):
        key = brow[args.key]
        floor = brow[args.metric]
        crow = cur_rows.get(key)
        if crow is None:
            lines.append(f"| {key} | {floor:.1f} | missing | — | FAIL |")
            failed = True
            continue
        got = crow[args.metric]
        delta = (got - floor) / floor if floor else 0.0
        bad = delta > args.threshold if ceiling else delta < -args.threshold
        failed |= bad
        lines.append(
            f"| {key} | {floor:.1f} | {got:.1f} | {delta:+.1%} | "
            f"{'FAIL' if bad else 'ok'} |"
        )
    verdict = (
        (
            f"**regression: current {args.metric} is "
            f"{'above the baseline ceiling' if ceiling else 'below the baseline floor'}**"
        )
        if failed
        else "within budget"
    )
    lines += ["", verdict, ""]
    table = "\n".join(lines)
    print(table)

    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a", encoding="utf-8") as f:
            f.write(table + "\n")

    sys.exit(1 if failed else 0)


if __name__ == "__main__":
    main()
