// congrid-trace -- merge per-peer JSONL trace files, reconstruct the
// causal DAG and report where the wall time of a distributed run went.
//
//   congrid-trace [--validate] [--json PATH|-] [--md PATH|-] FILE...
//
// FILEs are Tracer::to_jsonl outputs ("-" reads stdin); multiple files
// (e.g. one per peer) are merged -- span ids are globally unique within a
// run, and cross-peer transfers pair up by (connection, sequence).
//
// Default output is the markdown report on stdout. --json/--md redirect
// the machine/human forms to files. --validate exits nonzero when the
// DAG is structurally broken (unpaired spans, receive-before-send,
// parent cycles); ring overwrites downgrade pairing errors to warnings
// but are themselves reported.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/causal.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--validate] [--json PATH|-] [--md PATH|-] "
               "FILE...\n",
               argv0);
  return 2;
}

bool read_input(const std::string& path, std::string& out) {
  if (path == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    out = ss.str();
    return true;
  }
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::ostringstream ss;
  ss << f.rdbuf();
  out = ss.str();
  return true;
}

bool write_output(const std::string& path, const std::string& text) {
  if (path == "-") {
    std::fwrite(text.data(), 1, text.size(), stdout);
    return true;
  }
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f << text;
  return f.good();
}

}  // namespace

int main(int argc, char** argv) {
  bool validate = false;
  std::string json_path;
  std::string md_path;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--validate") {
      validate = true;
    } else if (arg == "--json") {
      if (++i >= argc) return usage(argv[0]);
      json_path = argv[i];
    } else if (arg == "--md") {
      if (++i >= argc) return usage(argv[0]);
      md_path = argv[i];
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return usage(argv[0]);
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return usage(argv[0]);

  cg::obs::causal::Trace trace;
  for (const auto& path : files) {
    std::string text;
    if (!read_input(path, text)) {
      std::fprintf(stderr, "congrid-trace: cannot read %s\n", path.c_str());
      return 2;
    }
    try {
      trace.add_jsonl(text);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "congrid-trace: %s: %s\n", path.c_str(), e.what());
      return 2;
    }
  }
  trace.finish();

  const cg::obs::causal::Report report = trace.analyze();

  bool io_ok = true;
  if (!json_path.empty()) {
    io_ok = write_output(json_path, report.to_json() + "\n") && io_ok;
  }
  if (!md_path.empty()) {
    io_ok = write_output(md_path, report.to_markdown()) && io_ok;
  }
  if (json_path.empty() && md_path.empty()) {
    write_output("-", report.to_markdown());
  }
  if (!io_ok) {
    std::fprintf(stderr, "congrid-trace: write failed\n");
    return 2;
  }

  for (const auto& w : report.warnings) {
    std::fprintf(stderr, "warning: %s\n", w.c_str());
  }
  if (!report.errors.empty()) {
    for (const auto& e : report.errors) {
      std::fprintf(stderr, "error: %s\n", e.c_str());
    }
    if (validate) return 1;
  }
  return 0;
}
