// E7 -- task-graph-as-text overhead.
//
// Paper (3.3): "Transmitting the connectivity graph to nodes has a limited
// overhead -- as the graph itself is a text file that does not consume many
// resources." We quantify it: XML document size and parse/serialise time
// for growing graphs, against the size of the *data* a single streaming
// iteration moves -- the graph is a one-off cost, the data is per item.
#include <chrono>
#include <cstdio>
#include <functional>

#include "core/graph/taskgraph_xml.hpp"
#include "core/types/data_item.hpp"

using namespace cg;

namespace {

core::TaskGraph chain_graph(std::size_t n_tasks) {
  core::TaskGraph g("chain");
  core::ParamSet wp;
  wp.set_int("samples", 512);
  g.add_task("t0", "Wave", wp);
  for (std::size_t i = 1; i < n_tasks; ++i) {
    core::ParamSet p;
    p.set_double("factor", 1.01);
    p.set_double("other", static_cast<double>(i));
    g.add_task("t" + std::to_string(i), "Scaler", p);
    g.connect("t" + std::to_string(i - 1), 0, "t" + std::to_string(i), 0);
  }
  return g;
}

double ms_per_op(const std::function<void()>& op, int reps) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) op();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
             .count() /
         reps;
}

}  // namespace

int main() {
  std::printf("E7: task-graph transmission overhead (paper 3.3)\n\n");
  std::printf("%-8s %-11s %-12s %-12s %-18s\n", "tasks", "XML bytes",
              "write ms", "parse ms", "bytes/task");

  for (std::size_t n : {4u, 16u, 64u, 256u, 512u}) {
    const core::TaskGraph g = chain_graph(n);
    const std::string xml = core::write_taskgraph(g);
    const int reps = n >= 256 ? 20 : 200;
    const double wr = ms_per_op([&] {
      volatile std::size_t s = core::write_taskgraph(g).size();
      (void)s;
    }, reps);
    const double pr = ms_per_op([&] {
      volatile std::size_t s = core::parse_taskgraph(xml).tasks().size();
      (void)s;
    }, reps);
    std::printf("%-8zu %-11zu %-12.3f %-12.3f %-18.1f\n", n, xml.size(), wr,
                pr, static_cast<double>(xml.size()) / static_cast<double>(n));
  }

  // Compare with the data plane: what one iteration of typical payloads
  // costs *every* iteration.
  std::printf("\nper-iteration data payloads for comparison:\n");
  core::SampleSet chunk;
  chunk.sample_rate = 2000;
  chunk.samples.assign(1'800'000, 0.0);  // one GEO600 chunk
  core::ImageFrame frame;
  frame.width = frame.height = 128;
  frame.pixels.assign(128 * 128, 0.0);
  std::printf("  GEO600 chunk:   %10zu bytes (paper: 7.2 MB raw)\n",
              core::DataItem(chunk).byte_size());
  std::printf("  128x128 frame:  %10zu bytes\n",
              core::DataItem(frame).byte_size());

  std::printf(
      "\nShape check (paper): even a 512-task workflow serialises to tens "
      "of kB -- orders of magnitude below a single data chunk, and sent "
      "once per deployment rather than per iteration.\n");
  return 0;
}
