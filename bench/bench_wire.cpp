// E13 -- wire throughput and deploy latency: simulator vs real loopback TCP.
//
// The NetworkBackend seam promises that the service stack behaves the same
// over the discrete-event simulator and over real sockets; this bench
// quantifies what the real wire costs and what envelope batching buys back.
// Two measurements per backend:
//
//   * messages/sec -- a windowed stream of small control envelopes between
//     two ReliableTransports (window 64, effectively-once delivery). On TCP
//     this is run unbatched (one frame per envelope, one per ack) and
//     batched (kBatch coalescing at the reliable layer), because small-
//     envelope chatter is exactly the workload where per-frame overhead
//     dominates. The bench FAILS (exit 1) if batched TCP does not deliver
//     at least 2x the unbatched rate.
//   * deploy latency -- wall milliseconds from TrianaController::distribute
//     of a one-fragment farm to deployed_ok over a home + worker pair
//     (code fetch, pipe resolution and the ack round trip included).
//
// All rates are wall-clock: for the simulator that measures how fast the
// harness pumps simulated traffic (its virtual clock is free), which is the
// number CI cares about when budgeting sim-based chaos suites.
//
// Machine-readable output: --json PATH writes BENCH_wire.json with one row
// per scenario (sim / tcp / tcp-batched); CI gates msgs_per_s against the
// conservative floors in bench/baselines/wire.json. --trace PATH reruns the
// batched TCP stream with a Tracer bound and exports the causal JSONL for
// congrid-trace --validate.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/service/supervisor.hpp"
#include "core/unit/builtin.hpp"
#include "net/backend.hpp"
#include "net/loopback.hpp"
#include "obs/http_server.hpp"
#include "obs/obs.hpp"

using namespace cg;

namespace {

int g_messages = 4000;        ///< --messages N (CI smoke uses a smaller N)
constexpr int kWindow = 64;   ///< envelopes in flight

double wall_s() {
  using namespace std::chrono;
  return duration_cast<duration<double>>(
             steady_clock::now().time_since_epoch())
      .count();
}

serial::Frame indexed_frame(int i) {
  serial::Frame f;
  f.type = serial::FrameType::kControl;
  f.payload = {static_cast<std::uint8_t>(i & 0xff),
               static_cast<std::uint8_t>((i >> 8) & 0xff),
               static_cast<std::uint8_t>((i >> 16) & 0xff)};
  return f;
}

net::ReliableConfig wire_reliable(bool batch) {
  net::ReliableConfig cfg;
  cfg.rto_initial_s = 0.06;
  cfg.rto_max_s = 0.5;
  cfg.deadline_s = 30.0;
  cfg.max_retries = 30;
  if (batch) {
    cfg.batch = true;
    cfg.batch_max_frames = 64;
    cfg.batch_flush_s = 0.0005;
  }
  return cfg;
}

struct Row {
  std::string scenario;   ///< sim | tcp | tcp-batched
  double msgs_per_s = 0;  ///< wall-clock delivery rate, windowed stream
  double wall_s = 0;      ///< stream wall time
  double deploy_ms = 0;   ///< distribute -> deployed_ok, wall ms
  std::uint64_t retransmits = 0;
  std::uint64_t batches_on_wire = 0;
  bool completed = false;
};

/// Windowed small-envelope stream a -> b; returns wall seconds, or < 0 if
/// the stream did not complete inside the budget.
double run_stream(net::NetworkBackend& be, bool batch, Row& row,
                  obs::Registry* registry = nullptr,
                  obs::Tracer* tracer = nullptr) {
  auto& ta = be.add_node();
  auto& tb = be.add_node();
  net::ReliableTransport a(ta, be.clock(), be.scheduler(),
                           wire_reliable(batch));
  net::ReliableTransport b(tb, be.clock(), be.scheduler(),
                           wire_reliable(batch));
  if (registry != nullptr) {
    // Scope by scenario so sim / tcp / tcp-batched keep separate counters
    // in BENCH_wire.json and on a live /metrics scrape.
    a.set_obs(*registry, tracer, "wire." + row.scenario + ".a");
    b.set_obs(*registry, tracer, "wire." + row.scenario + ".b");
    if (tracer != nullptr) a.set_trace(0xe13c0ffeeULL);
  }

  int got = 0;
  b.set_handler([&](const net::Endpoint&, serial::Frame) { ++got; });
  const net::Endpoint peer = b.local();

  int sent = 0;
  const double t0 = wall_s();
  // The refill runs inside the pump predicate: every loop iteration tops
  // the window back up, so the stream is continuous without a timer per
  // message.
  const bool done = be.run_until(be.now() + 120.0, [&] {
    while (sent < g_messages && sent - got < kWindow) {
      a.send(peer, indexed_frame(sent));
      ++sent;
    }
    return got >= g_messages;
  });
  const double elapsed = wall_s() - t0;
  // Let the tail acks drain (outside the timed window) so envelope spans
  // close before a tracer export.
  be.run_until(be.now() + 0.05);

  row.completed = done;
  row.retransmits = a.stats().retransmits;
  row.batches_on_wire = a.stats().batches_sent + b.stats().batches_sent;
  row.wall_s = elapsed;
  row.msgs_per_s = done && elapsed > 0 ? g_messages / elapsed : 0.0;
  return done ? elapsed : -1.0;
}

core::UnitRegistry& reg() {
  static core::UnitRegistry r = core::UnitRegistry::with_builtins();
  return r;
}

core::TaskGraph deploy_graph() {
  core::TaskGraph inner("inner");
  core::ParamSet sp;
  sp.set_double("factor", 2.0);
  inner.add_task("Scale", "Scaler", sp);
  core::TaskGraph g("wire");
  core::ParamSet wp;
  wp.set_int("samples", 64);
  g.add_task("Wave", "Wave", wp);
  core::TaskDef& grp = g.add_group("G", std::move(inner), "parallel");
  grp.group_inputs = {core::GroupPort{"Scale", 0}};
  grp.group_outputs = {core::GroupPort{"Scale", 0}};
  g.add_task("Sink", "Grapher");
  g.connect("Wave", 0, "G", 0);
  g.connect("G", 0, "Sink", 0);
  return g;
}

/// Full-stack deploy over `be`: home + one worker, one fragment. Returns
/// wall ms to deployed_ok, or < 0 on failure.
double run_deploy(net::NetworkBackend& be, bool batch) {
  const net::ReliableConfig rel = wire_reliable(batch);
  core::ServiceConfig hc;
  hc.peer_id = "home";
  hc.reliable = rel;
  hc.bind_retry_s = 0.2;
  auto home = std::make_unique<core::TrianaService>(be.add_node(), be.clock(),
                                                    be.scheduler(), reg(), hc);
  core::ServiceConfig wc;
  wc.peer_id = "w0";
  wc.reliable = rel;
  wc.bind_retry_s = 0.2;
  auto worker = std::make_unique<core::TrianaService>(
      be.add_node(), be.clock(), be.scheduler(), reg(), wc);
  home->node().add_neighbor(worker->endpoint());
  worker->node().add_neighbor(home->endpoint());

  core::TaskGraph g = deploy_graph();
  home->publish_graph_modules(g);
  core::TrianaController ctl(*home);
  const double t0 = wall_s();
  auto run = ctl.distribute(g, "G",
                            std::vector<net::Endpoint>{worker->endpoint()});
  const bool ok =
      be.run_until(be.now() + 30.0, [&] { return run->deployed_ok(); });
  return ok ? (wall_s() - t0) * 1000.0 : -1.0;
}

Row run_scenario(const std::string& name, obs::Registry* registry) {
  Row row;
  row.scenario = name;
  const bool batch = name == "tcp-batched";
  {
    std::unique_ptr<net::NetworkBackend> be;
    if (name == "sim")
      be = std::make_unique<net::SimBackend>(net::LinkParams{}, 7);
    else
      be = std::make_unique<net::TcpLoopbackBackend>();
    if (run_stream(*be, batch, row, registry) < 0) return row;
  }
  {
    std::unique_ptr<net::NetworkBackend> be;
    if (name == "sim")
      be = std::make_unique<net::SimBackend>(net::LinkParams{}, 7);
    else
      be = std::make_unique<net::TcpLoopbackBackend>();
    row.deploy_ms = run_deploy(*be, batch);
    row.completed = row.completed && row.deploy_ms >= 0;
  }
  return row;
}

std::string rows_json(const std::vector<Row>& rows) {
  std::string out = "[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    if (i) out += ',';
    out += "{\"scenario\":\"" + r.scenario + "\"";
    out += ",\"msgs_per_s\":" + obs::json_number(r.msgs_per_s);
    out += ",\"wall_s\":" + obs::json_number(r.wall_s);
    out += ",\"deploy_ms\":" + obs::json_number(r.deploy_ms);
    out += ",\"retransmits\":" + std::to_string(r.retransmits);
    out += ",\"batches_on_wire\":" + std::to_string(r.batches_on_wire);
    out += ",\"completed\":" + std::string(r.completed ? "true" : "false");
    out += "}";
  }
  out += "]";
  return out;
}

bool write_text(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "bench_wire: cannot open %s\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

bool write_json(const std::string& path, const std::string& body) {
  if (!obs::json_valid(body)) {
    std::fprintf(stderr, "bench_wire: refusing to write invalid JSON\n");
    return false;
  }
  return write_text(path, body);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string trace_path;
  int obs_port = -1;      // -1: no server; 0: ephemeral
  double obs_linger = 0;  // keep serving after the bench ends
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--messages") == 0 && i + 1 < argc) {
      g_messages = std::atoi(argv[++i]);
      if (g_messages <= 0) {
        std::fprintf(stderr, "bench_wire: bad --messages value\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--obs-port") == 0 && i + 1 < argc) {
      obs_port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--obs-linger") == 0 && i + 1 < argc) {
      obs_linger = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_wire [--messages N] [--json PATH] "
                   "[--trace PATH] [--obs-port PORT] "
                   "[--obs-linger SECONDS]\n");
      return 2;
    }
  }

  std::printf("E13: wire throughput and deploy latency, sim vs loopback TCP\n");
  std::printf("%d small envelopes, window %d, reliable effectively-once\n\n",
              g_messages, kWindow);
  std::printf("%-12s %-12s %-10s %-11s %-8s %-10s\n", "scenario", "msgs/s",
              "wall s", "deploy ms", "retx", "batches");

  obs::Registry registry;
  obs::HttpServerOptions server_opt;
  server_opt.port = static_cast<std::uint16_t>(obs_port > 0 ? obs_port : 0);
  obs::HttpServer server(registry, nullptr, server_opt);
  if (obs_port >= 0) {
    if (!server.start()) {
      std::fprintf(stderr, "bench_wire: --obs-port %d: bind failed or obs "
                           "compiled out\n", obs_port);
      return 1;
    }
    std::printf("obs: live metrics at %s\n\n", server.url().c_str());
  }

  std::vector<Row> rows;
  for (const char* name : {"sim", "tcp", "tcp-batched"}) {
    Row r = run_scenario(name, &registry);
    rows.push_back(r);
    std::printf("%-12s %-12.0f %-10.3f %-11.2f %-8llu %-10llu\n",
                r.scenario.c_str(), r.msgs_per_s, r.wall_s, r.deploy_ms,
                static_cast<unsigned long long>(r.retransmits),
                static_cast<unsigned long long>(r.batches_on_wire));
    if (!r.completed) {
      std::fprintf(stderr, "bench_wire: scenario %s did not complete\n",
                   r.scenario.c_str());
      return 1;
    }
  }

  const Row& tcp = rows[1];
  const Row& batched = rows[2];
  const double speedup =
      tcp.msgs_per_s > 0 ? batched.msgs_per_s / tcp.msgs_per_s : 0.0;
  std::printf(
      "\nBatching speedup on TCP: %.2fx (batched %f msgs/s over %llu kBatch "
      "frames vs %f unbatched)\n",
      speedup, batched.msgs_per_s,
      static_cast<unsigned long long>(batched.batches_on_wire),
      tcp.msgs_per_s);
  if (batched.batches_on_wire == 0) {
    std::fprintf(stderr, "bench_wire: FAIL -- batched run sent no kBatch "
                         "frames; coalescing is not engaging\n");
    return 1;
  }
  if (speedup < 2.0) {
    std::fprintf(stderr,
                 "bench_wire: FAIL -- batched TCP is %.2fx unbatched, "
                 "expected >= 2x on the small-envelope workload\n",
                 speedup);
    return 1;
  }

  if (!json_path.empty()) {
    std::string body = "{\"bench\":\"wire\",\"messages\":" +
                       std::to_string(g_messages) +
                       ",\"batch_speedup\":" + obs::json_number(speedup) +
                       ",\"rows\":" + rows_json(rows) +
                       ",\"metrics\":" +
                       registry.snapshot().to_json(/*pretty=*/false) + "}";
    if (!write_json(json_path, body)) return 1;
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  // --trace: rerun the batched TCP stream with a tracer bound; the
  // envelope spans pair across the two peers into one causal DAG for
  // congrid-trace --validate.
  if (!trace_path.empty()) {
    obs::Registry trace_registry;
    obs::Tracer tracer(1 << 16);
    net::TcpLoopbackBackend be;
    Row traced;
    traced.scenario = "tcp-batched-traced";
    if (run_stream(be, true, traced, &trace_registry, &tracer) < 0) {
      std::fprintf(stderr, "bench_wire: traced rerun did not complete\n");
      return 1;
    }
    const std::string jsonl = tracer.to_jsonl();
    if (jsonl.empty()) {
      std::printf("\ntracing compiled out (CONGRID_OBS=OFF); %s not written\n",
                  trace_path.c_str());
    } else {
      if (!write_text(trace_path, jsonl)) return 1;
      std::printf("wrote %s\n", trace_path.c_str());
    }
  }

  if (server.running() && obs_linger > 0) {
    std::printf("obs: lingering %.0f s at %s\n", obs_linger,
                server.url().c_str());
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::duration<double>(obs_linger));
  }
  server.stop();
  return 0;
}
