// E6 -- on-demand code download and the constrained-device module cache.
//
// Paper (3.3): "This dynamic download of code, depending on what is to be
// executed by a peer, allows the peer to only host code that is necessary
// -- and overcomes the problem of having inconsistent versions"; "A
// resource-constrained device may also decide to selectively download and
// release executable modules based on dependencies".
//
// Workload: a 60-module universe with a dependency DAG; a peer executes a
// Zipf-skewed stream of tasks, each requiring a module's dependency
// closure. Swept: cache byte budget. Reported: hit rate, bytes fetched
// (the traffic a consumer uplink pays), evictions. The last section shows
// the version-consistency property: after the owner republishes, the next
// execution runs the new version.
// Machine-readable output: --json PATH writes a BENCH_codecache.json
// artifact with the sweep rows plus the obs metrics snapshot (scopes
// "budget05", "budget10", ... for each budget fraction).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "dsp/rng.hpp"
#include "obs/obs.hpp"
#include "repo/module_cache.hpp"
#include "repo/repository.hpp"

using namespace cg;

namespace {

constexpr std::size_t kModules = 60;
constexpr std::size_t kModuleBytes = 256 * 1024;
constexpr int kRequests = 2000;

repo::ModuleRepository make_universe() {
  repo::ModuleRepository repo;
  for (std::size_t i = 0; i < kModules; ++i) {
    // Layered DAG: module i depends on up to two earlier modules.
    std::vector<std::string> deps;
    if (i >= 2) {
      deps.push_back("mod" + std::to_string(i / 2));
      if (i % 3 == 0) deps.push_back("mod" + std::to_string(i / 3));
    }
    repo.put(repo::make_synthetic_artifact("mod" + std::to_string(i), "1.0",
                                           kModuleBytes, std::move(deps)));
  }
  return repo;
}

/// Zipf-ish module selection: popularity ~ 1/(rank+1).
std::size_t pick_module(dsp::Rng& rng) {
  double total = 0;
  for (std::size_t i = 0; i < kModules; ++i) {
    total += 1.0 / static_cast<double>(i + 1);
  }
  double x = rng.uniform() * total;
  for (std::size_t i = 0; i < kModules; ++i) {
    x -= 1.0 / static_cast<double>(i + 1);
    if (x <= 0) return i;
  }
  return kModules - 1;
}

struct Row {
  double budget_frac = 0;
  double hit_rate = 0;
  double fetched_mb = 0;
  std::uint64_t evictions = 0;
  std::uint64_t failures = 0;
};

Row run(std::size_t budget_bytes, const repo::ModuleRepository& repo,
        obs::Registry& registry, const std::string& scope) {
  repo::ModuleCache cache(budget_bytes);
  cache.set_obs(registry, scope);
  dsp::Rng rng(17);
  Row row;
  for (int r = 0; r < kRequests; ++r) {
    const std::string name = "mod" + std::to_string(pick_module(rng));
    // Execute `name`: its whole dependency closure must be resident and
    // pinned for the duration of the run.
    const auto closure = repo.closure(name, "1.0");
    std::vector<std::string> pinned;
    bool ok = true;
    for (const auto& artifact : closure) {
      if (!cache.lookup(artifact.name).has_value()) {
        if (!cache.insert(artifact)) {  // cannot fit even after eviction
          ok = false;
          break;
        }
      }
      cache.pin(artifact.name);
      pinned.push_back(artifact.name);
    }
    if (!ok) ++row.failures;
    for (const auto& n : pinned) cache.unpin(n);
  }
  const auto& s = cache.stats();
  row.hit_rate = s.hit_rate();
  row.fetched_mb = static_cast<double>(s.bytes_fetched) / 1e6;
  row.evictions = s.evictions;
  return row;
}

std::string rows_json(const std::vector<Row>& rows) {
  std::string out = "[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    if (i) out += ',';
    out += "{\"budget_frac\":" + obs::json_number(r.budget_frac);
    out += ",\"hit_rate\":" + obs::json_number(r.hit_rate);
    out += ",\"fetched_mb\":" + obs::json_number(r.fetched_mb);
    out += ",\"evictions\":" + std::to_string(r.evictions);
    out += ",\"failures\":" + std::to_string(r.failures);
    out += "}";
  }
  out += "]";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_codecache [--json PATH]\n");
      return 2;
    }
  }

  std::printf("E6: on-demand module download under cache pressure\n");
  std::printf("%zu modules x %zu kB, dependency DAG, %d Zipf requests\n\n",
              kModules, kModuleBytes / 1024, kRequests);
  std::printf("%-14s %-10s %-14s %-11s %-9s\n", "cache budget", "hit rate",
              "fetched MB", "evictions", "failures");

  const auto repo = make_universe();
  const std::size_t full = kModules * kModuleBytes;
  obs::Registry registry;
  std::vector<Row> rows;
  for (double frac : {0.05, 0.10, 0.25, 0.5, 1.0}) {
    const auto budget = static_cast<std::size_t>(frac * static_cast<double>(full));
    char scope[16];
    std::snprintf(scope, sizeof scope, "budget%02d",
                  static_cast<int>(frac * 100 + 0.5));
    Row row = run(budget, repo, registry, scope);
    row.budget_frac = frac;
    rows.push_back(row);
    std::printf("%5.0f%% (%3zu MB) %-10.3f %-14.1f %-11llu %-9llu\n",
                frac * 100, budget >> 20, row.hit_rate, row.fetched_mb,
                static_cast<unsigned long long>(row.evictions),
                static_cast<unsigned long long>(row.failures));
  }
  // No-cache baseline: every execution re-downloads its whole closure.
  {
    dsp::Rng rng(17);
    double mb = 0;
    for (int r = 0; r < kRequests; ++r) {
      for (const auto& a :
           repo.closure("mod" + std::to_string(pick_module(rng)), "1.0")) {
        mb += static_cast<double>(a.size_bytes()) / 1e6;
      }
    }
    std::printf("%-14s %-10s %-14.1f (the paper's always-refetch extreme)\n",
                "no cache", "0.000", mb);
  }

  // Version consistency: the owner republishes; the executing peer's next
  // fetch observes the new version (cache replaces by name).
  {
    repo::ModuleRepository owner = make_universe();
    repo::ModuleCache cache(full);
    cache.insert(*owner.latest("mod1"));
    owner.put(repo::make_synthetic_artifact("mod1", "2.0", kModuleBytes));
    cache.insert(*owner.latest("mod1"));  // re-fetch on next deploy
    std::printf("\nversion consistency: resident mod1 is now %s (owner "
                "republished 2.0) -- 'the executable must be requested from "
                "the owner whenever an execution is to be undertaken'\n",
                cache.lookup("mod1")->version.c_str());
  }

  std::printf(
      "\nShape check (paper 3.3): small caches still capture most hits on "
      "a skewed workload while holding only 'code that is necessary'; "
      "traffic falls steeply as the budget grows; a cacheless device pays "
      "two orders of magnitude more uplink traffic.\n");

  if (!json_path.empty()) {
    const std::string body =
        "{\"bench\":\"codecache\",\"requests\":" + std::to_string(kRequests) +
        ",\"rows\":" + rows_json(rows) +
        ",\"metrics\":" + registry.snapshot().to_json(/*pretty=*/false) + "}";
    if (!obs::json_valid(body)) {
      std::fprintf(stderr, "bench_codecache: refusing to write invalid JSON\n");
      return 1;
    }
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "bench_codecache: cannot open %s\n",
                   json_path.c_str());
      return 1;
    }
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
