// E4 -- discovery scalability: flooding vs expanding ring vs rendezvous.
//
// Paper (4): "A number of P2P application utilise a 'flooding' mechanism to
// forward messages to maximise reachability. This severely restricts the
// scalability of such approaches ... This issue is of particular importance
// in the context of a Consumer Grid -- where a potentially very large
// number of resources (nodes) may participate."
//
// Setup: N peers in a random ~4-regular overlay on simulated DSL links;
// one target peer holds the wanted advert; 20 random queriers search for
// it. Reported per strategy: network messages per query, success rate, and
// virtual-time latency to the first hit.
//
// Machine-readable output: --json PATH writes a BENCH_discovery.json
// artifact holding every table row; --max-peers N truncates the overlay
// size sweep (CI smoke runs a small N and validates the JSON).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "dsp/stats.hpp"
#include "net/sim_network.hpp"
#include "obs/json.hpp"
#include "p2p/discovery.hpp"

using namespace cg;

namespace {

struct Overlay {
  explicit Overlay(std::size_t n, std::uint64_t seed)
      : net({}, seed), rng(seed) {
    nodes.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      auto& t = net.add_node();
      nodes.push_back(std::make_unique<p2p::PeerNode>(
          t, [this] { return net.now(); },
          p2p::PeerConfig{.peer_id = "p" + std::to_string(i)}));
    }
    // Ring + random chords: connected, mean degree ~4.
    for (std::size_t i = 0; i < n; ++i) {
      link(i, (i + 1) % n);
      link(i, rng.below(n));
    }
  }

  void link(std::size_t a, std::size_t b) {
    if (a == b) return;
    nodes[a]->add_neighbor(nodes[b]->endpoint());
    nodes[b]->add_neighbor(nodes[a]->endpoint());
  }

  net::SimNetwork net;
  dsp::Rng rng;
  std::vector<std::unique_ptr<p2p::PeerNode>> nodes;
};

struct Outcome {
  double msgs_per_query = 0;
  double success_rate = 0;
  double latency_ms = 0;   ///< mean time-to-first-hit among successes
};

constexpr int kQueries = 20;

p2p::Query wanted_query() {
  p2p::Query q;
  q.kind = p2p::AdvertKind::kModule;
  q.name = "rare-module";
  return q;
}

void plant_advert(Overlay& ov, std::size_t target) {
  auto a = ov.nodes[target]->make_module_advert("rare-module", "1.0");
  ov.nodes[target]->publish_local(a);
}

Outcome run_flooding(std::size_t n, int ttl, std::uint64_t seed) {
  Overlay ov(n, seed);
  const std::size_t target = ov.rng.below(n);
  plant_advert(ov, target);

  int successes = 0;
  dsp::RunningStats latency;
  std::uint64_t msgs0 = 0;
  double total_msgs = 0;
  for (int qn = 0; qn < kQueries; ++qn) {
    const std::size_t origin = ov.rng.below(n);
    msgs0 = ov.net.stats().messages_sent;
    const double t0 = ov.net.now();
    bool hit = false;
    double hit_at = 0;
    ov.nodes[origin]->discover_flood(
        wanted_query(), ttl, [&](const std::vector<p2p::Advertisement>&) {
          if (!hit) {
            hit = true;
            hit_at = ov.net.now();
          }
        });
    ov.net.run_all();
    total_msgs += static_cast<double>(ov.net.stats().messages_sent - msgs0);
    if (hit) {
      ++successes;
      latency.add((hit_at - t0) * 1000.0);
    }
  }
  return Outcome{total_msgs / kQueries,
                 static_cast<double>(successes) / kQueries,
                 successes ? latency.mean() : 0.0};
}

Outcome run_expanding_ring(std::size_t n, std::uint64_t seed) {
  Overlay ov(n, seed);
  const std::size_t target = ov.rng.below(n);
  plant_advert(ov, target);

  p2p::ExpandingRingOptions opt;
  opt.initial_ttl = 2;
  opt.max_ttl = 64;
  opt.ring_timeout_s = 2.0;
  auto sched = [&](double d, std::function<void()> fn) {
    ov.net.schedule(d, std::move(fn));
  };

  int successes = 0;
  dsp::RunningStats latency;
  double total_msgs = 0;
  for (int qn = 0; qn < kQueries; ++qn) {
    const std::size_t origin = ov.rng.below(n);
    const std::uint64_t msgs0 = ov.net.stats().messages_sent;
    const double t0 = ov.net.now();
    bool hit = false;
    double hit_at = 0;
    auto search = std::make_shared<p2p::ExpandingRingSearch>(
        *ov.nodes[origin], sched, wanted_query(), opt);
    search->start([&](p2p::SearchResult r) {
      if (!r.adverts.empty()) {
        hit = true;
        hit_at = ov.net.now();
      }
    });
    ov.net.run_all();
    total_msgs += static_cast<double>(ov.net.stats().messages_sent - msgs0);
    if (hit) {
      ++successes;
      latency.add((hit_at - t0) * 1000.0);
    }
  }
  return Outcome{total_msgs / kQueries,
                 static_cast<double>(successes) / kQueries,
                 successes ? latency.mean() : 0.0};
}

Outcome run_rendezvous(std::size_t n, std::uint64_t seed) {
  Overlay ov(n, seed);
  // sqrt(N) rendezvous super-peers, fully meshed among themselves; every
  // edge peer registers with one.
  std::size_t n_rdv = 1;
  while (n_rdv * n_rdv < n) ++n_rdv;
  for (std::size_t r = 0; r < n_rdv; ++r) {
    ov.nodes[r]->set_rendezvous_role(true);
    for (std::size_t s = 0; s < n_rdv; ++s) {
      if (r != s) ov.nodes[r]->add_rendezvous(ov.nodes[s]->endpoint());
    }
  }
  for (std::size_t i = n_rdv; i < n; ++i) {
    ov.nodes[i]->add_rendezvous(ov.nodes[i % n_rdv]->endpoint());
  }

  const std::size_t target = n_rdv + ov.rng.below(n - n_rdv);
  auto advert = ov.nodes[target]->make_module_advert("rare-module", "1.0");
  ov.nodes[target]->publish_local(advert);
  ov.nodes[target]->publish_to(ov.nodes[target]->rendezvous().front(),
                               {advert});
  ov.net.run_all();
  const std::uint64_t publish_msgs = ov.net.stats().messages_sent;

  int successes = 0;
  dsp::RunningStats latency;
  double total_msgs = 0;
  for (int qn = 0; qn < kQueries; ++qn) {
    const std::size_t origin = n_rdv + ov.rng.below(n - n_rdv);
    const std::uint64_t msgs0 = ov.net.stats().messages_sent;
    const double t0 = ov.net.now();
    bool hit = false;
    double hit_at = 0;
    ov.nodes[origin]->discover_rendezvous(
        wanted_query(), [&](const std::vector<p2p::Advertisement>&) {
          if (!hit) {
            hit = true;
            hit_at = ov.net.now();
          }
        });
    ov.net.run_all();
    total_msgs += static_cast<double>(ov.net.stats().messages_sent - msgs0);
    if (hit) {
      ++successes;
      latency.add((hit_at - t0) * 1000.0);
    }
  }
  return Outcome{(total_msgs + static_cast<double>(publish_msgs)) / kQueries,
                 static_cast<double>(successes) / kQueries,
                 successes ? latency.mean() : 0.0};
}

struct NamedRow {
  std::string strategy;
  std::size_t peers = 0;
  Outcome o;
};

void print_row(const char* strategy, std::size_t n, const Outcome& o) {
  std::printf("%-18s %-8zu %-14.1f %-10.2f %-12.1f\n", strategy, n,
              o.msgs_per_query, o.success_rate, o.latency_ms);
}

std::string rows_json(const std::vector<NamedRow>& rows) {
  std::string out = "[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const NamedRow& r = rows[i];
    if (i) out += ',';
    out += "{\"strategy\":" + obs::json_quote(r.strategy);
    out += ",\"peers\":" + std::to_string(r.peers);
    out += ",\"msgs_per_query\":" + obs::json_number(r.o.msgs_per_query);
    out += ",\"success_rate\":" + obs::json_number(r.o.success_rate);
    out += ",\"latency_ms\":" + obs::json_number(r.o.latency_ms);
    out += "}";
  }
  out += "]";
  return out;
}

bool write_json(const std::string& path, const std::string& body) {
  if (!obs::json_valid(body)) {
    std::fprintf(stderr, "bench_discovery: refusing to write invalid JSON\n");
    return false;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "bench_discovery: cannot open %s\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::size_t max_peers = 4096;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--max-peers") == 0 && i + 1 < argc) {
      max_peers = static_cast<std::size_t>(std::atoll(argv[++i]));
      if (max_peers == 0) {
        std::fprintf(stderr, "bench_discovery: bad --max-peers value\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: bench_discovery [--max-peers N] [--json PATH]\n");
      return 2;
    }
  }

  std::printf("E4: discovery scalability (paper section 4)\n");
  std::printf("random ~4-regular overlay, DSL links, %d queries per point\n\n",
              kQueries);
  std::printf("%-18s %-8s %-14s %-10s %-12s\n", "strategy", "peers",
              "msgs/query", "success", "latency ms");

  std::vector<NamedRow> rows;
  auto record = [&](const char* strategy, std::size_t n, Outcome o) {
    print_row(strategy, n, o);
    rows.push_back({strategy, n, o});
  };
  for (std::size_t n : {64u, 256u, 1024u, 4096u}) {
    if (n > max_peers) continue;
    record("flooding ttl=64", n, run_flooding(n, 64, 7));
    record("flooding ttl=6", n, run_flooding(n, 6, 7));
    record("expanding ring", n, run_expanding_ring(n, 7));
    record("rendezvous", n, run_rendezvous(n, 7));
    std::printf("\n");
  }
  std::printf(
      "Shape check (paper): unbounded flooding costs O(edges) messages per "
      "query and grows linearly with N ('severely restricts the "
      "scalability'); bounded TTL is cheap but misses; the expanding ring "
      "pays only for the distance it needs; rendezvous answers in O(1) "
      "messages independent of N.\n");

  if (!json_path.empty()) {
    const std::string body = "{\"bench\":\"discovery\",\"queries\":" +
                             std::to_string(kQueries) +
                             ",\"rows\":" + rows_json(rows) + "}";
    if (!write_json(json_path, body)) return 1;
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
