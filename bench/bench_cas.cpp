// E11 -- content-addressed artifact store: cold vs warm deploys and
// cross-run pure-unit memoization.
//
// Paper (3.3): dynamic download of code "allows the peer to only host code
// that is necessary". The CAS layer (DESIGN.md 4f) extends that idea across
// restarts: deploys advertise content digests, so a peer that already holds
// the advertised bytes -- in its module cache, its disk-backed store, or
// under another name -- starts the job without touching the network, and
// kPure unit firings recorded in the store replay instead of recomputing.
//
// Phases (rows keyed by "phase"):
//   cold       first deploy to workers with empty stores; pays the fetch
//   warm       same deploy after a simulated restart (new services, same
//              store directories); score = fetch-byte reduction vs cold
//   memo_cold  first run of a pure pipeline with memoization on
//   memo_warm  re-run after restart; score = % of memoizable firings
//              replayed from the store (100 = zero recomputation)
//
// The gate (scripts/bench_compare.py --key phase --metric score) checks the
// warm row's reduction factor and the memo_warm row's replay rate against
// bench/baselines/cas.json. The obs snapshot embedded in the JSON carries
// the per-phase runtime.memo_misses counters, so "zero recomputations" is
// verifiable from the artifact alone.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cas/store.hpp"
#include "core/service/service.hpp"
#include "core/unit/builtin.hpp"
#include "net/sim_network.hpp"
#include "obs/obs.hpp"

using namespace cg;
using namespace cg::core;

namespace {

constexpr std::size_t kModuleBytes = 256 * 1024;
constexpr int kIterations = 32;

UnitRegistry& reg() {
  static UnitRegistry r = UnitRegistry::with_builtins();
  return r;
}

/// One controller + N workers, fully meshed over a simulated network.
/// Mirrors the integration-test fixture; each worker gets its own
/// ContentStore so per-peer hit counters stay meaningful.
struct Grid {
  Grid(std::size_t n_workers, obs::Registry& registry,
       const std::string& phase, std::vector<cas::ContentStore*> stores,
       bool memoize) {
    auto clock = [this] { return net.now(); };
    auto sched = [this](double d, std::function<void()> fn) {
      net.schedule(d, std::move(fn));
    };
    ServiceConfig home_cfg;
    home_cfg.peer_id = "home";
    home = std::make_unique<TrianaService>(net.add_node(), clock, sched,
                                           reg(), home_cfg);
    for (std::size_t i = 0; i < n_workers; ++i) {
      ServiceConfig cfg;
      cfg.peer_id = "worker-" + std::to_string(i);
      cfg.cas = i < stores.size() ? stores[i] : nullptr;
      cfg.memoize_pure_units = memoize;
      workers.push_back(std::make_unique<TrianaService>(
          net.add_node(), clock, sched, reg(), cfg));
      workers.back()->set_obs(registry, nullptr,
                              phase + "." + cfg.peer_id);
    }
    std::vector<TrianaService*> all{home.get()};
    for (auto& w : workers) all.push_back(w.get());
    for (auto* a : all) {
      for (auto* b : all) {
        if (a != b) a->node().add_neighbor(b->endpoint());
      }
      a->announce();
    }
  }

  /// Deploy `g` to every worker and run the network to quiescence.
  /// Returns the job ids, one per worker.
  std::vector<std::string> deploy_all(const TaskGraph& g, int iterations) {
    std::vector<std::string> ids;
    for (auto& w : workers) {
      ids.push_back(home->deploy_remote(
          w->endpoint(), g, iterations, [](const DeployAckMsg& a) {
            if (!a.ok) {
              std::fprintf(stderr, "bench_cas: deploy failed: %s\n",
                           a.error.c_str());
              std::exit(1);
            }
          }));
    }
    net.run_all();
    return ids;
  }

  net::SimNetwork net{net::LinkParams{}, 1};
  std::unique_ptr<TrianaService> home;
  std::vector<std::unique_ptr<TrianaService>> workers;
};

TaskGraph pure_pipeline() {
  TaskGraph g("e11");
  g.add_task("Wave", "Wave");
  g.add_task("FFT", "FFT");
  g.add_task("Peak", "SpectrumPeak");
  g.add_task("Sink", "NullSink");
  g.connect("Wave", 0, "FFT", 0);
  g.connect("FFT", 0, "Peak", 0);
  g.connect("Peak", 0, "Sink", 0);
  return g;
}

struct Row {
  std::string phase;
  std::uint64_t fetch_bytes = 0;     ///< code bytes received off the network
  std::uint64_t modules_fetched = 0;
  std::uint64_t modules_from_cas = 0;
  std::uint64_t firings = 0;
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
  double elapsed_ms = 0;  ///< wall clock, workload execution only
  double score = 0;       ///< gated: see header comment
};

std::string rows_json(const std::vector<Row>& rows) {
  std::string out = "[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    if (i) out += ',';
    out += "{\"phase\":\"" + r.phase + "\"";
    out += ",\"fetch_bytes\":" + std::to_string(r.fetch_bytes);
    out += ",\"modules_fetched\":" + std::to_string(r.modules_fetched);
    out += ",\"modules_from_cas\":" + std::to_string(r.modules_from_cas);
    out += ",\"firings\":" + std::to_string(r.firings);
    out += ",\"memo_hits\":" + std::to_string(r.memo_hits);
    out += ",\"memo_misses\":" + std::to_string(r.memo_misses);
    out += ",\"elapsed_ms\":" + obs::json_number(r.elapsed_ms);
    out += ",\"score\":" + obs::json_number(r.score);
    out += "}";
  }
  out += "]";
  return out;
}

/// Run one deploy phase: workers with disk stores rooted at
/// `root`/worker-<i>, deploy the pipeline everywhere, collect transfer and
/// memo counters.
Row run_phase(const std::string& phase, const std::filesystem::path& root,
              std::size_t n_workers, obs::Registry& registry, bool memoize) {
  std::vector<std::unique_ptr<cas::ContentStore>> stores;
  std::vector<cas::ContentStore*> ptrs;
  for (std::size_t i = 0; i < n_workers; ++i) {
    cas::CasConfig c;
    c.dir = (root / ("worker-" + std::to_string(i))).string();
    stores.push_back(std::make_unique<cas::ContentStore>(c));
    ptrs.push_back(stores.back().get());
  }

  Grid grid(n_workers, registry, phase, ptrs, memoize);
  const TaskGraph g = pure_pipeline();
  grid.home->publish_graph_modules(g, kModuleBytes);

  const auto t0 = std::chrono::steady_clock::now();
  const auto job_ids = grid.deploy_all(g, kIterations);
  const auto t1 = std::chrono::steady_clock::now();

  Row row;
  row.phase = phase;
  row.elapsed_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  for (std::size_t i = 0; i < n_workers; ++i) {
    auto& w = *grid.workers[i];
    row.fetch_bytes += w.code().stats().bytes_received;
    row.modules_fetched += w.stats().modules_fetched;
    // Store-satisfied modules arrive two ways: the module cache's
    // backing-store fallback (same name) and the service's digest lookup
    // (any name). Both are network bytes not fetched.
    row.modules_from_cas += w.stats().modules_from_cas +
                            w.module_cache().stats().backing_hits;
    if (auto* rt = w.job_runtime(job_ids[i])) {
      row.firings += rt->stats().firings;
      row.memo_hits += rt->memo_hits();
      row.memo_misses += rt->memo_misses();
    }
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_cas [--json PATH]\n");
      return 2;
    }
  }

  namespace fs = std::filesystem;
  const fs::path root = fs::temp_directory_path() / "congrid_bench_cas";
  fs::remove_all(root);

  std::printf("E11: content-addressed deploys and pure-unit memoization\n");
  std::printf("pipeline Wave->FFT->SpectrumPeak->NullSink, %zu kB/module, "
              "%d iterations\n\n",
              kModuleBytes / 1024, kIterations);

  obs::Registry registry;
  std::vector<Row> rows;

  // Deploy phases: 2 workers, memoization off -- isolate code transfer.
  const fs::path deploy_root = root / "deploy";
  Row cold = run_phase("cold", deploy_root, 2, registry, false);
  cold.score = 1.0;
  rows.push_back(cold);

  // "Restart": everything in memory is gone, the store directories remain.
  Row warm = run_phase("warm", deploy_root, 2, registry, false);
  warm.score = static_cast<double>(cold.fetch_bytes + 1) /
               static_cast<double>(warm.fetch_bytes + 1);
  rows.push_back(warm);

  // Memoization phases: 1 worker, memoization on, separate store.
  const fs::path memo_root = root / "memo";
  Row memo_cold = run_phase("memo_cold", memo_root, 1, registry, true);
  memo_cold.score = 1.0;
  rows.push_back(memo_cold);

  Row memo_warm = run_phase("memo_warm", memo_root, 1, registry, true);
  const auto memoizable = memo_warm.memo_hits + memo_warm.memo_misses;
  memo_warm.score = memoizable == 0
                        ? 0.0
                        : 100.0 * static_cast<double>(memo_warm.memo_hits) /
                              static_cast<double>(memoizable);
  rows.push_back(memo_warm);

  std::printf("%-10s %-12s %-9s %-9s %-9s %-7s %-7s %-10s %s\n", "phase",
              "fetch B", "fetched", "from-cas", "firings", "hits", "miss",
              "wall ms", "score");
  for (const Row& r : rows) {
    std::printf("%-10s %-12llu %-9llu %-9llu %-9llu %-7llu %-7llu %-10.2f "
                "%.1f\n",
                r.phase.c_str(),
                static_cast<unsigned long long>(r.fetch_bytes),
                static_cast<unsigned long long>(r.modules_fetched),
                static_cast<unsigned long long>(r.modules_from_cas),
                static_cast<unsigned long long>(r.firings),
                static_cast<unsigned long long>(r.memo_hits),
                static_cast<unsigned long long>(r.memo_misses), r.elapsed_ms,
                r.score);
  }
  std::printf(
      "\nShape check: the warm restart resolves every module from the disk "
      "tier (fetch B = 0, score = fetch-byte reduction factor); the "
      "memoized re-run replays every pure firing from the store "
      "(miss = 0, score = 100).\n");

  int rc = 0;
  if (warm.fetch_bytes != 0) {
    std::fprintf(stderr, "bench_cas: warm restart still fetched %llu bytes\n",
                 static_cast<unsigned long long>(warm.fetch_bytes));
    rc = 1;
  }
  if (memo_warm.memo_misses != 0) {
    std::fprintf(stderr, "bench_cas: memoized re-run recomputed %llu "
                 "firings\n",
                 static_cast<unsigned long long>(memo_warm.memo_misses));
    rc = 1;
  }

  if (!json_path.empty()) {
    const std::string body =
        "{\"bench\":\"cas\",\"iterations\":" + std::to_string(kIterations) +
        ",\"rows\":" + rows_json(rows) +
        ",\"metrics\":" + registry.snapshot().to_json(/*pretty=*/false) + "}";
    if (!obs::json_valid(body)) {
      std::fprintf(stderr, "bench_cas: refusing to write invalid JSON\n");
      fs::remove_all(root);
      return 1;
    }
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "bench_cas: cannot open %s\n", json_path.c_str());
      fs::remove_all(root);
      return 1;
    }
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  fs::remove_all(root);
  return rc;
}
