// E3 -- reproduce Case 2 (3.6.2): how many PCs keep the inspiral search
// real-time, and how churn inflates that number on a consumer grid.
//
// Paper numbers reproduced: 7.2 MB chunks (900 s at 2 kS/s, 4 B/sample);
// "This process takes about 5 hours on a 2 GHz PC"; "Therefore, 20 PC's
// would need to be employed full-time to keep up with the data. Within a
// Consumer Grid scenario the number of PCs would need to be increased due
// to various types of downtime".
//
// Part (a) checks the dedicated-PC arithmetic against a measured per-
// template filtering rate (scaled by the cost model). Part (b) samples
// volunteer availability traces and reports the peer multiplier for each
// availability model. Part (d) runs the template-bank scan as a TaskGraph
// through the engine's deterministic wave scheduler, swept over --threads;
// every row must produce a bit-identical SNR digest or the bench fails.
//
// Machine-readable output: --json PATH writes the part (d) rows plus the
// obs metrics snapshot; CI's bench-smoke job gates row throughput against
// bench/baselines/inspiral.json via scripts/bench_compare.py.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/gw/search.hpp"
#include "apps/gw/units.hpp"
#include "churn/availability.hpp"
#include "core/engine/runtime.hpp"
#include "core/unit/builtin.hpp"
#include "dsp/stats.hpp"
#include "net/sim_network.hpp"
#include "obs/obs.hpp"
#include "rm/batch_queue.hpp"

using namespace cg;

namespace {

// -- (d) wave-scheduler sweep over the engine ------------------------------

struct WaveRow {
  unsigned threads = 0;
  double seconds = 0;
  double throughput = 0;  ///< template-chunk scans per second
  double speedup = 0;     ///< vs the threads=0 serial loop
  double checksum = 0;    ///< SNR digest; must match across rows
};

/// Case 2 as a TaskGraph: one strain source scanned by `slices` template-
/// bank slices (4 templates each), best-SNR and hit counts into per-slice
/// stat sinks. The wide filter wave is what the scheduler spreads.
core::TaskGraph wave_graph(int slices, int samples) {
  core::TaskGraph g("inspiral_wave");
  core::ParamSet sp;
  sp.set_int("samples", samples);
  sp.set_int("inject_every", 2);
  g.add_task("Strain", "StrainSource", sp);
  for (int s = 0; s < slices; ++s) {
    const std::string n = std::to_string(s);
    core::ParamSet fp;
    fp.set_int("n_templates", slices * 4);
    fp.set_int("first", s * 4);
    fp.set_int("count", 4);
    g.add_task("Filter" + n, "InspiralFilter", fp);
    g.add_task("Snr" + n, "StatSink");
    g.add_task("Hits" + n, "StatSink");
    g.connect("Strain", 0, "Filter" + n, 0);
    g.connect("Filter" + n, 0, "Snr" + n, 0);
    g.connect("Filter" + n, 1, "Hits" + n, 0);
  }
  return g;
}

WaveRow run_wave(const core::TaskGraph& g, const core::UnitRegistry& reg,
                 unsigned threads, int slices, int ticks,
                 obs::Registry& registry) {
  core::GraphRuntime rt(
      g, reg, core::RuntimeOptions{.rng_seed = 17, .max_threads = threads});
  rt.set_obs(registry, "t" + std::to_string(threads));
  const auto t0 = std::chrono::steady_clock::now();
  rt.run(static_cast<std::uint64_t>(ticks));
  WaveRow row;
  row.threads = threads;
  row.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  row.throughput = static_cast<double>(slices) * 4 * ticks / row.seconds;
  for (int s = 0; s < slices; ++s) {
    const std::string n = std::to_string(s);
    const auto& snr = rt.unit_as<core::StatSinkUnit>("Snr" + n)->stats();
    const auto& hits = rt.unit_as<core::StatSinkUnit>("Hits" + n)->stats();
    row.checksum += snr.mean() + snr.max() +
                    static_cast<double>(snr.count()) + hits.mean();
  }
  return row;
}

std::string rows_json(const std::vector<WaveRow>& rows) {
  std::string out = "[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const WaveRow& r = rows[i];
    if (i) out += ',';
    out += "{\"threads\":" + std::to_string(r.threads);
    out += ",\"seconds\":" + obs::json_number(r.seconds);
    out += ",\"throughput\":" + obs::json_number(r.throughput);
    out += ",\"speedup\":" + obs::json_number(r.speedup);
    out += ",\"checksum\":" + obs::json_number(r.checksum);
    out += "}";
  }
  out += "]";
  return out;
}

bool write_json(const std::string& path, const std::string& body) {
  if (!obs::json_valid(body)) {
    std::fprintf(stderr, "bench_inspiral: refusing to write invalid JSON\n");
    return false;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "bench_inspiral: cannot open %s\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

std::vector<unsigned> parse_threads(const char* arg) {
  std::vector<unsigned> out;
  for (const char* p = arg; *p;) {
    out.push_back(static_cast<unsigned>(std::strtoul(p, nullptr, 10)));
    const char* comma = std::strchr(p, ',');
    if (!comma) break;
    p = comma + 1;
  }
  return out;
}

/// Part (d): wave-scheduler sweep. Returns false on a determinism
/// violation or JSON write failure.
bool run_wave_section(const std::vector<unsigned>& threads, int samples,
                      int ticks, const std::string& json_path) {
  const int slices = 8;
  std::printf("\n(d) wave scheduler: %d bank slices x 4 templates, %d "
              "samples, %d chunks (deterministic -- every row must produce "
              "the same SNR digest)\n",
              slices, samples, ticks);
  std::printf("%-8s %-12s %-14s %-10s %-18s\n", "threads", "seconds",
              "scans/s", "speedup", "checksum");

  core::UnitRegistry reg = core::UnitRegistry::with_builtins();
  gw::register_gw_units(reg);
  const core::TaskGraph g = wave_graph(slices, samples);
  obs::Registry registry;
  std::vector<WaveRow> rows;
  for (unsigned t : threads) {
    WaveRow row = run_wave(g, reg, t, slices, ticks, registry);
    row.speedup = rows.empty() ? 1.0 : rows[0].seconds / row.seconds;
    rows.push_back(row);
    std::printf("%-8u %-12.3f %-14.1f %-10.2f %-18.6f\n", row.threads,
                row.seconds, row.throughput, row.speedup, row.checksum);
    if (row.checksum != rows[0].checksum) {
      std::fprintf(stderr,
                   "bench_inspiral: DETERMINISM VIOLATION -- checksum at "
                   "%u threads differs from the serial row\n",
                   row.threads);
      return false;
    }
  }
  std::printf("\nShape check: identical digests row-for-row; the filter "
              "wave is %d wide, so speedup tracks min(threads, cores).\n",
              slices);

  if (!json_path.empty()) {
    const std::string body =
        "{\"bench\":\"inspiral\",\"slices\":" + std::to_string(slices) +
        ",\"samples\":" + std::to_string(samples) +
        ",\"chunks\":" + std::to_string(ticks) +
        ",\"rows\":" + rows_json(rows) +
        ",\"metrics\":" + registry.snapshot().to_json(/*pretty=*/false) + "}";
    if (!write_json(json_path, body)) return false;
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<unsigned> threads = {0, 1, 2, 4};
  std::string json_path;
  int wave_samples = 2048;
  int wave_ticks = 6;
  bool only_wave = false;  // CI smoke: skip the capacity/churn sections
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = parse_threads(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--samples") == 0 && i + 1 < argc) {
      wave_samples = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--chunks") == 0 && i + 1 < argc) {
      wave_ticks = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--only-wave") == 0) {
      only_wave = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_inspiral [--threads 0,1,2,4] [--samples N] "
                   "[--chunks N] [--only-wave] [--json PATH]\n");
      return 2;
    }
  }
  if (threads.empty() || threads[0] != 0) {
    threads.insert(threads.begin(), 0);  // serial row anchors the speedup
  }
  if (wave_samples <= 0 || wave_ticks <= 0) {
    std::fprintf(stderr, "bench_inspiral: bad --samples/--chunks value\n");
    return 2;
  }
  if (only_wave) {
    std::printf("E3: inspiral search capacity (paper Case 2)\n");
    return run_wave_section(threads, wave_samples, wave_ticks, json_path)
               ? 0
               : 1;
  }
  gw::DetectorSpec det;
  gw::CostModel cost;

  std::printf("E3: inspiral search capacity (paper Case 2)\n\n");
  std::printf("chunk: %.0f s at %.0f S/s = %zu samples = %.1f MB (paper: "
              "7.2 MB)\n\n",
              det.chunk_seconds, det.sample_rate_hz, det.samples_per_chunk(),
              static_cast<double>(det.chunk_bytes()) / 1e6);

  // -- (a) dedicated-PC arithmetic -----------------------------------------
  std::printf("(a) dedicated 2 GHz PCs for real time\n");
  std::printf("%-12s %-18s %-14s\n", "templates", "hours per chunk",
              "PCs needed");
  for (std::size_t bank : {5000u, 7500u, 10000u}) {
    std::printf("%-12zu %-18.1f %-14.1f\n", bank,
                cost.chunk_seconds(bank, det.samples_per_chunk(), 2000.0) /
                    3600.0,
                cost.pcs_for_realtime(bank, det.chunk_seconds,
                                      det.samples_per_chunk(), 2000.0));
  }
  std::printf("(paper: ~5 h and 20 PCs at the 5,000-10,000 template "
              "midpoint)\n\n");

  // Measured anchor: filter a reduced chunk against a reduced bank for
  // real and scale by the model's linearity.
  {
    gw::BankSpec spec;
    spec.n_templates = 16;
    spec.f_low_hz = 150.0;
    gw::TemplateBank bank(spec);
    dsp::Rng rng(3);
    const std::size_t n = 1 << 17;  // 65.5 s of data
    auto data = gw::make_strain_chunk(det, rng, nullptr, 0, 0, n);
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = gw::scan_chunk(data, bank, 0, bank.size());
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const double per_template_full =
        secs / static_cast<double>(r.templates_scanned) *
        (static_cast<double>(det.samples_per_chunk()) / static_cast<double>(n));
    std::printf("measured on this host: %.3f s for %zu templates x %zu "
                "samples -> %.2f s/template at full chunk size\n",
                secs, r.templates_scanned, n, per_template_full);
    std::printf("(model uses 2.4 s/template for a 2003-era 2 GHz PC)\n\n");
  }

  // -- (b) consumer-grid inflation under churn ------------------------------
  std::printf("(b) volunteer peers needed (1-week traces, 200 peers "
              "sampled, 7500 templates)\n");
  std::printf("%-26s %-14s %-16s %-12s\n", "availability model",
              "avail frac", "chunks/peer/wk", "peers needed");

  const double week = 7 * 86400.0;
  const double chunk_cpu_s =
      cost.chunk_seconds(7500, det.samples_per_chunk(), 2000.0);
  const double chunks_arriving = week / det.chunk_seconds;
  const double dedicated =
      cost.pcs_for_realtime(7500, det.chunk_seconds, det.samples_per_chunk(),
                            2000.0);

  struct Row {
    const char* name;
    const churn::AvailabilityModel* model;
  };
  churn::AlwaysOnModel always;
  churn::PoissonChurnModel dsl(4 * 3600.0, 1800.0);  // drops + returns
  churn::DiurnalIdleModel screensaver;
  const Row rows[] = {{"dedicated (always on)", &always},
                      {"DSL churn (4h up/30m down)", &dsl},
                      {"screensaver harvesting", &screensaver}};

  dsp::Rng rng(99);
  for (const Row& row : rows) {
    dsp::RunningStats frac, chunks;
    for (int p = 0; p < 200; ++p) {
      const auto trace = row.model->sample(week, rng);
      frac.add(churn::availability_fraction(trace, week));
      chunks.add(static_cast<double>(
          churn::completed_tasks(trace, week, chunk_cpu_s)));
    }
    const double peers_needed =
        chunks.mean() > 0 ? chunks_arriving / chunks.mean() : 0.0;
    std::printf("%-26s %-14.2f %-16.1f %-12.0f\n", row.name, frac.mean(),
                chunks.mean(), peers_needed);
  }
  // -- (c) organisation cluster via the GRAM gateway model ------------------
  // The paper's alternative substrate: "nodes which host parallel machines
  // or workstations clusters" behind a batch scheduler. Same aggregate
  // capacity as the dedicated-PC fleet, but each chunk pays queueing.
  std::printf("\n(c) 200 chunks through a 20-slot cluster (GRAM batch "
              "gateway) vs 20 dedicated peers\n");
  std::printf("%-34s %-16s %-18s\n", "substrate", "makespan (d)",
              "mean chunk latency");
  for (double overhead : {0.0, 300.0, 3600.0}) {
    net::SimNetwork sim({}, 1);
    rm::BatchQueueOptions opt;
    opt.slots = 20;
    opt.mean_queue_overhead_s = overhead;
    rm::SimBatchQueue queue(
        [&sim](double d, std::function<void()> fn) {
          sim.schedule(d, std::move(fn));
        },
        [&sim] { return sim.now(); }, opt, 11);
    dsp::RunningStats latency;
    double makespan = 0;
    for (int c = 0; c < 200; ++c) {
      const double submitted = 0.0;
      queue.submit(chunk_cpu_s, [&, submitted] {
        latency.add(sim.now() - submitted);
        makespan = std::max(makespan, sim.now());
      });
    }
    sim.run_all();
    char label[64];
    std::snprintf(label, sizeof(label),
                  overhead == 0.0 ? "cluster, no queue overhead"
                                  : "cluster, %.0f s mean queue overhead",
                  overhead);
    std::printf("%-34s %-16.1f %-18.1f h\n", label, makespan / 86400.0,
                latency.mean() / 3600.0);
  }
  std::printf("(20 ideal dedicated peers: %.1f d -- the cluster matches "
              "throughput; GRAM overhead only adds per-chunk latency, which "
              "the paper notes 'is not important' for this search)\n",
              200.0 * chunk_cpu_s / 20.0 / 86400.0);

  std::printf("\nShape check (paper): ~%.0f dedicated PCs; consumer peers "
              "require a multiple of that as availability drops -- 'the "
              "number of PCs would need to be increased due to various "
              "types of downtime'. Latency tolerance makes this viable: "
              "'it can lag behind by several hours if necessary'.\n",
              dedicated);
  return run_wave_section(threads, wave_samples, wave_ticks, json_path) ? 0
                                                                        : 1;
}
