// E3 -- reproduce Case 2 (3.6.2): how many PCs keep the inspiral search
// real-time, and how churn inflates that number on a consumer grid.
//
// Paper numbers reproduced: 7.2 MB chunks (900 s at 2 kS/s, 4 B/sample);
// "This process takes about 5 hours on a 2 GHz PC"; "Therefore, 20 PC's
// would need to be employed full-time to keep up with the data. Within a
// Consumer Grid scenario the number of PCs would need to be increased due
// to various types of downtime".
//
// Part (a) checks the dedicated-PC arithmetic against a measured per-
// template filtering rate (scaled by the cost model). Part (b) samples
// volunteer availability traces and reports the peer multiplier for each
// availability model.
#include <chrono>
#include <cstdio>

#include "apps/gw/search.hpp"
#include "churn/availability.hpp"
#include "dsp/stats.hpp"
#include "net/sim_network.hpp"
#include "rm/batch_queue.hpp"

using namespace cg;

int main() {
  gw::DetectorSpec det;
  gw::CostModel cost;

  std::printf("E3: inspiral search capacity (paper Case 2)\n\n");
  std::printf("chunk: %.0f s at %.0f S/s = %zu samples = %.1f MB (paper: "
              "7.2 MB)\n\n",
              det.chunk_seconds, det.sample_rate_hz, det.samples_per_chunk(),
              static_cast<double>(det.chunk_bytes()) / 1e6);

  // -- (a) dedicated-PC arithmetic -----------------------------------------
  std::printf("(a) dedicated 2 GHz PCs for real time\n");
  std::printf("%-12s %-18s %-14s\n", "templates", "hours per chunk",
              "PCs needed");
  for (std::size_t bank : {5000u, 7500u, 10000u}) {
    std::printf("%-12zu %-18.1f %-14.1f\n", bank,
                cost.chunk_seconds(bank, det.samples_per_chunk(), 2000.0) /
                    3600.0,
                cost.pcs_for_realtime(bank, det.chunk_seconds,
                                      det.samples_per_chunk(), 2000.0));
  }
  std::printf("(paper: ~5 h and 20 PCs at the 5,000-10,000 template "
              "midpoint)\n\n");

  // Measured anchor: filter a reduced chunk against a reduced bank for
  // real and scale by the model's linearity.
  {
    gw::BankSpec spec;
    spec.n_templates = 16;
    spec.f_low_hz = 150.0;
    gw::TemplateBank bank(spec);
    dsp::Rng rng(3);
    const std::size_t n = 1 << 17;  // 65.5 s of data
    auto data = gw::make_strain_chunk(det, rng, nullptr, 0, 0, n);
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = gw::scan_chunk(data, bank, 0, bank.size());
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const double per_template_full =
        secs / static_cast<double>(r.templates_scanned) *
        (static_cast<double>(det.samples_per_chunk()) / static_cast<double>(n));
    std::printf("measured on this host: %.3f s for %zu templates x %zu "
                "samples -> %.2f s/template at full chunk size\n",
                secs, r.templates_scanned, n, per_template_full);
    std::printf("(model uses 2.4 s/template for a 2003-era 2 GHz PC)\n\n");
  }

  // -- (b) consumer-grid inflation under churn ------------------------------
  std::printf("(b) volunteer peers needed (1-week traces, 200 peers "
              "sampled, 7500 templates)\n");
  std::printf("%-26s %-14s %-16s %-12s\n", "availability model",
              "avail frac", "chunks/peer/wk", "peers needed");

  const double week = 7 * 86400.0;
  const double chunk_cpu_s =
      cost.chunk_seconds(7500, det.samples_per_chunk(), 2000.0);
  const double chunks_arriving = week / det.chunk_seconds;
  const double dedicated =
      cost.pcs_for_realtime(7500, det.chunk_seconds, det.samples_per_chunk(),
                            2000.0);

  struct Row {
    const char* name;
    const churn::AvailabilityModel* model;
  };
  churn::AlwaysOnModel always;
  churn::PoissonChurnModel dsl(4 * 3600.0, 1800.0);  // drops + returns
  churn::DiurnalIdleModel screensaver;
  const Row rows[] = {{"dedicated (always on)", &always},
                      {"DSL churn (4h up/30m down)", &dsl},
                      {"screensaver harvesting", &screensaver}};

  dsp::Rng rng(99);
  for (const Row& row : rows) {
    dsp::RunningStats frac, chunks;
    for (int p = 0; p < 200; ++p) {
      const auto trace = row.model->sample(week, rng);
      frac.add(churn::availability_fraction(trace, week));
      chunks.add(static_cast<double>(
          churn::completed_tasks(trace, week, chunk_cpu_s)));
    }
    const double peers_needed =
        chunks.mean() > 0 ? chunks_arriving / chunks.mean() : 0.0;
    std::printf("%-26s %-14.2f %-16.1f %-12.0f\n", row.name, frac.mean(),
                chunks.mean(), peers_needed);
  }
  // -- (c) organisation cluster via the GRAM gateway model ------------------
  // The paper's alternative substrate: "nodes which host parallel machines
  // or workstations clusters" behind a batch scheduler. Same aggregate
  // capacity as the dedicated-PC fleet, but each chunk pays queueing.
  std::printf("\n(c) 200 chunks through a 20-slot cluster (GRAM batch "
              "gateway) vs 20 dedicated peers\n");
  std::printf("%-34s %-16s %-18s\n", "substrate", "makespan (d)",
              "mean chunk latency");
  for (double overhead : {0.0, 300.0, 3600.0}) {
    net::SimNetwork sim({}, 1);
    rm::BatchQueueOptions opt;
    opt.slots = 20;
    opt.mean_queue_overhead_s = overhead;
    rm::SimBatchQueue queue(
        [&sim](double d, std::function<void()> fn) {
          sim.schedule(d, std::move(fn));
        },
        [&sim] { return sim.now(); }, opt, 11);
    dsp::RunningStats latency;
    double makespan = 0;
    for (int c = 0; c < 200; ++c) {
      const double submitted = 0.0;
      queue.submit(chunk_cpu_s, [&, submitted] {
        latency.add(sim.now() - submitted);
        makespan = std::max(makespan, sim.now());
      });
    }
    sim.run_all();
    char label[64];
    std::snprintf(label, sizeof(label),
                  overhead == 0.0 ? "cluster, no queue overhead"
                                  : "cluster, %.0f s mean queue overhead",
                  overhead);
    std::printf("%-34s %-16.1f %-18.1f h\n", label, makespan / 86400.0,
                latency.mean() / 3600.0);
  }
  std::printf("(20 ideal dedicated peers: %.1f d -- the cluster matches "
              "throughput; GRAM overhead only adds per-chunk latency, which "
              "the paper notes 'is not important' for this search)\n",
              200.0 * chunk_cpu_s / 20.0 / 86400.0);

  std::printf("\nShape check (paper): ~%.0f dedicated PCs; consumer peers "
              "require a multiple of that as availability drops -- 'the "
              "number of PCs would need to be increased due to various "
              "types of downtime'. Latency tolerance makes this viable: "
              "'it can lag behind by several hours if necessary'.\n",
              dedicated);
  return 0;
}
