// E8 -- checkpointing and migration under volunteer churn.
//
// Paper (3.6.2): "A check-pointing mechanism may also be employed to
// migrate computation if necessary." Two parts:
//
//   (a) throughput: long tasks (a 7,500-template chunk = 5 h of CPU) on
//       screensaver-harvested peers lose all partial work when the user
//       returns; sweeping the checkpoint period shows how much of the lost
//       work checkpointing salvages (the E3 inflation factor shrinks);
//   (b) mechanics: size and capture cost of a real GraphRuntime checkpoint
//       (the state that actually crosses the network on migration), plus a
//       live migrate on the service stack preserving AccumStat state.
#include <chrono>
#include <cstdio>

#include "churn/availability.hpp"
#include "core/service/controller.hpp"
#include "core/service/supervisor.hpp"
#include "core/unit/builtin.hpp"
#include "dsp/stats.hpp"
#include "net/sim_network.hpp"

using namespace cg;

namespace {

core::TaskGraph accum_graph() {
  core::TaskGraph g("accum");
  core::ParamSet wp;
  wp.set_int("samples", 2048);
  g.add_task("Wave", "Wave", wp);
  core::ParamSet np;
  np.set_double("stddev", 1.0);
  g.add_task("Gaussian", "Gaussian", np);
  g.add_task("FFT", "FFT");
  g.add_task("AccumStat", "AccumStat");
  g.add_task("Grapher", "Grapher");
  g.connect("Wave", 0, "Gaussian", 0);
  g.connect("Gaussian", 0, "FFT", 0);
  g.connect("FFT", 0, "AccumStat", 0);
  g.connect("AccumStat", 0, "Grapher", 0);
  return g;
}

}  // namespace

int main() {
  std::printf("E8: checkpointing under churn (paper 3.6.2)\n\n");

  // -- (a) work completed vs checkpoint period -----------------------------
  const double week = 7 * 86400.0;
  const double task_s = 5.0 * 3600.0;  // one chunk of CPU
  const int kPeers = 300;

  std::printf("(a) 5 h tasks on screensaver-harvested peers, %d peers x 1 "
              "week\n",
              kPeers);
  std::printf("%-20s %-18s %-22s\n", "checkpoint period",
              "tasks/peer/week", "vs no checkpointing");

  churn::DiurnalIdleModel model;
  const double periods[] = {0.0, 3600.0, 900.0, 300.0};
  double baseline = 0;
  for (double period : periods) {
    dsp::Rng rng(5);
    dsp::RunningStats done;
    for (int p = 0; p < kPeers; ++p) {
      const auto trace = model.sample(week, rng);
      done.add(static_cast<double>(
          churn::completed_tasks(trace, week, task_s, period)));
    }
    if (period == 0.0) baseline = done.mean();
    char label[32];
    if (period == 0.0) {
      std::snprintf(label, sizeof(label), "none");
    } else {
      std::snprintf(label, sizeof(label), "%.0f min", period / 60.0);
    }
    std::printf("%-20s %-18.2f %+.0f%%\n", label, done.mean(),
                baseline > 0 ? (done.mean() / baseline - 1.0) * 100.0 : 0.0);
  }

  // -- (b) checkpoint mechanics ---------------------------------------------
  std::printf("\n(b) checkpoint capture on a real runtime (Figure-1 graph, "
              "2048-sample spectra)\n");
  core::UnitRegistry registry = core::UnitRegistry::with_builtins();
  core::GraphRuntime rt(accum_graph(), registry, {});
  rt.run(50);
  const auto t0 = std::chrono::steady_clock::now();
  const auto ckpt = rt.save_checkpoint();
  const double capture_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("state after 50 iterations: %zu bytes, captured in %.3f ms "
              "(one DSL-second to ship at 128 kB/s: %.2f s)\n",
              ckpt.size(), capture_ms,
              static_cast<double>(ckpt.size()) / 128e3);

  // Live migration on the service stack: AccumStat state survives.
  {
    net::SimNetwork net({}, 1);
    auto clock = [&net] { return net.now(); };
    auto sched = [&net](double d, std::function<void()> fn) {
      net.schedule(d, std::move(fn));
    };
    core::ServiceConfig hc;
    hc.peer_id = "home";
    core::TrianaService home(net.add_node(), clock, sched, registry, hc);
    std::vector<std::unique_ptr<core::TrianaService>> ws;
    std::vector<net::Endpoint> eps;
    for (int i = 0; i < 2; ++i) {
      core::ServiceConfig cfg;
      cfg.peer_id = "w" + std::to_string(i);
      ws.push_back(std::make_unique<core::TrianaService>(
          net.add_node(), clock, sched, registry, cfg));
      home.node().add_neighbor(ws.back()->endpoint());
      ws.back()->node().add_neighbor(home.endpoint());
      eps.push_back(ws.back()->endpoint());
    }

    // Group the accumulating stages and farm them onto worker 0 only.
    core::TaskGraph inner("inner");
    core::ParamSet np;
    np.set_double("stddev", 1.0);
    inner.add_task("Gaussian", "Gaussian", np);
    inner.add_task("FFT", "FFT");
    inner.add_task("AccumStat", "AccumStat");
    inner.connect("Gaussian", 0, "FFT", 0);
    inner.connect("FFT", 0, "AccumStat", 0);
    core::TaskGraph g("migrate");
    core::ParamSet wp;
    wp.set_int("samples", 512);
    g.add_task("Wave", "Wave", wp);
    core::TaskDef& grp = g.add_group("G", std::move(inner), "parallel");
    grp.group_inputs = {core::GroupPort{"Gaussian", 0}};
    grp.group_outputs = {core::GroupPort{"AccumStat", 0}};
    g.add_task("Grapher", "Grapher");
    g.connect("Wave", 0, "G", 0);
    g.connect("G", 0, "Grapher", 0);
    home.publish_graph_modules(g);

    core::TrianaController ctl(home);
    auto run = ctl.distribute(g, "G", {eps[0]});
    net.run_all();
    ctl.tick(*run, 10);
    net.run_all();

    bool migrated = false;
    ctl.migrate(run, 0, eps[1], [&](bool ok) { migrated = ok; });
    net.run_all();
    ctl.tick(*run, 10);
    net.run_all();

    auto* rt1 = ws[1]->job_runtime(run->remote_jobs[0]);
    auto* acc =
        rt1 ? dynamic_cast<core::AccumStatUnit*>(rt1->unit("AccumStat"))
            : nullptr;
    std::printf("live migration w0 -> w1: %s; AccumStat count after "
                "10+10 iterations: %llu (state carried across hosts)\n",
                migrated ? "ok" : "FAILED",
                acc ? static_cast<unsigned long long>(acc->count()) : 0ull);
  }

  // -- (c) supervised recovery on the live service stack --------------------
  // A 2-replica farm streams items; the worker hosting replica 0 drops at
  // t=30 s and never returns. Without supervision its share of the stream
  // is lost; with the RunSupervisor the fragment is restored from its last
  // checkpoint onto a spare and the stream recovers.
  std::printf("\n(c) live farm under a mid-run peer loss (120 items over "
              "240 s, worker dies at t=30)\n");
  std::printf("%-16s %-16s %-14s %-12s\n", "mode", "items delivered",
              "recoveries", "ckpts taken");

  for (const bool supervised : {false, true}) {
    net::SimNetwork simnet({}, 1);
    auto clock = [&simnet] { return simnet.now(); };
    auto sched = [&simnet](double d, std::function<void()> fn) {
      simnet.schedule(d, std::move(fn));
    };
    core::ServiceConfig hc;
    hc.peer_id = "home";
    core::TrianaService home(simnet.add_node(), clock, sched, registry, hc);
    std::vector<std::unique_ptr<core::TrianaService>> ws;
    std::vector<net::Endpoint> eps;
    for (int i = 0; i < 3; ++i) {  // w0, w1 active; w2 spare
      core::ServiceConfig cfg;
      cfg.peer_id = "w" + std::to_string(i);
      ws.push_back(std::make_unique<core::TrianaService>(
          simnet.add_node(), clock, sched, registry, cfg));
      home.node().add_neighbor(ws.back()->endpoint());
      ws.back()->node().add_neighbor(home.endpoint());
      eps.push_back(ws.back()->endpoint());
    }

    core::TaskGraph inner("inner");
    core::ParamSet np;
    np.set_double("stddev", 1.0);
    inner.add_task("Gaussian", "Gaussian", np);
    core::TaskGraph g("farm");
    core::ParamSet wp;
    wp.set_int("samples", 256);
    g.add_task("Wave", "Wave", wp);
    core::TaskDef& grp = g.add_group("G", std::move(inner), "parallel");
    grp.group_inputs = {core::GroupPort{"Gaussian", 0}};
    grp.group_outputs = {core::GroupPort{"Gaussian", 0}};
    g.add_task("Sink", "NullSink");
    g.connect("Wave", 0, "G", 0);
    g.connect("G", 0, "Sink", 0);
    home.publish_graph_modules(g);

    core::TrianaController ctl(home);
    auto run = ctl.distribute(g, "G", {eps[0], eps[1]});
    simnet.run_all();

    std::shared_ptr<core::RunSupervisor> sup;
    if (supervised) {
      core::SupervisorOptions opt;
      opt.checkpoint_period_s = 10.0;
      opt.probe_period_s = 5.0;
      opt.max_missed = 2;
      sup = std::make_shared<core::RunSupervisor>(
          ctl, run, std::vector<net::Endpoint>{eps[2]}, opt);
      sup->start();
    }

    // One item every 2 s for 240 s; worker w0 (sim node 1) dies at t=30.
    for (int i = 0; i < 120; ++i) {
      simnet.schedule(2.0 * i, [&ctl, run] { ctl.tick(*run, 1); });
    }
    simnet.schedule(30.0, [&simnet] { simnet.set_up(1, false); });
    simnet.run_until(260.0);

    auto* sink = ctl.home_runtime(*run)->unit_as<core::NullSinkUnit>("Sink");
    std::printf("%-16s %-16llu %-14llu %-12llu\n",
                supervised ? "supervised" : "unsupervised",
                static_cast<unsigned long long>(sink->received()),
                static_cast<unsigned long long>(
                    sup ? sup->stats().recoveries : 0),
                static_cast<unsigned long long>(
                    sup ? sup->stats().checkpoints_taken : 0));
    if (sup) sup->stop();
  }

  std::printf(
      "\nShape check (paper): without checkpoints, screensaver peers "
      "almost never finish a 5 h task inside one idle session; minute-"
      "grained checkpointing recovers most of the lost throughput, the "
      "state that must move is small against DSL bandwidth, and automatic "
      "checkpoint-restore recovery keeps a live stream flowing through a "
      "mid-run peer loss.\n");
  return 0;
}
