// E10 -- reliable control plane under lossy consumer links.
//
// Paper (3.6.2): volunteer peers sit behind consumer DSL/cable links and
// "may become unavailable without notice". A fire-and-forget control plane
// loses deploys, acks and cancels in proportion to the frame loss rate;
// ReliableTransport buys effectively-once delivery with retransmissions.
//
// Setup: two peers on a simulated DSL link; a FaultInjector imposes a swept
// frame-loss probability (applied independently to data, envelopes and
// acks). The sender pushes kMessages control frames, paced so retry storms
// from one message do not starve the next. Reported per loss point: raw
// (unreliable) delivery rate for the same fault stream, reliable delivery
// rate, retransmissions per message, duplicate envelopes suppressed at the
// receiver, expiries, and mean delivery latency.
#include <cstdio>
#include <cstring>
#include <vector>

#include "net/fault.hpp"
#include "net/reliable.hpp"
#include "net/sim_network.hpp"

using namespace cg;

namespace {

constexpr int kMessages = 200;
constexpr double kPaceS = 0.25;  ///< gap between sends (virtual seconds)

serial::Frame indexed_frame(int i) {
  serial::Frame f;
  f.type = serial::FrameType::kControl;
  f.payload = {static_cast<std::uint8_t>(i & 0xff),
               static_cast<std::uint8_t>((i >> 8) & 0xff)};
  return f;
}

int frame_index(const serial::Frame& f) {
  return static_cast<int>(f.payload[0]) | (static_cast<int>(f.payload[1]) << 8);
}

struct Row {
  double loss = 0;
  double raw_delivered = 0;       ///< fraction, fire-and-forget baseline
  double reliable_delivered = 0;  ///< fraction
  double retx_per_msg = 0;
  std::uint64_t dup_suppressed = 0;
  std::uint64_t expired = 0;
  double mean_latency_ms = 0;  ///< send -> unique delivery, successes only
};

/// Fire-and-forget baseline: same link, same fault plan, plain transports.
double run_raw(double loss, std::uint64_t seed) {
  net::SimNetwork net({}, seed);
  auto& a = net.add_node();
  auto& b = net.add_node();

  net::FaultPlan plan;
  plan.default_link.drop = loss;
  net::FaultInjector inj(net, plan, seed);
  inj.arm();

  int got = 0;
  b.set_handler([&](const net::Endpoint&, serial::Frame) { ++got; });
  for (int i = 0; i < kMessages; ++i) {
    net.schedule(i * kPaceS, [&, i] { a.send(b.local(), indexed_frame(i)); });
  }
  net.run_all();
  return static_cast<double>(got) / kMessages;
}

Row run_reliable(double loss, std::uint64_t seed) {
  net::SimNetwork net({}, seed);
  auto& ta = net.add_node();
  auto& tb = net.add_node();
  auto clock = [&net] { return net.now(); };
  auto sched = [&net](double d, std::function<void()> fn) {
    net.schedule(d, std::move(fn));
  };

  net::ReliableConfig cfg;
  cfg.seed = seed;
  net::ReliableTransport a(ta, clock, sched, cfg);
  net::ReliableTransport b(tb, clock, sched, cfg);

  net::FaultPlan plan;
  plan.default_link.drop = loss;
  net::FaultInjector inj(net, plan, seed);
  inj.arm();

  std::vector<double> sent_at(kMessages, 0.0);
  int got = 0;
  double latency_sum = 0;
  b.set_handler([&](const net::Endpoint&, serial::Frame f) {
    ++got;
    latency_sum += net.now() - sent_at[frame_index(f)];
  });
  for (int i = 0; i < kMessages; ++i) {
    net.schedule(i * kPaceS, [&, i] {
      sent_at[i] = net.now();
      a.send(b.local(), indexed_frame(i));
    });
  }
  net.run_all();

  Row r;
  r.loss = loss;
  r.reliable_delivered = static_cast<double>(got) / kMessages;
  r.retx_per_msg =
      static_cast<double>(a.stats().retransmits) / kMessages;
  r.dup_suppressed = b.stats().duplicates_suppressed;
  r.expired = a.stats().expired;
  r.mean_latency_ms = got ? latency_sum / got * 1000.0 : 0.0;
  return r;
}

}  // namespace

int main() {
  std::printf("E10: reliable delivery vs frame loss (paper section 3.6.2)\n");
  std::printf("DSL link, %d control messages, loss applied to every frame "
              "(envelopes and acks alike)\n\n",
              kMessages);
  std::printf("%-8s %-10s %-10s %-10s %-10s %-9s %-12s\n", "loss", "raw",
              "reliable", "retx/msg", "dup-supp", "expired", "latency ms");

  for (double loss : {0.0, 0.05, 0.10, 0.20, 0.30}) {
    Row r = run_reliable(loss, 7);
    r.raw_delivered = run_raw(loss, 7);
    std::printf("%-8.2f %-10.3f %-10.3f %-10.2f %-10llu %-9llu %-12.1f\n",
                r.loss, r.raw_delivered, r.reliable_delivered, r.retx_per_msg,
                static_cast<unsigned long long>(r.dup_suppressed),
                static_cast<unsigned long long>(r.expired), r.mean_latency_ms);
  }
  std::printf(
      "\nShape check: raw delivery decays linearly with loss while the "
      "reliable rate stays at 1.0 (until loss overwhelms the retry budget); "
      "the price is retransmissions growing roughly 1/(1-loss)^2 -- both "
      "the envelope and its ack must survive -- plus tail latency from "
      "exponential backoff. Duplicates suppressed > 0 proves lost acks were "
      "retried without re-delivery.\n");
  return 0;
}
