// E10 -- reliable control plane under lossy consumer links.
//
// Paper (3.6.2): volunteer peers sit behind consumer DSL/cable links and
// "may become unavailable without notice". A fire-and-forget control plane
// loses deploys, acks and cancels in proportion to the frame loss rate;
// ReliableTransport buys effectively-once delivery with retransmissions.
//
// Setup: two peers on a simulated DSL link; a FaultInjector imposes a swept
// frame-loss probability (applied independently to data, envelopes and
// acks). The sender pushes kMessages control frames, paced so retry storms
// from one message do not starve the next. Reported per loss point: raw
// (unreliable) delivery rate for the same fault stream, reliable delivery
// rate, retransmissions per message, duplicate envelopes suppressed at the
// receiver, expiries, and mean delivery latency.
//
// Machine-readable output: --json PATH writes a BENCH_reliable.json
// artifact holding the table rows plus the full obs metrics snapshot
// (per-loss-point scopes: "loss05.a.reliable.retransmits", ...). CI's
// bench-smoke job runs this with --messages 40 and validates the JSON.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "net/fault.hpp"
#include "net/reliable.hpp"
#include "net/sim_network.hpp"
#include "obs/obs.hpp"

using namespace cg;

namespace {

int g_messages = 200;            ///< --messages N (CI smoke uses a small N)
constexpr double kPaceS = 0.25;  ///< gap between sends (virtual seconds)

serial::Frame indexed_frame(int i) {
  serial::Frame f;
  f.type = serial::FrameType::kControl;
  f.payload = {static_cast<std::uint8_t>(i & 0xff),
               static_cast<std::uint8_t>((i >> 8) & 0xff)};
  return f;
}

int frame_index(const serial::Frame& f) {
  return static_cast<int>(f.payload[0]) | (static_cast<int>(f.payload[1]) << 8);
}

struct Row {
  double loss = 0;
  double raw_delivered = 0;       ///< fraction, fire-and-forget baseline
  double reliable_delivered = 0;  ///< fraction
  double retx_per_msg = 0;
  std::uint64_t dup_suppressed = 0;
  std::uint64_t expired = 0;
  double mean_latency_ms = 0;  ///< send -> unique delivery, successes only
};

/// Scope label for one loss point: 0.05 -> "loss05".
std::string loss_scope(double loss) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "loss%02d", static_cast<int>(loss * 100 + 0.5));
  return buf;
}

/// Fire-and-forget baseline: same link, same fault plan, plain transports.
double run_raw(double loss, std::uint64_t seed) {
  net::SimNetwork net({}, seed);
  auto& a = net.add_node();
  auto& b = net.add_node();

  net::FaultPlan plan;
  plan.default_link.drop = loss;
  net::FaultInjector inj(net, plan, seed);
  inj.arm();

  int got = 0;
  b.set_handler([&](const net::Endpoint&, serial::Frame) { ++got; });
  for (int i = 0; i < g_messages; ++i) {
    net.schedule(i * kPaceS, [&, i] { a.send(b.local(), indexed_frame(i)); });
  }
  net.run_all();
  return static_cast<double>(got) / g_messages;
}

Row run_reliable(double loss, std::uint64_t seed, obs::Registry& registry,
                 obs::Tracer* tracer = nullptr) {
  net::SimNetwork net({}, seed);
  auto& ta = net.add_node();
  auto& tb = net.add_node();
  auto clock = [&net] { return net.now(); };
  auto sched = [&net](double d, std::function<void()> fn) {
    net.schedule(d, std::move(fn));
  };

  net::ReliableConfig cfg;
  cfg.seed = seed;
  net::ReliableTransport a(ta, clock, sched, cfg);
  net::ReliableTransport b(tb, clock, sched, cfg);

  const std::string scope = loss_scope(loss);
  net.set_obs(registry, tracer, scope);
  a.set_obs(registry, tracer, scope + ".a");
  b.set_obs(registry, tracer, scope + ".b");
  // Traced pass: stamp every envelope with a fixed trace id so
  // congrid-trace can pair the two peers' events into one causal DAG.
  if (tracer != nullptr) a.set_trace(0xe10c0ffee | 1);

  net::FaultPlan plan;
  plan.default_link.drop = loss;
  net::FaultInjector inj(net, plan, seed);
  inj.arm();

  std::vector<double> sent_at(g_messages, 0.0);
  int got = 0;
  double latency_sum = 0;
  b.set_handler([&](const net::Endpoint&, serial::Frame f) {
    ++got;
    latency_sum += net.now() - sent_at[frame_index(f)];
  });
  for (int i = 0; i < g_messages; ++i) {
    net.schedule(i * kPaceS, [&, i] {
      sent_at[i] = net.now();
      a.send(b.local(), indexed_frame(i));
    });
  }
  net.run_all();

  Row r;
  r.loss = loss;
  r.reliable_delivered = static_cast<double>(got) / g_messages;
  r.retx_per_msg =
      static_cast<double>(a.stats().retransmits) / g_messages;
  r.dup_suppressed = b.stats().duplicates_suppressed;
  r.expired = a.stats().expired;
  r.mean_latency_ms = got ? latency_sum / got * 1000.0 : 0.0;
  return r;
}

std::string rows_json(const std::vector<Row>& rows) {
  std::string out = "[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    if (i) out += ',';
    out += "{\"loss\":" + obs::json_number(r.loss);
    out += ",\"raw_delivered\":" + obs::json_number(r.raw_delivered);
    out += ",\"reliable_delivered\":" + obs::json_number(r.reliable_delivered);
    out += ",\"retx_per_msg\":" + obs::json_number(r.retx_per_msg);
    out += ",\"dup_suppressed\":" + std::to_string(r.dup_suppressed);
    out += ",\"expired\":" + std::to_string(r.expired);
    out += ",\"mean_latency_ms\":" + obs::json_number(r.mean_latency_ms);
    out += "}";
  }
  out += "]";
  return out;
}

bool write_text(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "bench_reliable: cannot open %s\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

bool write_json(const std::string& path, const std::string& body) {
  if (!obs::json_valid(body)) {
    std::fprintf(stderr, "bench_reliable: refusing to write invalid JSON\n");
    return false;
  }
  return write_text(path, body);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--messages") == 0 && i + 1 < argc) {
      g_messages = std::atoi(argv[++i]);
      if (g_messages <= 0) {
        std::fprintf(stderr, "bench_reliable: bad --messages value\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_reliable [--messages N] [--json PATH] "
                   "[--trace PATH]\n");
      return 2;
    }
  }

  std::printf("E10: reliable delivery vs frame loss (paper section 3.6.2)\n");
  std::printf("DSL link, %d control messages, loss applied to every frame "
              "(envelopes and acks alike)\n\n",
              g_messages);
  std::printf("%-8s %-10s %-10s %-10s %-10s %-9s %-12s\n", "loss", "raw",
              "reliable", "retx/msg", "dup-supp", "expired", "latency ms");

  obs::Registry registry;
  std::vector<Row> rows;
  for (double loss : {0.0, 0.05, 0.10, 0.20, 0.30}) {
    Row r = run_reliable(loss, 7, registry);
    r.raw_delivered = run_raw(loss, 7);
    rows.push_back(r);
    std::printf("%-8.2f %-10.3f %-10.3f %-10.2f %-10llu %-9llu %-12.1f\n",
                r.loss, r.raw_delivered, r.reliable_delivered, r.retx_per_msg,
                static_cast<unsigned long long>(r.dup_suppressed),
                static_cast<unsigned long long>(r.expired), r.mean_latency_ms);
  }
  std::printf(
      "\nShape check: raw delivery decays linearly with loss while the "
      "reliable rate stays at 1.0 (until loss overwhelms the retry budget); "
      "the price is retransmissions growing roughly 1/(1-loss)^2 -- both "
      "the envelope and its ack must survive -- plus tail latency from "
      "exponential backoff. Duplicates suppressed > 0 proves lost acks were "
      "retried without re-delivery.\n");

  if (!json_path.empty()) {
    std::string body = "{\"bench\":\"reliable\",\"messages\":" +
                       std::to_string(g_messages) + ",\"rows\":" +
                       rows_json(rows) + ",\"metrics\":" +
                       registry.snapshot().to_json(/*pretty=*/false) + "}";
    if (!write_json(json_path, body)) return 1;
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  // --trace: rerun the 10% loss point with a tracer bound and export the
  // causal JSONL (feed it to congrid-trace). A separate registry keeps the
  // traced rerun out of the sweep's metric snapshot.
  if (!trace_path.empty()) {
    obs::Registry trace_registry;
    obs::Tracer tracer(1 << 16);
    (void)run_reliable(0.10, 7, trace_registry, &tracer);
    const std::string jsonl = tracer.to_jsonl();
    if (jsonl.empty()) {
      std::printf("\ntracing compiled out (CONGRID_OBS=OFF); %s not written\n",
                  trace_path.c_str());
    } else {
      if (!write_text(trace_path, jsonl)) return 1;
      std::printf("\nwrote %s\n", trace_path.c_str());
    }
  }
  return 0;
}
