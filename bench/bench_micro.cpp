// M1 -- substrate micro-benchmarks (google-benchmark).
//
// Sanity numbers behind the experiment harnesses: FFT and fast-vs-direct
// correlation (the inspiral kernel), DataItem and frame codecs, XML
// task-graph parsing, simulated-network event throughput, and chirp/SPH
// generation costs.
#include <benchmark/benchmark.h>

#include "apps/gw/chirp.hpp"
#include "core/graph/taskgraph_xml.hpp"
#include "core/types/data_item.hpp"
#include "dsp/correlate.hpp"
#include "dsp/fft.hpp"
#include "dsp/rng.hpp"
#include "net/sim_network.hpp"
#include "serial/frame.hpp"

using namespace cg;

namespace {

std::vector<double> random_signal(std::size_t n, std::uint64_t seed) {
  dsp::Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.gaussian();
  return v;
}

void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto sig = random_signal(n, 1);
  std::vector<dsp::Complex> a(n);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) a[i] = sig[i];
    dsp::fft(a);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Fft)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_FastCorrelate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto data = random_signal(n, 1);
  auto tmpl = random_signal(512, 2);
  for (auto _ : state) {
    auto r = dsp::fast_correlate(data, tmpl);
    benchmark::DoNotOptimize(r.data());
  }
}
BENCHMARK(BM_FastCorrelate)->Arg(1 << 12)->Arg(1 << 16);

void BM_DirectCorrelate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto data = random_signal(n, 1);
  auto tmpl = random_signal(512, 2);
  for (auto _ : state) {
    auto r = dsp::direct_correlate(data, tmpl);
    benchmark::DoNotOptimize(r.data());
  }
}
BENCHMARK(BM_DirectCorrelate)->Arg(1 << 12)->Arg(1 << 16);

void BM_ChirpGeneration(benchmark::State& state) {
  gw::ChirpParams p;
  p.f_low_hz = 100.0;
  for (auto _ : state) {
    auto h = gw::make_chirp(p);
    benchmark::DoNotOptimize(h.data());
  }
}
BENCHMARK(BM_ChirpGeneration);

void BM_DataItemCodec(benchmark::State& state) {
  core::SampleSet s;
  s.sample_rate = 2000;
  s.samples = random_signal(static_cast<std::size_t>(state.range(0)), 3);
  const core::DataItem item(s);
  for (auto _ : state) {
    auto bytes = core::encode_data_item(item);
    auto back = core::decode_data_item(bytes);
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(item.byte_size()));
}
BENCHMARK(BM_DataItemCodec)->Arg(1 << 10)->Arg(1 << 16);

void BM_FrameEncodeDecode(benchmark::State& state) {
  serial::Frame f;
  f.type = serial::FrameType::kData;
  f.payload.assign(static_cast<std::size_t>(state.range(0)), 0x5A);
  for (auto _ : state) {
    auto wire = serial::encode_frame(f);
    serial::FrameDecoder d;
    d.feed(wire);
    auto out = d.next();
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FrameEncodeDecode)->Arg(1 << 10)->Arg(1 << 20);

void BM_TaskGraphParse(benchmark::State& state) {
  core::TaskGraph g("bench");
  core::ParamSet wp;
  g.add_task("t0", "Wave", wp);
  for (int i = 1; i < state.range(0); ++i) {
    g.add_task("t" + std::to_string(i), "Scaler", wp);
    g.connect("t" + std::to_string(i - 1), 0, "t" + std::to_string(i), 0);
  }
  const std::string xml = core::write_taskgraph(g);
  for (auto _ : state) {
    auto back = core::parse_taskgraph(xml);
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(xml.size()));
}
BENCHMARK(BM_TaskGraphParse)->Arg(16)->Arg(128);

void BM_SimNetworkMessageRate(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    net::SimNetwork net({}, 1);
    auto& a = net.add_node();
    auto& b = net.add_node();
    int got = 0;
    b.set_handler([&](const net::Endpoint&, serial::Frame) { ++got; });
    serial::Frame f;
    f.type = serial::FrameType::kData;
    f.payload.assign(64, 1);
    state.ResumeTiming();
    for (int i = 0; i < 10000; ++i) a.send(b.local(), f);
    net.run_all();
    benchmark::DoNotOptimize(got);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10000);
}
BENCHMARK(BM_SimNetworkMessageRate);

}  // namespace

BENCHMARK_MAIN();
