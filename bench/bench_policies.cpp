// E5 -- the two distribution policies compared on the real service stack.
//
// Paper (3.3): "There are two distribution policies currently implemented
// in Triana, parallel and peer to peer. Parallel is a farming out mechanism
// and generally involves no communication between hosts. Peer to Peer means
// distributing the group vertically i.e. each unit in the group is
// distributed onto a separate resource and data is passed between them."
//
// Both policies run the same 3-stage group over 3 simulated DSL peers and
// the same input stream; we account what each costs: network messages,
// payload bytes, virtual completion time, and how much module code each
// peer had to download (the constrained-device angle of 3.3 -- the
// pipeline puts 1/3 of the code on each peer, the farm all of it on all).
//
// Machine-readable output: --json PATH writes a BENCH_policies.json
// artifact holding every table row. --trace PATH reruns the smallest p2p
// point with a causal tracer bound to the whole stack and exports the
// merged JSONL -- a real deploy/fetch/tick/return trace for congrid-trace.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/service/controller.hpp"
#include "core/unit/builtin.hpp"
#include "net/sim_network.hpp"
#include "obs/obs.hpp"

using namespace cg;

namespace {

core::TaskGraph make_graph(const std::string& policy, int samples) {
  core::TaskGraph inner("stages");
  core::ParamSet p1;
  p1.set_double("factor", 2.0);
  inner.add_task("Scale", "Scaler", p1);
  core::ParamSet p2;
  p2.set_int("window", 5);
  inner.add_task("Smooth", "MovingAverage", p2);
  core::ParamSet p3;
  p3.set_double("offset", -1.0);
  inner.add_task("Shift", "Offset", p3);
  inner.connect("Scale", 0, "Smooth", 0);
  inner.connect("Smooth", 0, "Shift", 0);

  core::TaskGraph g("policy-bench");
  core::ParamSet wp;
  wp.set_int("samples", samples);
  g.add_task("Wave", "Wave", wp);
  core::TaskDef& grp = g.add_group("G", std::move(inner), policy);
  grp.group_inputs = {core::GroupPort{"Scale", 0}};
  grp.group_outputs = {core::GroupPort{"Shift", 0}};
  g.add_task("Sink", "NullSink");
  g.connect("Wave", 0, "G", 0);
  g.connect("G", 0, "Sink", 0);
  return g;
}

struct Result {
  std::uint64_t messages = 0;
  double megabytes = 0;
  double completion_s = 0;
  std::uint64_t items_done = 0;
  std::uint64_t code_bytes_max_peer = 0;  ///< worst-case per-peer download
};

Result run_policy(const std::string& policy, int samples, int items,
                  obs::Registry* obs_registry = nullptr,
                  obs::Tracer* tracer = nullptr) {
  net::SimNetwork net({}, 1);
  auto clock = [&net] { return net.now(); };
  auto sched = [&net](double d, std::function<void()> fn) {
    net.schedule(d, std::move(fn));
  };
  core::UnitRegistry registry = core::UnitRegistry::with_builtins();

  core::ServiceConfig hc;
  hc.peer_id = "home";
  core::TrianaService home(net.add_node(), clock, sched, registry, hc);
  std::vector<std::unique_ptr<core::TrianaService>> workers;
  std::vector<net::Endpoint> eps;
  for (int i = 0; i < 3; ++i) {
    core::ServiceConfig cfg;
    cfg.peer_id = "w" + std::to_string(i);
    workers.push_back(std::make_unique<core::TrianaService>(
        net.add_node(), clock, sched, registry, cfg));
    home.node().add_neighbor(workers.back()->endpoint());
    workers.back()->node().add_neighbor(home.endpoint());
    eps.push_back(workers.back()->endpoint());
  }
  if (obs_registry != nullptr) {
    net.set_obs(*obs_registry, tracer, "policy");
    home.set_obs(*obs_registry, tracer, "home");
    for (std::size_t i = 0; i < workers.size(); ++i) {
      workers[i]->set_obs(*obs_registry, tracer, "w" + std::to_string(i));
    }
  }

  core::TaskGraph g = make_graph(policy, samples);
  home.publish_graph_modules(g, 64 * 1024);  // 64 kB per module artifact

  core::TrianaController ctl(home);
  auto run = ctl.distribute(g, "G", eps);
  net.run_all();
  if (!run->deployed_ok()) {
    std::fprintf(stderr, "deploy failed (%s)\n", policy.c_str());
    std::exit(1);
  }

  ctl.tick(*run, static_cast<std::uint64_t>(items));
  net.run_all();

  Result r;
  r.messages = net.stats().messages_sent;
  r.megabytes = static_cast<double>(net.stats().bytes_sent) / 1e6;
  r.completion_s = net.now();
  r.items_done =
      ctl.home_runtime(*run)->unit_as<core::NullSinkUnit>("Sink")->received();
  for (auto& w : workers) {
    r.code_bytes_max_peer =
        std::max(r.code_bytes_max_peer,
                 static_cast<std::uint64_t>(w->module_cache().stats()
                                                .bytes_fetched));
  }
  // After the stats are read: cancel remote jobs and close the run's trace
  // span so an exported trace has no dangling root.
  ctl.shutdown(*run);
  net.run_all();
  return r;
}

struct Row {
  int samples = 0;
  std::string policy;
  Result r;
};

std::string rows_json(const std::vector<Row>& rows) {
  std::string out = "[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    if (i) out += ',';
    out += "{\"samples\":" + std::to_string(row.samples);
    out += ",\"policy\":" + obs::json_quote(row.policy);
    out += ",\"messages\":" + std::to_string(row.r.messages);
    out += ",\"megabytes\":" + obs::json_number(row.r.megabytes);
    out += ",\"completion_s\":" + obs::json_number(row.r.completion_s);
    out += ",\"items_done\":" + std::to_string(row.r.items_done);
    out += ",\"code_bytes_max_peer\":" +
           std::to_string(row.r.code_bytes_max_peer);
    out += "}";
  }
  out += "]";
  return out;
}

bool write_text(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "bench_policies: cannot open %s\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

bool write_json(const std::string& path, const std::string& body) {
  if (!obs::json_valid(body)) {
    std::fprintf(stderr, "bench_policies: refusing to write invalid JSON\n");
    return false;
  }
  return write_text(path, body);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_policies [--json PATH] [--trace PATH]\n");
      return 2;
    }
  }

  std::printf("E5: parallel (farm) vs peer-to-peer (pipeline) vs "
              "replicated policy\n");
  std::printf("3-stage group, 3 DSL peers, 60 items per run\n\n");
  std::printf("%-10s %-11s %-9s %-10s %-9s %-8s %-14s\n", "payload",
              "policy", "msgs", "MB moved", "virt s", "items",
              "code kB/peer");

  const int kItems = 60;
  std::vector<Row> rows;
  for (int samples : {256, 4096, 32768}) {
    // "replicated" is the A1 ablation: integrity via 3x redundancy
    // (paper 3.5's wrong-results problem) paid for in messages/bytes.
    for (const char* policy : {"parallel", "p2p", "replicated"}) {
      const Result r = run_policy(policy, samples, kItems);
      rows.push_back({samples, policy, r});
      std::printf("%-10d %-11s %-9llu %-10.2f %-9.1f %-8llu %-14.0f\n",
                  samples, policy,
                  static_cast<unsigned long long>(r.messages), r.megabytes,
                  r.completion_s,
                  static_cast<unsigned long long>(r.items_done),
                  static_cast<double>(r.code_bytes_max_peer) / 1024.0);
    }
  }
  std::printf(
      "\nShape check (paper 3.3): the farm moves each item twice (in/out) "
      "but every peer downloads the whole group's code; the vertical "
      "pipeline adds a hop per stage boundary (more messages and bytes) "
      "yet each peer hosts only its own stage's module -- the granularity/"
      "footprint trade the paper gives the user 'complete control' over.\n");

  if (!json_path.empty()) {
    const std::string body =
        "{\"bench\":\"policies\",\"items\":" + std::to_string(kItems) +
        ",\"rows\":" + rows_json(rows) + "}";
    if (!write_json(json_path, body)) return 1;
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  // --trace: rerun the smallest p2p point with a tracer bound to the
  // network, home service and workers, and export the causal JSONL. The
  // rerun shares nothing with the sweep above, so the table is unaffected.
  if (!trace_path.empty()) {
    obs::Registry trace_registry;
    obs::Tracer tracer(1 << 16);
    (void)run_policy("p2p", 256, kItems, &trace_registry, &tracer);
    const std::string jsonl = tracer.to_jsonl();
    if (jsonl.empty()) {
      std::printf("\ntracing compiled out (CONGRID_OBS=OFF); %s not written\n",
                  trace_path.c_str());
    } else {
      if (!write_text(trace_path, jsonl)) return 1;
      std::printf("\nwrote %s\n", trace_path.c_str());
    }
  }
  return 0;
}
