// E2 -- reproduce Case 1 (3.6.1): galaxy-animation frames farmed out in
// parallel; "the user can visualise the galaxy formation in a fraction of
// the time than it would if the simulation was performed on a single
// machine".
//
// Three measurements:
//   (a) REAL: wall-clock speedup of the SPH frame farm on a local thread
//       pool (the All Hands demo ran "machines on a local network"; shared-
//       memory cores are our stand-in for the cluster).
//   (b) SIMULATED consumer grid: virtual-time makespan over DSL peers,
//       including frame-result upload time, comparing "regenerate snapshot
//       locally" against "ship the snapshot with every frame" (the paper
//       notes both variants).
//   (c) REAL: the engine's deterministic wave scheduler driving the same
//       render farm as a TaskGraph (FrameSource fanned out to B RenderFrame
//       branches). Swept over --threads; every row must produce a
//       bit-identical pixel checksum or the bench fails. CI's bench-smoke
//       job gates row throughput against bench/baselines/galaxy.json via
//       scripts/bench_compare.py.
//
// Machine-readable output: --json PATH writes the section (c) rows plus
// the obs metrics snapshot (per-row scopes: "t0.runtime.waves", ...).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/galaxy/sph.hpp"
#include "apps/galaxy/units.hpp"
#include "core/engine/runtime.hpp"
#include "core/unit/builtin.hpp"
#include "net/sim_network.hpp"
#include "obs/obs.hpp"
#include "rm/thread_pool.hpp"

using namespace cg;

namespace {

double render_all_threaded(unsigned threads, const galaxy::SimulationSpec& spec,
                           const galaxy::View& view) {
  rm::ThreadPool pool(threads);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t f = 0; f < spec.n_frames; ++f) {
    pool.post([&, f] {
      const auto snap = galaxy::snapshot_at(spec, f);
      volatile double sink =
          galaxy::project_column_density(snap, view).pixels[0];
      (void)sink;
    });
  }
  pool.wait_idle();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Virtual-time farm: W peers, each frame takes `compute_s`, result upload
/// of `result_bytes`; optional `input_bytes` shipped to the peer per frame.
double simulated_makespan(std::size_t workers, std::size_t frames,
                          double compute_s, std::size_t input_bytes,
                          std::size_t result_bytes) {
  net::LinkParams lp;  // consumer DSL defaults
  net::SimNetwork net(lp, 1);
  (void)net.add_node();  // 0 = controller

  struct Worker {
    double free_at = 0;
  };
  std::vector<Worker> ws(workers);
  const double up = static_cast<double>(result_bytes) / lp.bandwidth_Bps;
  const double down = static_cast<double>(input_bytes) / lp.bandwidth_Bps;

  double makespan = 0;
  for (std::size_t f = 0; f < frames; ++f) {
    // Greedy: next frame to the earliest-free worker.
    std::size_t best = 0;
    for (std::size_t w = 1; w < workers; ++w) {
      if (ws[w].free_at < ws[best].free_at) best = w;
    }
    const double start = ws[best].free_at + lp.base_latency_s + down;
    const double done = start + compute_s + up + lp.base_latency_s;
    ws[best].free_at = start + compute_s;
    makespan = std::max(makespan, done);
  }
  return makespan;
}

/// Sections (a) and (b): the raw thread-pool farm and the virtual-time
/// consumer grid. Skipped under --only-wave (CI smoke).
void run_farm_sections() {
  // (a) real thread-pool speedup.
  galaxy::SimulationSpec spec;
  spec.n_particles = 20000;
  spec.n_frames = 48;
  galaxy::View view;
  view.grid = 192;

  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  std::printf("(a) real SPH renders, %zu frames x %zu particles, grid %u "
              "(this host: %u core%s -- speedup is capped at %u; the "
              "consumer grid exists precisely because one box runs out of "
              "cores)\n",
              spec.n_frames, spec.n_particles, view.grid, cores,
              cores == 1 ? "" : "s", cores);
  std::printf("%-8s %-12s %-10s %-12s\n", "workers", "seconds", "speedup",
              "ideal-capped");
  const double t1 = render_all_threaded(1, spec, view);
  for (unsigned w : {1u, 2u, 4u, 8u}) {
    const double t = (w == 1) ? t1 : render_all_threaded(w, spec, view);
    std::printf("%-8u %-12.3f %-10.2f %-12u\n", w, t, t1 / t,
                std::min(w, cores));
  }

  // (b) simulated consumer grid, 5 s/frame renders (2003-era PC).
  const std::size_t frames = 200;
  const double compute_s = 5.0;
  const std::size_t image_bytes = 128 * 128 * 8;     // one frame out
  const std::size_t snapshot_bytes = 20000 * 4 * 8;  // data file per frame

  std::printf("\n(b) simulated consumer grid, %zu frames x %.0f s renders, "
              "DSL links (%.0f kB/s)\n",
              frames, compute_s, 128.0);
  std::printf("%-8s %-22s %-22s\n", "", "regenerate-locally",
              "ship-snapshot-per-frame");
  std::printf("%-8s %-10s %-10s %-10s %-10s\n", "peers", "makespan",
              "speedup", "makespan", "speedup");
  const double base = simulated_makespan(1, frames, compute_s, 0, image_bytes);
  for (std::size_t w : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const double regen =
        simulated_makespan(w, frames, compute_s, 0, image_bytes);
    const double ship =
        simulated_makespan(w, frames, compute_s, snapshot_bytes, image_bytes);
    std::printf("%-8zu %-10.0f %-10.2f %-10.0f %-10.2f\n", w, regen,
                base / regen, ship, base / ship);
  }
  std::printf(
      "\nShape check (paper): near-linear speedup -- 'a fraction of the "
      "time ... on a single machine'; shipping the data file per frame "
      "erodes it on consumer uplinks.\n");
}

// -- (c) wave-scheduler sweep over the engine ------------------------------

struct WaveRow {
  unsigned threads = 0;
  double seconds = 0;
  double throughput = 0;  ///< frames rendered per second
  double speedup = 0;     ///< vs the threads=0 serial loop
  double checksum = 0;    ///< sum of sink pixels; must match across rows
};

/// Case 1 as a TaskGraph: one frame-index source fanned out to `branches`
/// RenderFrame units (different viewing angles), each with its own
/// animation sink. The wide render wave is what the scheduler spreads
/// across the pool.
core::TaskGraph wave_graph(int branches, int frames, int particles,
                           int grid) {
  core::TaskGraph g("galaxy_wave");
  core::ParamSet fp;
  fp.set_int("frames", frames);
  g.add_task("Frames", "FrameSource", fp);
  for (int b = 0; b < branches; ++b) {
    const std::string s = std::to_string(b);
    core::ParamSet rp;
    rp.set_int("particles", particles);
    rp.set_int("frames", frames);
    rp.set_int("grid", grid);
    rp.set_double("azimuth", 0.25 * b);
    g.add_task("Render" + s, "RenderFrame", rp);
    g.add_task("Anim" + s, "AnimationSink");
    g.connect("Frames", 0, "Render" + s, 0);
    g.connect("Render" + s, 0, "Anim" + s, 0);
    g.connect("Render" + s, 1, "Anim" + s, 1);
  }
  return g;
}

WaveRow run_wave(const core::TaskGraph& g, const core::UnitRegistry& reg,
                 unsigned threads, int branches, int frames,
                 obs::Registry& registry) {
  core::GraphRuntime rt(
      g, reg, core::RuntimeOptions{.rng_seed = 42, .max_threads = threads});
  rt.set_obs(registry, "t" + std::to_string(threads));
  const auto t0 = std::chrono::steady_clock::now();
  rt.run(static_cast<std::uint64_t>(frames));
  WaveRow row;
  row.threads = threads;
  row.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  row.throughput = static_cast<double>(branches) * frames / row.seconds;
  for (int b = 0; b < branches; ++b) {
    const auto* sink = rt.unit_as<galaxy::AnimationSinkUnit>(
        "Anim" + std::to_string(b));
    for (const auto& [idx, frame] : sink->frames()) {
      for (double px : frame.pixels) row.checksum += px;
    }
  }
  return row;
}

std::string rows_json(const std::vector<WaveRow>& rows) {
  std::string out = "[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const WaveRow& r = rows[i];
    if (i) out += ',';
    out += "{\"threads\":" + std::to_string(r.threads);
    out += ",\"seconds\":" + obs::json_number(r.seconds);
    out += ",\"throughput\":" + obs::json_number(r.throughput);
    out += ",\"speedup\":" + obs::json_number(r.speedup);
    out += ",\"checksum\":" + obs::json_number(r.checksum);
    out += "}";
  }
  out += "]";
  return out;
}

bool write_json(const std::string& path, const std::string& body) {
  if (!obs::json_valid(body)) {
    std::fprintf(stderr, "bench_galaxy: refusing to write invalid JSON\n");
    return false;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "bench_galaxy: cannot open %s\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

std::vector<unsigned> parse_threads(const char* arg) {
  std::vector<unsigned> out;
  for (const char* p = arg; *p;) {
    out.push_back(static_cast<unsigned>(std::strtoul(p, nullptr, 10)));
    const char* comma = std::strchr(p, ',');
    if (!comma) break;
    p = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<unsigned> threads = {0, 1, 2, 4};
  std::string json_path;
  int wave_frames = 10;
  int wave_particles = 6000;
  bool only_wave = false;  // CI smoke: skip the slow (a)/(b) farm sections
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = parse_threads(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--frames") == 0 && i + 1 < argc) {
      wave_frames = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--particles") == 0 && i + 1 < argc) {
      wave_particles = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--only-wave") == 0) {
      only_wave = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_galaxy [--threads 0,1,2,4] [--frames N] "
                   "[--particles N] [--only-wave] [--json PATH]\n");
      return 2;
    }
  }
  if (threads.empty() || threads[0] != 0) {
    threads.insert(threads.begin(), 0);  // serial row anchors the speedup
  }
  if (wave_frames <= 0 || wave_particles <= 0) {
    std::fprintf(stderr, "bench_galaxy: bad --frames/--particles value\n");
    return 2;
  }

  std::printf("E2: galaxy animation farm (paper Case 1)\n\n");

  if (!only_wave) run_farm_sections();

  // (c) the engine's wave scheduler on the same farm, as a TaskGraph.
  const int wave_branches = 8;
  const int wave_grid = 96;
  std::printf("\n(c) wave scheduler: %d render branches x %d frames, %d "
              "particles, grid %d (deterministic -- every row must produce "
              "the same pixel checksum)\n",
              wave_branches, wave_frames, wave_particles, wave_grid);
  std::printf("%-8s %-12s %-14s %-10s %-18s\n", "threads", "seconds",
              "frames/s", "speedup", "checksum");

  core::UnitRegistry wave_reg = core::UnitRegistry::with_builtins();
  galaxy::register_galaxy_units(wave_reg);
  const core::TaskGraph g =
      wave_graph(wave_branches, wave_frames, wave_particles, wave_grid);
  obs::Registry registry;
  std::vector<WaveRow> rows;
  for (unsigned t : threads) {
    WaveRow row = run_wave(g, wave_reg, t, wave_branches, wave_frames,
                           registry);
    row.speedup = rows.empty() ? 1.0 : rows[0].seconds / row.seconds;
    rows.push_back(row);
    std::printf("%-8u %-12.3f %-14.1f %-10.2f %-18.6f\n", row.threads,
                row.seconds, row.throughput, row.speedup, row.checksum);
    if (row.checksum != rows[0].checksum) {
      std::fprintf(stderr,
                   "bench_galaxy: DETERMINISM VIOLATION -- checksum at "
                   "%u threads differs from the serial row\n",
                   row.threads);
      return 1;
    }
  }
  std::printf("\nShape check: identical checksums row-for-row (the wave "
              "barrier commits in unit order), speedup approaching the "
              "core count while the render wave stays wider than the "
              "pool.\n");

  if (!json_path.empty()) {
    const std::string body =
        "{\"bench\":\"galaxy\",\"branches\":" + std::to_string(wave_branches) +
        ",\"frames\":" + std::to_string(wave_frames) +
        ",\"particles\":" + std::to_string(wave_particles) +
        ",\"rows\":" + rows_json(rows) +
        ",\"metrics\":" + registry.snapshot().to_json(/*pretty=*/false) + "}";
    if (!write_json(json_path, body)) return 1;
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
