// E2 -- reproduce Case 1 (3.6.1): galaxy-animation frames farmed out in
// parallel; "the user can visualise the galaxy formation in a fraction of
// the time than it would if the simulation was performed on a single
// machine".
//
// Two measurements:
//   (a) REAL: wall-clock speedup of the SPH frame farm on a local thread
//       pool (the All Hands demo ran "machines on a local network"; shared-
//       memory cores are our stand-in for the cluster).
//   (b) SIMULATED consumer grid: virtual-time makespan over DSL peers,
//       including frame-result upload time, comparing "regenerate snapshot
//       locally" against "ship the snapshot with every frame" (the paper
//       notes both variants).
#include <chrono>
#include <cstdio>

#include "apps/galaxy/sph.hpp"
#include "net/sim_network.hpp"
#include "rm/thread_pool.hpp"

using namespace cg;

namespace {

double render_all_threaded(unsigned threads, const galaxy::SimulationSpec& spec,
                           const galaxy::View& view) {
  rm::ThreadPool pool(threads);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t f = 0; f < spec.n_frames; ++f) {
    pool.post([&, f] {
      const auto snap = galaxy::snapshot_at(spec, f);
      volatile double sink =
          galaxy::project_column_density(snap, view).pixels[0];
      (void)sink;
    });
  }
  pool.wait_idle();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Virtual-time farm: W peers, each frame takes `compute_s`, result upload
/// of `result_bytes`; optional `input_bytes` shipped to the peer per frame.
double simulated_makespan(std::size_t workers, std::size_t frames,
                          double compute_s, std::size_t input_bytes,
                          std::size_t result_bytes) {
  net::LinkParams lp;  // consumer DSL defaults
  net::SimNetwork net(lp, 1);
  (void)net.add_node();  // 0 = controller

  struct Worker {
    double free_at = 0;
  };
  std::vector<Worker> ws(workers);
  const double up = static_cast<double>(result_bytes) / lp.bandwidth_Bps;
  const double down = static_cast<double>(input_bytes) / lp.bandwidth_Bps;

  double makespan = 0;
  for (std::size_t f = 0; f < frames; ++f) {
    // Greedy: next frame to the earliest-free worker.
    std::size_t best = 0;
    for (std::size_t w = 1; w < workers; ++w) {
      if (ws[w].free_at < ws[best].free_at) best = w;
    }
    const double start = ws[best].free_at + lp.base_latency_s + down;
    const double done = start + compute_s + up + lp.base_latency_s;
    ws[best].free_at = start + compute_s;
    makespan = std::max(makespan, done);
  }
  return makespan;
}

}  // namespace

int main() {
  std::printf("E2: galaxy animation farm (paper Case 1)\n\n");

  // (a) real thread-pool speedup.
  galaxy::SimulationSpec spec;
  spec.n_particles = 20000;
  spec.n_frames = 48;
  galaxy::View view;
  view.grid = 192;

  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  std::printf("(a) real SPH renders, %zu frames x %zu particles, grid %u "
              "(this host: %u core%s -- speedup is capped at %u; the "
              "consumer grid exists precisely because one box runs out of "
              "cores)\n",
              spec.n_frames, spec.n_particles, view.grid, cores,
              cores == 1 ? "" : "s", cores);
  std::printf("%-8s %-12s %-10s %-12s\n", "workers", "seconds", "speedup",
              "ideal-capped");
  const double t1 = render_all_threaded(1, spec, view);
  for (unsigned w : {1u, 2u, 4u, 8u}) {
    const double t = (w == 1) ? t1 : render_all_threaded(w, spec, view);
    std::printf("%-8u %-12.3f %-10.2f %-12u\n", w, t, t1 / t,
                std::min(w, cores));
  }

  // (b) simulated consumer grid, 5 s/frame renders (2003-era PC).
  const std::size_t frames = 200;
  const double compute_s = 5.0;
  const std::size_t image_bytes = 128 * 128 * 8;      // one frame out
  const std::size_t snapshot_bytes = 20000 * 4 * 8;   // data file per frame

  std::printf("\n(b) simulated consumer grid, %zu frames x %.0f s renders, "
              "DSL links (%.0f kB/s)\n",
              frames, compute_s, 128.0);
  std::printf("%-8s %-22s %-22s\n", "", "regenerate-locally",
              "ship-snapshot-per-frame");
  std::printf("%-8s %-10s %-10s %-10s %-10s\n", "peers", "makespan",
              "speedup", "makespan", "speedup");
  const double base =
      simulated_makespan(1, frames, compute_s, 0, image_bytes);
  for (std::size_t w : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const double regen =
        simulated_makespan(w, frames, compute_s, 0, image_bytes);
    const double ship =
        simulated_makespan(w, frames, compute_s, snapshot_bytes, image_bytes);
    std::printf("%-8zu %-10.0f %-10.2f %-10.0f %-10.2f\n", w, regen,
                base / regen, ship, base / ship);
  }
  std::printf(
      "\nShape check (paper): near-linear speedup -- 'a fraction of the "
      "time ... on a single machine'; shipping the data file per frame "
      "erodes it on consumer uplinks.\n");
  return 0;
}
