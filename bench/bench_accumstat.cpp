// E1 -- reproduce Figures 1-2: the AccumStat network recovers a tone
// buried in noise as iterations accumulate.
//
// Paper (3.1): "a simple network that creates a sine wave, contaminates it
// with Gaussian-noise, takes its power spectrum and then uses a unit called
// AccumStat to average the spectra over successive iterations to remove the
// noise ... one taken after the first iteration (notice that the signal is
// buried in the noise) and the other after 20 iterations".
//
// The series below prints tone visibility (signal-bin power over the
// strongest noise bin) against iteration count, averaged over independent
// seeds: < 1 means buried, > 1 means the peak stands clear. The paper's
// figure pair corresponds to rows 1 and 20.
#include <cstdio>

#include "core/engine/runtime.hpp"
#include "core/unit/builtin.hpp"
#include "dsp/stats.hpp"

using namespace cg;

namespace {

core::TaskGraph figure1(double amplitude) {
  core::TaskGraph g("figure1");
  core::ParamSet wave;
  wave.set_double("freq", 50.0);
  wave.set_double("rate", 512.0);
  wave.set_int("samples", 512);
  wave.set_double("amplitude", amplitude);
  g.add_task("Wave", "Wave", wave);
  core::ParamSet noise;
  noise.set_double("stddev", 1.0);
  g.add_task("Gaussian", "Gaussian", noise);
  g.add_task("FFT", "FFT");
  g.add_task("AccumStat", "AccumStat");
  g.add_task("Grapher", "Grapher");
  g.connect("Wave", 0, "Gaussian", 0);
  g.connect("Gaussian", 0, "FFT", 0);
  g.connect("FFT", 0, "AccumStat", 0);
  g.connect("AccumStat", 0, "Grapher", 0);
  return g;
}

double visibility(const core::DataItem& item, double tone_hz) {
  const auto& sp = item.spectrum();
  const auto bin = static_cast<std::size_t>(tone_hz / sp.bin_width + 0.5);
  double noise_max = 0;
  for (std::size_t i = 1; i < sp.power.size(); ++i) {
    if (i != bin) noise_max = std::max(noise_max, sp.power[i]);
  }
  return sp.power[bin] / noise_max;
}

}  // namespace

int main() {
  std::printf("E1: AccumStat noise averaging (paper Fig. 1-2)\n");
  std::printf("tone 50 Hz, amplitude 0.15, noise sigma 1.0, 512 samples @ "
              "512 Hz, 20 seeds\n\n");
  std::printf("%-11s %-22s %-10s\n", "iterations", "visibility mean+/-sd",
              "buried?");

  const int kSeeds = 20;
  const int kIterations[] = {1, 2, 4, 8, 16, 20, 32};
  const int kMax = 32;

  // One runtime per seed, sampled at each milestone.
  std::vector<std::unique_ptr<core::GraphRuntime>> runtimes;
  core::UnitRegistry registry = core::UnitRegistry::with_builtins();
  core::TaskGraph g = figure1(0.15);
  for (int s = 0; s < kSeeds; ++s) {
    runtimes.push_back(std::make_unique<core::GraphRuntime>(
        g, registry,
        core::RuntimeOptions{.rng_seed = 100u + static_cast<std::uint64_t>(s)}));
    runtimes.back()->run(kMax);
  }

  for (int iters : kIterations) {
    dsp::RunningStats vis;
    for (auto& rt : runtimes) {
      const auto& items = rt->unit_as<core::GrapherUnit>("Grapher")->items();
      vis.add(visibility(items.at(iters - 1), 50.0));
    }
    std::printf("%-11d %6.2f +/- %-12.2f %-10s\n", iters, vis.mean(),
                vis.stddev(), vis.mean() < 1.2 ? "yes" : "no");
  }
  std::printf(
      "\nShape check (paper): buried at iteration 1, clearly visible by "
      "20; visibility grows with accumulation.\n");
  return 0;
}
