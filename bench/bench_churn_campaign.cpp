// E12 -- churn-at-scale chaos campaign: adaptive detection under volunteer
// availability.
//
// The paper's consumer grid runs on hosts that suffer "various types of
// downtime e.g. connection lost, user intervenes" (3.6.2). E9 measures what
// such a population offers; this campaign measures what the supervised
// runtime actually EXTRACTS from it. A ~120-peer farm (home + 40 fragment
// hosts + 80 spares, star overlay) streams work for four simulated minutes
// while every non-home peer follows its own sampled churn::PoissonChurn
// availability trace -- hosts drop, return as fenced zombies, and drop
// again. The sweep crosses two churn climates with three phi-accrual
// conviction thresholds (SupervisorOptions::phi_dead):
//
//   calm    long sessions, short blips   (DSL drops: up ~10 min, down ~10 s)
//   stormy  short sessions, long outages (up ~90 s, down ~45 s)
//
// Reported per scenario (rows keyed "scenario"): completion rate (items
// delivered / items injected -- the gated metric), recovery counts and
// failure-detection -> recovery-complete latency quantiles from the obs
// histogram, and the cost side of the trade: recoveries aborted on a
// returning host, spares wasted on silent redeploys, and stale-epoch
// payloads the fences absorbed (work the grid paid for but could not use).
// An aggressive threshold (phi 4) convicts during calm blips -- fast
// recoveries, wasted spares; a patient one (phi 12) rides the blips out but
// leaves stormy fragments dark for longer. The campaign prints that trade
// instead of asserting a winner; the CI gate only insists the completion
// floor holds.
//
// Machine-readable output: --json PATH writes BENCH_churn.json for
// scripts/bench_compare.py (--key scenario --metric completion_rate).
// --trace PATH reruns a small calm scenario with the causal tracer bound to
// the whole stack and exports merged JSONL for congrid-trace --validate.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "churn/availability.hpp"
#include "core/service/supervisor.hpp"
#include "core/unit/builtin.hpp"
#include "net/sim_network.hpp"
#include "obs/http_server.hpp"
#include "obs/obs.hpp"

using namespace cg;
using namespace cg::core;

namespace {

UnitRegistry& reg() {
  static UnitRegistry r = UnitRegistry::with_builtins();
  return r;
}

/// Campaign shape. Sim node ids: home = 0, fragment hosts 1..workers,
/// spares workers+1..workers+spares.
struct CampaignSpec {
  std::string scenario;  ///< row key, e.g. "calm/phi8"
  double mean_up_s = 0;
  double mean_down_s = 0;
  double phi_dead = 8.0;
  std::size_t workers = 40;
  std::size_t spares = 80;
  double warmup_s = 20.0;    ///< deploy + first probes, churn held off
  double churn_s = 220.0;    ///< churned streaming window
  double drain_s = 40.0;     ///< everyone back up, stragglers settle
  double burst_period_s = 5.0;
  std::uint64_t burst_items = 12;
  std::uint64_t seed = 12;
};

struct Row {
  std::string scenario;
  double phi_dead = 0;
  std::size_t peers = 0;
  std::uint64_t items_expected = 0;
  std::uint64_t items_done = 0;
  double completion_rate = 0;  ///< gated metric
  std::uint64_t failures_detected = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t recoveries_failed = 0;
  std::uint64_t recoveries_aborted = 0;
  std::uint64_t redeploys_timed_out = 0;
  std::uint64_t fences_sent = 0;
  std::uint64_t payloads_fenced = 0;   ///< zombie work absorbed by fences
  std::uint64_t payloads_bounced = 0;  ///< refused by suspended hosts
  std::uint64_t degraded = 0;          ///< fragments lost for good
  double recovery_p50_s = 0;
  double recovery_p95_s = 0;
};

TaskGraph farm_graph() {
  TaskGraph inner("inner");
  ParamSet sp;
  sp.set_double("factor", 3.0);
  inner.add_task("Scale", "Scaler", sp);
  TaskGraph g("e12");
  ParamSet wp;
  wp.set_int("samples", 64);
  g.add_task("Wave", "Wave", wp);
  TaskDef& grp = g.add_group("G", std::move(inner), "parallel");
  grp.group_inputs = {GroupPort{"Scale", 0}};
  grp.group_outputs = {GroupPort{"Scale", 0}};
  g.add_task("Sink", "Grapher");
  g.connect("Wave", 0, "G", 0);
  g.connect("G", 0, "Sink", 0);
  return g;
}

/// Turn an availability trace (relative to the churn window) into
/// scheduled set_up toggles: down in every gap, forced back up when the
/// drain begins so zombies return to be fenced and acks flush.
void apply_trace(net::SimNetwork& net, std::uint32_t node,
                 const churn::Trace& t, double t0, double window_s) {
  const auto down_at = [&](double rel) {
    if (rel < window_s) net.schedule(t0 + rel, [&net, node] {
      net.set_up(node, false);
    });
  };
  const auto up_at = [&](double rel) {
    if (rel < window_s) net.schedule(t0 + rel, [&net, node] {
      net.set_up(node, true);
    });
  };
  if (t.empty()) {
    down_at(0.0);
  } else {
    if (t.front().start > 0.0) {
      down_at(0.0);
      up_at(t.front().start);
    }
    for (std::size_t i = 0; i < t.size(); ++i) {
      down_at(t[i].end);
      if (i + 1 < t.size()) up_at(t[i + 1].start);
    }
  }
  net.schedule(t0 + window_s, [&net, node] { net.set_up(node, true); });
}

Row run_campaign(const CampaignSpec& spec, obs::Registry* obs_registry,
                 obs::Tracer* tracer) {
  net::SimNetwork net({}, spec.seed);
  auto clock = [&net] { return net.now(); };
  auto sched = [&net](double d, std::function<void()> fn) {
    net.schedule(d, std::move(fn));
  };
  // Data must survive multi-round outages: generous retry budget, like the
  // chaos tests.
  net::ReliableConfig rel;
  rel.deadline_s = 60.0;
  rel.max_retries = 12;

  ServiceConfig hc;
  hc.peer_id = "home";
  hc.reliable = rel;
  TrianaService home(net.add_node(), clock, sched, reg(), hc);
  std::vector<std::unique_ptr<TrianaService>> peers;  // workers then spares
  std::vector<net::Endpoint> worker_eps, spare_eps;
  for (std::size_t i = 0; i < spec.workers + spec.spares; ++i) {
    ServiceConfig cfg;
    cfg.peer_id = (i < spec.workers ? "w" : "s") + std::to_string(i);
    cfg.reliable = rel;
    peers.push_back(std::make_unique<TrianaService>(net.add_node(), clock,
                                                    sched, reg(), cfg));
    home.node().add_neighbor(peers.back()->endpoint());
    peers.back()->node().add_neighbor(home.endpoint());
    (i < spec.workers ? worker_eps : spare_eps)
        .push_back(peers.back()->endpoint());
  }
  const std::string scope = "e12." + spec.scenario;
  if (obs_registry != nullptr) {
    net.set_obs(*obs_registry, tracer, scope + ".net");
    home.set_obs(*obs_registry, tracer, scope + ".home");
    // Every peer's transport must be bound too, or an exported trace has
    // receives with no matching sends and fails validation.
    for (std::size_t i = 0; i < peers.size(); ++i) {
      peers[i]->set_obs(*obs_registry, tracer,
                        scope + "." + peers[i]->id());
    }
  }

  TaskGraph g = farm_graph();
  home.publish_graph_modules(g);
  TrianaController ctl(home);
  auto run = ctl.distribute(g, "G", worker_eps);

  SupervisorOptions opt;
  opt.checkpoint_period_s = 8.0;
  opt.probe_period_s = 2.0;
  // Conviction is the phi sweep's job: keep the bootstrap missed-probe
  // fallback as a far-out hard cap only.
  opt.max_missed = 12;
  opt.detector_min_std_s = 2.0;
  opt.phi_suspect = spec.phi_dead / 2.0;
  opt.phi_dead = spec.phi_dead;
  opt.lease_s = 8.0;
  opt.redeploy_timeout_s = 10.0;
  auto sup = std::make_shared<RunSupervisor>(ctl, run, spare_eps, opt);
  if (obs_registry != nullptr) sup->set_obs(*obs_registry, tracer, scope);

  // Every non-home peer follows its own availability trace once the
  // warmup ends. One Rng for the whole population: per-peer traces differ
  // but the campaign replays bit-for-bit.
  churn::PoissonChurnModel model(spec.mean_up_s, spec.mean_down_s);
  dsp::Rng churn_rng(spec.seed ^ 0xC4A2u);
  for (std::size_t i = 0; i < peers.size(); ++i) {
    const auto trace = model.sample(spec.churn_s, churn_rng);
    apply_trace(net, static_cast<std::uint32_t>(i + 1), trace, spec.warmup_s,
                spec.churn_s);
  }

  net.run_until(5.0);
  if (!run->deployed_ok()) {
    std::fprintf(stderr, "bench_churn_campaign: deploy failed (%s)\n",
                 run->errors.empty() ? "missing acks"
                                     : run->errors[0].c_str());
    std::exit(1);
  }
  sup->start();

  // Streamed load: a burst every few seconds across the churn window.
  Row row;
  row.scenario = spec.scenario;
  row.phi_dead = spec.phi_dead;
  row.peers = 1 + peers.size();
  for (double t = spec.warmup_s; t < spec.warmup_s + spec.churn_s - 10.0;
       t += spec.burst_period_s) {
    net.schedule(t, [&ctl, &run, &spec] { ctl.tick(*run, spec.burst_items); });
    row.items_expected += spec.burst_items;
  }

  const double horizon = spec.warmup_s + spec.churn_s + spec.drain_s;
  net.run_until(horizon);
  sup->stop();

  row.items_done =
      ctl.home_runtime(*run)->unit_as<GrapherUnit>("Sink")->items().size();
  row.completion_rate = row.items_expected == 0
                            ? 0.0
                            : static_cast<double>(row.items_done) /
                                  static_cast<double>(row.items_expected);
  const SupervisorStats& st = sup->stats();
  row.failures_detected = st.failures_detected;
  row.recoveries = st.recoveries;
  row.recoveries_failed = st.recoveries_failed;
  row.recoveries_aborted = st.recoveries_aborted;
  row.redeploys_timed_out = st.redeploys_timed_out;
  row.fences_sent = st.fences_sent;
  row.payloads_fenced = home.pipes().stats().payloads_fenced;
  for (const auto& p : peers) {
    row.payloads_fenced += p->pipes().stats().payloads_fenced;
    row.payloads_bounced += p->stats().payloads_bounced;
  }
  for (std::size_t i = 0; i < spec.workers; ++i) {
    if (sup->degraded(i)) ++row.degraded;
  }
  if (obs_registry != nullptr) {
    // One extraction path for table, JSON artifact and live /metrics: the
    // snapshot's quantile helper (test_obs pins both against a fixture).
    const auto snap = obs_registry->snapshot();
    const std::string hist = obs::scoped(scope, "supervisor.recovery_s");
    row.recovery_p50_s = snap.histogram_quantile(hist, 0.50);
    row.recovery_p95_s = snap.histogram_quantile(hist, 0.95);
  }

  // Close every deploy span before a trace export: cancel the remotes and
  // let the cancels (and any zombie fences) drain.
  ctl.shutdown(*run);
  net.run_until(horizon + 30.0);
  return row;
}

std::string rows_json(const std::vector<Row>& rows) {
  std::string out = "[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    if (i) out += ',';
    out += "{\"scenario\":" + obs::json_quote(r.scenario);
    out += ",\"phi_dead\":" + obs::json_number(r.phi_dead);
    out += ",\"peers\":" + std::to_string(r.peers);
    out += ",\"items_expected\":" + std::to_string(r.items_expected);
    out += ",\"items_done\":" + std::to_string(r.items_done);
    out += ",\"completion_rate\":" + obs::json_number(r.completion_rate);
    out += ",\"failures_detected\":" + std::to_string(r.failures_detected);
    out += ",\"recoveries\":" + std::to_string(r.recoveries);
    out += ",\"recoveries_failed\":" + std::to_string(r.recoveries_failed);
    out += ",\"recoveries_aborted\":" + std::to_string(r.recoveries_aborted);
    out += ",\"redeploys_timed_out\":" + std::to_string(r.redeploys_timed_out);
    out += ",\"fences_sent\":" + std::to_string(r.fences_sent);
    out += ",\"payloads_fenced\":" + std::to_string(r.payloads_fenced);
    out += ",\"payloads_bounced\":" + std::to_string(r.payloads_bounced);
    out += ",\"degraded\":" + std::to_string(r.degraded);
    out += ",\"recovery_p50_s\":" + obs::json_number(r.recovery_p50_s);
    out += ",\"recovery_p95_s\":" + obs::json_number(r.recovery_p95_s);
    out += "}";
  }
  out += "]";
  return out;
}

bool write_text(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "bench_churn_campaign: cannot open %s\n",
                 path.c_str());
    return false;
  }
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string trace_path;
  int obs_port = -1;       // -1: no server; 0: ephemeral
  double obs_linger = 0;   // keep serving after the campaign ends
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--obs-port") == 0 && i + 1 < argc) {
      obs_port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--obs-linger") == 0 && i + 1 < argc) {
      obs_linger = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_churn_campaign [--json PATH] [--trace PATH] "
                   "[--obs-port PORT] [--obs-linger SECONDS]\n");
      return 2;
    }
  }

  CampaignSpec base;
  std::printf("E12: churn-at-scale campaign, %zu peers (1 home + %zu "
              "fragments + %zu spares), %.0f s churned window\n\n",
              1 + base.workers + base.spares, base.workers, base.spares,
              base.churn_s);
  std::printf("%-13s %-6s %-7s %-6s %-5s %-7s %-7s %-7s %-7s %-7s %-5s "
              "%-8s %-8s\n",
              "scenario", "phi", "done", "rate", "det", "recov", "abort",
              "failed", "fenced", "bounce", "degr", "p50 s", "p95 s");

  struct Climate {
    const char* name;
    double mean_up_s;
    double mean_down_s;
  };
  const Climate climates[] = {
      {"calm", 600.0, 10.0},   // long sessions, screensaver blips
      {"stormy", 90.0, 45.0},  // volunteer rush hour
  };

  obs::Registry registry;
  // --obs-port: serve the campaign's registry (and a live trace ring) over
  // loopback HTTP while the sweep runs. Binding the tracer does not change
  // sim behaviour (PR 5 invariant: obs never feeds back into scheduling).
  obs::Tracer live_tracer(1 << 15);
  obs::HttpServerOptions server_opt;
  server_opt.port = static_cast<std::uint16_t>(obs_port > 0 ? obs_port : 0);
  obs::HttpServer server(registry, &live_tracer, server_opt);
  obs::Tracer* campaign_tracer = nullptr;
  if (obs_port >= 0) {
    if (!server.start()) {
      std::fprintf(stderr, "bench_churn_campaign: --obs-port %d: bind "
                           "failed or obs compiled out\n", obs_port);
      return 1;
    }
    campaign_tracer = &live_tracer;
    std::printf("obs: live metrics at %s (Prometheus: /metrics, JSON: "
                "/metrics.json, trace: /trace)\n\n", server.url().c_str());
  }

  std::vector<Row> rows;
  for (const Climate& c : climates) {
    for (double phi : {4.0, 8.0, 12.0}) {
      CampaignSpec spec = base;
      spec.scenario =
          std::string(c.name) + "/phi" + std::to_string(static_cast<int>(phi));
      spec.mean_up_s = c.mean_up_s;
      spec.mean_down_s = c.mean_down_s;
      spec.phi_dead = phi;
      Row row = run_campaign(spec, &registry, campaign_tracer);
      rows.push_back(row);
      std::printf("%-13s %-6.0f %-7llu %-6.3f %-5llu %-7llu %-7llu %-7llu "
                  "%-7llu %-7llu %-5llu %-8.2f %-8.2f\n",
                  row.scenario.c_str(), row.phi_dead,
                  static_cast<unsigned long long>(row.items_done),
                  row.completion_rate,
                  static_cast<unsigned long long>(row.failures_detected),
                  static_cast<unsigned long long>(row.recoveries),
                  static_cast<unsigned long long>(row.recoveries_aborted),
                  static_cast<unsigned long long>(row.recoveries_failed),
                  static_cast<unsigned long long>(row.payloads_fenced),
                  static_cast<unsigned long long>(row.payloads_bounced),
                  static_cast<unsigned long long>(row.degraded),
                  row.recovery_p50_s, row.recovery_p95_s);
    }
  }

  std::printf(
      "\nShape check: calm blips ride below every threshold (detections "
      "identical across phi, completion stays at 1.0 -- the reliable layer "
      "and bind retries absorb 10 s outages without convicting anyone). "
      "The stormy climate exposes the trade: phi 4 convicts eagerly, so "
      "more recoveries fire and the spare pool burns down to degraded "
      "fragments, while phi 12 convicts tens of deaths fewer, keeps every "
      "fragment alive, but leaves them dark longer (recovery p95 grows). "
      "The fences keep the ledger honest either way: returning zombies' "
      "stale work is counted and dropped, never double-applied, and the "
      "completion floor holds.\n");

  if (!json_path.empty()) {
    const std::string body =
        "{\"bench\":\"churn\",\"rows\":" + rows_json(rows) +
        ",\"metrics\":" + registry.snapshot().to_json(/*pretty=*/false) + "}";
    if (!obs::json_valid(body)) {
      std::fprintf(stderr,
                   "bench_churn_campaign: refusing to write invalid JSON\n");
      return 1;
    }
    if (!write_text(json_path, body)) return 1;
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  // --trace: rerun a pocket-sized calm scenario with the causal tracer on
  // the whole stack; the export is structurally complete (every span ends)
  // so congrid-trace --validate accepts it.
  if (!trace_path.empty()) {
    obs::Registry trace_registry;
    obs::Tracer tracer(1 << 16);
    CampaignSpec tiny;
    tiny.scenario = "trace";
    tiny.mean_up_s = 60.0;
    tiny.mean_down_s = 15.0;
    tiny.phi_dead = 8.0;
    tiny.workers = 6;
    tiny.spares = 6;
    tiny.churn_s = 80.0;
    tiny.burst_items = 4;
    (void)run_campaign(tiny, &trace_registry, &tracer);
    const std::string jsonl = tracer.to_jsonl();
    if (jsonl.empty()) {
      std::printf("\ntracing compiled out (CONGRID_OBS=OFF); %s not written\n",
                  trace_path.c_str());
    } else {
      if (!write_text(trace_path, jsonl)) return 1;
      std::printf("wrote %s\n", trace_path.c_str());
    }
  }

  // --obs-linger: keep answering scrapes after the sweep so a dashboard or
  // CI curl that raced the campaign's end still gets the final numbers.
  if (server.running() && obs_linger > 0) {
    std::printf("obs: lingering %.0f s at %s\n", obs_linger,
                server.url().c_str());
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::duration<double>(obs_linger));
  }
  server.stop();
  return 0;
}
