// E9 -- idle-cycle harvesting yield (paper 3.7).
//
// "users would altruistically make their computers CPU and RAM available
// ... when their workstation is idle i.e. when the screen saver turns on"
// (the Condor / SETI@home model). For each availability model we sample
// 1,000 peers over a week and report: raw availability, mean idle-session
// length, and the fraction of wall-clock that converts into *finished*
// tasks of various lengths without checkpointing -- long tasks waste the
// tail of every session, which is exactly why the paper needs either small
// work units or the E8 checkpointing.
//
// --json PATH writes the table as machine-readable rows keyed "model".
#include <cstdio>
#include <cstring>
#include <string>

#include "churn/availability.hpp"
#include "dsp/stats.hpp"
#include "obs/json.hpp"

using namespace cg;

namespace {

bool write_text(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "bench_availability: cannot open %s\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_availability [--json PATH]\n");
      return 2;
    }
  }

  std::printf("E9: volunteer availability models, 1000 peers x 1 week\n\n");
  std::printf("%-28s %-10s %-12s | usable fraction for task length\n",
              "model", "avail", "session h");
  std::printf("%-28s %-10s %-12s %-9s %-9s %-9s\n", "", "", "", "10 min",
              "1 h", "5 h");

  const double week = 7 * 86400.0;
  const int kPeers = 1000;
  const double tasks_s[] = {600.0, 3600.0, 5 * 3600.0};

  churn::AlwaysOnModel always;
  churn::PoissonChurnModel stable(12 * 3600.0, 3600.0);
  churn::PoissonChurnModel flaky(3600.0, 1800.0);
  churn::DiurnalIdleModel office;  // defaults: busy 9-18
  churn::DiurnalIdleModel::Options heavy_opts;
  heavy_opts.p_idle_work_hours = 0.05;
  heavy_opts.p_idle_off_hours = 0.70;
  heavy_opts.mean_interrupt_gap_s = 3600.0;
  churn::DiurnalIdleModel heavy_use(heavy_opts);

  struct Row {
    const char* name;
    const churn::AvailabilityModel* model;
  };
  const Row rows[] = {
      {"dedicated (always on)", &always},
      {"stable DSL (12h/1h)", &stable},
      {"flaky DSL (1h/30m)", &flaky},
      {"office screensaver", &office},
      {"heavily used desktop", &heavy_use},
  };

  std::string rows_json = "[";
  bool first = true;
  for (const Row& row : rows) {
    dsp::Rng rng(2026);
    dsp::RunningStats avail, session;
    dsp::RunningStats usable[3];
    for (int p = 0; p < kPeers; ++p) {
      const auto trace = row.model->sample(week, rng);
      avail.add(churn::availability_fraction(trace, week));
      session.add(churn::mean_session_length(trace) / 3600.0);
      for (int t = 0; t < 3; ++t) {
        const auto done = churn::completed_tasks(trace, week, tasks_s[t]);
        usable[t].add(static_cast<double>(done) * tasks_s[t] / week);
      }
    }
    std::printf("%-28s %-10.2f %-12.1f %-9.2f %-9.2f %-9.2f\n", row.name,
                avail.mean(), session.mean(), usable[0].mean(),
                usable[1].mean(), usable[2].mean());
    if (!first) rows_json += ',';
    first = false;
    rows_json += "{\"model\":" + obs::json_quote(row.name);
    rows_json += ",\"availability\":" + obs::json_number(avail.mean());
    rows_json += ",\"session_h\":" + obs::json_number(session.mean());
    rows_json += ",\"usable_10min\":" + obs::json_number(usable[0].mean());
    rows_json += ",\"usable_1h\":" + obs::json_number(usable[1].mean());
    rows_json += ",\"usable_5h\":" + obs::json_number(usable[2].mean());
    rows_json += "}";
  }
  rows_json += "]";

  std::printf(
      "\nShape check (paper 3.7): volunteer populations deliver a large "
      "but discounted fraction of their nominal CPU; the discount grows "
      "sharply with task length because partial sessions are wasted -- the "
      "SETI@home design point (small work units) and the motivation for "
      "checkpointing (E8).\n");

  if (!json_path.empty()) {
    const std::string body =
        "{\"bench\":\"availability\",\"peers\":" + std::to_string(kPeers) +
        ",\"rows\":" + rows_json + "}";
    if (!obs::json_valid(body)) {
      std::fprintf(stderr,
                   "bench_availability: refusing to write invalid JSON\n");
      return 1;
    }
    if (!write_text(json_path, body)) return 1;
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
