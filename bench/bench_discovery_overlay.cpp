// E14 -- structured overlay vs flooding at consumer-grid populations.
//
// E4 measures how flooding's per-query cost tracks the edge count; this
// experiment races the structured overlay (Kademlia-style routing +
// sharded attribute rendezvous, src/p2p/overlay.hpp) against that
// baseline at 10^4..10^6 simulated peers. The paper's section 4 motivates
// exactly this: flooding "severely restricts the scalability" of
// discovery once a very large number of consumer nodes participate.
//
// Setup: N peers on one simulated network. 64 provider peers advertise
// cpu_mhz capabilities spread over [0, 4000); 20 random queriers ask for
// cpu_mhz >= 3000 (a 4-shard band of the 16-shard federation). Flooding
// answers from peer caches over a random ~4-regular graph at TTL 64; the
// overlay answers from shard replicas reached by iterative XOR lookups.
// Each querier starts with a cold replica cache, so overlay rows pay the
// full lookup cost, not just the steady-state two messages per shard.
//
// Routing tables are seeded lazily: node ids are kept in one sorted
// array, and bucket b of node x covers the contiguous id range
// [(x ^ 2^b) & ~(2^b - 1), +2^b), so sampling a bucket is a binary
// search. Only nodes a lookup actually touches ever build a table, which
// is what makes the 10^6 row affordable. Flooding is skipped at 10^6 --
// wiring and walking ~4e6 edges per query adds minutes of wall clock for
// a number E4's linear fit already predicts -- and the skip is printed.
//
// Machine-readable output: --json PATH writes every table row (the
// discovery-scale CI job gates msgs_per_query and latency_p95_ms against
// bench/baselines/overlay.json); --trace PATH reruns a pocket-sized
// overlay publish+find with the causal tracer bound and writes JSONL for
// congrid-trace --validate; --max-peers N truncates the sweep.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "dsp/rng.hpp"
#include "dsp/stats.hpp"
#include "net/sim_network.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "p2p/node_id.hpp"
#include "p2p/overlay.hpp"
#include "p2p/peer_node.hpp"

using namespace cg;

namespace {

constexpr int kQueries = 20;
constexpr std::size_t kProviders = 64;
constexpr double kCpuMin = 3000.0;  // matches the top 16 providers

p2p::Query wanted_query() {
  p2p::Query q;
  q.kind = p2p::AdvertKind::kPeer;
  q.require_min["cpu_mhz"] = kCpuMin;
  return q;
}

/// Per-bucket bootstrap from the globally sorted id list (see header
/// comment): at most `per_bucket` contacts per bucket, found by binary
/// search instead of an eager join protocol.
std::vector<p2p::Contact> sample_buckets(
    p2p::NodeId self,
    const std::vector<std::pair<std::uint64_t, net::Endpoint>>& sorted,
    std::size_t per_bucket) {
  std::vector<p2p::Contact> out;
  for (int b = 0; b < 64; ++b) {
    const std::uint64_t mask = (b == 0) ? 0 : ((1ull << b) - 1);
    const std::uint64_t base = (self.bits ^ (1ull << b)) & ~mask;
    const std::uint64_t last = base | mask;
    auto it = std::lower_bound(
        sorted.begin(), sorted.end(), base,
        [](const auto& p, std::uint64_t v) { return p.first < v; });
    for (std::size_t n = 0;
         it != sorted.end() && it->first <= last && n < per_bucket;
         ++it, ++n) {
      out.push_back(p2p::Contact{p2p::NodeId{it->first}, it->second});
    }
  }
  return out;
}

/// N peers sharing one SimNetwork, with an OverlayNode per peer and
/// (optionally) a flooding graph. The sorted id list is shared through a
/// shared_ptr so the per-node OverlayConfig copies stay O(1).
struct Swarm {
  Swarm(std::size_t n, std::uint64_t seed, bool wire_flood_graph)
      : net({}, seed), rng(seed) {
    nodes.reserve(n);
    overlays.reserve(n);
    auto sorted = std::make_shared<
        std::vector<std::pair<std::uint64_t, net::Endpoint>>>();
    sorted->reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      auto& t = net.add_node();
      nodes.push_back(std::make_unique<p2p::PeerNode>(
          t, [this] { return net.now(); },
          p2p::PeerConfig{.peer_id = "p" + std::to_string(i)}));
      sorted->emplace_back(p2p::node_id_of(nodes.back()->id()).bits,
                           nodes.back()->endpoint());
    }
    std::sort(sorted->begin(), sorted->end());
    p2p::OverlayConfig cfg;
    cfg.bootstrap = [sorted](p2p::NodeId self) {
      return sample_buckets(self, *sorted, 2);
    };
    auto sched = [this](double d, std::function<void()> fn) {
      net.schedule(d, std::move(fn));
    };
    for (std::size_t i = 0; i < n; ++i) {
      overlays.push_back(
          std::make_unique<p2p::OverlayNode>(*nodes[i], sched, cfg));
      overlays.back()->enable_index();
    }
    if (wire_flood_graph) {
      // Ring + random chords: connected, mean degree ~4 (as E4).
      for (std::size_t i = 0; i < n; ++i) {
        link(i, (i + 1) % n);
        link(i, rng.below(n));
      }
    }
  }

  void link(std::size_t a, std::size_t b) {
    if (a == b) return;
    nodes[a]->add_neighbor(nodes[b]->endpoint());
    nodes[b]->add_neighbor(nodes[a]->endpoint());
  }

  /// Providers publish into peer caches (flooding's plane) and onto the
  /// shard federation (the overlay's). Returns overlay publish messages.
  std::uint64_t plant_adverts() {
    const std::uint64_t msgs0 = net.stats().messages_sent;
    const std::size_t n = nodes.size();
    for (std::size_t p = 0; p < kProviders; ++p) {
      const std::size_t who = (p * (n / kProviders)) % n;
      const double cpu = 4000.0 * static_cast<double>(p) / kProviders;
      auto a = nodes[who]->make_peer_advert(
          {{"cpu_mhz", std::to_string(cpu)}});
      a.expires_at = 1e18;  // capability adverts outlive the whole run
      nodes[who]->publish_local(a);
      overlays[who]->publish({a});
      providers.push_back(who);
    }
    net.run_all();
    return net.stats().messages_sent - msgs0;
  }

  net::SimNetwork net;
  dsp::Rng rng;
  std::vector<std::unique_ptr<p2p::PeerNode>> nodes;
  std::vector<std::unique_ptr<p2p::OverlayNode>> overlays;
  std::vector<std::size_t> providers;
};

struct Outcome {
  double msgs_per_query = 0;
  double success_rate = 0;
  double latency_ms = 0;      ///< mean time-to-answer among successes
  double latency_p95_ms = 0;  ///< 95th percentile of the same
};

double p95(std::vector<double> v) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = (v.size() * 95 + 99) / 100;  // ceil(0.95 n)
  return v[std::min(idx == 0 ? 0 : idx - 1, v.size() - 1)];
}

Outcome run_flooding(Swarm& s) {
  const std::size_t n = s.nodes.size();
  int successes = 0;
  std::vector<double> lat;
  double total_msgs = 0;
  for (int qn = 0; qn < kQueries; ++qn) {
    const std::size_t origin = s.rng.below(n);
    const std::uint64_t msgs0 = s.net.stats().messages_sent;
    const double t0 = s.net.now();
    bool hit = false;
    double hit_at = 0;
    s.nodes[origin]->discover_flood(
        wanted_query(), 64, [&](const std::vector<p2p::Advertisement>&) {
          if (!hit) {
            hit = true;
            hit_at = s.net.now();
          }
        });
    s.net.run_all();
    total_msgs += static_cast<double>(s.net.stats().messages_sent - msgs0);
    if (hit) {
      ++successes;
      lat.push_back((hit_at - t0) * 1000.0);
    }
  }
  dsp::RunningStats mean;
  for (double l : lat) mean.add(l);
  return Outcome{total_msgs / kQueries,
                 static_cast<double>(successes) / kQueries,
                 lat.empty() ? 0.0 : mean.mean(), p95(lat)};
}

Outcome run_overlay(Swarm& s) {
  const std::size_t n = s.nodes.size();
  int successes = 0;
  std::vector<double> lat;
  double total_msgs = 0;
  for (int qn = 0; qn < kQueries; ++qn) {
    const std::size_t origin = s.rng.below(n);
    const std::uint64_t msgs0 = s.net.stats().messages_sent;
    const double t0 = s.net.now();
    bool ok = false;
    double done_at = 0;
    s.overlays[origin]->find(
        wanted_query(), SIZE_MAX, [&](std::vector<p2p::Advertisement> as) {
          ok = !as.empty();
          done_at = s.net.now();
        });
    s.net.run_all();
    total_msgs += static_cast<double>(s.net.stats().messages_sent - msgs0);
    if (ok) {
      ++successes;
      lat.push_back((done_at - t0) * 1000.0);
    }
  }
  dsp::RunningStats mean;
  for (double l : lat) mean.add(l);
  return Outcome{total_msgs / kQueries,
                 static_cast<double>(successes) / kQueries,
                 lat.empty() ? 0.0 : mean.mean(), p95(lat)};
}

struct NamedRow {
  std::string strategy;
  std::size_t peers = 0;
  Outcome o;
};

void print_row(const char* strategy, std::size_t n, const Outcome& o) {
  std::printf("%-10s %-9zu %-14.1f %-9.2f %-12.1f %-12.1f\n", strategy, n,
              o.msgs_per_query, o.success_rate, o.latency_ms,
              o.latency_p95_ms);
}

std::string rows_json(const std::vector<NamedRow>& rows) {
  std::string out = "[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const NamedRow& r = rows[i];
    if (i) out += ',';
    out += "{\"strategy\":" + obs::json_quote(r.strategy);
    out += ",\"peers\":" + std::to_string(r.peers);
    out += ",\"msgs_per_query\":" + obs::json_number(r.o.msgs_per_query);
    out += ",\"success_rate\":" + obs::json_number(r.o.success_rate);
    out += ",\"latency_ms\":" + obs::json_number(r.o.latency_ms);
    out += ",\"latency_p95_ms\":" + obs::json_number(r.o.latency_p95_ms);
    out += "}";
  }
  out += "]";
  return out;
}

bool write_text(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "bench_discovery_overlay: cannot open %s\n",
                 path.c_str());
    return false;
  }
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string trace_path;
  std::size_t max_peers = 1000000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--max-peers") == 0 && i + 1 < argc) {
      max_peers = static_cast<std::size_t>(std::atoll(argv[++i]));
      if (max_peers == 0) {
        std::fprintf(stderr, "bench_discovery_overlay: bad --max-peers\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: bench_discovery_overlay [--max-peers N] "
                   "[--json PATH] [--trace PATH]\n");
      return 2;
    }
  }

  std::printf("E14: structured overlay vs flooding (paper section 4)\n");
  std::printf(
      "64 providers, query cpu_mhz >= %.0f, %d cold-cache queries per "
      "point; overlay row counts query traffic only (publish cost printed "
      "per scale)\n\n",
      kCpuMin, kQueries);
  std::printf("%-10s %-9s %-14s %-9s %-12s %-12s\n", "strategy", "peers",
              "msgs/query", "success", "latency ms", "p95 ms");

  std::vector<NamedRow> rows;
  auto record = [&](const char* strategy, std::size_t n, Outcome o) {
    print_row(strategy, n, o);
    rows.push_back({strategy, n, o});
  };
  for (std::size_t n : {10000u, 100000u, 1000000u}) {
    if (n > max_peers) continue;
    const bool flood = n < 1000000;  // 10^6: ~4e6 edges/query, skipped
    Swarm s(n, 7, flood);
    const std::uint64_t publish_msgs = s.plant_adverts();
    if (flood) {
      record("flooding", n, run_flooding(s));
    } else {
      std::printf(
          "%-10s %-9zu skipped: full flood walks ~%.0e edges per query "
          "(E4's linear fit); overlay below still answers\n",
          "flooding", n, 4.0 * static_cast<double>(n));
    }
    record("overlay", n, run_overlay(s));
    std::printf("%-10s %-9zu one-time publish: %llu msgs for %zu adverts\n\n",
                "", n, static_cast<unsigned long long>(publish_msgs),
                kProviders);
  }
  std::printf(
      "Shape check: flooding pays O(edges) per query, linear in N; the "
      "overlay resolves each of the 4 matching shards with an O(log N) "
      "iterative lookup plus one index round-trip, so its per-query cost "
      "grows sub-linearly from 10^4 to 10^6.\n");

  if (!json_path.empty()) {
    const std::string body = "{\"bench\":\"discovery_overlay\",\"queries\":" +
                             std::to_string(kQueries) +
                             ",\"rows\":" + rows_json(rows) + "}";
    if (!obs::json_valid(body)) {
      std::fprintf(stderr,
                   "bench_discovery_overlay: refusing to write invalid "
                   "JSON\n");
      return 1;
    }
    if (!write_text(json_path, body)) return 1;
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  // --trace: rerun a pocket-sized publish+find with the causal tracer
  // bound to the querier; every lookup/find span ends once the network
  // drains, so congrid-trace --validate accepts the export.
  if (!trace_path.empty()) {
    obs::Registry registry;
    obs::Tracer tracer(1 << 14);
    Swarm tiny(256, 7, false);
    tiny.nodes[0]->set_obs(&tracer, "querier");
    tiny.overlays[0]->set_obs(registry, &tracer, "querier");
    tiny.plant_adverts();
    tiny.overlays[0]->find(wanted_query(), SIZE_MAX,
                           [](std::vector<p2p::Advertisement>) {});
    tiny.net.run_all();
    const std::string jsonl = tracer.to_jsonl();
    if (jsonl.empty()) {
      std::printf("\ntracing compiled out (CONGRID_OBS=OFF); %s not written\n",
                  trace_path.c_str());
    } else {
      if (!write_text(trace_path, jsonl)) return 1;
      std::printf("wrote %s\n", trace_path.c_str());
    }
  }
  return 0;
}
