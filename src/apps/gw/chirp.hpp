// ConGrid -- inspiral chirp waveforms.
//
// The paper's Case 2 (section 3.6.2): compact binaries spiralling together
// emit "a characteristic chirp waveform ... whose amplitude and frequency
// increase with time until eventually the two bodies merge". We model the
// leading-order (Newtonian, quadrupole) chirp: frequency evolves as
// f(t) = f0 * (1 - t/tc)^(-3/8) with tc set by the chirp mass, amplitude
// grows as f^(2/3). GEO600 would supply real strain; our substitution is
// synthetic Gaussian detector noise with optional injected chirps -- the
// matched-filter cost and detection statistics are unchanged.
#pragma once

#include <cstddef>
#include <vector>

#include "dsp/rng.hpp"

namespace cg::gw {

/// Physical/search parameters of one template or injection.
struct ChirpParams {
  double chirp_mass_msun = 1.2;  ///< (m1*m2)^(3/5)/(m1+m2)^(1/5), solar masses
  double f_low_hz = 50.0;        ///< frequency when the template starts
  double f_high_hz = 900.0;      ///< cut-off (approaching merger / Nyquist)
  double sample_rate_hz = 2000.0;  ///< paper: "2,000 samples per second"
};

/// Seconds from f_low to coalescence at leading (Newtonian) order.
double time_to_coalescence_s(const ChirpParams& p);

/// Generate the chirp strain h(t), unit peak amplitude, sampled at
/// p.sample_rate_hz, from f_low until f reaches f_high (or coalescence).
std::vector<double> make_chirp(const ChirpParams& p);

/// GEO600-style data-taking constants (paper 3.6.2).
struct DetectorSpec {
  double sample_rate_hz = 2000.0;  ///< searchable band under 1 kHz
  double chunk_seconds = 900.0;    ///< 15-minute stretches
  std::size_t bytes_per_sample = 4;

  std::size_t samples_per_chunk() const {
    return static_cast<std::size_t>(sample_rate_hz * chunk_seconds);
  }
  /// 4 x 900 x 2000 = 7.2 MB in the paper.
  std::size_t chunk_bytes() const {
    return samples_per_chunk() * bytes_per_sample;
  }
};

/// One synthetic detector chunk: Gaussian noise, optionally with a chirp
/// injected at `inject_at_sample` scaled to `inject_snr_amp` times the
/// noise sigma.
std::vector<double> make_strain_chunk(const DetectorSpec& spec,
                                      dsp::Rng& rng,
                                      const ChirpParams* injection = nullptr,
                                      std::size_t inject_at_sample = 0,
                                      double inject_amp = 0.0,
                                      std::size_t n_samples_override = 0);

}  // namespace cg::gw
