#include "apps/gw/template_bank.hpp"

#include <cmath>
#include <stdexcept>

namespace cg::gw {

double TemplateBank::chirp_mass_for(const BankSpec& spec, std::size_t i) {
  if (spec.n_templates == 0) {
    throw std::invalid_argument("empty bank spec");
  }
  if (spec.n_templates == 1) return spec.min_chirp_mass_msun;
  const double ratio = spec.max_chirp_mass_msun / spec.min_chirp_mass_msun;
  const double t = static_cast<double>(i) /
                   static_cast<double>(spec.n_templates - 1);
  return spec.min_chirp_mass_msun * std::pow(ratio, t);
}

TemplateBank::TemplateBank(const BankSpec& spec) : spec_(spec) {
  templates_.reserve(spec.n_templates);
  params_.reserve(spec.n_templates);
  for (std::size_t i = 0; i < spec.n_templates; ++i) {
    ChirpParams p;
    p.chirp_mass_msun = chirp_mass_for(spec, i);
    p.f_low_hz = spec.f_low_hz;
    p.f_high_hz = spec.f_high_hz;
    p.sample_rate_hz = spec.sample_rate_hz;
    params_.push_back(p);
    templates_.push_back(make_chirp(p));
  }
}

std::size_t TemplateBank::total_bytes() const {
  std::size_t n = 0;
  for (const auto& t : templates_) n += t.size() * sizeof(double);
  return n;
}

}  // namespace cg::gw
