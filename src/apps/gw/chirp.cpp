#include "apps/gw/chirp.hpp"

#include <cmath>
#include <stdexcept>

namespace cg::gw {
namespace {

// Geometrised solar mass in seconds: G*Msun/c^3.
constexpr double kMsunSeconds = 4.925490947e-6;

}  // namespace

double time_to_coalescence_s(const ChirpParams& p) {
  // Newtonian chirp: tc = 5/256 * (pi f)^(-8/3) * M^(-5/3), geometric units.
  const double mc = p.chirp_mass_msun * kMsunSeconds;
  const double pif = M_PI * p.f_low_hz;
  return 5.0 / 256.0 * std::pow(pif, -8.0 / 3.0) * std::pow(mc, -5.0 / 3.0);
}

std::vector<double> make_chirp(const ChirpParams& p) {
  if (p.f_low_hz <= 0 || p.f_high_hz <= p.f_low_hz) {
    throw std::invalid_argument("make_chirp: bad frequency band");
  }
  if (p.f_high_hz > p.sample_rate_hz / 2.0) {
    throw std::invalid_argument("make_chirp: f_high above Nyquist");
  }
  const double tc = time_to_coalescence_s(p);
  const double dt = 1.0 / p.sample_rate_hz;

  std::vector<double> h;
  h.reserve(static_cast<std::size_t>(tc / dt) + 1);

  // Phase integrates 2*pi*f(t); frequency follows the Newtonian power law
  //   f(t) = f_low * (1 - t/tc)^(-3/8),
  // amplitude scales as f^(2/3). Stop at f_high.
  double phase = 0.0;
  const double f_ref_amp = std::pow(p.f_low_hz, 2.0 / 3.0);
  for (double t = 0.0; t < tc; t += dt) {
    const double x = 1.0 - t / tc;
    if (x <= 0.0) break;
    const double f = p.f_low_hz * std::pow(x, -3.0 / 8.0);
    if (f > p.f_high_hz) break;
    const double amp = std::pow(f, 2.0 / 3.0) / f_ref_amp;
    h.push_back(amp * std::cos(phase));
    phase += 2.0 * M_PI * f * dt;
  }
  if (h.empty()) {
    throw std::invalid_argument("make_chirp: empty waveform (band too narrow)");
  }
  // Normalise to unit peak.
  double peak = 0.0;
  for (double v : h) peak = std::max(peak, std::abs(v));
  for (double& v : h) v /= peak;
  return h;
}

std::vector<double> make_strain_chunk(const DetectorSpec& spec, dsp::Rng& rng,
                                      const ChirpParams* injection,
                                      std::size_t inject_at_sample,
                                      double inject_amp,
                                      std::size_t n_samples_override) {
  const std::size_t n =
      n_samples_override ? n_samples_override : spec.samples_per_chunk();
  std::vector<double> strain(n);
  for (auto& s : strain) s = rng.gaussian();

  if (injection && inject_amp > 0.0) {
    const auto chirp = make_chirp(*injection);
    for (std::size_t i = 0; i < chirp.size(); ++i) {
      const std::size_t k = inject_at_sample + i;
      if (k >= n) break;
      strain[k] += inject_amp * chirp[i];
    }
  }
  return strain;
}

}  // namespace cg::gw
