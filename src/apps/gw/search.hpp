// ConGrid -- the inspiral matched-filter search.
//
// One work item of the Case 2 scenario: take a detector chunk, correlate
// it against a slice of the template bank, report the best match. The farm
// distributes template-slices (or whole chunks) over consumer peers; the
// cost model below converts a (chunk, bank) size into 2003-PC seconds so
// sim-time experiments can reproduce the paper's "about 5 hours on a 2 GHz
// PC" arithmetic without grinding real FLOPs at full scale.
#pragma once

#include <cstddef>

#include "apps/gw/template_bank.hpp"
#include "dsp/correlate.hpp"

namespace cg::gw {

/// Best match over a template range.
struct SearchResult {
  double best_snr = 0.0;
  std::size_t best_template = 0;   ///< bank index
  std::size_t best_offset = 0;     ///< sample offset of the peak
  std::size_t templates_scanned = 0;
};

/// Scan `data` with bank templates [first, first+count) using FFT fast
/// correlation; the SNR statistic is the normalised matched-filter peak
/// divided by the noise sigma estimate.
SearchResult scan_chunk(const std::vector<double>& data,
                        const TemplateBank& bank, std::size_t first,
                        std::size_t count);

/// Detection decision at a given threshold (in sigma).
inline bool detected(const SearchResult& r, double threshold_sigma = 8.0) {
  return r.best_snr >= threshold_sigma;
}

/// Cost model (calibrated to the paper): filtering one 900 s chunk against
/// a 5,000..10,000-template bank takes ~5 hours on a 2 GHz PC, i.e.
/// ~18,000 s / 7,500 templates = 2.4 s per template per chunk at 2 GHz.
/// Scales linearly in templates and chunk samples, inversely in cpu_mhz.
struct CostModel {
  double seconds_per_template_ref = 2.4;   ///< at the reference chunk/CPU
  double ref_cpu_mhz = 2000.0;
  double ref_chunk_samples = 1.8e6;        ///< 900 s * 2000 S/s

  double chunk_seconds(std::size_t n_templates, std::size_t chunk_samples,
                       double cpu_mhz) const {
    return seconds_per_template_ref * static_cast<double>(n_templates) *
           (static_cast<double>(chunk_samples) / ref_chunk_samples) *
           (ref_cpu_mhz / cpu_mhz);
  }

  /// Dedicated PCs needed to keep up with real-time data: processing time
  /// per chunk divided by chunk duration (the paper's "20 PCs" figure).
  double pcs_for_realtime(std::size_t n_templates, double chunk_duration_s,
                          std::size_t chunk_samples, double cpu_mhz) const {
    return chunk_seconds(n_templates, chunk_samples, cpu_mhz) /
           chunk_duration_s;
  }
};

}  // namespace cg::gw
