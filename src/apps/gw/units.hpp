// ConGrid -- Triana units wrapping the inspiral search.
//
// These make Case 2 runnable as a ConGrid workflow: a strain source
// emitting detector chunks, and a matched-filter unit scanning each chunk
// against a slice of the template bank (the natural unit of farm
// distribution: different peers take different slices or different
// chunks). Register with register_gw_units().
#pragma once

#include <memory>

#include "apps/gw/search.hpp"
#include "core/unit/registry.hpp"

namespace cg::gw {

/// Emits one synthetic strain chunk per iteration.
/// Params: rate (2000), samples (8192), inject_every (0 = never),
/// inject_amp (0.5), chirp_mass (1.2), inject_offset (1000).
class StrainSourceUnit final : public core::Unit {
 public:
  static core::UnitInfo make_info();
  const core::UnitInfo& info() const override;
  void configure(const core::ParamSet& p) override;
  void process(core::ProcessContext& ctx) override;

 private:
  DetectorSpec spec_;
  std::size_t samples_ = 8192;
  std::size_t inject_every_ = 0;
  double inject_amp_ = 0.5;
  std::size_t inject_offset_ = 1000;
  ChirpParams injection_;
  std::uint64_t emitted_ = 0;
};

/// Scans each incoming chunk against templates [first, first+count) of a
/// bank built at configure time; emits best SNR (port 0) and a detection
/// flag (port 1). Charges the Case 2 cost model against the sandbox.
/// Params: n_templates (64), min_mass (0.8), max_mass (3.0), f_low (50),
/// f_high (900), rate (2000), first (0), count (all), threshold (8).
class InspiralFilterUnit final : public core::Unit {
 public:
  static core::UnitInfo make_info();
  const core::UnitInfo& info() const override;
  void configure(const core::ParamSet& p) override;
  void process(core::ProcessContext& ctx) override;

  const TemplateBank* bank() const { return bank_.get(); }

 private:
  std::unique_ptr<TemplateBank> bank_;
  std::size_t first_ = 0;
  std::size_t count_ = 0;  ///< 0 = whole bank
  double threshold_ = 8.0;
  double cpu_mhz_ = 2000.0;
  CostModel cost_;
};

void register_gw_units(core::UnitRegistry& r);

}  // namespace cg::gw
