#include "apps/gw/search.hpp"

#include <cmath>
#include <stdexcept>

#include "dsp/stats.hpp"

namespace cg::gw {

SearchResult scan_chunk(const std::vector<double>& data,
                        const TemplateBank& bank, std::size_t first,
                        std::size_t count) {
  if (first >= bank.size()) {
    throw std::out_of_range("scan_chunk: template range outside bank");
  }
  const std::size_t last = std::min(bank.size(), first + count);

  // Noise sigma estimate from the data itself (robust enough for white
  // synthetic noise).
  const double sigma = std::max(1e-12, dsp::rms(data));

  SearchResult result;
  for (std::size_t i = first; i < last; ++i) {
    const auto& tmpl = bank.waveform(i);
    const auto match = dsp::matched_filter(data, tmpl);
    // matched_filter normalises by sqrt(template energy); dividing by
    // sigma*sqrt(1) yields the familiar SNR-like statistic whose noise-only
    // expectation is O(1).
    const double snr = match.peak / sigma;
    if (snr > result.best_snr) {
      result.best_snr = snr;
      result.best_template = i;
      result.best_offset = match.offset;
    }
    ++result.templates_scanned;
  }
  return result;
}

}  // namespace cg::gw
