// ConGrid -- inspiral template bank.
//
// "it performs fast correlation on the data set with each template in a
// library of between 5,000 and 10,000 templates" (paper 3.6.2). The bank
// spans a chirp-mass range with geometric spacing -- adjacent templates
// then overlap roughly evenly in match, the standard bank-construction
// heuristic.
#pragma once

#include <cstddef>
#include <vector>

#include "apps/gw/chirp.hpp"

namespace cg::gw {

struct BankSpec {
  std::size_t n_templates = 5000;
  double min_chirp_mass_msun = 0.8;
  double max_chirp_mass_msun = 3.0;
  double f_low_hz = 50.0;
  double f_high_hz = 900.0;
  double sample_rate_hz = 2000.0;
};

class TemplateBank {
 public:
  /// Generate the full bank (eager; can be large).
  explicit TemplateBank(const BankSpec& spec);

  std::size_t size() const { return templates_.size(); }
  const std::vector<double>& waveform(std::size_t i) const {
    return templates_.at(i);
  }
  const ChirpParams& params(std::size_t i) const { return params_.at(i); }
  const BankSpec& spec() const { return spec_; }

  /// Chirp-mass for template index i under the geometric spacing (usable
  /// without generating waveforms).
  static double chirp_mass_for(const BankSpec& spec, std::size_t i);

  /// Total bytes of waveform storage (capacity planning).
  std::size_t total_bytes() const;

 private:
  BankSpec spec_;
  std::vector<std::vector<double>> templates_;
  std::vector<ChirpParams> params_;
};

}  // namespace cg::gw
