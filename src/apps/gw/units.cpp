#include "apps/gw/units.hpp"

namespace cg::gw {

using core::DataItem;
using core::DataType;
using core::PortSpec;
using core::type_bit;
using core::UnitInfo;

core::UnitInfo StrainSourceUnit::make_info() {
  UnitInfo i;
  i.type_name = "StrainSource";
  i.package = "gw";
  i.description = "Synthetic GEO600-style detector chunks";
  i.outputs = {PortSpec{"strain", type_bit(DataType::kSampleSet)}};
  i.is_source = true;
  return i;
}

const core::UnitInfo& StrainSourceUnit::info() const {
  static const UnitInfo i = make_info();
  return i;
}

void StrainSourceUnit::configure(const core::ParamSet& p) {
  spec_.sample_rate_hz = p.get_double("rate", 2000.0);
  samples_ = static_cast<std::size_t>(p.get_int("samples", 8192));
  inject_every_ = static_cast<std::size_t>(p.get_int("inject_every", 0));
  inject_amp_ = p.get_double("inject_amp", 0.5);
  inject_offset_ = static_cast<std::size_t>(p.get_int("inject_offset", 1000));
  injection_.chirp_mass_msun = p.get_double("chirp_mass", 1.2);
  injection_.sample_rate_hz = spec_.sample_rate_hz;
  injection_.f_low_hz = p.get_double("f_low", 50.0);
  injection_.f_high_hz = p.get_double("f_high", 900.0);
}

void StrainSourceUnit::process(core::ProcessContext& ctx) {
  ++emitted_;
  const bool inject =
      inject_every_ > 0 && (emitted_ % inject_every_ == 0);
  core::SampleSet out;
  out.sample_rate = spec_.sample_rate_hz;
  out.samples = make_strain_chunk(spec_, ctx.rng(),
                                  inject ? &injection_ : nullptr,
                                  inject_offset_, inject_amp_, samples_);
  ctx.emit(0, std::move(out));
}

core::UnitInfo InspiralFilterUnit::make_info() {
  UnitInfo i;
  i.type_name = "InspiralFilter";
  i.concurrency = core::Concurrency::kPure;
  i.package = "gw";
  i.description = "Matched-filter scan against a template-bank slice";
  i.inputs = {PortSpec{"strain", type_bit(DataType::kSampleSet)}};
  i.outputs = {PortSpec{"snr", type_bit(DataType::kScalar)},
               PortSpec{"detected", type_bit(DataType::kInteger)}};
  return i;
}

const core::UnitInfo& InspiralFilterUnit::info() const {
  static const UnitInfo i = make_info();
  return i;
}

void InspiralFilterUnit::configure(const core::ParamSet& p) {
  BankSpec spec;
  spec.n_templates = static_cast<std::size_t>(p.get_int("n_templates", 64));
  spec.min_chirp_mass_msun = p.get_double("min_mass", 0.8);
  spec.max_chirp_mass_msun = p.get_double("max_mass", 3.0);
  spec.f_low_hz = p.get_double("f_low", 50.0);
  spec.f_high_hz = p.get_double("f_high", 900.0);
  spec.sample_rate_hz = p.get_double("rate", 2000.0);
  bank_ = std::make_unique<TemplateBank>(spec);

  first_ = static_cast<std::size_t>(p.get_int("first", 0));
  count_ = static_cast<std::size_t>(p.get_int("count", 0));
  threshold_ = p.get_double("threshold", 8.0);
  cpu_mhz_ = p.get_double("cpu_mhz", 2000.0);
}

void InspiralFilterUnit::process(core::ProcessContext& ctx) {
  if (ctx.input(0).type() != DataType::kSampleSet) {
    throw std::invalid_argument("InspiralFilter: expected a sample-set");
  }
  const auto& strain = ctx.input(0).samples();
  const std::size_t count = count_ ? count_ : bank_->size();

  // Bill the Case 2 cost model (scaled to the actual slice/chunk): this is
  // modelled 2003-PC seconds, so hosts running inspiral jobs should grant
  // a correspondingly large sandbox CPU budget.
  ctx.charge_cpu(cost_.chunk_seconds(count, strain.samples.size(), cpu_mhz_));

  const SearchResult r = scan_chunk(strain.samples, *bank_, first_, count);
  ctx.emit(0, r.best_snr);
  ctx.emit(1, static_cast<std::int64_t>(detected(r, threshold_) ? 1 : 0));
}

void register_gw_units(core::UnitRegistry& r) {
  r.add<StrainSourceUnit>();
  r.add<InspiralFilterUnit>();
}

}  // namespace cg::gw
