#include "apps/db/units.hpp"

#include <cmath>
#include <cstdio>

#include "dsp/rng.hpp"

namespace cg::db {

using core::DataItem;
using core::DataType;
using core::PortSpec;
using core::type_bit;
using core::UnitInfo;

namespace {

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

const Table& require_table(core::ProcessContext& ctx, const char* unit) {
  if (ctx.input(0).type() != DataType::kTable) {
    throw std::invalid_argument(std::string(unit) + ": expected a table");
  }
  return ctx.input(0).table();
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size() && !csv.empty()) {
    const std::size_t comma = csv.find(',', start);
    out.push_back(csv.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

Table make_dataset(const std::string& name, std::size_t rows,
                   std::uint64_t seed) {
  dsp::Rng rng(seed);
  Table t;
  if (name == "stars") {
    t.columns = {"id", "ra", "dec", "magnitude", "class"};
    const char* classes[] = {"O", "B", "A", "F", "G", "K", "M"};
    for (std::size_t i = 0; i < rows; ++i) {
      t.rows.push_back({std::to_string(i), fmt(rng.uniform(0.0, 360.0)),
                        fmt(rng.uniform(-90.0, 90.0)),
                        fmt(rng.gaussian(12.0, 3.0)),
                        classes[rng.below(7)]});
    }
    return t;
  }
  if (name == "sensors") {
    t.columns = {"id", "t", "value", "status"};
    for (std::size_t i = 0; i < rows; ++i) {
      const bool ok = rng.chance(0.95);
      t.rows.push_back({std::to_string(i),
                        fmt(static_cast<double>(i) * 0.5),
                        fmt(rng.gaussian(20.0, 4.0)), ok ? "ok" : "fault"});
    }
    return t;
  }
  throw std::invalid_argument("unknown dataset: " + name);
}

// ------------------------------------------------------------- DataAccess

UnitInfo DataAccessUnit::make_info() {
  UnitInfo i;
  i.type_name = "DataAccess";
  i.package = "db";
  i.description = "Reads a dataset (flat file / database substitute)";
  i.outputs = {PortSpec{"table", type_bit(DataType::kTable)}};
  i.is_source = true;
  return i;
}

const UnitInfo& DataAccessUnit::info() const {
  static const UnitInfo i = make_info();
  return i;
}

void DataAccessUnit::configure(const core::ParamSet& p) {
  data_ = make_dataset(p.get("dataset", "stars"),
                       static_cast<std::size_t>(p.get_int("rows", 200)),
                       static_cast<std::uint64_t>(p.get_int("seed", 7)));
  if (p.has("where_column")) {
    Predicate pred;
    pred.column = p.get("where_column", "");
    pred.op = op_from_name(p.get("where_op", "=="));
    pred.value = p.get("where_value", "");
    data_ = filter(data_, {pred});
  }
}

void DataAccessUnit::process(core::ProcessContext& ctx) {
  ctx.emit(0, data_);
}

// ---------------------------------------------------------- DataManipulate

UnitInfo DataManipulateUnit::make_info() {
  UnitInfo i;
  i.type_name = "DataManipulate";
  i.package = "db";
  i.description = "Filter / project / order / limit a table";
  i.inputs = {PortSpec{"in", type_bit(DataType::kTable)}};
  i.outputs = {PortSpec{"out", type_bit(DataType::kTable)}};
  return i;
}

const UnitInfo& DataManipulateUnit::info() const {
  static const UnitInfo i = make_info();
  return i;
}

void DataManipulateUnit::configure(const core::ParamSet& p) {
  params_ = p;
  op_ = p.get("op", "filter");
  if (op_ != "filter" && op_ != "project" && op_ != "orderby" &&
      op_ != "limit") {
    throw std::invalid_argument("DataManipulate: unknown op " + op_);
  }
}

void DataManipulateUnit::process(core::ProcessContext& ctx) {
  const Table& in = require_table(ctx, "DataManipulate");
  if (op_ == "filter") {
    Predicate pred;
    pred.column = params_.get("column", "");
    pred.op = op_from_name(params_.get("where_op", "=="));
    pred.value = params_.get("value", "");
    ctx.emit(0, filter(in, {pred}));
  } else if (op_ == "project") {
    ctx.emit(0, project(in, split_csv(params_.get("columns", ""))));
  } else if (op_ == "orderby") {
    ctx.emit(0, order_by(in, params_.get("column", ""),
                         params_.get_bool("ascending", true)));
  } else {  // limit
    const auto n = static_cast<std::size_t>(params_.get_int("n", 10));
    Table out = in;
    if (out.rows.size() > n) out.rows.resize(n);
    ctx.emit(0, std::move(out));
  }
}

// ----------------------------------------------------------- DataVisualise

UnitInfo DataVisualiseUnit::make_info() {
  UnitInfo i;
  i.type_name = "DataVisualise";
  i.package = "db";
  i.description = "Text summary and histogram of a table column";
  i.inputs = {PortSpec{"in", type_bit(DataType::kTable)}};
  i.outputs = {PortSpec{"summary", type_bit(DataType::kText)},
               PortSpec{"histogram", type_bit(DataType::kImage)}};
  return i;
}

const UnitInfo& DataVisualiseUnit::info() const {
  static const UnitInfo i = make_info();
  return i;
}

void DataVisualiseUnit::configure(const core::ParamSet& p) {
  column_ = p.get("column", "");
  bins_ = static_cast<std::size_t>(p.get_int("bins", 16));
  if (bins_ < 1) throw std::invalid_argument("DataVisualise: bins < 1");
}

void DataVisualiseUnit::process(core::ProcessContext& ctx) {
  const Table& in = require_table(ctx, "DataVisualise");

  std::string summary = "table(" + std::to_string(in.rows.size()) + " rows x " +
                        std::to_string(in.columns.size()) + " cols)";
  core::ImageFrame hist;
  hist.width = static_cast<std::uint32_t>(bins_);
  hist.height = 1;
  hist.pixels.assign(bins_, 0.0);

  if (!column_.empty() && !in.rows.empty()) {
    const Aggregate agg = aggregate(in, column_);
    summary += "; " + column_ + ": n=" + std::to_string(agg.count) +
               " mean=" + fmt(agg.mean) + " min=" + fmt(agg.min) +
               " max=" + fmt(agg.max);
    // Histogram over [min, max].
    const std::size_t col = column_index(in, column_);
    const double span = std::max(1e-12, agg.max - agg.min);
    for (const auto& row : in.rows) {
      char* end = nullptr;
      const double v = std::strtod(row[col].c_str(), &end);
      if (end == row[col].c_str() || *end != '\0') continue;
      auto bin = static_cast<std::size_t>((v - agg.min) / span *
                                          static_cast<double>(bins_));
      if (bin >= bins_) bin = bins_ - 1;
      hist.pixels[bin] += 1.0;
    }
  }
  ctx.emit(0, std::move(summary));
  ctx.emit(1, std::move(hist));
}

// -------------------------------------------------------------- DataVerify

UnitInfo DataVerifyUnit::make_info() {
  UnitInfo i;
  i.type_name = "DataVerify";
  i.package = "db";
  i.description = "Checks table invariants";
  i.inputs = {PortSpec{"in", type_bit(DataType::kTable)}};
  i.outputs = {PortSpec{"ok", type_bit(DataType::kInteger)},
               PortSpec{"report", type_bit(DataType::kText)}};
  return i;
}

const UnitInfo& DataVerifyUnit::info() const {
  static const UnitInfo i = make_info();
  return i;
}

void DataVerifyUnit::configure(const core::ParamSet& p) {
  min_rows_ = static_cast<std::size_t>(p.get_int("min_rows", 1));
  numeric_column_ = p.get("numeric_column", "");
  has_min_ = p.has("min_value");
  has_max_ = p.has("max_value");
  min_value_ = p.get_double("min_value", 0.0);
  max_value_ = p.get_double("max_value", 0.0);
}

void DataVerifyUnit::process(core::ProcessContext& ctx) {
  const Table& in = require_table(ctx, "DataVerify");
  std::string report;
  bool ok = true;

  if (in.rows.size() < min_rows_) {
    ok = false;
    report += "too few rows (" + std::to_string(in.rows.size()) + " < " +
              std::to_string(min_rows_) + "); ";
  }
  for (const auto& row : in.rows) {
    if (row.size() != in.columns.size()) {
      ok = false;
      report += "ragged row; ";
      break;
    }
  }
  if (!numeric_column_.empty() && !in.rows.empty()) {
    const std::size_t col = column_index(in, numeric_column_);
    for (const auto& row : in.rows) {
      char* end = nullptr;
      const double v = std::strtod(row[col].c_str(), &end);
      if (end == row[col].c_str() || *end != '\0') {
        ok = false;
        report += "non-numeric cell in " + numeric_column_ + "; ";
        break;
      }
      if ((has_min_ && v < min_value_) || (has_max_ && v > max_value_)) {
        ok = false;
        report += numeric_column_ + " out of bounds (" + row[col] + "); ";
        break;
      }
    }
  }
  if (ok) report = "ok";
  ctx.emit(0, static_cast<std::int64_t>(ok ? 1 : 0));
  ctx.emit(1, std::move(report));
}

void register_db_units(core::UnitRegistry& r) {
  r.add<DataAccessUnit>();
  r.add<DataManipulateUnit>();
  r.add<DataVisualiseUnit>();
  r.add<DataVerifyUnit>();
}

}  // namespace cg::db
