#include "apps/db/store.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace cg::db {
namespace {

std::optional<double> as_number(const std::string& s) {
  if (s.empty()) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') return std::nullopt;
  return v;
}

}  // namespace

Op op_from_name(const std::string& s) {
  if (s == "==") return Op::kEq;
  if (s == "!=") return Op::kNe;
  if (s == "<") return Op::kLt;
  if (s == "<=") return Op::kLe;
  if (s == ">") return Op::kGt;
  if (s == ">=") return Op::kGe;
  if (s == "contains") return Op::kContains;
  throw std::invalid_argument("unknown predicate operator: " + s);
}

std::string op_name(Op op) {
  switch (op) {
    case Op::kEq: return "==";
    case Op::kNe: return "!=";
    case Op::kLt: return "<";
    case Op::kLe: return "<=";
    case Op::kGt: return ">";
    case Op::kGe: return ">=";
    case Op::kContains: return "contains";
  }
  return "==";
}

bool Predicate::matches(const std::string& cell) const {
  if (op == Op::kContains) return cell.find(value) != std::string::npos;

  const auto a = as_number(cell);
  const auto b = as_number(value);
  int cmp;
  if (a && b) {
    cmp = (*a < *b) ? -1 : (*a > *b ? 1 : 0);
  } else {
    cmp = cell.compare(value);
    cmp = (cmp < 0) ? -1 : (cmp > 0 ? 1 : 0);
  }
  switch (op) {
    case Op::kEq: return cmp == 0;
    case Op::kNe: return cmp != 0;
    case Op::kLt: return cmp < 0;
    case Op::kLe: return cmp <= 0;
    case Op::kGt: return cmp > 0;
    case Op::kGe: return cmp >= 0;
    case Op::kContains: return false;  // handled above
  }
  return false;
}

void TableStore::create(const std::string& name,
                        std::vector<std::string> columns) {
  Table t;
  t.columns = std::move(columns);
  tables_[name] = std::move(t);
}

void TableStore::insert(const std::string& name,
                        std::vector<std::string> row) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    throw std::invalid_argument("insert into unknown table: " + name);
  }
  if (row.size() != it->second.columns.size()) {
    throw std::invalid_argument("row arity mismatch for table " + name);
  }
  it->second.rows.push_back(std::move(row));
}

std::vector<std::string> TableStore::table_names() const {
  std::vector<std::string> out;
  for (const auto& [name, t] : tables_) out.push_back(name);
  return out;
}

const Table& TableStore::table(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    throw std::out_of_range("unknown table: " + name);
  }
  return it->second;
}

Table TableStore::select(const std::string& name,
                         const std::vector<Predicate>& where) const {
  return filter(table(name), where);
}

std::size_t TableStore::row_count(const std::string& name) const {
  return table(name).rows.size();
}

std::size_t column_index(const Table& t, const std::string& column) {
  for (std::size_t i = 0; i < t.columns.size(); ++i) {
    if (t.columns[i] == column) return i;
  }
  throw std::out_of_range("unknown column: " + column);
}

Table project(const Table& t, const std::vector<std::string>& columns) {
  std::vector<std::size_t> idx;
  idx.reserve(columns.size());
  for (const auto& c : columns) idx.push_back(column_index(t, c));

  Table out;
  out.columns = columns;
  out.rows.reserve(t.rows.size());
  for (const auto& row : t.rows) {
    std::vector<std::string> r;
    r.reserve(idx.size());
    for (std::size_t i : idx) r.push_back(row[i]);
    out.rows.push_back(std::move(r));
  }
  return out;
}

Table order_by(const Table& t, const std::string& column, bool ascending) {
  const std::size_t i = column_index(t, column);
  Table out = t;
  std::stable_sort(out.rows.begin(), out.rows.end(),
                   [i, ascending](const auto& a, const auto& b) {
                     const auto na = as_number(a[i]);
                     const auto nb = as_number(b[i]);
                     bool less;
                     if (na && nb) {
                       less = *na < *nb;
                     } else {
                       less = a[i] < b[i];
                     }
                     return ascending ? less
                                      : (na && nb ? *nb < *na : b[i] < a[i]);
                   });
  return out;
}

Table filter(const Table& t, const std::vector<Predicate>& where) {
  std::vector<std::size_t> idx;
  idx.reserve(where.size());
  for (const auto& p : where) idx.push_back(column_index(t, p.column));

  Table out;
  out.columns = t.columns;
  for (const auto& row : t.rows) {
    bool keep = true;
    for (std::size_t k = 0; k < where.size(); ++k) {
      if (!where[k].matches(row[idx[k]])) {
        keep = false;
        break;
      }
    }
    if (keep) out.rows.push_back(row);
  }
  return out;
}

Aggregate aggregate(const Table& t, const std::string& column) {
  const std::size_t i = column_index(t, column);
  Aggregate a;
  for (const auto& row : t.rows) {
    const auto v = as_number(row[i]);
    if (!v) continue;
    if (a.count == 0) {
      a.min = a.max = *v;
    } else {
      a.min = std::min(a.min, *v);
      a.max = std::max(a.max, *v);
    }
    ++a.count;
    a.sum += *v;
  }
  a.mean = a.count ? a.sum / static_cast<double>(a.count) : 0.0;
  return a;
}

}  // namespace cg::db
