// ConGrid -- a small table store.
//
// The substrate behind Case 3 (paper 3.6.3): "The data access service can
// either read from flat files, or read from a structured database" -- the
// JDBC bridge substitution. A TableStore holds named tables with string
// cells and answers simple select/project/order/aggregate queries -- enough
// surface for a pipeline of access -> manipulation -> visualisation ->
// verification services over real data.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/types/data_item.hpp"

namespace cg::db {

using core::Table;

/// Predicate operators for select().
enum class Op { kEq, kNe, kLt, kLe, kGt, kGe, kContains };

Op op_from_name(const std::string& s);  ///< "==", "!=", "<", "<=", ...
std::string op_name(Op op);

/// One where-clause: column OP literal. Numeric comparison is used when
/// both sides parse as numbers, string comparison otherwise.
struct Predicate {
  std::string column;
  Op op = Op::kEq;
  std::string value;

  bool matches(const std::string& cell) const;
};

/// In-memory named-table database.
class TableStore {
 public:
  /// Create (or replace) a table with the given columns.
  void create(const std::string& name, std::vector<std::string> columns);

  /// Append a row; throws std::invalid_argument on arity mismatch or
  /// unknown table.
  void insert(const std::string& name, std::vector<std::string> row);

  bool has(const std::string& name) const { return tables_.contains(name); }
  std::vector<std::string> table_names() const;

  /// Whole-table read; throws std::out_of_range on unknown table.
  const Table& table(const std::string& name) const;

  /// Filtered read: rows matching ALL predicates.
  Table select(const std::string& name,
               const std::vector<Predicate>& where) const;

  std::size_t row_count(const std::string& name) const;

 private:
  std::map<std::string, Table> tables_;
};

// -- pure table operators (used by the manipulation service) ---------------

/// Keep only the named columns (in the given order).
Table project(const Table& t, const std::vector<std::string>& columns);

/// Sort rows by a column (numeric when possible), ascending/descending.
Table order_by(const Table& t, const std::string& column, bool ascending);

/// Filter by predicates.
Table filter(const Table& t, const std::vector<Predicate>& where);

/// Aggregate one numeric column: returns {count, sum, mean, min, max};
/// non-numeric cells are skipped.
struct Aggregate {
  std::size_t count = 0;
  double sum = 0, mean = 0, min = 0, max = 0;
};
Aggregate aggregate(const Table& t, const std::string& column);

/// Column index; throws std::out_of_range when absent.
std::size_t column_index(const Table& t, const std::string& column);

}  // namespace cg::db
