// ConGrid -- the Case 3 database-access pipeline units.
//
// Paper 3.6.3: "the user establishes a pipeline in Triana consisting of:
// (1) a data access service, (2) a data manipulation service, (3) a data
// visualisation service, and (4) a data verification service", each
// potentially provided by a different peer. These four units are that
// pipeline; DataAccess substitutes the JDBC bridge with the in-memory
// TableStore loaded from a deterministic synthetic dataset.
#pragma once

#include "apps/db/store.hpp"
#include "core/unit/registry.hpp"

namespace cg::db {

/// Deterministic synthetic datasets standing in for the structured
/// database: "stars" (id, ra, dec, magnitude, class) or "sensors"
/// (id, t, value, status). Throws std::invalid_argument on unknown names.
Table make_dataset(const std::string& name, std::size_t rows,
                   std::uint64_t seed);

/// Data access service: emits the (optionally pre-filtered) dataset each
/// iteration. Params: dataset ("stars"), rows (200), seed (7),
/// where_column, where_op, where_value (optional single predicate).
class DataAccessUnit final : public core::Unit {
 public:
  static core::UnitInfo make_info();
  const core::UnitInfo& info() const override;
  void configure(const core::ParamSet& p) override;
  void process(core::ProcessContext& ctx) override;

 private:
  Table data_;
};

/// Data manipulation service. Params: op ("filter"|"project"|"orderby"|
/// "limit"), and per-op arguments: columns (csv, project), column +
/// where_op + value (filter), column + ascending (orderby), n (limit).
class DataManipulateUnit final : public core::Unit {
 public:
  static core::UnitInfo make_info();
  const core::UnitInfo& info() const override;
  void configure(const core::ParamSet& p) override;
  void process(core::ProcessContext& ctx) override;

 private:
  core::ParamSet params_;
  std::string op_;
};

/// Data visualisation service: emits a text summary (port 0) and a
/// histogram image of one numeric column (port 1).
/// Params: column (required for the histogram), bins (16).
class DataVisualiseUnit final : public core::Unit {
 public:
  static core::UnitInfo make_info();
  const core::UnitInfo& info() const override;
  void configure(const core::ParamSet& p) override;
  void process(core::ProcessContext& ctx) override;

 private:
  std::string column_;
  std::size_t bins_ = 16;
};

/// Data verification service: checks structural invariants and emits 1/0
/// (port 0) plus a report (port 1). Params: min_rows (1),
/// numeric_column (optional: every cell must parse as a number),
/// min_value / max_value (bounds on that column when set).
class DataVerifyUnit final : public core::Unit {
 public:
  static core::UnitInfo make_info();
  const core::UnitInfo& info() const override;
  void configure(const core::ParamSet& p) override;
  void process(core::ProcessContext& ctx) override;

 private:
  std::size_t min_rows_ = 1;
  std::string numeric_column_;
  bool has_min_ = false, has_max_ = false;
  double min_value_ = 0, max_value_ = 0;
};

void register_db_units(core::UnitRegistry& r);

}  // namespace cg::db
