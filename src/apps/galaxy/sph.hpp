// ConGrid -- SPH column-density projection.
//
// Case 1 renders each snapshot "to calculate the column density using
// smooth particle hydrodynamics" from a user-chosen viewpoint (paper
// 3.6.1). We project particles onto a 2D grid through a rotation, splatting
// each with the standard cubic-spline SPH kernel integrated along the line
// of sight.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/galaxy/snapshot.hpp"
#include "core/types/data_item.hpp"

namespace cg::galaxy {

/// The user's view: rotation applied before projecting along +z.
struct View {
  double azimuth_rad = 0.0;    ///< rotation about z
  double elevation_rad = 0.0;  ///< rotation about x after azimuth
  double half_extent = 1.5;    ///< world units visible from the centre
  std::uint32_t grid = 128;    ///< output is grid x grid pixels
};

/// 2D cubic-spline column kernel value at normalised distance q = r/h
/// (zero beyond q = 2). Normalised so the kernel integrates to ~1.
double sph_kernel_2d(double q);

/// Project a snapshot to a column-density image.
core::ImageFrame project_column_density(const Snapshot& snap,
                                        const View& view);

/// Total mass on the image (for conservation checks): sum of pixels times
/// pixel area.
double image_mass(const core::ImageFrame& frame, const View& view);

}  // namespace cg::galaxy
