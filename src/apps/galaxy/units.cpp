#include "apps/galaxy/units.hpp"

#include "serial/reader.hpp"
#include "serial/writer.hpp"

namespace cg::galaxy {

using core::DataItem;
using core::DataType;
using core::PortSpec;
using core::type_bit;
using core::UnitInfo;

UnitInfo FrameSourceUnit::make_info() {
  UnitInfo i;
  i.type_name = "FrameSource";
  i.package = "galaxy";
  i.description = "Emits animation frame indices";
  i.outputs = {PortSpec{"index", type_bit(DataType::kInteger)}};
  i.is_source = true;
  return i;
}

const UnitInfo& FrameSourceUnit::info() const {
  static const UnitInfo i = make_info();
  return i;
}

void FrameSourceUnit::configure(const core::ParamSet& p) {
  frames_ = static_cast<std::size_t>(p.get_int("frames", 50));
}

void FrameSourceUnit::process(core::ProcessContext& ctx) {
  if (next_ >= frames_) return;  // animation fully dispatched
  ctx.emit(0, static_cast<std::int64_t>(next_++));
}

serial::Bytes FrameSourceUnit::save_state() const {
  serial::Writer w;
  w.varint(next_);
  return w.take();
}

void FrameSourceUnit::restore_state(const serial::Bytes& state) {
  serial::Reader r(state);
  next_ = r.varint();
}

UnitInfo RenderFrameUnit::make_info() {
  UnitInfo i;
  i.type_name = "RenderFrame";
  i.concurrency = core::Concurrency::kPure;
  i.package = "galaxy";
  i.description = "SPH column-density render of one snapshot frame";
  i.inputs = {PortSpec{"index", type_bit(DataType::kInteger)}};
  i.outputs = {PortSpec{"index", type_bit(DataType::kInteger)},
               PortSpec{"frame", type_bit(DataType::kImage)}};
  return i;
}

const UnitInfo& RenderFrameUnit::info() const {
  static const UnitInfo i = make_info();
  return i;
}

void RenderFrameUnit::configure(const core::ParamSet& p) {
  spec_.n_particles = static_cast<std::size_t>(p.get_int("particles", 2000));
  spec_.n_frames = static_cast<std::size_t>(p.get_int("frames", 50));
  spec_.seed = static_cast<std::uint64_t>(p.get_int("seed", 42));
  view_.grid = static_cast<std::uint32_t>(p.get_int("grid", 128));
  view_.azimuth_rad = p.get_double("azimuth", 0.0);
  view_.elevation_rad = p.get_double("elevation", 0.0);
  view_.half_extent = p.get_double("extent", 1.5);
}

void RenderFrameUnit::process(core::ProcessContext& ctx) {
  if (ctx.input(0).type() != DataType::kInteger) {
    throw std::invalid_argument("RenderFrame: expected a frame index");
  }
  const auto index = static_cast<std::size_t>(ctx.input(0).integer());
  // Rough cost model: one kernel splat per particle per covered pixel.
  ctx.charge_cpu(1e-8 * static_cast<double>(spec_.n_particles) *
                 static_cast<double>(view_.grid));
  const Snapshot snap = snapshot_at(spec_, index);
  ctx.emit(0, static_cast<std::int64_t>(index));
  ctx.emit(1, project_column_density(snap, view_));
}

UnitInfo AnimationSinkUnit::make_info() {
  UnitInfo i;
  i.type_name = "AnimationSink";
  i.package = "galaxy";
  i.description = "Orders rendered frames into an animation";
  i.inputs = {PortSpec{"index", type_bit(DataType::kInteger)},
              PortSpec{"frame", type_bit(DataType::kImage)}};
  return i;
}

const UnitInfo& AnimationSinkUnit::info() const {
  static const UnitInfo i = make_info();
  return i;
}

void AnimationSinkUnit::process(core::ProcessContext& ctx) {
  if (ctx.input(0).type() != DataType::kInteger ||
      ctx.input(1).type() != DataType::kImage) {
    throw std::invalid_argument("AnimationSink: expected (index, image)");
  }
  frames_[static_cast<std::size_t>(ctx.input(0).integer())] =
      ctx.input(1).image();
}

bool AnimationSinkUnit::complete(std::size_t n) const {
  if (frames_.size() < n) return false;
  for (std::size_t i = 0; i < n; ++i) {
    if (!frames_.contains(i)) return false;
  }
  return true;
}

void register_galaxy_units(core::UnitRegistry& r) {
  r.add<FrameSourceUnit>();
  r.add<RenderFrameUnit>();
  r.add<AnimationSinkUnit>();
}

}  // namespace cg::galaxy
