// ConGrid -- galaxy-formation snapshots.
//
// Case 1 (paper 3.6.1): "Galaxy and star formation simulation codes
// generate binary data files that represent a series of particles in three
// dimensions ... as a snap shot in time". We substitute the Cardiff Java
// simulation's output with a deterministic synthetic time series: a
// Plummer-sphere particle cloud that collapses and rotates over the frame
// sequence -- per-frame projection cost and data volumes match the
// scenario's shape, which is what the farming experiment measures.
#pragma once

#include <cstddef>
#include <vector>

#include "dsp/rng.hpp"

namespace cg::galaxy {

struct Particle {
  double x = 0, y = 0, z = 0;
  double mass = 1.0;
  double smoothing = 0.05;  ///< SPH smoothing length
};

using Snapshot = std::vector<Particle>;

struct SimulationSpec {
  std::size_t n_particles = 2000;
  std::size_t n_frames = 50;
  double plummer_radius = 1.0;
  double collapse_factor = 0.4;  ///< radius shrinks to this by the last frame
  double rotation_per_frame = 0.05;  ///< radians about z
  std::uint64_t seed = 42;
};

/// The particle cloud at t = 0 (Plummer-distributed radii, isotropic).
Snapshot initial_snapshot(const SimulationSpec& spec);

/// Deterministically evolve the initial cloud to frame `frame`
/// (0-based): global collapse plus solid rotation. Same spec + frame
/// always yields the same particles, so any peer can compute any frame --
/// the property the parallel distribution policy exploits.
Snapshot snapshot_at(const SimulationSpec& spec, std::size_t frame);

/// Bytes of one snapshot when shipped raw (x,y,z,mass as f64).
std::size_t snapshot_bytes(const SimulationSpec& spec);

}  // namespace cg::galaxy
