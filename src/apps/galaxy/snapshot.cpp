#include "apps/galaxy/snapshot.hpp"

#include <cmath>

namespace cg::galaxy {

Snapshot initial_snapshot(const SimulationSpec& spec) {
  dsp::Rng rng(spec.seed);
  Snapshot snap;
  snap.reserve(spec.n_particles);
  for (std::size_t i = 0; i < spec.n_particles; ++i) {
    // Plummer radial profile: r = a / sqrt(u^(-2/3) - 1).
    double u = 0.0;
    while (u == 0.0) u = rng.uniform();
    const double r =
        spec.plummer_radius / std::sqrt(std::pow(u, -2.0 / 3.0) - 1.0);
    // Isotropic direction.
    const double cos_theta = rng.uniform(-1.0, 1.0);
    const double sin_theta = std::sqrt(1.0 - cos_theta * cos_theta);
    const double phi = rng.uniform(0.0, 2.0 * M_PI);

    Particle p;
    p.x = r * sin_theta * std::cos(phi);
    p.y = r * sin_theta * std::sin(phi);
    p.z = r * cos_theta;
    p.mass = 1.0 / static_cast<double>(spec.n_particles);
    p.smoothing = 0.1 * spec.plummer_radius;
    snap.push_back(p);
  }
  return snap;
}

Snapshot snapshot_at(const SimulationSpec& spec, std::size_t frame) {
  Snapshot snap = initial_snapshot(spec);
  if (spec.n_frames <= 1) return snap;

  const double t = static_cast<double>(frame) /
                   static_cast<double>(spec.n_frames - 1);
  const double scale = 1.0 + (spec.collapse_factor - 1.0) * t;
  const double angle = spec.rotation_per_frame * static_cast<double>(frame);
  const double c = std::cos(angle), s = std::sin(angle);

  for (auto& p : snap) {
    // Collapse towards the origin, then rotate about z.
    const double x = p.x * scale, y = p.y * scale;
    p.x = c * x - s * y;
    p.y = s * x + c * y;
    p.z *= scale;
    p.smoothing *= scale;
  }
  return snap;
}

std::size_t snapshot_bytes(const SimulationSpec& spec) {
  return spec.n_particles * 4 * sizeof(double);
}

}  // namespace cg::galaxy
