#include "apps/galaxy/sph.hpp"

#include <algorithm>
#include <cmath>

namespace cg::galaxy {

double sph_kernel_2d(double q) {
  // Integrated (column) cubic spline, approximated by the 2D cubic spline
  // with normalisation 10/(7*pi) -- standard for column-density splats.
  if (q >= 2.0) return 0.0;
  constexpr double norm = 10.0 / (7.0 * M_PI);
  if (q < 1.0) {
    return norm * (1.0 - 1.5 * q * q + 0.75 * q * q * q);
  }
  const double two_q = 2.0 - q;
  return norm * 0.25 * two_q * two_q * two_q;
}

core::ImageFrame project_column_density(const Snapshot& snap,
                                        const View& view) {
  const std::uint32_t n = view.grid;
  core::ImageFrame img;
  img.width = n;
  img.height = n;
  img.pixels.assign(static_cast<std::size_t>(n) * n, 0.0);

  const double ca = std::cos(view.azimuth_rad), sa = std::sin(view.azimuth_rad);
  const double ce = std::cos(view.elevation_rad),
               se = std::sin(view.elevation_rad);
  const double pixel = 2.0 * view.half_extent / static_cast<double>(n);
  const double inv_pixel = 1.0 / pixel;

  for (const auto& p : snap) {
    // Rotate: azimuth about z, then elevation about x; project onto xy.
    const double x1 = ca * p.x - sa * p.y;
    const double y1 = sa * p.x + ca * p.y;
    const double y2 = ce * y1 - se * p.z;

    const double px = (x1 + view.half_extent) * inv_pixel;
    const double py = (y2 + view.half_extent) * inv_pixel;
    const double h = std::max(p.smoothing, 0.5 * pixel);
    const double reach = 2.0 * h * inv_pixel;

    const long x_lo = std::lround(std::floor(px - reach));
    const long x_hi = std::lround(std::ceil(px + reach));
    const long y_lo = std::lround(std::floor(py - reach));
    const long y_hi = std::lround(std::ceil(py + reach));
    const double inv_h2 = 1.0 / (h * h);

    for (long gy = std::max(0L, y_lo);
         gy <= std::min<long>(n - 1, y_hi); ++gy) {
      for (long gx = std::max(0L, x_lo);
           gx <= std::min<long>(n - 1, x_hi); ++gx) {
        const double dx = (static_cast<double>(gx) + 0.5 - px) * pixel;
        const double dy = (static_cast<double>(gy) + 0.5 - py) * pixel;
        const double q = std::sqrt((dx * dx + dy * dy) * inv_h2);
        const double w = sph_kernel_2d(q);
        if (w > 0.0) {
          img.pixels[static_cast<std::size_t>(gy) * n +
                     static_cast<std::size_t>(gx)] += p.mass * w * inv_h2;
        }
      }
    }
  }
  return img;
}

double image_mass(const core::ImageFrame& frame, const View& view) {
  const double pixel = 2.0 * view.half_extent / static_cast<double>(frame.width);
  double sum = 0.0;
  for (double v : frame.pixels) sum += v;
  return sum * pixel * pixel;
}

}  // namespace cg::galaxy
