// ConGrid -- Triana units for the galaxy-animation scenario.
//
// Mirrors the paper's Case 1 pipeline: a frame-index source (the Data
// Reader Unit separating the file into frames), a renderer computing the
// column density of its frame, and a visualisation/collector unit ordering
// the returned frames into an animation. The renderer is the farmed group.
#pragma once

#include <map>

#include "apps/galaxy/sph.hpp"
#include "core/unit/registry.hpp"

namespace cg::galaxy {

/// Emits frame indices 0, 1, 2, ... one per iteration (the work items the
/// parallel policy scatters). Params: frames (50).
class FrameSourceUnit final : public core::Unit {
 public:
  static core::UnitInfo make_info();
  const core::UnitInfo& info() const override;
  void configure(const core::ParamSet& p) override;
  void process(core::ProcessContext& ctx) override;
  serial::Bytes save_state() const override;
  void restore_state(const serial::Bytes& state) override;
  void reset() override { next_ = 0; }

 private:
  std::size_t frames_ = 50;
  std::size_t next_ = 0;
};

/// Renders frame index -> column-density image. Every peer regenerates the
/// snapshot deterministically from the spec (the paper's alternative "the
/// data file could be copied beforehand"), so the only traffic is the index
/// in and the image out.
/// Params: particles (2000), frames (50), grid (128), azimuth (0),
/// elevation (0), extent (1.5), seed (42).
class RenderFrameUnit final : public core::Unit {
 public:
  static core::UnitInfo make_info();
  const core::UnitInfo& info() const override;
  void configure(const core::ParamSet& p) override;
  void process(core::ProcessContext& ctx) override;

 private:
  SimulationSpec spec_;
  View view_;
};

/// Orders incoming (index, frame) pairs into the final animation. Input 0:
/// integer frame index; input 1: the rendered image. Exposes the assembled
/// animation for the host to read.
class AnimationSinkUnit final : public core::Unit {
 public:
  static core::UnitInfo make_info();
  const core::UnitInfo& info() const override;
  void process(core::ProcessContext& ctx) override;
  void reset() override { frames_.clear(); }

  /// Frames received so far, keyed by index.
  const std::map<std::size_t, core::ImageFrame>& frames() const {
    return frames_;
  }
  /// True when indices 0..n-1 are all present.
  bool complete(std::size_t n) const;

 private:
  std::map<std::size_t, core::ImageFrame> frames_;
};

void register_galaxy_units(core::UnitRegistry& r);

}  // namespace cg::galaxy
