#include "serial/reader.hpp"

#include <cstring>

namespace cg::serial {

void Reader::need(std::size_t n) const {
  if (data_.size() - pos_ < n) {
    throw DecodeError("truncated input: need " + std::to_string(n) +
                      " bytes, have " + std::to_string(data_.size() - pos_));
  }
}

std::uint8_t Reader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t Reader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

std::int32_t Reader::i32() { return static_cast<std::int32_t>(u32()); }
std::int64_t Reader::i64() { return static_cast<std::int64_t>(u64()); }

double Reader::f64() {
  std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

bool Reader::boolean() { return u8() != 0; }

std::uint64_t Reader::varint() {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    need(1);
    std::uint8_t b = data_[pos_++];
    v |= static_cast<std::uint64_t>(b & 0x7Fu) << shift;
    if ((b & 0x80u) == 0) return v;
  }
  throw DecodeError("varint longer than 10 bytes");
}

std::int64_t Reader::svarint() {
  std::uint64_t z = varint();
  return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

std::string Reader::string() {
  std::uint64_t n = varint();
  need(n);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

Bytes Reader::blob() {
  std::uint64_t n = varint();
  need(n);
  Bytes b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
          data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return b;
}

std::vector<double> Reader::f64_vector() {
  std::uint64_t n = varint();
  // Each element is 8 bytes; guard before allocating so a bogus count
  // cannot trigger a huge allocation.
  need(n * 8);
  std::vector<double> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(f64());
  return v;
}

Bytes Reader::raw(std::size_t n) {
  need(n);
  Bytes b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
          data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return b;
}

}  // namespace cg::serial
