// ConGrid -- binary writer.
//
// Everything ConGrid puts on the wire -- pipe payloads, service control
// messages, checkpoints, module artifacts -- is encoded with this writer and
// decoded with serial::Reader. The format is deliberately simple:
//
//   * fixed-width integers are little-endian;
//   * unsigned integers that are usually small (lengths, counts, ids) are
//     encoded as LEB128 varints;
//   * strings and blobs are a varint length followed by raw bytes;
//   * doubles are the IEEE-754 bit pattern, little-endian.
//
// The writer never throws; it only appends to an owned buffer.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "serial/bytes.hpp"

namespace cg::serial {

/// Append-only binary encoder producing the ConGrid wire format.
class Writer {
 public:
  Writer() = default;

  /// Reserve capacity up front when the final size is roughly known.
  explicit Writer(std::size_t reserve) { buf_.reserve(reserve); }

  // -- fixed-width primitives (little-endian) ------------------------------
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v);
  void i64(std::int64_t v);
  void f64(double v);
  void boolean(bool v);

  // -- variable-width -------------------------------------------------------
  /// Unsigned LEB128 varint; 1 byte for values < 128.
  void varint(std::uint64_t v);
  /// Zig-zag encoded signed varint.
  void svarint(std::int64_t v);

  // -- composites ------------------------------------------------------------
  /// Varint length + raw bytes.
  void string(std::string_view s);
  /// Varint length + raw bytes.
  void blob(std::span<const std::uint8_t> b);
  /// Varint count + each element as f64.
  void f64_vector(std::span<const double> v);
  /// Raw bytes with no length prefix (caller knows the size).
  void raw(std::span<const std::uint8_t> b);

  /// Bytes written so far.
  std::size_t size() const { return buf_.size(); }

  /// Access the encoded bytes without giving up ownership.
  const Bytes& bytes() const& { return buf_; }

  /// Move the encoded bytes out (writer becomes empty but reusable).
  Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

}  // namespace cg::serial
