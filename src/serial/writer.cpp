#include "serial/writer.hpp"

#include <cstring>

namespace cg::serial {

void Writer::u8(std::uint8_t v) { buf_.push_back(v); }

void Writer::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
void Writer::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void Writer::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void Writer::boolean(bool v) { u8(v ? 1 : 0); }

void Writer::varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::svarint(std::int64_t v) {
  // Zig-zag: maps small negative numbers to small unsigned numbers.
  varint((static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63));
}

void Writer::string(std::string_view s) {
  varint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Writer::blob(std::span<const std::uint8_t> b) {
  varint(b.size());
  buf_.insert(buf_.end(), b.begin(), b.end());
}

void Writer::f64_vector(std::span<const double> v) {
  varint(v.size());
  for (double x : v) f64(x);
}

void Writer::raw(std::span<const std::uint8_t> b) {
  buf_.insert(buf_.end(), b.begin(), b.end());
}

}  // namespace cg::serial
