// ConGrid -- byte-buffer primitives shared by the serialization layer.
//
// Pipe payloads, task-graph attachments and module artifacts all travel as
// flat byte vectors; this header pins down the one representation everything
// agrees on so module boundaries never disagree about ownership or layout.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cg::serial {

/// Owning, contiguous byte buffer. All ConGrid wire payloads use this type.
using Bytes = std::vector<std::uint8_t>;

/// Convert a string to a byte buffer (no terminator is appended).
inline Bytes to_bytes(const std::string& s) {
  return Bytes(s.begin(), s.end());
}

/// Convert a byte buffer back to a string (bytes are taken verbatim).
inline std::string to_string(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

}  // namespace cg::serial
