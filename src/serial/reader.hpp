// ConGrid -- bounds-checked binary reader, the inverse of serial::Writer.
//
// Readers view (do not own) the input buffer; every accessor throws
// DecodeError on truncated or malformed input, so decoding a message from an
// untrusted peer can never read out of bounds.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "serial/bytes.hpp"

namespace cg::serial {

/// Thrown when decoding runs past the end of the buffer or meets an
/// impossible value (e.g. an over-long varint).
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// Sequential decoder over a borrowed byte range.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}
  explicit Reader(const Bytes& data) : data_(data.data(), data.size()) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32();
  std::int64_t i64();
  double f64();
  bool boolean();

  std::uint64_t varint();
  std::int64_t svarint();

  std::string string();
  Bytes blob();
  std::vector<double> f64_vector();

  /// Read exactly `n` raw bytes.
  Bytes raw(std::size_t n);

  /// Bytes not yet consumed.
  std::size_t remaining() const { return data_.size() - pos_; }

  /// True when the whole buffer has been consumed (use to assert that a
  /// message had no trailing garbage).
  bool at_end() const { return pos_ == data_.size(); }

 private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace cg::serial
