#include "serial/frame.hpp"

#include <cstring>

#include "serial/crc32.hpp"
#include "serial/reader.hpp"
#include "serial/writer.hpp"

namespace cg::serial {
namespace {
// "CGF1" little-endian: ConGrid Frame version 1.
constexpr std::uint32_t kMagic = 0x31464743u;
}  // namespace

Bytes encode_frame(const Frame& f) {
  Writer w(kFrameHeaderSize + f.payload.size() + kFrameTrailerSize);
  w.u32(kMagic);
  w.u8(static_cast<std::uint8_t>(f.type));
  w.u32(static_cast<std::uint32_t>(f.payload.size()));
  w.raw(f.payload);
  w.u32(crc32(f.payload));
  return w.take();
}

Frame encode_envelope(std::uint64_t msg_id, const Frame& inner,
                      const obs::TraceContext& trace) {
  Writer w(8 + obs::kTraceContextWireSize + 1 + inner.payload.size());
  w.u64(msg_id);
  w.u64(trace.trace_id);
  w.u64(trace.parent_span);
  w.u64(trace.lamport);
  w.u8(static_cast<std::uint8_t>(inner.type));
  w.raw(inner.payload);
  Frame f;
  f.type = FrameType::kReliable;
  f.payload = w.take();
  return f;
}

ReliableEnvelope decode_envelope(const Frame& f) {
  if (f.type != FrameType::kReliable) {
    throw DecodeError("decode_envelope: frame is not kReliable");
  }
  Reader r(f.payload);
  ReliableEnvelope e;
  e.msg_id = r.u64();
  e.trace.trace_id = r.u64();
  e.trace.parent_span = r.u64();
  e.trace.lamport = r.u64();
  e.inner.type = static_cast<FrameType>(r.u8());
  e.inner.payload = r.raw(r.remaining());
  return e;
}

obs::TraceContext peek_envelope_trace(const Frame& f) {
  if (f.type != FrameType::kReliable) {
    throw DecodeError("peek_envelope_trace: frame is not kReliable");
  }
  if (f.payload.size() < 8 + obs::kTraceContextWireSize) {
    throw DecodeError("peek_envelope_trace: truncated envelope");
  }
  Reader r(std::span<const std::uint8_t>(f.payload.data() + 8,
                                         obs::kTraceContextWireSize));
  obs::TraceContext trace;
  trace.trace_id = r.u64();
  trace.parent_span = r.u64();
  trace.lamport = r.u64();
  return trace;
}

Frame encode_ack(std::uint64_t msg_id) {
  Writer w(8);
  w.u64(msg_id);
  Frame f;
  f.type = FrameType::kAck;
  f.payload = w.take();
  return f;
}

std::uint64_t decode_ack(const Frame& f) {
  if (f.type != FrameType::kAck) {
    throw DecodeError("decode_ack: frame is not kAck");
  }
  Reader r(f.payload);
  const std::uint64_t id = r.u64();
  if (!r.at_end()) throw DecodeError("decode_ack: trailing bytes");
  return id;
}

Frame encode_batch(std::span<const Frame> frames) {
  if (frames.empty() || frames.size() > kMaxBatchFrames) {
    throw std::invalid_argument("encode_batch: bad frame count");
  }
  std::size_t total = 2;
  for (const Frame& f : frames) {
    if (f.type == FrameType::kBatch) {
      throw std::invalid_argument("encode_batch: batches do not nest");
    }
    total += kBatchEntryOverhead + f.payload.size();
  }
  Writer w(total);
  w.u16(static_cast<std::uint16_t>(frames.size()));
  for (const Frame& f : frames) {
    w.u8(static_cast<std::uint8_t>(f.type));
    w.u32(static_cast<std::uint32_t>(f.payload.size()));
    w.raw(f.payload);
  }
  Frame out;
  out.type = FrameType::kBatch;
  out.payload = w.take();
  return out;
}

std::vector<Frame> decode_batch(const Frame& f) {
  if (f.type != FrameType::kBatch) {
    throw DecodeError("decode_batch: frame is not kBatch");
  }
  Reader r(f.payload);
  const std::uint16_t count = r.u16();
  if (count == 0 || count > kMaxBatchFrames) {
    throw DecodeError("decode_batch: bad frame count");
  }
  std::vector<Frame> out;
  out.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    Frame sub;
    sub.type = static_cast<FrameType>(r.u8());
    if (sub.type == FrameType::kBatch) {
      throw DecodeError("decode_batch: nested batch");
    }
    const std::uint32_t len = r.u32();
    if (len > kMaxFramePayload) throw DecodeError("decode_batch: entry too large");
    sub.payload = r.raw(len);
    out.push_back(std::move(sub));
  }
  if (!r.at_end()) throw DecodeError("decode_batch: trailing bytes");
  return out;
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t len) {
  if (recv_base_ != kNoRecv) {
    throw std::logic_error("FrameDecoder: feed() with a recv_span outstanding");
  }
  compact();
  buf_.insert(buf_.end(), data, data + len);
}

std::span<std::uint8_t> FrameDecoder::recv_span(std::size_t min_bytes) {
  if (recv_base_ != kNoRecv) {
    throw std::logic_error("FrameDecoder: recv_span() called twice");
  }
  compact();
  recv_base_ = buf_.size();
  buf_.resize(recv_base_ + min_bytes);
  return {buf_.data() + recv_base_, min_bytes};
}

void FrameDecoder::commit(std::size_t n) {
  if (recv_base_ == kNoRecv) {
    throw std::logic_error("FrameDecoder: commit() without recv_span()");
  }
  if (recv_base_ + n > buf_.size()) {
    throw std::logic_error("FrameDecoder: commit() larger than recv_span()");
  }
  buf_.resize(recv_base_ + n);
  recv_base_ = kNoRecv;
}

void FrameDecoder::compact() {
  if (pos_ == 0) return;
  if (pos_ == buf_.size()) {
    buf_.clear();
  } else {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
  }
  pos_ = 0;
}

std::optional<Frame> FrameDecoder::next() {
  if (recv_base_ != kNoRecv) {
    throw std::logic_error("FrameDecoder: next() with a recv_span outstanding");
  }
  if (buffered() < kFrameHeaderSize) return std::nullopt;

  const std::uint8_t* base = buf_.data() + pos_;
  Reader header(std::span<const std::uint8_t>(base, kFrameHeaderSize));
  std::uint32_t magic = header.u32();
  if (magic != kMagic) throw DecodeError("bad frame magic");
  auto type = static_cast<FrameType>(header.u8());
  std::uint32_t len = header.u32();
  if (len > kMaxFramePayload) throw DecodeError("frame payload too large");

  const std::size_t total = kFrameHeaderSize + len + kFrameTrailerSize;
  if (buffered() < total) return std::nullopt;

  // CRC-check in place, before the payload is copied out.
  const std::span<const std::uint8_t> body(base + kFrameHeaderSize, len);
  Reader trailer(std::span<const std::uint8_t>(base + kFrameHeaderSize + len,
                                               kFrameTrailerSize));
  if (trailer.u32() != crc32(body.data(), body.size())) {
    throw DecodeError("frame CRC mismatch");
  }

  Frame f;
  f.type = type;
  f.payload.assign(body.begin(), body.end());

  pos_ += total;
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  }
  return f;
}

}  // namespace cg::serial
