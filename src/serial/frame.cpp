#include "serial/frame.hpp"

#include <cstring>

#include "serial/crc32.hpp"
#include "serial/reader.hpp"
#include "serial/writer.hpp"

namespace cg::serial {
namespace {
// "CGF1" little-endian: ConGrid Frame version 1.
constexpr std::uint32_t kMagic = 0x31464743u;
}  // namespace

Bytes encode_frame(const Frame& f) {
  Writer w(kFrameHeaderSize + f.payload.size() + kFrameTrailerSize);
  w.u32(kMagic);
  w.u8(static_cast<std::uint8_t>(f.type));
  w.u32(static_cast<std::uint32_t>(f.payload.size()));
  w.raw(f.payload);
  w.u32(crc32(f.payload));
  return w.take();
}

Frame encode_envelope(std::uint64_t msg_id, const Frame& inner,
                      const obs::TraceContext& trace) {
  Writer w(8 + obs::kTraceContextWireSize + 1 + inner.payload.size());
  w.u64(msg_id);
  w.u64(trace.trace_id);
  w.u64(trace.parent_span);
  w.u64(trace.lamport);
  w.u8(static_cast<std::uint8_t>(inner.type));
  w.raw(inner.payload);
  Frame f;
  f.type = FrameType::kReliable;
  f.payload = w.take();
  return f;
}

ReliableEnvelope decode_envelope(const Frame& f) {
  if (f.type != FrameType::kReliable) {
    throw DecodeError("decode_envelope: frame is not kReliable");
  }
  Reader r(f.payload);
  ReliableEnvelope e;
  e.msg_id = r.u64();
  e.trace.trace_id = r.u64();
  e.trace.parent_span = r.u64();
  e.trace.lamport = r.u64();
  e.inner.type = static_cast<FrameType>(r.u8());
  e.inner.payload = r.raw(r.remaining());
  return e;
}

obs::TraceContext peek_envelope_trace(const Frame& f) {
  if (f.type != FrameType::kReliable) {
    throw DecodeError("peek_envelope_trace: frame is not kReliable");
  }
  if (f.payload.size() < 8 + obs::kTraceContextWireSize) {
    throw DecodeError("peek_envelope_trace: truncated envelope");
  }
  Reader r(std::span<const std::uint8_t>(f.payload.data() + 8,
                                         obs::kTraceContextWireSize));
  obs::TraceContext trace;
  trace.trace_id = r.u64();
  trace.parent_span = r.u64();
  trace.lamport = r.u64();
  return trace;
}

Frame encode_ack(std::uint64_t msg_id) {
  Writer w(8);
  w.u64(msg_id);
  Frame f;
  f.type = FrameType::kAck;
  f.payload = w.take();
  return f;
}

std::uint64_t decode_ack(const Frame& f) {
  if (f.type != FrameType::kAck) {
    throw DecodeError("decode_ack: frame is not kAck");
  }
  Reader r(f.payload);
  const std::uint64_t id = r.u64();
  if (!r.at_end()) throw DecodeError("decode_ack: trailing bytes");
  return id;
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t len) {
  buf_.insert(buf_.end(), data, data + len);
}

std::optional<Frame> FrameDecoder::next() {
  if (buf_.size() < kFrameHeaderSize) return std::nullopt;

  Reader header(std::span<const std::uint8_t>(buf_.data(), kFrameHeaderSize));
  std::uint32_t magic = header.u32();
  if (magic != kMagic) throw DecodeError("bad frame magic");
  auto type = static_cast<FrameType>(header.u8());
  std::uint32_t len = header.u32();
  if (len > kMaxFramePayload) throw DecodeError("frame payload too large");

  const std::size_t total = kFrameHeaderSize + len + kFrameTrailerSize;
  if (buf_.size() < total) return std::nullopt;

  Frame f;
  f.type = type;
  f.payload.assign(
      buf_.begin() + static_cast<std::ptrdiff_t>(kFrameHeaderSize),
      buf_.begin() + static_cast<std::ptrdiff_t>(kFrameHeaderSize + len));

  Reader trailer(std::span<const std::uint8_t>(
      buf_.data() + kFrameHeaderSize + len, kFrameTrailerSize));
  if (trailer.u32() != crc32(f.payload)) {
    throw DecodeError("frame CRC mismatch");
  }

  buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(total));
  return f;
}

}  // namespace cg::serial
