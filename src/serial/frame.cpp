#include "serial/frame.hpp"

#include <cstring>

#include "serial/crc32.hpp"
#include "serial/reader.hpp"
#include "serial/writer.hpp"

namespace cg::serial {
namespace {
// "CGF1" little-endian: ConGrid Frame version 1.
constexpr std::uint32_t kMagic = 0x31464743u;
}  // namespace

Bytes encode_frame(const Frame& f) {
  Writer w(kFrameHeaderSize + f.payload.size() + kFrameTrailerSize);
  w.u32(kMagic);
  w.u8(static_cast<std::uint8_t>(f.type));
  w.u32(static_cast<std::uint32_t>(f.payload.size()));
  w.raw(f.payload);
  w.u32(crc32(f.payload));
  return w.take();
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t len) {
  buf_.insert(buf_.end(), data, data + len);
}

std::optional<Frame> FrameDecoder::next() {
  if (buf_.size() < kFrameHeaderSize) return std::nullopt;

  Reader header(std::span<const std::uint8_t>(buf_.data(), kFrameHeaderSize));
  std::uint32_t magic = header.u32();
  if (magic != kMagic) throw DecodeError("bad frame magic");
  auto type = static_cast<FrameType>(header.u8());
  std::uint32_t len = header.u32();
  if (len > kMaxFramePayload) throw DecodeError("frame payload too large");

  const std::size_t total = kFrameHeaderSize + len + kFrameTrailerSize;
  if (buf_.size() < total) return std::nullopt;

  Frame f;
  f.type = type;
  f.payload.assign(
      buf_.begin() + static_cast<std::ptrdiff_t>(kFrameHeaderSize),
      buf_.begin() + static_cast<std::ptrdiff_t>(kFrameHeaderSize + len));

  Reader trailer(std::span<const std::uint8_t>(
      buf_.data() + kFrameHeaderSize + len, kFrameTrailerSize));
  if (trailer.u32() != crc32(f.payload)) {
    throw DecodeError("frame CRC mismatch");
  }

  buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(total));
  return f;
}

}  // namespace cg::serial
