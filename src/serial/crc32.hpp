// ConGrid -- CRC-32 (IEEE 802.3 polynomial) used to guard framed messages.
#pragma once

#include <cstddef>
#include <cstdint>

#include "serial/bytes.hpp"

namespace cg::serial {

/// Compute the CRC-32 checksum (reflected, polynomial 0xEDB88320) of a
/// byte range. `seed` allows incremental computation: pass the previous
/// result to continue a running checksum across multiple chunks.
std::uint32_t crc32(const std::uint8_t* data, std::size_t len,
                    std::uint32_t seed = 0);

/// Convenience overload over an owning buffer.
std::uint32_t crc32(const Bytes& data, std::uint32_t seed = 0);

}  // namespace cg::serial
