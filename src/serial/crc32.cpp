#include "serial/crc32.hpp"

#include <array>

namespace cg::serial {
namespace {

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& table() {
  static const auto t = make_table();
  return t;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t len,
                    std::uint32_t seed) {
  const auto& t = table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    c = t[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(const Bytes& data, std::uint32_t seed) {
  return crc32(data.data(), data.size(), seed);
}

}  // namespace cg::serial
