// ConGrid -- message framing.
//
// A Frame is the unit exchanged over every transport: a small fixed header
// (magic, type, payload length) followed by the payload and a CRC-32 of the
// payload. The stream decoder is incremental so it can sit directly on a TCP
// byte stream: feed arbitrary chunks, pull out complete frames.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "obs/context.hpp"
#include "serial/bytes.hpp"

namespace cg::serial {

/// Frame type tags. The framing layer does not interpret these beyond
/// carrying them; higher layers (pipes, service protocol) dispatch on them.
enum class FrameType : std::uint8_t {
  kControl = 1,   ///< service/controller control message (XML body)
  kData = 2,      ///< pipe data payload (binary-encoded DataItem)
  kCode = 3,      ///< module artifact transfer
  kDiscovery = 4, ///< advertisement / discovery query
  kHeartbeat = 5, ///< liveness probe
  kReliable = 6,  ///< reliable envelope: message id + wrapped inner frame
  kAck = 7,       ///< positive acknowledgement of a kReliable message id
  kBatch = 8,     ///< coalesced frame: several small frames in one payload
};

/// A decoded frame: a type tag plus an owning payload.
struct Frame {
  FrameType type = FrameType::kControl;
  Bytes payload;
};

/// Encode a frame into its on-the-wire representation:
///   u32 magic | u8 type | u32 payload_len | payload | u32 crc32(payload)
Bytes encode_frame(const Frame& f);

/// Size in bytes of the fixed part that precedes the payload.
constexpr std::size_t kFrameHeaderSize = 4 + 1 + 4;
/// Trailer size (the CRC).
constexpr std::size_t kFrameTrailerSize = 4;
/// Frames larger than this are rejected as malformed (guards a corrupt or
/// hostile length field from forcing a giant allocation).
constexpr std::size_t kMaxFramePayload = 64u * 1024u * 1024u;

// -- reliable-delivery framing ----------------------------------------------
//
// The reliable request/reply layer (net/reliable.hpp) wraps application
// frames in a kReliable envelope carrying a sender-scoped message id, and
// confirms receipt with a kAck frame echoing that id. The codec lives here
// so the wire format stays in one place with the rest of the framing.

/// A decoded reliable envelope: the sender-scoped message id, the causal
/// trace context the sender stamped, plus the wrapped application frame.
struct ReliableEnvelope {
  std::uint64_t msg_id = 0;
  obs::TraceContext trace;
  Frame inner;
};

/// Wrap `inner` in a kReliable envelope tagged with `msg_id` and `trace`.
/// The trace context occupies a fixed 24 bytes whether or not tracing is
/// active (obs::kTraceContextWireSize, zero-filled when idle), so envelope
/// sizes -- and everything downstream of frame size, like simulated link
/// latency -- never depend on observability state.
Frame encode_envelope(std::uint64_t msg_id, const Frame& inner,
                      const obs::TraceContext& trace = {});

/// Unwrap a kReliable envelope; throws DecodeError on malformed input or a
/// non-kReliable frame.
ReliableEnvelope decode_envelope(const Frame& f);

/// Read just the trace context of a kReliable envelope without copying the
/// inner payload (SimNetwork merges Lamport clocks on delivery and must not
/// pay a full decode per hop). Throws DecodeError on malformed input or a
/// non-kReliable frame.
obs::TraceContext peek_envelope_trace(const Frame& f);

/// Build the kAck frame confirming `msg_id`.
Frame encode_ack(std::uint64_t msg_id);

/// Extract the acknowledged id; throws DecodeError on malformed input or a
/// non-kAck frame.
std::uint64_t decode_ack(const Frame& f);

// -- wire batching ----------------------------------------------------------
//
// The reliable layer coalesces small frames headed for the same peer into
// one kBatch frame (GraphLab-style buffered exchange), so a burst of tiny
// envelopes and acks costs one syscall / one simulated event instead of
// dozens. Sub-frames skip the outer magic/CRC -- the enclosing frame's CRC
// already covers them -- so the per-entry overhead is 5 bytes (type + len)
// against 13 for a standalone frame.

/// Per-entry overhead inside a batch payload: u8 type + u32 length.
constexpr std::size_t kBatchEntryOverhead = 1 + 4;
/// Batches larger than this are rejected as malformed.
constexpr std::size_t kMaxBatchFrames = 4096;

/// Pack `frames` (none of which may itself be kBatch) into one kBatch
/// frame: u16 count, then per entry u8 type | u32 len | payload bytes.
/// Throws std::invalid_argument on nesting or an oversized batch.
Frame encode_batch(std::span<const Frame> frames);

/// Unpack a kBatch frame into its sub-frames, in send order. Throws
/// DecodeError on malformed input or a non-kBatch frame.
std::vector<Frame> decode_batch(const Frame& f);

/// Incremental frame decoder for byte streams.
///
/// Usage: call feed() with each received chunk, then next() until it returns
/// nullopt. Corrupt input (bad magic, bad CRC, oversized length) throws
/// DecodeError; the connection should then be dropped.
///
/// Zero-copy read path: a socket owner can skip the intermediate staging
/// buffer entirely by read()ing straight into the decoder --
///
///   auto span = decoder.recv_span(16384);
///   ssize_t n = ::read(fd, span.data(), span.size());
///   decoder.commit(n > 0 ? static_cast<std::size_t>(n) : 0);
///
/// Every recv_span() MUST be balanced by exactly one commit() (possibly 0)
/// before any other decoder call. Parsing uses a cursor instead of erasing
/// the front per frame, so draining a buffer holding many small frames is
/// linear, not quadratic.
class FrameDecoder {
 public:
  /// Append raw received bytes to the internal buffer (copying path).
  void feed(const std::uint8_t* data, std::size_t len);
  void feed(const Bytes& data) { feed(data.data(), data.size()); }

  /// Expose at least `min_bytes` of writable space at the buffer tail for a
  /// direct socket read. Invalidated by any other decoder call.
  std::span<std::uint8_t> recv_span(std::size_t min_bytes);

  /// Declare `n` bytes of the last recv_span() actually filled.
  void commit(std::size_t n);

  /// Extract the next complete frame, or nullopt if more bytes are needed.
  std::optional<Frame> next();

  /// Bytes buffered but not yet consumed by a complete frame.
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  void compact();

  static constexpr std::size_t kNoRecv = static_cast<std::size_t>(-1);
  Bytes buf_;
  std::size_t pos_ = 0;       ///< parse cursor into buf_
  std::size_t recv_base_ = kNoRecv;  ///< committed size while a recv_span is out
};

}  // namespace cg::serial
