// ConGrid -- message framing.
//
// A Frame is the unit exchanged over every transport: a small fixed header
// (magic, type, payload length) followed by the payload and a CRC-32 of the
// payload. The stream decoder is incremental so it can sit directly on a TCP
// byte stream: feed arbitrary chunks, pull out complete frames.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "obs/context.hpp"
#include "serial/bytes.hpp"

namespace cg::serial {

/// Frame type tags. The framing layer does not interpret these beyond
/// carrying them; higher layers (pipes, service protocol) dispatch on them.
enum class FrameType : std::uint8_t {
  kControl = 1,   ///< service/controller control message (XML body)
  kData = 2,      ///< pipe data payload (binary-encoded DataItem)
  kCode = 3,      ///< module artifact transfer
  kDiscovery = 4, ///< advertisement / discovery query
  kHeartbeat = 5, ///< liveness probe
  kReliable = 6,  ///< reliable envelope: message id + wrapped inner frame
  kAck = 7,       ///< positive acknowledgement of a kReliable message id
};

/// A decoded frame: a type tag plus an owning payload.
struct Frame {
  FrameType type = FrameType::kControl;
  Bytes payload;
};

/// Encode a frame into its on-the-wire representation:
///   u32 magic | u8 type | u32 payload_len | payload | u32 crc32(payload)
Bytes encode_frame(const Frame& f);

/// Size in bytes of the fixed part that precedes the payload.
constexpr std::size_t kFrameHeaderSize = 4 + 1 + 4;
/// Trailer size (the CRC).
constexpr std::size_t kFrameTrailerSize = 4;
/// Frames larger than this are rejected as malformed (guards a corrupt or
/// hostile length field from forcing a giant allocation).
constexpr std::size_t kMaxFramePayload = 64u * 1024u * 1024u;

// -- reliable-delivery framing ----------------------------------------------
//
// The reliable request/reply layer (net/reliable.hpp) wraps application
// frames in a kReliable envelope carrying a sender-scoped message id, and
// confirms receipt with a kAck frame echoing that id. The codec lives here
// so the wire format stays in one place with the rest of the framing.

/// A decoded reliable envelope: the sender-scoped message id, the causal
/// trace context the sender stamped, plus the wrapped application frame.
struct ReliableEnvelope {
  std::uint64_t msg_id = 0;
  obs::TraceContext trace;
  Frame inner;
};

/// Wrap `inner` in a kReliable envelope tagged with `msg_id` and `trace`.
/// The trace context occupies a fixed 24 bytes whether or not tracing is
/// active (obs::kTraceContextWireSize, zero-filled when idle), so envelope
/// sizes -- and everything downstream of frame size, like simulated link
/// latency -- never depend on observability state.
Frame encode_envelope(std::uint64_t msg_id, const Frame& inner,
                      const obs::TraceContext& trace = {});

/// Unwrap a kReliable envelope; throws DecodeError on malformed input or a
/// non-kReliable frame.
ReliableEnvelope decode_envelope(const Frame& f);

/// Read just the trace context of a kReliable envelope without copying the
/// inner payload (SimNetwork merges Lamport clocks on delivery and must not
/// pay a full decode per hop). Throws DecodeError on malformed input or a
/// non-kReliable frame.
obs::TraceContext peek_envelope_trace(const Frame& f);

/// Build the kAck frame confirming `msg_id`.
Frame encode_ack(std::uint64_t msg_id);

/// Extract the acknowledged id; throws DecodeError on malformed input or a
/// non-kAck frame.
std::uint64_t decode_ack(const Frame& f);

/// Incremental frame decoder for byte streams.
///
/// Usage: call feed() with each received chunk, then next() until it returns
/// nullopt. Corrupt input (bad magic, bad CRC, oversized length) throws
/// DecodeError; the connection should then be dropped.
class FrameDecoder {
 public:
  /// Append raw received bytes to the internal buffer.
  void feed(const std::uint8_t* data, std::size_t len);
  void feed(const Bytes& data) { feed(data.data(), data.size()); }

  /// Extract the next complete frame, or nullopt if more bytes are needed.
  std::optional<Frame> next();

  /// Bytes buffered but not yet consumed by a complete frame.
  std::size_t buffered() const { return buf_.size(); }

 private:
  Bytes buf_;
};

}  // namespace cg::serial
