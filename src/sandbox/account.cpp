#include "sandbox/account.hpp"

namespace cg::sandbox {

void BillingLedger::bill(const std::string& owner, const std::string& module,
                         double started_at, const Usage& usage,
                         bool violated) {
  BillingRecord r;
  r.owner = owner;
  r.module = module;
  r.started_at = started_at;
  r.cpu_seconds = usage.cpu_seconds;
  r.peak_memory_bytes = usage.peak_memory_bytes;
  r.network_bytes = usage.network_bytes;
  r.violated = violated;
  records_.push_back(std::move(r));
}

OwnerTotals BillingLedger::totals_for(const std::string& owner) const {
  OwnerTotals t;
  for (const auto& r : records_) {
    if (r.owner != owner) continue;
    ++t.executions;
    t.violations += r.violated ? 1 : 0;
    t.cpu_seconds += r.cpu_seconds;
    t.network_bytes += r.network_bytes;
  }
  return t;
}

std::map<std::string, OwnerTotals> BillingLedger::totals() const {
  std::map<std::string, OwnerTotals> out;
  for (const auto& r : records_) {
    auto& t = out[r.owner];
    ++t.executions;
    t.violations += r.violated ? 1 : 0;
    t.cpu_seconds += r.cpu_seconds;
    t.network_bytes += r.network_bytes;
  }
  return out;
}

double BillingLedger::amount_owed(const std::string& owner,
                                  double price_per_cpu_second) const {
  return totals_for(owner).cpu_seconds * price_per_cpu_second;
}

}  // namespace cg::sandbox
