// ConGrid -- trust and reputation (the paper's future work, realised).
//
// Paper (3.5): "we hope to investigate the development of more complex
// trust models (and security policies) in the future"; section 2 notes the
// Grid's assumption that "participating users are trusted ... may not
// hold" for consumer peers. This module scores counterparties from
// observed behaviour:
//
//   * a host scores *submitters* from its billing ledger (violations);
//   * a controller scores *workers* from deployment outcomes (acks,
//     failures, successful completions, result disagreements flagged by
//     the Vote unit).
//
// Scores live in [0, 1] with asymmetric updates -- trust builds slowly and
// collapses quickly -- and exponential forgetting so peers can redeem
// themselves. TrianaController consults an optional TrustManager to rank
// discovered workers and to quarantine peers below threshold.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sandbox/account.hpp"

namespace cg::sandbox {

struct TrustParams {
  double initial = 0.5;            ///< score for a peer never seen before
  double success_gain = 0.05;      ///< move towards 1 on good behaviour
  double failure_loss = 0.10;      ///< move towards 0 on benign failure
  double violation_loss = 0.50;    ///< move towards 0 on a sandbox breach
  double disagreement_loss = 0.35; ///< move towards 0 on a bad result
  double quarantine_threshold = 0.25;
  /// Per observation, older evidence decays towards `initial` by this
  /// factor before the update applies (redemption path).
  double forgetting = 0.02;
};

enum class TrustEvent {
  kSuccess,       ///< job completed / results returned and agreed
  kFailure,       ///< benign failure (crash, timeout, churn)
  kViolation,     ///< sandbox policy breach
  kDisagreement,  ///< returned results contradicted the replica majority
};

class TrustManager {
 public:
  explicit TrustManager(TrustParams params = {}) : params_(params) {}

  /// Record one observation about `peer`.
  void record(const std::string& peer, TrustEvent event);

  /// Current score; `initial` for unknown peers.
  double score(const std::string& peer) const;

  /// Below the quarantine threshold?
  bool quarantined(const std::string& peer) const {
    return score(peer) < params_.quarantine_threshold;
  }

  /// Total observations recorded about a peer.
  std::uint64_t observations(const std::string& peer) const;

  /// Order peer names best-first (stable for ties).
  std::vector<std::string> ranked(std::vector<std::string> peers) const;

  /// Fold a host's billing ledger in: every billed execution counts as a
  /// success, every violation as a violation. This is how a long-running
  /// host bootstraps submitter trust from its own records.
  void ingest_ledger(const BillingLedger& ledger);

  const TrustParams& params() const { return params_; }

 private:
  struct Entry {
    double score;
    std::uint64_t observations = 0;
  };

  TrustParams params_;
  std::map<std::string, Entry> entries_;
};

}  // namespace cg::sandbox
