#include "sandbox/trust.hpp"

#include <algorithm>

namespace cg::sandbox {

void TrustManager::record(const std::string& peer, TrustEvent event) {
  auto [it, inserted] = entries_.emplace(peer, Entry{params_.initial, 0});
  Entry& e = it->second;

  // Forgetting: drift towards the prior before applying new evidence.
  e.score += (params_.initial - e.score) * params_.forgetting;

  switch (event) {
    case TrustEvent::kSuccess:
      e.score += (1.0 - e.score) * params_.success_gain;
      break;
    case TrustEvent::kFailure:
      e.score -= e.score * params_.failure_loss;
      break;
    case TrustEvent::kViolation:
      e.score -= e.score * params_.violation_loss;
      break;
    case TrustEvent::kDisagreement:
      e.score -= e.score * params_.disagreement_loss;
      break;
  }
  e.score = std::clamp(e.score, 0.0, 1.0);
  ++e.observations;
}

double TrustManager::score(const std::string& peer) const {
  auto it = entries_.find(peer);
  return it == entries_.end() ? params_.initial : it->second.score;
}

std::uint64_t TrustManager::observations(const std::string& peer) const {
  auto it = entries_.find(peer);
  return it == entries_.end() ? 0 : it->second.observations;
}

std::vector<std::string> TrustManager::ranked(
    std::vector<std::string> peers) const {
  std::stable_sort(peers.begin(), peers.end(),
                   [this](const std::string& a, const std::string& b) {
                     return score(a) > score(b);
                   });
  return peers;
}

void TrustManager::ingest_ledger(const BillingLedger& ledger) {
  for (const auto& r : ledger.records()) {
    record(r.owner,
           r.violated ? TrustEvent::kViolation : TrustEvent::kSuccess);
  }
}

}  // namespace cg::sandbox
