// ConGrid -- sandbox policy engine.
//
// The paper leans on the Java sandbox for its security story (sections 1
// and 2): an untrusted, dynamically downloaded module must not touch the
// host beyond what the resource owner granted, and the host tracks what the
// module consumed ("the shell would also maintain billing information for
// resources used"). ConGrid's C++ substitution models that as an explicit
// policy object checked at every resource acquisition the engine performs
// on a module's behalf: CPU time, memory, filesystem paths, network
// destinations, and the certified-library restriction the paper proposes
// for the code-disguise problem ("only download executables ... from a
// pre-agreed, certified, software library", section 3.5).
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace cg::sandbox {

/// Thrown when a module exceeds its grant. The engine catches this and
/// fails the module, never the host.
class SandboxViolation : public std::runtime_error {
 public:
  explicit SandboxViolation(const std::string& what)
      : std::runtime_error(what) {}
};

/// What a resource owner grants to foreign modules. The default policy is
/// the paper's stance: spare cycles and a bounded arena, nothing else.
struct Policy {
  double max_cpu_seconds = 3600.0;
  std::uint64_t max_memory_bytes = 256ull << 20;
  std::uint64_t max_network_bytes = 1ull << 30;
  bool allow_filesystem = false;       ///< blanket switch
  std::vector<std::string> allowed_path_prefixes;  ///< exceptions when off
  bool allow_network = true;           ///< pipes need this
  bool certified_modules_only = false; ///< restrict to the certified library
};

/// Running resource usage of one sandboxed execution.
struct Usage {
  double cpu_seconds = 0.0;
  std::uint64_t memory_bytes = 0;       ///< current residency
  std::uint64_t peak_memory_bytes = 0;
  std::uint64_t network_bytes = 0;
  std::uint64_t file_accesses_denied = 0;
};

/// The certified software library: content hashes of modules the resource
/// owner pre-approved.
class CertifiedLibrary {
 public:
  void certify(std::uint64_t module_hash) { hashes_.insert(module_hash); }
  void revoke(std::uint64_t module_hash) { hashes_.erase(module_hash); }
  bool is_certified(std::uint64_t module_hash) const {
    return hashes_.contains(module_hash);
  }
  std::size_t size() const { return hashes_.size(); }

 private:
  std::set<std::uint64_t> hashes_;
};

/// One sandboxed execution context. The engine calls the charge/check
/// methods as the module runs; any violation throws and the module is
/// terminated. Charging is thread-safe (a mutex guards the usage ledger):
/// the wave-parallel engine bills concurrent unit firings against the one
/// sandbox its runtime was built with.
class Sandbox {
 public:
  explicit Sandbox(Policy policy, const CertifiedLibrary* library = nullptr)
      : policy_(std::move(policy)), library_(library) {}

  /// Movable (hosts build one and hand it to the job record); the guard
  /// mutex itself is not moved. Don't move a sandbox that is being
  /// charged concurrently.
  Sandbox(Sandbox&& other) noexcept
      : policy_(std::move(other.policy_)), library_(other.library_) {
    std::lock_guard lock(other.mu_);
    usage_ = other.usage_;
  }
  Sandbox(const Sandbox&) = delete;
  Sandbox& operator=(const Sandbox&) = delete;
  Sandbox& operator=(Sandbox&&) = delete;

  /// Gate module admission: throws when the policy demands certification
  /// and the hash is not in the library.
  void admit_module(const std::string& module_name, std::uint64_t hash) const;

  /// Account CPU time; throws once the budget is exhausted.
  void charge_cpu(double seconds);

  /// Account a memory allocation; throws when the limit would be exceeded
  /// (the allocation is then considered not to have happened).
  void allocate(std::uint64_t bytes);
  /// Return memory to the arena (clamped at zero).
  void release(std::uint64_t bytes);

  /// Account network transfer; throws on budget exhaustion.
  void charge_network(std::uint64_t bytes);

  /// Check a filesystem access; throws unless the policy allows the path.
  /// Denied accesses are also counted in usage().
  void check_file_access(const std::string& path, bool write);

  /// Check that network use is allowed at all.
  void check_network_allowed() const;

  /// Snapshot of the usage ledger (by value: the ledger may be charged
  /// concurrently).
  Usage usage() const {
    std::lock_guard lock(mu_);
    return usage_;
  }
  const Policy& policy() const { return policy_; }

  /// Remaining CPU budget in seconds (never negative).
  double cpu_remaining() const;

 private:
  Policy policy_;
  const CertifiedLibrary* library_;
  mutable std::mutex mu_;  ///< guards usage_
  Usage usage_;
};

}  // namespace cg::sandbox
