// ConGrid -- virtual accounts and the billing ledger.
//
// The paper contrasts Globus's per-user account administration with
// Triana's "virtual account": any job arriving at a peer runs under one
// local identity, and the host keeps billing records of what each remote
// owner consumed (section 2). The ledger records one entry per completed
// sandboxed execution and supports per-owner aggregation, which is what a
// future settlement/reputation layer would read.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sandbox/sandbox.hpp"

namespace cg::sandbox {

/// One completed (or terminated) execution, as billed.
struct BillingRecord {
  std::string owner;       ///< who submitted the work (peer id)
  std::string module;      ///< what ran
  double started_at = 0;   ///< host clock, seconds
  double cpu_seconds = 0;
  std::uint64_t peak_memory_bytes = 0;
  std::uint64_t network_bytes = 0;
  bool violated = false;   ///< terminated by the sandbox
};

/// Aggregate consumption for one owner.
struct OwnerTotals {
  std::uint64_t executions = 0;
  std::uint64_t violations = 0;
  double cpu_seconds = 0;
  std::uint64_t network_bytes = 0;
};

/// The per-host billing ledger behind the virtual account.
class BillingLedger {
 public:
  /// Record an execution from its sandbox's final usage.
  void bill(const std::string& owner, const std::string& module,
            double started_at, const Usage& usage, bool violated);

  const std::vector<BillingRecord>& records() const { return records_; }

  OwnerTotals totals_for(const std::string& owner) const;

  /// All owners that ever ran something here, with their totals.
  std::map<std::string, OwnerTotals> totals() const;

  /// Simple settlement hook: cpu-seconds price * usage (the paper leaves
  /// pricing open; a unit price keeps the interface honest).
  double amount_owed(const std::string& owner,
                     double price_per_cpu_second) const;

 private:
  std::vector<BillingRecord> records_;
};

/// The host-side virtual account: a sandbox factory with a fixed policy
/// plus the ledger. This is what a Triana service consults before and
/// after running foreign code.
class VirtualAccount {
 public:
  VirtualAccount(std::string host_id, Policy policy,
                 const CertifiedLibrary* library = nullptr)
      : host_id_(std::move(host_id)),
        policy_(std::move(policy)),
        library_(library) {}

  /// New sandbox for one execution under this account's policy.
  Sandbox open_sandbox() const { return Sandbox(policy_, library_); }

  /// Close out an execution: bill its usage.
  void settle(const std::string& owner, const std::string& module,
              double started_at, const Sandbox& sb, bool violated) {
    ledger_.bill(owner, module, started_at, sb.usage(), violated);
  }

  const std::string& host_id() const { return host_id_; }
  const Policy& policy() const { return policy_; }
  BillingLedger& ledger() { return ledger_; }
  const BillingLedger& ledger() const { return ledger_; }

 private:
  std::string host_id_;
  Policy policy_;
  const CertifiedLibrary* library_;
  BillingLedger ledger_;
};

}  // namespace cg::sandbox
