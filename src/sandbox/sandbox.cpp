#include "sandbox/sandbox.hpp"

#include <algorithm>

namespace cg::sandbox {

void Sandbox::admit_module(const std::string& module_name,
                           std::uint64_t hash) const {
  if (!policy_.certified_modules_only) return;
  if (library_ && library_->is_certified(hash)) return;
  throw SandboxViolation("module '" + module_name +
                         "' is not in the certified library");
}

void Sandbox::charge_cpu(double seconds) {
  if (seconds < 0.0) throw std::invalid_argument("negative cpu charge");
  std::lock_guard lock(mu_);
  usage_.cpu_seconds += seconds;
  if (usage_.cpu_seconds > policy_.max_cpu_seconds) {
    throw SandboxViolation("CPU budget exhausted: used " +
                           std::to_string(usage_.cpu_seconds) + "s of " +
                           std::to_string(policy_.max_cpu_seconds) + "s");
  }
}

void Sandbox::allocate(std::uint64_t bytes) {
  std::lock_guard lock(mu_);
  if (usage_.memory_bytes + bytes > policy_.max_memory_bytes) {
    throw SandboxViolation("memory limit exceeded: " +
                           std::to_string(usage_.memory_bytes + bytes) +
                           " > " + std::to_string(policy_.max_memory_bytes));
  }
  usage_.memory_bytes += bytes;
  usage_.peak_memory_bytes =
      std::max(usage_.peak_memory_bytes, usage_.memory_bytes);
}

void Sandbox::release(std::uint64_t bytes) {
  std::lock_guard lock(mu_);
  usage_.memory_bytes -= std::min(bytes, usage_.memory_bytes);
}

void Sandbox::charge_network(std::uint64_t bytes) {
  check_network_allowed();
  std::lock_guard lock(mu_);
  usage_.network_bytes += bytes;
  if (usage_.network_bytes > policy_.max_network_bytes) {
    throw SandboxViolation("network budget exhausted");
  }
}

void Sandbox::check_file_access(const std::string& path, bool write) {
  if (policy_.allow_filesystem) return;
  for (const auto& prefix : policy_.allowed_path_prefixes) {
    if (path.rfind(prefix, 0) == 0) return;
  }
  {
    std::lock_guard lock(mu_);
    ++usage_.file_accesses_denied;
  }
  throw SandboxViolation(std::string("filesystem access denied: ") +
                         (write ? "write " : "read ") + path);
}

void Sandbox::check_network_allowed() const {
  if (!policy_.allow_network) {
    throw SandboxViolation("network access denied by policy");
  }
}

double Sandbox::cpu_remaining() const {
  std::lock_guard lock(mu_);
  return std::max(0.0, policy_.max_cpu_seconds - usage_.cpu_seconds);
}

}  // namespace cg::sandbox
