// ConGrid -- thread pool.
//
// The real-execution substrate behind the data-flow engine and the
// ThreadPoolManager: a fixed set of workers draining a task queue. The
// wave scheduler (core/engine) drives it through submit_batch(), which
// enqueues a whole wave under one lock and hands back a Batch barrier to
// wait on at the wave boundary.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cg::rm {

class ThreadPool {
 public:
  /// Completion barrier for one submit_batch() call. Copyable handle;
  /// default-constructed handles are already "done".
  class Batch {
   public:
    Batch() = default;

    /// Block until every task in the batch has run to completion (not just
    /// been dequeued). Condition-variable wait, no spinning.
    void wait();

    /// True once every task has finished.
    bool done() const;

   private:
    friend class ThreadPool;
    struct State {
      std::mutex mu;
      std::condition_variable cv;
      std::size_t remaining = 0;
    };
    std::shared_ptr<State> st_;
  };

  /// `threads` == 0 selects hardware_concurrency (min 1).
  explicit ThreadPool(unsigned threads = 0);
  /// Equivalent to shutdown(): pending tasks are discarded, running tasks
  /// joined.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Throws std::runtime_error after shutdown began.
  void post(std::function<void()> task);

  /// Enqueue a task and get a future for its result. A failure to enqueue
  /// (post after shutdown) REJECTS the returned future -- the future
  /// carries the std::runtime_error instead of a broken-promise
  /// std::future_error -- so callers have exactly one error channel:
  /// future.get().
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto prom = std::make_shared<std::promise<R>>();
    auto fut = prom->get_future();
    try {
      post([prom, fn = std::forward<F>(f)]() mutable {
        try {
          if constexpr (std::is_void_v<R>) {
            fn();
            prom->set_value();
          } else {
            prom->set_value(fn());
          }
        } catch (...) {
          prom->set_exception(std::current_exception());
        }
      });
    } catch (...) {
      prom->set_exception(std::current_exception());
    }
    return fut;
  }

  /// Enqueue every task under a single lock acquisition (one wake-all
  /// instead of per-task signalling) and return a barrier that completes
  /// when all of them have run. An empty batch is already done. Tasks must
  /// not throw (same contract as post); wrap work that can fail. Throws
  /// std::runtime_error after shutdown began.
  Batch submit_batch(std::vector<std::function<void()>> tasks);

  /// Stop accepting work, discard pending tasks and join the workers.
  /// Idempotent; the destructor calls it. Batches whose tasks were still
  /// pending never complete -- shut down only between waves.
  void shutdown();

  /// Block until the queue is empty and all workers are idle.
  void wait_idle();

  unsigned thread_count() const { return static_cast<unsigned>(workers_.size()); }
  std::size_t pending() const;

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;        ///< wakes workers
  std::condition_variable idle_cv_;   ///< wakes wait_idle
  std::deque<std::function<void()>> queue_;
  unsigned active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace cg::rm
