// ConGrid -- thread pool.
//
// The real-execution substrate behind the data-flow engine and the
// ThreadPoolManager: a fixed set of workers draining a task queue.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace cg::rm {

class ThreadPool {
 public:
  /// `threads` == 0 selects hardware_concurrency (min 1).
  explicit ThreadPool(unsigned threads = 0);
  /// Drains nothing: pending tasks are discarded, running tasks joined.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Throws std::runtime_error after shutdown began.
  void post(std::function<void()> task);

  /// Enqueue a task and get a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    auto fut = task->get_future();
    post([task] { (*task)(); });
    return fut;
  }

  /// Block until the queue is empty and all workers are idle.
  void wait_idle();

  unsigned thread_count() const { return static_cast<unsigned>(workers_.size()); }
  std::size_t pending() const;

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;        ///< wakes workers
  std::condition_variable idle_cv_;   ///< wakes wait_idle
  std::deque<std::function<void()>> queue_;
  unsigned active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace cg::rm
