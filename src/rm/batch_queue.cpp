#include "rm/batch_queue.hpp"

#include <algorithm>

namespace cg::rm {

SimBatchQueue::SimBatchQueue(net::Scheduler scheduler, net::Clock clock,
                             BatchQueueOptions options, std::uint64_t seed)
    : scheduler_(std::move(scheduler)),
      clock_(std::move(clock)),
      options_(options),
      rng_(seed) {}

void SimBatchQueue::submit(double duration_s,
                           std::function<void()> on_complete) {
  ++stats_.submitted;
  // Every submission pays the scheduler's decision latency before it can
  // even join the run queue (GRAM's job-manager overhead).
  const double overhead =
      options_.mean_queue_overhead_s > 0
          ? rng_.exponential(options_.mean_queue_overhead_s)
          : 0.0;
  scheduler_(overhead, [this, duration_s,
                        on_complete = std::move(on_complete)]() mutable {
    waiting_.push_back(Pending{duration_s, std::move(on_complete)});
    stats_.max_queue_length = std::max(stats_.max_queue_length,
                                       waiting_.size());
    try_start();
  });
}

void SimBatchQueue::try_start() {
  while (busy_ < options_.slots && !waiting_.empty()) {
    Pending p = std::move(waiting_.front());
    waiting_.pop_front();
    ++busy_;
    ++stats_.started;
    stats_.busy_seconds += p.duration_s;
    scheduler_(p.duration_s, [this, done = std::move(p.on_complete)]() mutable {
      --busy_;
      ++stats_.completed;
      if (done) done();
      try_start();
    });
  }
}

}  // namespace cg::rm
