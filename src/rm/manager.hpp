// ConGrid -- local resource managers.
//
// Paper, section 3.1: "The server component within each peer can interact
// with Globus GRAM to launch jobs locally on the node ... In the case where
// no local resource manager is available, the Triana server component can
// itself be used to launch the application." A Triana service therefore
// launches work through this interface, and the deployment decides whether
// that means "run it right here", "hand it to the local worker pool", or
// "submit it to the cluster's batch system".
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "rm/thread_pool.hpp"

namespace cg::rm {

/// A unit of launched work plus its completion callback. `work` runs to
/// completion on whatever execution resource the manager owns; `on_done`
/// fires afterwards with success/failure (work() throwing == failure).
struct Job {
  std::string id;
  std::function<void()> work;
  std::function<void(bool ok, const std::string& error)> on_done;
};

struct ManagerStats {
  std::uint64_t launched = 0;
  std::uint64_t succeeded = 0;
  std::uint64_t failed = 0;
};

/// Abstract launch gateway (the GRAM-or-self decision point).
class ResourceManager {
 public:
  virtual ~ResourceManager() = default;
  virtual void launch(Job job) = 0;
  virtual const ManagerStats& stats() const = 0;
  /// Human-readable kind, e.g. "inline", "thread-pool".
  virtual std::string kind() const = 0;
};

/// Runs the job synchronously on the caller's thread -- the "no local
/// resource manager" case where the Triana server itself executes.
class InlineManager final : public ResourceManager {
 public:
  void launch(Job job) override;
  const ManagerStats& stats() const override { return stats_; }
  std::string kind() const override { return "inline"; }

 private:
  ManagerStats stats_;
};

/// Dispatches jobs onto a shared worker pool -- a workstation with spare
/// cores. Completion callbacks run on pool threads.
class ThreadPoolManager final : public ResourceManager {
 public:
  /// The pool must outlive the manager.
  explicit ThreadPoolManager(ThreadPool& pool) : pool_(pool) {}

  void launch(Job job) override;
  const ManagerStats& stats() const override { return stats_; }
  std::string kind() const override { return "thread-pool"; }

 private:
  ThreadPool& pool_;
  ManagerStats stats_;
  std::mutex mu_;
};

}  // namespace cg::rm
