#include "rm/thread_pool.hpp"

#include <stdexcept>

namespace cg::rm {

void ThreadPool::Batch::wait() {
  if (!st_) return;
  std::unique_lock lock(st_->mu);
  st_->cv.wait(lock, [this] { return st_->remaining == 0; });
}

bool ThreadPool::Batch::done() const {
  if (!st_) return true;
  std::lock_guard lock(st_->mu);
  return st_->remaining == 0;
}

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard lock(mu_);
    if (stop_) return;
    stop_ = true;
    queue_.clear();
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::post(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    if (stop_) throw std::runtime_error("ThreadPool::post after shutdown");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

ThreadPool::Batch ThreadPool::submit_batch(
    std::vector<std::function<void()>> tasks) {
  Batch batch;
  if (tasks.empty()) return batch;
  batch.st_ = std::make_shared<Batch::State>();
  batch.st_->remaining = tasks.size();
  const auto st = batch.st_;
  {
    std::lock_guard lock(mu_);
    if (stop_) {
      throw std::runtime_error("ThreadPool::submit_batch after shutdown");
    }
    for (auto& task : tasks) {
      queue_.push_back([st, t = std::move(task)] {
        t();
        std::size_t left;
        {
          std::lock_guard guard(st->mu);
          left = --st->remaining;
        }
        if (left == 0) st->cv.notify_all();
      });
    }
  }
  cv_.notify_all();
  return batch;
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

std::size_t ThreadPool::pending() const {
  std::lock_guard lock(mu_);
  return queue_.size();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace cg::rm
