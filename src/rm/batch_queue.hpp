// ConGrid -- simulated batch queue (the GRAM / cluster substitution).
//
// The paper's peers may front "parallel machines or workstation clusters"
// reached through Globus GRAM. We model that gateway in simulated time: a
// fixed number of slots, a queueing delay drawn per submission, and jobs
// with a declared duration. Used by the sim-based benches to represent
// organisation-owned resources next to consumer peers.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "dsp/rng.hpp"
#include "net/time.hpp"

namespace cg::rm {

struct BatchQueueOptions {
  unsigned slots = 8;                 ///< concurrently running jobs
  double mean_queue_overhead_s = 30;  ///< exponential scheduling delay
};

struct BatchQueueStats {
  std::uint64_t submitted = 0;
  std::uint64_t started = 0;
  std::uint64_t completed = 0;
  std::size_t max_queue_length = 0;
  double busy_seconds = 0;  ///< total slot-seconds of execution
};

/// Virtual-time batch scheduler. All activity happens through the supplied
/// Scheduler/Clock (normally a SimNetwork).
class SimBatchQueue {
 public:
  SimBatchQueue(net::Scheduler scheduler, net::Clock clock,
                BatchQueueOptions options = {}, std::uint64_t seed = 1);

  /// Submit a job of `duration_s` simulated seconds; `on_complete` runs in
  /// virtual time when it finishes.
  void submit(double duration_s, std::function<void()> on_complete);

  unsigned busy_slots() const { return busy_; }
  std::size_t queued() const { return waiting_.size(); }
  const BatchQueueStats& stats() const { return stats_; }

 private:
  struct Pending {
    double duration_s;
    std::function<void()> on_complete;
  };

  void try_start();

  net::Scheduler scheduler_;
  net::Clock clock_;
  BatchQueueOptions options_;
  dsp::Rng rng_;
  std::deque<Pending> waiting_;
  unsigned busy_ = 0;
  BatchQueueStats stats_;
};

}  // namespace cg::rm
