#include "rm/manager.hpp"

namespace cg::rm {
namespace {

void run_one(Job& job, ManagerStats& stats, std::mutex* mu) {
  bool ok = true;
  std::string error;
  try {
    if (job.work) job.work();
  } catch (const std::exception& e) {
    ok = false;
    error = e.what();
  } catch (...) {
    ok = false;
    error = "unknown error";
  }
  {
    std::unique_lock<std::mutex> lock;
    if (mu) lock = std::unique_lock<std::mutex>(*mu);
    ok ? ++stats.succeeded : ++stats.failed;
  }
  if (job.on_done) job.on_done(ok, error);
}

}  // namespace

void InlineManager::launch(Job job) {
  ++stats_.launched;
  run_one(job, stats_, nullptr);
}

void ThreadPoolManager::launch(Job job) {
  {
    std::lock_guard lock(mu_);
    ++stats_.launched;
  }
  pool_.post([this, job = std::move(job)]() mutable {
    run_one(job, stats_, &mu_);
  });
}

}  // namespace cg::rm
