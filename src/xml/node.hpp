// ConGrid -- minimal XML document model.
//
// Triana encodes task graphs, unit descriptions and advertisements as XML
// (the paper, section 1 and 3.1). ConGrid follows suit; this module is the
// self-contained XML substrate: an element tree with attributes and text,
// a recursive-descent parser and a pretty-printing writer. It supports the
// subset of XML that the formats need -- elements, attributes, character
// data, comments, declarations and the five standard entities -- and
// nothing more (no namespaces, DTDs or processing beyond skipping).
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cg::xml {

/// Thrown on malformed documents (parse) or invalid names (write).
class XmlError : public std::runtime_error {
 public:
  explicit XmlError(const std::string& what) : std::runtime_error(what) {}
};

/// One XML element: a name, ordered attributes, child elements and any
/// character data (concatenated across interleaved children).
class Node {
 public:
  Node() = default;
  explicit Node(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  /// Concatenated character data directly inside this element.
  const std::string& text() const { return text_; }
  void set_text(std::string t) { text_ = std::move(t); }

  // -- attributes ----------------------------------------------------------
  /// Attribute value, or nullopt when absent.
  std::optional<std::string> attr(std::string_view key) const;
  /// Attribute value, or `fallback` when absent.
  std::string attr_or(std::string_view key, std::string fallback) const;
  /// Attribute value; throws XmlError when absent (for required fields).
  const std::string& require_attr(std::string_view key) const;
  /// Set (or replace) an attribute.
  void set_attr(std::string key, std::string value);
  bool has_attr(std::string_view key) const { return attr(key).has_value(); }

  const std::vector<std::pair<std::string, std::string>>& attrs() const {
    return attrs_;
  }

  // -- typed attribute helpers ----------------------------------------------
  /// Parse an attribute as a signed integer; throws XmlError on garbage,
  /// returns `fallback` when absent.
  long long attr_int(std::string_view key, long long fallback) const;
  /// Parse an attribute as a double; throws XmlError on garbage.
  double attr_double(std::string_view key, double fallback) const;
  void set_attr_int(std::string key, long long value);
  void set_attr_double(std::string key, double value);

  // -- children --------------------------------------------------------------
  /// Append a child element and return a reference to it (stable only until
  /// the next structural mutation, as with vector elements).
  Node& add_child(std::string name);
  Node& add_child(Node n);

  /// First child with the given name, or nullptr.
  const Node* child(std::string_view name) const;
  Node* child(std::string_view name);
  /// First child with the given name; throws XmlError when absent.
  const Node& require_child(std::string_view name) const;
  /// All children with the given name, in document order.
  std::vector<const Node*> children(std::string_view name) const;

  const std::vector<Node>& all_children() const { return children_; }
  std::vector<Node>& all_children() { return children_; }

  /// Total number of elements in this subtree, including this node.
  std::size_t subtree_size() const;

  bool operator==(const Node& other) const;

 private:
  std::string name_;
  std::string text_;
  std::vector<std::pair<std::string, std::string>> attrs_;
  std::vector<Node> children_;
};

}  // namespace cg::xml
