#include "xml/node.hpp"

#include <cstdlib>

namespace cg::xml {

std::optional<std::string> Node::attr(std::string_view key) const {
  for (const auto& [k, v] : attrs_) {
    if (k == key) return v;
  }
  return std::nullopt;
}

std::string Node::attr_or(std::string_view key, std::string fallback) const {
  auto v = attr(key);
  return v ? *v : std::move(fallback);
}

const std::string& Node::require_attr(std::string_view key) const {
  for (const auto& [k, v] : attrs_) {
    if (k == key) return v;
  }
  throw XmlError("element <" + name_ + "> missing required attribute '" +
                 std::string(key) + "'");
}

void Node::set_attr(std::string key, std::string value) {
  for (auto& [k, v] : attrs_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  attrs_.emplace_back(std::move(key), std::move(value));
}

long long Node::attr_int(std::string_view key, long long fallback) const {
  auto v = attr(key);
  if (!v) return fallback;
  char* end = nullptr;
  long long r = std::strtoll(v->c_str(), &end, 10);
  if (end == v->c_str() || *end != '\0') {
    throw XmlError("attribute '" + std::string(key) + "' is not an integer: " +
                   *v);
  }
  return r;
}

double Node::attr_double(std::string_view key, double fallback) const {
  auto v = attr(key);
  if (!v) return fallback;
  char* end = nullptr;
  double r = std::strtod(v->c_str(), &end);
  if (end == v->c_str() || *end != '\0') {
    throw XmlError("attribute '" + std::string(key) + "' is not a number: " +
                   *v);
  }
  return r;
}

void Node::set_attr_int(std::string key, long long value) {
  set_attr(std::move(key), std::to_string(value));
}

void Node::set_attr_double(std::string key, double value) {
  // Round-trippable formatting: 17 significant digits.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  set_attr(std::move(key), buf);
}

Node& Node::add_child(std::string name) {
  children_.emplace_back(std::move(name));
  return children_.back();
}

Node& Node::add_child(Node n) {
  children_.push_back(std::move(n));
  return children_.back();
}

const Node* Node::child(std::string_view name) const {
  for (const auto& c : children_) {
    if (c.name() == name) return &c;
  }
  return nullptr;
}

Node* Node::child(std::string_view name) {
  for (auto& c : children_) {
    if (c.name() == name) return &c;
  }
  return nullptr;
}

const Node& Node::require_child(std::string_view name) const {
  const Node* c = child(name);
  if (!c) {
    throw XmlError("element <" + name_ + "> missing required child <" +
                   std::string(name) + ">");
  }
  return *c;
}

std::vector<const Node*> Node::children(std::string_view name) const {
  std::vector<const Node*> out;
  for (const auto& c : children_) {
    if (c.name() == name) out.push_back(&c);
  }
  return out;
}

std::size_t Node::subtree_size() const {
  std::size_t n = 1;
  for (const auto& c : children_) n += c.subtree_size();
  return n;
}

bool Node::operator==(const Node& other) const {
  return name_ == other.name_ && text_ == other.text_ &&
         attrs_ == other.attrs_ && children_ == other.children_;
}

}  // namespace cg::xml
