#include "xml/parse.hpp"

#include <cctype>

namespace cg::xml {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view doc) : doc_(doc) {}

  Node parse_document() {
    skip_prolog();
    Node root = parse_element();
    skip_misc();
    if (!at_end()) fail("content after document root");
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw XmlError("XML parse error at " + std::to_string(line_) + ":" +
                   std::to_string(col_) + ": " + msg);
  }

  bool at_end() const { return pos_ >= doc_.size(); }

  char peek() const {
    if (at_end()) fail("unexpected end of document");
    return doc_[pos_];
  }

  bool peek_is(std::string_view s) const {
    return doc_.substr(pos_, s.size()) == s;
  }

  char advance() {
    char c = peek();
    ++pos_;
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "', found '" +
                          peek() + "'");
    advance();
  }

  void expect(std::string_view s) {
    for (char c : s) expect(c);
  }

  void skip_ws() {
    while (!at_end() && std::isspace(static_cast<unsigned char>(doc_[pos_]))) {
      advance();
    }
  }

  void skip_comment() {
    expect("<!--");
    while (!peek_is("-->")) advance();
    expect("-->");
  }

  void skip_declaration() {
    expect("<?");
    while (!peek_is("?>")) advance();
    expect("?>");
  }

  /// Skip whitespace, comments and declarations before/after the root.
  void skip_misc() {
    for (;;) {
      skip_ws();
      if (peek_is("<!--")) {
        skip_comment();
      } else if (peek_is("<?")) {
        skip_declaration();
      } else {
        return;
      }
    }
  }

  void skip_prolog() { skip_misc(); }

  static bool is_name_start(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  }
  static bool is_name_char(char c) {
    return is_name_start(c) || std::isdigit(static_cast<unsigned char>(c)) ||
           c == '-' || c == '.';
  }

  std::string parse_name() {
    if (!is_name_start(peek())) fail("expected a name");
    std::string name;
    while (!at_end() && is_name_char(doc_[pos_])) name.push_back(advance());
    return name;
  }

  std::string decode_entity() {
    expect('&');
    std::string ent;
    while (peek() != ';') ent.push_back(advance());
    expect(';');
    if (ent == "lt") return "<";
    if (ent == "gt") return ">";
    if (ent == "amp") return "&";
    if (ent == "quot") return "\"";
    if (ent == "apos") return "'";
    if (!ent.empty() && ent[0] == '#') {
      // Numeric character reference; we only handle the ASCII range, which
      // is all the ConGrid formats ever emit.
      long code = (ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X'))
                      ? std::strtol(ent.c_str() + 2, nullptr, 16)
                      : std::strtol(ent.c_str() + 1, nullptr, 10);
      if (code <= 0 || code > 127) fail("unsupported character reference &" +
                                        ent + ";");
      return std::string(1, static_cast<char>(code));
    }
    fail("unknown entity &" + ent + ";");
  }

  std::string parse_attr_value() {
    char quote = peek();
    if (quote != '"' && quote != '\'') fail("expected quoted attribute value");
    advance();
    std::string value;
    while (peek() != quote) {
      if (peek() == '&') {
        value += decode_entity();
      } else if (peek() == '<') {
        fail("'<' in attribute value");
      } else {
        value.push_back(advance());
      }
    }
    advance();  // closing quote
    return value;
  }

  Node parse_element() {
    // Untrusted documents must not overflow the stack by nesting.
    if (++depth_ > kMaxDepth) fail("element nesting exceeds limit");
    struct DepthGuard {
      std::size_t& d;
      ~DepthGuard() { --d; }
    } guard{depth_};

    expect('<');
    Node node(parse_name());
    for (;;) {
      skip_ws();
      if (peek() == '/') {
        expect("/>");
        return node;
      }
      if (peek() == '>') {
        advance();
        parse_content(node);
        return node;
      }
      std::string key = parse_name();
      skip_ws();
      expect('=');
      skip_ws();
      node.set_attr(std::move(key), parse_attr_value());
    }
  }

  void parse_content(Node& node) {
    std::string text;
    for (;;) {
      if (peek() != '<') {
        if (peek() == '&') {
          text += decode_entity();
        } else {
          text.push_back(advance());
        }
        continue;
      }
      if (peek_is("<!--")) {
        skip_comment();
        continue;
      }
      if (peek_is("<![CDATA[")) {
        for (std::size_t i = 0; i < 9; ++i) advance();
        while (!peek_is("]]>")) text.push_back(advance());
        expect("]]>");
        continue;
      }
      if (peek_is("</")) {
        expect("</");
        std::string close = parse_name();
        if (close != node.name()) {
          fail("mismatched close tag </" + close + "> for <" + node.name() +
               ">");
        }
        skip_ws();
        expect('>');
        node.set_text(trim(text));
        return;
      }
      node.add_child(parse_element());
    }
  }

  static std::string trim(const std::string& s) {
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
    return s.substr(b, e - b);
  }

  static constexpr std::size_t kMaxDepth = 256;

  std::string_view doc_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t col_ = 1;
  std::size_t depth_ = 0;
};

}  // namespace

Node parse(std::string_view document) {
  return Parser(document).parse_document();
}

}  // namespace cg::xml
