#include "xml/write.hpp"

namespace cg::xml {
namespace {

void write_node(const Node& n, std::string& out, bool pretty, int depth) {
  auto indent = [&](int d) {
    if (pretty) out.append(static_cast<std::size_t>(d) * 2, ' ');
  };
  auto newline = [&] {
    if (pretty) out.push_back('\n');
  };

  indent(depth);
  out.push_back('<');
  out += n.name();
  for (const auto& [k, v] : n.attrs()) {
    out.push_back(' ');
    out += k;
    out += "=\"";
    out += escape(v);
    out.push_back('"');
  }

  const bool empty = n.text().empty() && n.all_children().empty();
  if (empty) {
    out += "/>";
    newline();
    return;
  }

  out.push_back('>');
  if (!n.text().empty()) {
    out += escape(n.text());
  }
  if (!n.all_children().empty()) {
    newline();
    for (const auto& c : n.all_children()) {
      write_node(c, out, pretty, depth + 1);
    }
    indent(depth);
  }
  out += "</";
  out += n.name();
  out.push_back('>');
  newline();
}

}  // namespace

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string write(const Node& root, bool pretty) {
  std::string out;
  write_node(root, out, pretty, 0);
  return out;
}

}  // namespace cg::xml
