// ConGrid -- XML writer (see node.hpp for scope).
#pragma once

#include <string>

#include "xml/node.hpp"

namespace cg::xml {

/// Serialize an element tree. With `pretty` set, children are indented two
/// spaces per level and elements are separated by newlines; otherwise the
/// output is a single line (useful when counting wire bytes). Attribute
/// values and text are entity-escaped, so write(parse(x)) round-trips.
std::string write(const Node& root, bool pretty = true);

/// Escape the five standard XML entities in `s`.
std::string escape(std::string_view s);

}  // namespace cg::xml
