// ConGrid -- XML parser (see node.hpp for scope).
#pragma once

#include <string_view>

#include "xml/node.hpp"

namespace cg::xml {

/// Parse a document and return its root element. Leading XML declarations
/// (`<?xml ...?>`) and comments are skipped. Throws XmlError with a
/// line:column position on malformed input.
Node parse(std::string_view document);

}  // namespace cg::xml
