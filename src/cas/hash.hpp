// ConGrid -- SHA-256 content hashing for the artifact store.
//
// Everything the content-addressed store (cas/store.hpp) holds is keyed by
// the SHA-256 of its bytes: identical module code, configs or memoized
// outputs collapse to one stored object no matter which peer produced
// them, and a disk entry whose bytes no longer hash to its name is
// detectably corrupt. FNV-1a (repo/artifact.hpp) remains the cheap
// admission-control hash; this digest is the storage key, where collision
// resistance actually matters.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

namespace cg::cas {

/// A 256-bit content digest. Value type: compare, hash, copy freely.
struct Digest {
  std::array<std::uint8_t, 32> bytes{};

  /// Lowercase 64-char hex, the on-disk object filename.
  std::string hex() const;
  /// Parse 64 hex chars; nullopt on bad length or non-hex input.
  static std::optional<Digest> from_hex(std::string_view s);

  bool operator==(const Digest&) const = default;
  auto operator<=>(const Digest&) const = default;
};

/// Map/set hashing: the first 8 digest bytes are already uniform.
struct DigestHasher {
  std::size_t operator()(const Digest& d) const {
    std::size_t h = 0;
    for (std::size_t i = 0; i < sizeof(h); ++i) {
      h = (h << 8) | d.bytes[i];
    }
    return h;
  }
};

/// Incremental SHA-256 (FIPS 180-4). Callers framing multi-field keys must
/// length-prefix the fields themselves; update() concatenates raw bytes.
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(const void* data, std::size_t len);
  void update(std::span<const std::uint8_t> data) {
    update(data.data(), data.size());
  }
  /// Finalise and return the digest; the hasher must be reset() for reuse.
  Digest finish();

 private:
  void compress_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buf_{};
  std::uint64_t total_ = 0;  ///< bytes hashed so far
  std::size_t buf_len_ = 0;
};

/// One-shot digest of a byte range.
Digest sha256(std::span<const std::uint8_t> data);

}  // namespace cg::cas
