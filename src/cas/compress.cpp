#include "cas/compress.hpp"

#include <cstring>
#include <vector>

#include "serial/reader.hpp"
#include "serial/writer.hpp"

namespace cg::cas {
namespace {

// Layout: varint raw_size, u8 method, payload.
//   kStored: payload is the raw bytes verbatim.
//   kLz: payload is a series of blocks
//          varint literal_len, literal bytes,
//          varint match_len  (0 = no match, next block follows),
//          varint offset     (present when match_len > 0; 1-based back ref)
//        until the decoded output reaches raw_size. The trailing block may
//        end after its literals once the output is complete.
constexpr std::uint8_t kStored = 0;
constexpr std::uint8_t kLz = 1;

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxOffset = 1u << 16;
constexpr std::size_t kHashBits = 13;

inline std::uint32_t hash4(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

}  // namespace

serial::Bytes compress(std::span<const std::uint8_t> raw) {
  serial::Writer w(raw.size() / 2 + 16);
  w.varint(raw.size());
  if (raw.size() < kMinMatch + 1) {
    w.u8(kStored);
    w.raw(raw);
    return w.take();
  }

  serial::Writer body(raw.size());
  std::vector<std::size_t> table(std::size_t{1} << kHashBits, SIZE_MAX);
  const std::uint8_t* base = raw.data();
  const std::size_t n = raw.size();
  std::size_t pos = 0;
  std::size_t literal_start = 0;
  // The last kMinMatch-1 bytes can never start a match (hash4 reads 4).
  const std::size_t match_limit = n - kMinMatch + 1;

  auto emit_block = [&](std::size_t lit_end, std::size_t match_len,
                        std::size_t offset) {
    body.varint(lit_end - literal_start);
    body.raw(std::span<const std::uint8_t>(base + literal_start,
                                           lit_end - literal_start));
    body.varint(match_len);
    if (match_len > 0) body.varint(offset);
  };

  while (pos < match_limit) {
    const std::uint32_t h = hash4(base + pos);
    const std::size_t cand = table[h];
    table[h] = pos;
    if (cand != SIZE_MAX && pos - cand <= kMaxOffset &&
        std::memcmp(base + cand, base + pos, kMinMatch) == 0) {
      std::size_t len = kMinMatch;
      while (pos + len < n && base[cand + len] == base[pos + len]) ++len;
      emit_block(pos, len, pos - cand);
      // Seed the table sparsely inside the match so later data can still
      // reference it without paying a per-byte insertion cost.
      const std::size_t step = len > 64 ? 8 : 1;
      for (std::size_t i = 1; i < len && pos + i < match_limit; i += step) {
        table[hash4(base + pos + i)] = pos + i;
      }
      pos += len;
      literal_start = pos;
    } else {
      ++pos;
    }
  }
  if (literal_start < n) emit_block(n, 0, 0);

  // Keep whichever form is smaller; ties go to stored (cheaper to decode).
  if (body.size() < n) {
    w.u8(kLz);
    w.raw(body.bytes());
  } else {
    w.u8(kStored);
    w.raw(raw);
  }
  return w.take();
}

serial::Bytes decompress(std::span<const std::uint8_t> compressed) {
  serial::Reader r(compressed);
  const std::uint64_t raw_size = r.varint();
  const std::uint8_t method = r.u8();

  if (method == kStored) {
    serial::Bytes out = r.raw(raw_size);
    if (!r.at_end()) {
      throw serial::DecodeError("cas: trailing bytes after stored block");
    }
    return out;
  }
  if (method != kLz) {
    throw serial::DecodeError("cas: unknown compression method");
  }

  serial::Bytes out;
  out.reserve(raw_size);
  while (out.size() < raw_size) {
    const std::uint64_t lit = r.varint();
    if (out.size() + lit > raw_size) {
      throw serial::DecodeError("cas: literal run overflows raw size");
    }
    const serial::Bytes run = r.raw(lit);
    out.insert(out.end(), run.begin(), run.end());
    if (out.size() == raw_size) break;
    const std::uint64_t match_len = r.varint();
    if (match_len == 0) continue;
    const std::uint64_t offset = r.varint();
    if (offset == 0 || offset > out.size()) {
      throw serial::DecodeError("cas: match offset out of range");
    }
    if (out.size() + match_len > raw_size) {
      throw serial::DecodeError("cas: match overflows raw size");
    }
    // Byte-by-byte: overlapping matches (offset < match_len) replicate.
    std::size_t src = out.size() - offset;
    for (std::uint64_t i = 0; i < match_len; ++i) {
      out.push_back(out[src + i]);
    }
  }
  if (out.size() != raw_size) {
    throw serial::DecodeError("cas: decoded size mismatch");
  }
  return out;
}

}  // namespace cg::cas
