#include "cas/store.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "cas/compress.hpp"
#include "serial/reader.hpp"

namespace cg::cas {
namespace fs = std::filesystem;
namespace {

/// Journal records, one per line, space-separated:
///   E <hex> <stored> <raw>   object added to the disk tier
///   T <hex>                  object touched (LRU refresh / promotion)
///   D <hex>                  object evicted or dropped
///   R <keyhex> <hex>         ref set (keyhex = sha256 of the key string)
/// Replay order reconstructs both the index and the LRU order; compaction
/// rewrites the journal as E lines in LRU order plus live R lines.

Digest key_digest(std::string_view key) {
  return sha256(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(key.data()), key.size()));
}

std::size_t env_bytes(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  const unsigned long long n = std::strtoull(v, &end, 10);
  return (end && *end == '\0') ? static_cast<std::size_t>(n) : fallback;
}

}  // namespace

CasConfig CasConfig::from_env() {
  CasConfig cfg;
  if (const char* dir = std::getenv("CONGRID_CAS_DIR"); dir && *dir) {
    cfg.dir = dir;
  }
  cfg.memory_bytes = env_bytes("CONGRID_CAS_MEM_BYTES", cfg.memory_bytes);
  cfg.disk_bytes = env_bytes("CONGRID_CAS_DISK_BYTES", cfg.disk_bytes);
  return cfg;
}

ContentStore::ContentStore(CasConfig cfg) : cfg_(std::move(cfg)) {
  if (!cfg_.dir.empty()) open_disk_tier();
}

ContentStore::~ContentStore() {
  if (journal_) std::fclose(journal_);
}

void ContentStore::open_disk_tier() {
  std::error_code ec;
  fs::create_directories(fs::path(cfg_.dir) / "objects", ec);
  fs::create_directories(fs::path(cfg_.dir) / "tmp", ec);
  if (ec) {
    throw std::runtime_error("cas: cannot create store directory " +
                             cfg_.dir + ": " + ec.message());
  }
  load_journal();
  compact_journal_locked();  // also creates the journal on first open
  if (!journal_) {
    throw std::runtime_error("cas: cannot open journal for append in " +
                             cfg_.dir);
  }
}

void ContentStore::load_journal() {
  const fs::path jpath = fs::path(cfg_.dir) / "journal";
  std::ifstream in(jpath);
  std::string line;
  while (in && std::getline(in, line)) {
    ++journal_lines_;
    std::istringstream ls(line);
    std::string tag, hex;
    if (!(ls >> tag >> hex)) continue;  // torn final line: ignore
    const auto d = Digest::from_hex(hex);
    if (!d) continue;
    if (tag == "E") {
      std::uint64_t stored = 0, raw = 0;
      if (!(ls >> stored >> raw)) continue;
      if (auto it = disk_.find(*d); it != disk_.end()) {
        disk_bytes_ -= it->second.stored_bytes;
        disk_lru_.erase(it->second.lru_it);
        disk_.erase(it);
      }
      disk_lru_.push_front(*d);
      disk_.emplace(*d, DiskEntry{stored, raw, disk_lru_.begin()});
      disk_bytes_ += stored;
    } else if (tag == "T") {
      if (auto it = disk_.find(*d); it != disk_.end()) {
        disk_lru_.erase(it->second.lru_it);
        disk_lru_.push_front(*d);
        it->second.lru_it = disk_lru_.begin();
      }
    } else if (tag == "D") {
      if (auto it = disk_.find(*d); it != disk_.end()) {
        disk_bytes_ -= it->second.stored_bytes;
        disk_lru_.erase(it->second.lru_it);
        disk_.erase(it);
      }
    } else if (tag == "R") {
      std::string value_hex;
      if (!(ls >> value_hex)) continue;
      if (const auto v = Digest::from_hex(value_hex)) refs_[*d] = *v;
    }
  }

  // Reconcile with the filesystem: entries whose object file vanished are
  // dropped; object files the journal never heard of (crash between rename
  // and append) are adopted by re-reading and verifying them.
  for (auto it = disk_.begin(); it != disk_.end();) {
    if (!fs::exists(object_path(it->first))) {
      disk_bytes_ -= it->second.stored_bytes;
      disk_lru_.erase(it->second.lru_it);
      it = disk_.erase(it);
    } else {
      ++it;
    }
  }
  std::error_code ec;
  for (const auto& shard :
       fs::directory_iterator(fs::path(cfg_.dir) / "objects", ec)) {
    if (!shard.is_directory()) continue;
    for (const auto& f : fs::directory_iterator(shard.path(), ec)) {
      const auto d = Digest::from_hex(f.path().filename().string());
      if (!d || disk_.contains(*d)) continue;
      std::ifstream obj(f.path(), std::ios::binary);
      serial::Bytes stored((std::istreambuf_iterator<char>(obj)),
                           std::istreambuf_iterator<char>());
      try {
        const serial::Bytes raw =
            cfg_.compress ? decompress(stored) : stored;
        if (sha256(raw) != *d) throw serial::DecodeError("digest mismatch");
        disk_lru_.push_back(*d);  // unknown recency: coldest end
        disk_.emplace(*d, DiskEntry{stored.size(), raw.size(),
                                    std::prev(disk_lru_.end())});
        disk_bytes_ += stored.size();
      } catch (const serial::DecodeError&) {
        fs::remove(f.path(), ec);  // half-written orphan
      }
    }
  }
}

void ContentStore::compact_journal_locked() {
  const fs::path jpath = fs::path(cfg_.dir) / "journal";
  const fs::path tmp = fs::path(cfg_.dir) / "tmp" / "journal.compact";
  if (journal_) {
    std::fclose(journal_);
    journal_ = nullptr;
  }
  {
    std::ofstream out(tmp, std::ios::trunc);
    // Oldest first so replay's push_front rebuilds the same LRU order.
    for (auto it = disk_lru_.rbegin(); it != disk_lru_.rend(); ++it) {
      const DiskEntry& e = disk_.at(*it);
      out << "E " << it->hex() << ' ' << e.stored_bytes << ' ' << e.raw_bytes
          << '\n';
    }
    for (const auto& [k, v] : refs_) {
      out << "R " << k.hex() << ' ' << v.hex() << '\n';
    }
  }
  std::error_code ec;
  fs::rename(tmp, jpath, ec);
  journal_lines_ = disk_.size() + refs_.size();
  journal_ = std::fopen(jpath.string().c_str(), "a");
}

void ContentStore::journal_locked(const std::string& line) {
  if (!journal_) return;
  std::fputs(line.c_str(), journal_);
  std::fputc('\n', journal_);
  std::fflush(journal_);
  if (++journal_lines_ > 4 * (disk_.size() + refs_.size()) + 64) {
    compact_journal_locked();
  }
}

std::string ContentStore::object_path(const Digest& d) const {
  const std::string hex = d.hex();
  return (fs::path(cfg_.dir) / "objects" / hex.substr(0, 2) / hex).string();
}

void ContentStore::touch_mem_locked(MemEntry& e, const Digest& d) {
  mem_lru_.erase(e.lru_it);
  mem_lru_.push_front(d);
  e.lru_it = mem_lru_.begin();
}

void ContentStore::touch_disk_locked(DiskEntry& e, const Digest& d,
                                     bool journal) {
  disk_lru_.erase(e.lru_it);
  disk_lru_.push_front(d);
  e.lru_it = disk_lru_.begin();
  if (journal) journal_locked("T " + d.hex());
}

void ContentStore::insert_mem_locked(const Digest& d, serial::Bytes raw) {
  if (raw.size() > cfg_.memory_bytes) return;  // would evict everything
  while (mem_bytes_ + raw.size() > cfg_.memory_bytes && !mem_lru_.empty()) {
    const Digest victim = mem_lru_.back();
    auto it = mem_.find(victim);
    mem_bytes_ -= it->second.raw.size();
    mem_lru_.pop_back();
    mem_.erase(it);
    ++stats_.mem_evictions;
    obs_.mem_evictions.inc();
  }
  mem_bytes_ += raw.size();
  mem_lru_.push_front(d);
  mem_.emplace(d, MemEntry{std::move(raw), mem_lru_.begin()});
  obs_.mem_bytes.set(static_cast<double>(mem_bytes_));
}

void ContentStore::write_disk_locked(const Digest& d,
                                     std::span<const std::uint8_t> raw) {
  const serial::Bytes stored =
      cfg_.compress ? compress(raw) : serial::Bytes(raw.begin(), raw.end());
  if (stored.size() > cfg_.disk_bytes) return;  // never fits
  while (disk_bytes_ + stored.size() > cfg_.disk_bytes &&
         !disk_lru_.empty()) {
    evict_disk_locked(disk_lru_.back());
  }

  const std::string hex = d.hex();
  const fs::path dir = fs::path(cfg_.dir) / "objects" / hex.substr(0, 2);
  const fs::path tmp = fs::path(cfg_.dir) / "tmp" / (hex + ".tmp");
  std::error_code ec;
  fs::create_directories(dir, ec);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(stored.data()),
              static_cast<std::streamsize>(stored.size()));
    if (!out) {
      fs::remove(tmp, ec);
      return;  // disk full / unwritable: stay memory-only
    }
  }
  fs::rename(tmp, dir / hex, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return;
  }

  disk_lru_.push_front(d);
  disk_.emplace(d, DiskEntry{stored.size(), raw.size(), disk_lru_.begin()});
  disk_bytes_ += stored.size();
  stats_.bytes_stored_disk += stored.size();
  obs_.bytes_stored_disk.inc(stored.size());
  obs_.disk_bytes.set(static_cast<double>(disk_bytes_));
  journal_locked("E " + hex + ' ' + std::to_string(stored.size()) + ' ' +
                 std::to_string(raw.size()));
}

void ContentStore::evict_disk_locked(Digest d) {
  auto it = disk_.find(d);
  if (it == disk_.end()) return;
  std::error_code ec;
  fs::remove(object_path(d), ec);
  disk_bytes_ -= it->second.stored_bytes;
  disk_lru_.erase(it->second.lru_it);
  disk_.erase(it);
  ++stats_.disk_evictions;
  obs_.disk_evictions.inc();
  obs_.disk_bytes.set(static_cast<double>(disk_bytes_));
  journal_locked("D " + d.hex());
}

void ContentStore::drop_corrupt_locked(Digest d) {
  auto it = disk_.find(d);
  if (it != disk_.end()) {
    std::error_code ec;
    fs::remove(object_path(d), ec);
    disk_bytes_ -= it->second.stored_bytes;
    disk_lru_.erase(it->second.lru_it);
    disk_.erase(it);
    obs_.disk_bytes.set(static_cast<double>(disk_bytes_));
    journal_locked("D " + d.hex());
  }
  ++stats_.corrupt_dropped;
  obs_.corrupt_dropped.inc();
}

Digest ContentStore::put(std::span<const std::uint8_t> bytes) {
  const Digest d = sha256(bytes);
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = mem_.find(d); it != mem_.end()) {
    ++stats_.dedup_hits;
    obs_.dedup_hits.inc();
    touch_mem_locked(it->second, d);
    return d;
  }
  if (auto it = disk_.find(d); it != disk_.end()) {
    ++stats_.dedup_hits;
    obs_.dedup_hits.inc();
    touch_disk_locked(it->second, d, /*journal=*/true);
    insert_mem_locked(d, serial::Bytes(bytes.begin(), bytes.end()));
    return d;
  }
  ++stats_.puts;
  stats_.bytes_stored_raw += bytes.size();
  obs_.puts.inc();
  if (!cfg_.dir.empty()) write_disk_locked(d, bytes);
  insert_mem_locked(d, serial::Bytes(bytes.begin(), bytes.end()));
  return d;
}

std::optional<serial::Bytes> ContentStore::get(const Digest& d) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = mem_.find(d); it != mem_.end()) {
    ++stats_.mem_hits;
    obs_.mem_hits.inc();
    touch_mem_locked(it->second, d);
    return it->second.raw;
  }
  if (auto it = disk_.find(d); it != disk_.end()) {
    std::ifstream obj(object_path(d), std::ios::binary);
    serial::Bytes stored((std::istreambuf_iterator<char>(obj)),
                         std::istreambuf_iterator<char>());
    if (!obj.good() && stored.empty() && it->second.stored_bytes != 0) {
      drop_corrupt_locked(d);  // file unreadable or vanished
      ++stats_.misses;
      obs_.misses.inc();
      return std::nullopt;
    }
    stats_.bytes_read_disk += stored.size();
    obs_.bytes_read_disk.inc(stored.size());
    serial::Bytes raw;
    try {
      raw = cfg_.compress ? decompress(stored) : std::move(stored);
      if (cfg_.verify_on_read && sha256(raw) != d) {
        throw serial::DecodeError("cas: object digest mismatch");
      }
    } catch (const serial::DecodeError&) {
      drop_corrupt_locked(d);
      ++stats_.misses;
      obs_.misses.inc();
      return std::nullopt;
    }
    ++stats_.disk_hits;
    obs_.disk_hits.inc();
    touch_disk_locked(it->second, d, /*journal=*/true);
    insert_mem_locked(d, raw);
    return raw;
  }
  ++stats_.misses;
  obs_.misses.inc();
  return std::nullopt;
}

bool ContentStore::contains(const Digest& d) const {
  std::lock_guard<std::mutex> lock(mu_);
  return mem_.contains(d) || disk_.contains(d);
}

void ContentStore::put_ref(std::string_view key, const Digest& d) {
  const Digest k = key_digest(key);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = refs_.try_emplace(k, d);
  if (!inserted) {
    if (it->second == d) return;  // unchanged: skip the journal line
    it->second = d;
  }
  journal_locked("R " + k.hex() + ' ' + d.hex());
}

std::optional<Digest> ContentStore::get_ref(std::string_view key) const {
  const Digest k = key_digest(key);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = refs_.find(k);
  return it == refs_.end() ? std::nullopt : std::optional<Digest>(it->second);
}

Digest ContentStore::put_keyed(std::string_view key,
                               std::span<const std::uint8_t> bytes) {
  const Digest d = put(bytes);
  put_ref(key, d);
  return d;
}

std::optional<serial::Bytes> ContentStore::get_by_key(std::string_view key) {
  const auto d = get_ref(key);
  return d ? get(*d) : std::nullopt;
}

std::size_t ContentStore::memory_resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return mem_bytes_;
}

std::size_t ContentStore::disk_resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return disk_bytes_;
}

std::size_t ContentStore::memory_object_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return mem_.size();
}

std::size_t ContentStore::disk_object_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return disk_.size();
}

CasStats ContentStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ContentStore::set_obs(obs::Registry& registry, std::string_view scope) {
  std::lock_guard<std::mutex> lock(mu_);
  obs_.mem_hits = registry.counter(obs::scoped(scope, "cas.mem_hits"));
  obs_.disk_hits = registry.counter(obs::scoped(scope, "cas.disk_hits"));
  obs_.misses = registry.counter(obs::scoped(scope, "cas.misses"));
  obs_.puts = registry.counter(obs::scoped(scope, "cas.puts"));
  obs_.dedup_hits = registry.counter(obs::scoped(scope, "cas.dedup_hits"));
  obs_.mem_evictions =
      registry.counter(obs::scoped(scope, "cas.mem_evictions"));
  obs_.disk_evictions =
      registry.counter(obs::scoped(scope, "cas.disk_evictions"));
  obs_.corrupt_dropped =
      registry.counter(obs::scoped(scope, "cas.corrupt_dropped"));
  obs_.bytes_stored_disk =
      registry.counter(obs::scoped(scope, "cas.bytes_stored_disk"));
  obs_.bytes_read_disk =
      registry.counter(obs::scoped(scope, "cas.bytes_read_disk"));
  obs_.mem_bytes = registry.gauge(obs::scoped(scope, "cas.mem_bytes"));
  obs_.disk_bytes = registry.gauge(obs::scoped(scope, "cas.disk_bytes"));
  obs_.mem_bytes.set(static_cast<double>(mem_bytes_));
  obs_.disk_bytes.set(static_cast<double>(disk_bytes_));
}

}  // namespace cg::cas
