// ConGrid -- the content-addressed artifact store (two tiers).
//
// The paper's consumer grid lives on cheap redistribution of service code
// and intermediate results; the store makes "have we seen these bytes
// before?" an O(1) question that survives restarts. Objects are keyed by
// the SHA-256 of their raw bytes, so identical module code published under
// different names, or the same pure-unit output recomputed on another
// peer, dedup to a single stored object.
//
// Tier layout:
//   * memory: a byte-budgeted LRU of raw (decompressed) objects -- the hot
//     set, served without touching the filesystem;
//   * disk (optional, CasConfig::dir): objects compressed (cas/compress)
//     and written write-then-rename-atomically into
//     <dir>/objects/<first-2-hex>/<64-hex>, with an append-only journal
//     (<dir>/journal) recording entries, touches, evictions and refs so
//     LRU order and the index survive restart. The journal is compacted on
//     open when it grows past a small multiple of the live entry count.
//
// Reads re-hash the decompressed bytes and drop any object whose digest no
// longer matches its name (torn write, bit rot): the caller sees a plain
// miss and re-fetches, never a crash or silently wrong bytes.
//
// A ref layer ("module/FFT", "memo/<hex>") maps stable names to digests --
// the mutable pointers (git-refs style) over the immutable object space.
// Refs may dangle after disk eviction; get_by_key treats that as a miss.
//
// All public methods are thread-safe behind one mutex; disk I/O happens
// under the lock (objects are small and callers are cache-miss paths).
#pragma once

#include <cstdint>
#include <cstdio>
#include <list>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>

#include "cas/hash.hpp"
#include "obs/obs.hpp"
#include "serial/bytes.hpp"

namespace cg::cas {

struct CasConfig {
  /// Disk-tier root directory; empty disables the disk tier entirely.
  std::string dir;
  std::size_t memory_bytes = 32u << 20;  ///< raw-byte budget, memory tier
  std::size_t disk_bytes = 256u << 20;   ///< stored-byte budget, disk tier
  bool compress = true;       ///< compress disk objects (cas/compress.hpp)
  bool verify_on_read = true; ///< re-hash disk reads, drop on mismatch

  /// Honour the environment knobs: CONGRID_CAS_DIR (disk root),
  /// CONGRID_CAS_MEM_BYTES and CONGRID_CAS_DISK_BYTES (decimal byte
  /// counts). Unset variables keep the defaults above.
  static CasConfig from_env();
};

struct CasStats {
  std::uint64_t mem_hits = 0;
  std::uint64_t disk_hits = 0;       ///< read + promoted to memory
  std::uint64_t misses = 0;
  std::uint64_t puts = 0;            ///< new objects actually stored
  std::uint64_t dedup_hits = 0;      ///< put() of already-present bytes
  std::uint64_t mem_evictions = 0;
  std::uint64_t disk_evictions = 0;
  std::uint64_t corrupt_dropped = 0; ///< failed re-hash / decode on read
  std::uint64_t bytes_stored_raw = 0;   ///< sum of put() object sizes
  std::uint64_t bytes_stored_disk = 0;  ///< compressed bytes written
  std::uint64_t bytes_read_disk = 0;    ///< compressed bytes read
};

class ContentStore {
 public:
  /// Opens (creating if needed) the disk tier when cfg.dir is set and
  /// replays its journal; throws std::runtime_error when the directory
  /// cannot be created or the journal cannot be opened for append.
  explicit ContentStore(CasConfig cfg = {});
  ~ContentStore();

  ContentStore(const ContentStore&) = delete;
  ContentStore& operator=(const ContentStore&) = delete;

  /// Store bytes, returning their digest. Storing bytes already present
  /// (either tier) is a cheap dedup hit. An object too large for the disk
  /// budget stays memory-only; one too large for both budgets is not
  /// retained (the digest is still returned -- callers treat the store as
  /// a cache, never as guaranteed persistence).
  Digest put(std::span<const std::uint8_t> bytes);

  /// Fetch by digest: memory first, then disk (verify + promote).
  /// nullopt = not present (including entries dropped as corrupt).
  std::optional<serial::Bytes> get(const Digest& d);

  /// Present in either tier? No promotion, no stats.
  bool contains(const Digest& d) const;

  /// Point `key` at `d` (overwriting any previous target). Journaled.
  void put_ref(std::string_view key, const Digest& d);
  std::optional<Digest> get_ref(std::string_view key) const;

  /// put() + put_ref() in one step.
  Digest put_keyed(std::string_view key, std::span<const std::uint8_t> bytes);
  /// get_ref() + get(); nullopt when the ref is absent or dangles.
  std::optional<serial::Bytes> get_by_key(std::string_view key);

  std::size_t memory_resident_bytes() const;
  std::size_t disk_resident_bytes() const;
  std::size_t memory_object_count() const;
  std::size_t disk_object_count() const;
  const CasConfig& config() const { return cfg_; }
  CasStats stats() const;

  /// Bind "<scope>.cas.*" counters and resident-bytes gauges.
  void set_obs(obs::Registry& registry, std::string_view scope = {});

 private:
  struct MemEntry {
    serial::Bytes raw;
    std::list<Digest>::iterator lru_it;
  };
  struct DiskEntry {
    std::uint64_t stored_bytes = 0;  ///< compressed size on disk
    std::uint64_t raw_bytes = 0;
    std::list<Digest>::iterator lru_it;
  };
  struct Obs {
    obs::CounterRef mem_hits, disk_hits, misses, puts, dedup_hits,
        mem_evictions, disk_evictions, corrupt_dropped, bytes_stored_disk,
        bytes_read_disk;
    obs::GaugeRef mem_bytes, disk_bytes;
  };

  void open_disk_tier();
  void load_journal();
  void compact_journal_locked();
  void journal_locked(const std::string& line);
  std::string object_path(const Digest& d) const;

  void touch_mem_locked(MemEntry& e, const Digest& d);
  void touch_disk_locked(DiskEntry& e, const Digest& d, bool journal);
  void insert_mem_locked(const Digest& d, serial::Bytes raw);
  void write_disk_locked(const Digest& d,
                         std::span<const std::uint8_t> raw);
  // By value: callers pass digests that live inside the LRU list / map
  // nodes these functions erase.
  void evict_disk_locked(Digest d);
  void drop_corrupt_locked(Digest d);

  CasConfig cfg_;
  mutable std::mutex mu_;

  std::unordered_map<Digest, MemEntry, DigestHasher> mem_;
  std::list<Digest> mem_lru_;  ///< front = most recent
  std::size_t mem_bytes_ = 0;

  std::unordered_map<Digest, DiskEntry, DigestHasher> disk_;
  std::list<Digest> disk_lru_;  ///< front = most recent
  std::size_t disk_bytes_ = 0;
  std::FILE* journal_ = nullptr;
  std::uint64_t journal_lines_ = 0;

  /// key-hash digest -> object digest (keys are hashed so journal lines
  /// never depend on key charset or length).
  std::unordered_map<Digest, Digest, DigestHasher> refs_;

  CasStats stats_;
  Obs obs_;
};

}  // namespace cg::cas
