// ConGrid -- byte-oriented LZ compression for the disk tier.
//
// Disk objects are compressed with a small LZ77 scheme in the LZ4 spirit:
// a greedy hash-table matcher emits (literal run, match length, back
// offset) sequences encoded with the same varints the wire format uses.
// Incompressible input (entropy-coded or synthetic-random module bytes)
// falls back to stored form at a one-byte cost, so compression never
// inflates an object by more than its header. The codec is deterministic:
// equal input bytes always produce equal compressed bytes, which keeps
// disk-object files byte-identical across peers and runs.
#pragma once

#include <cstdint>
#include <span>

#include "serial/bytes.hpp"

namespace cg::cas {

/// Compress `raw`; the output embeds the raw size and the method used.
serial::Bytes compress(std::span<const std::uint8_t> raw);

/// Inverse of compress(). Throws serial::DecodeError on malformed input
/// (truncation, bad offsets, raw-size mismatch).
serial::Bytes decompress(std::span<const std::uint8_t> compressed);

}  // namespace cg::cas
