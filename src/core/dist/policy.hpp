// ConGrid -- distribution policies (control units).
//
// Paper 3.3: "Each group has a distribution policy which is, in fact,
// implemented as a Triana unit. ... There are two distribution policies
// currently implemented in Triana, parallel and peer to peer. Parallel is
// a farming out mechanism and generally involves no communication between
// hosts. Peer to Peer means distributing the group vertically i.e. each
// unit in the group is distributed onto a separate resource and data is
// passed between them."
//
// A policy is a pure graph rewrite: given a graph, the group to distribute,
// and how many resources are on offer, it produces (a) the rewritten home
// graph with proxy units where the group used to be and (b) one fragment
// per resource, all annotated with unique channel labels. The controller
// then matches fragments to discovered peers and deploys.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/graph/group_ops.hpp"
#include "core/graph/taskgraph.hpp"
#include "core/unit/proxy_units.hpp"

namespace cg::core {

struct DistributionPlan {
  TaskGraph home_graph;
  /// One fragment per remote resource, in deployment order.
  std::vector<TaskGraph> fragments;
  /// Labels the home graph will receive results on.
  std::vector<std::string> home_input_labels;
};

class DistributionPolicy {
 public:
  virtual ~DistributionPolicy() = default;
  virtual std::string name() const = 0;

  /// Rewrite `g` around `group_name` for `workers` resources.
  /// `label_prefix` must be unique per deployment. Throws
  /// std::invalid_argument when workers == 0 or the task is not a group.
  virtual DistributionPlan plan(const TaskGraph& g,
                                const std::string& group_name,
                                std::size_t workers,
                                const std::string& label_prefix) const = 0;
};

/// Farm: the whole group is replicated on each worker; items arriving at
/// each group input port are scattered round-robin over the replicas;
/// every replica sends its results to the same home-side channel.
class ParallelPolicy final : public DistributionPolicy {
 public:
  std::string name() const override { return "parallel"; }
  DistributionPlan plan(const TaskGraph& g, const std::string& group_name,
                        std::size_t workers,
                        const std::string& label_prefix) const override;
};

/// Vertical pipeline: each inner task goes to its own resource (round-robin
/// when there are fewer workers than tasks); every inner connection becomes
/// a cross-peer channel.
class PipelinePolicy final : public DistributionPolicy {
 public:
  std::string name() const override { return "p2p"; }
  DistributionPlan plan(const TaskGraph& g, const std::string& group_name,
                        std::size_t workers,
                        const std::string& label_prefix) const override;
};

/// Redundant execution: EVERY worker runs the whole group on EVERY item
/// (Broadcast in), and a home-side Vote unit compares the replicas' results
/// per item, emitting the majority. This addresses the paper's 3.5 concern
/// that a volunteer peer may return wrong results undetected ("it is
/// possible for a user to disguise the computational tasks"): with 2f+1
/// replicas, f cheaters are outvoted and exposed through the Vote unit's
/// dissent mask. Workers are capped at VoteUnit::kMaxVoteInputs.
class ReplicatedPolicy final : public DistributionPolicy {
 public:
  std::string name() const override { return "replicated"; }
  DistributionPlan plan(const TaskGraph& g, const std::string& group_name,
                        std::size_t workers,
                        const std::string& label_prefix) const override;
};

/// Factory by policy name ("parallel" | "p2p" | "replicated"); throws
/// std::invalid_argument otherwise.
std::unique_ptr<DistributionPolicy> make_policy(const std::string& name);

}  // namespace cg::core
