#include "core/dist/policy.hpp"

#include <stdexcept>
#include <unordered_map>

namespace cg::core {
namespace {

/// Common checks + group handle.
const TaskDef& checked_group(const TaskGraph& g, const std::string& group_name,
                             std::size_t workers) {
  if (workers == 0) {
    throw std::invalid_argument("distribution plan needs at least 1 worker");
  }
  const TaskDef& group = g.require_task(group_name);
  if (!group.is_group()) {
    throw std::invalid_argument("task '" + group_name + "' is not a group");
  }
  return group;
}

/// Home graph common to both policies: every task except the group, plus
/// Receive proxies for the group's output ports (label "<prefix>/out<j>"),
/// with outer connections re-wired. Input-side proxies differ per policy
/// and are installed by `add_input_proxy`, which must create a task named
/// "<group>.in<i>" for each group input port i.
template <typename AddInputProxy>
TaskGraph make_home_graph(const TaskGraph& g, const TaskDef& group,
                          const std::string& prefix,
                          AddInputProxy add_input_proxy) {
  TaskGraph home(g.name());
  for (const auto& t : g.tasks()) {
    if (t.name == group.name) continue;
    home.tasks().push_back(t.clone());
  }
  for (std::size_t i = 0; i < group.group_inputs.size(); ++i) {
    add_input_proxy(home, i);
  }
  for (std::size_t j = 0; j < group.group_outputs.size(); ++j) {
    ParamSet p;
    p.set("label", prefix + "/out" + std::to_string(j));
    home.add_task(group.name + ".out" + std::to_string(j), "Receive", p);
  }
  for (const auto& c : g.connections()) {
    Connection r = c;
    if (c.to_task == group.name) {
      r.to_task = group.name + ".in" + std::to_string(c.to_port);
      r.to_port = 0;
    }
    if (c.from_task == group.name) {
      r.from_task = group.name + ".out" + std::to_string(c.from_port);
      r.from_port = 0;
    }
    home.connections().push_back(std::move(r));
  }
  return home;
}

std::vector<std::string> home_output_labels(const TaskDef& group,
                                            const std::string& prefix) {
  std::vector<std::string> labels;
  for (std::size_t j = 0; j < group.group_outputs.size(); ++j) {
    labels.push_back(prefix + "/out" + std::to_string(j));
  }
  return labels;
}

}  // namespace

DistributionPlan ParallelPolicy::plan(const TaskGraph& g,
                                      const std::string& group_name,
                                      std::size_t workers,
                                      const std::string& prefix) const {
  const TaskDef& group = checked_group(g, group_name, workers);

  DistributionPlan plan;
  plan.home_input_labels = home_output_labels(group, prefix);

  // One replica of the whole group per worker.
  for (std::size_t w = 0; w < workers; ++w) {
    const std::string wp = prefix + "/w" + std::to_string(w);
    TaskGraph frag = group.group->clone();
    frag.set_name(g.name() + "/" + group_name + "#" + std::to_string(w));
    for (std::size_t i = 0; i < group.group_inputs.size(); ++i) {
      ParamSet p;
      p.set("label", wp + "/in" + std::to_string(i));
      frag.add_task("__recv" + std::to_string(i), "Receive", p);
      frag.connect("__recv" + std::to_string(i), 0,
                   group.group_inputs[i].inner_task,
                   group.group_inputs[i].inner_port);
    }
    for (std::size_t j = 0; j < group.group_outputs.size(); ++j) {
      ParamSet p;
      // All replicas funnel into the same home channel.
      p.set("label", prefix + "/out" + std::to_string(j));
      frag.add_task("__send" + std::to_string(j), "Send", p);
      frag.connect(group.group_outputs[j].inner_task,
                   group.group_outputs[j].inner_port,
                   "__send" + std::to_string(j), 0);
    }
    plan.fragments.push_back(std::move(frag));
  }

  // Home side: scatter each input port round-robin over the replicas.
  plan.home_graph = make_home_graph(
      g, group, prefix, [&](TaskGraph& home, std::size_t i) {
        std::string csv;
        for (std::size_t w = 0; w < workers; ++w) {
          if (w) csv += ",";
          csv += prefix + "/w" + std::to_string(w) + "/in" + std::to_string(i);
        }
        ParamSet p;
        p.set("labels", csv);
        home.add_task(group_name + ".in" + std::to_string(i), "Scatter", p);
      });
  return plan;
}

DistributionPlan PipelinePolicy::plan(const TaskGraph& g,
                                      const std::string& group_name,
                                      std::size_t workers,
                                      const std::string& prefix) const {
  const TaskDef& group = checked_group(g, group_name, workers);
  const TaskGraph& inner = *group.group;

  // Resource slot per inner task, round-robin over the offered workers.
  const std::size_t slots = std::min(workers, inner.tasks().size());
  if (slots == 0) {
    throw std::invalid_argument("pipeline policy: group is empty");
  }

  DistributionPlan plan;
  plan.home_input_labels = home_output_labels(group, prefix);
  plan.fragments.reserve(slots);
  for (std::size_t s = 0; s < slots; ++s) {
    TaskGraph frag(g.name() + "/" + group_name + "@stage" +
                   std::to_string(s));
    plan.fragments.push_back(std::move(frag));
  }
  // Which slot hosts each inner task.
  std::unordered_map<std::string, std::size_t> slot_of;
  for (std::size_t i = 0; i < inner.tasks().size(); ++i) {
    const TaskDef& t = inner.tasks()[i];
    const std::size_t s = i % slots;
    slot_of[t.name] = s;
    plan.fragments[s].tasks().push_back(t.clone());
  }

  // The label for data consumed by inner task `name` on `port`.
  auto in_label = [&](const std::string& name, std::size_t port) {
    return prefix + "/t/" + name + "/p" + std::to_string(port);
  };

  // Inner connections: local when both ends share a slot, otherwise a
  // Send on the producer and a Receive on the consumer.
  std::size_t proxy_n = 0;
  for (const auto& c : inner.connections()) {
    const std::size_t sa = slot_of.at(c.from_task);
    const std::size_t sb = slot_of.at(c.to_task);
    if (sa == sb) {
      plan.fragments[sa].connections().push_back(c);
      continue;
    }
    const std::string label = in_label(c.to_task, c.to_port);
    ParamSet ps;
    ps.set("label", label);
    const std::string send_name = "__send" + std::to_string(proxy_n);
    plan.fragments[sa].add_task(send_name, "Send", ps);
    plan.fragments[sa].connect(c.from_task, c.from_port, send_name, 0);

    ParamSet pr;
    pr.set("label", label);
    const std::string recv_name = "__recv" + std::to_string(proxy_n);
    plan.fragments[sb].add_task(recv_name, "Receive", pr);
    plan.fragments[sb].connect(recv_name, 0, c.to_task, c.to_port);
    ++proxy_n;
  }

  // Group boundary inputs: the consuming fragment advertises the channel.
  for (std::size_t i = 0; i < group.group_inputs.size(); ++i) {
    const GroupPort& gp = group.group_inputs[i];
    const std::size_t s = slot_of.at(gp.inner_task);
    const std::string label = in_label(gp.inner_task, gp.inner_port);
    ParamSet p;
    p.set("label", label);
    const std::string recv_name = "__gin" + std::to_string(i);
    plan.fragments[s].add_task(recv_name, "Receive", p);
    plan.fragments[s].connect(recv_name, 0, gp.inner_task, gp.inner_port);
  }
  // Group boundary outputs: producer sends home.
  for (std::size_t j = 0; j < group.group_outputs.size(); ++j) {
    const GroupPort& gp = group.group_outputs[j];
    const std::size_t s = slot_of.at(gp.inner_task);
    ParamSet p;
    p.set("label", prefix + "/out" + std::to_string(j));
    const std::string send_name = "__gout" + std::to_string(j);
    plan.fragments[s].add_task(send_name, "Send", p);
    plan.fragments[s].connect(gp.inner_task, gp.inner_port, send_name, 0);
  }

  // Home side: a plain Send per group input port, targeting the consuming
  // fragment's channel.
  plan.home_graph = make_home_graph(
      g, group, prefix, [&](TaskGraph& home, std::size_t i) {
        const GroupPort& gp = group.group_inputs[i];
        ParamSet p;
        p.set("label", in_label(gp.inner_task, gp.inner_port));
        home.add_task(group_name + ".in" + std::to_string(i), "Send", p);
      });
  return plan;
}

DistributionPlan ReplicatedPolicy::plan(const TaskGraph& g,
                                        const std::string& group_name,
                                        std::size_t workers,
                                        const std::string& prefix) const {
  const TaskDef& group = checked_group(g, group_name, workers);
  if (workers < 2) {
    throw std::invalid_argument("replicated policy needs >= 2 workers");
  }
  const std::size_t replicas = std::min(workers, VoteUnit::kMaxVoteInputs);

  DistributionPlan plan;
  // One full replica of the group per worker; each replica's outputs go to
  // its own home channel so the Vote unit can compare them.
  for (std::size_t w = 0; w < replicas; ++w) {
    const std::string wp = prefix + "/w" + std::to_string(w);
    TaskGraph frag = group.group->clone();
    frag.set_name(g.name() + "/" + group_name + "!" + std::to_string(w));
    for (std::size_t i = 0; i < group.group_inputs.size(); ++i) {
      ParamSet p;
      p.set("label", wp + "/in" + std::to_string(i));
      frag.add_task("__recv" + std::to_string(i), "Receive", p);
      frag.connect("__recv" + std::to_string(i), 0,
                   group.group_inputs[i].inner_task,
                   group.group_inputs[i].inner_port);
    }
    for (std::size_t j = 0; j < group.group_outputs.size(); ++j) {
      ParamSet p;
      p.set("label",
            prefix + "/out" + std::to_string(j) + "/w" + std::to_string(w));
      frag.add_task("__send" + std::to_string(j), "Send", p);
      frag.connect(group.group_outputs[j].inner_task,
                   group.group_outputs[j].inner_port,
                   "__send" + std::to_string(j), 0);
      plan.home_input_labels.push_back(
          prefix + "/out" + std::to_string(j) + "/w" + std::to_string(w));
    }
    plan.fragments.push_back(std::move(frag));
  }

  // Home graph: Broadcast per input port, per-replica Receives feeding a
  // Vote per output port. Outer connections from the group's output j are
  // rewired to "<group>.out<j>" which is the Vote's majority port.
  TaskGraph home(g.name());
  for (const auto& t : g.tasks()) {
    if (t.name == group.name) continue;
    home.tasks().push_back(t.clone());
  }
  for (std::size_t i = 0; i < group.group_inputs.size(); ++i) {
    std::string csv;
    for (std::size_t w = 0; w < replicas; ++w) {
      if (w) csv += ",";
      csv += prefix + "/w" + std::to_string(w) + "/in" + std::to_string(i);
    }
    ParamSet p;
    p.set("labels", csv);
    home.add_task(group_name + ".in" + std::to_string(i), "Broadcast", p);
  }
  for (std::size_t j = 0; j < group.group_outputs.size(); ++j) {
    const std::string vote = group_name + ".out" + std::to_string(j);
    home.add_task(vote, "Vote");
    for (std::size_t w = 0; w < replicas; ++w) {
      ParamSet p;
      p.set("label",
            prefix + "/out" + std::to_string(j) + "/w" + std::to_string(w));
      const std::string recv = vote + ".r" + std::to_string(w);
      home.add_task(recv, "Receive", p);
      home.connect(recv, 0, vote, w);
    }
  }
  for (const auto& c : g.connections()) {
    Connection r = c;
    if (c.to_task == group.name) {
      r.to_task = group.name + ".in" + std::to_string(c.to_port);
      r.to_port = 0;
    }
    if (c.from_task == group.name) {
      r.from_task = group.name + ".out" + std::to_string(c.from_port);
      r.from_port = 0;  // Vote's majority output
    }
    home.connections().push_back(std::move(r));
  }
  plan.home_graph = std::move(home);
  return plan;
}

std::unique_ptr<DistributionPolicy> make_policy(const std::string& name) {
  if (name == "parallel") return std::make_unique<ParallelPolicy>();
  if (name == "p2p") return std::make_unique<PipelinePolicy>();
  if (name == "replicated") return std::make_unique<ReplicatedPolicy>();
  throw std::invalid_argument("unknown distribution policy: " + name);
}

}  // namespace cg::core
