// ConGrid -- the data-flow engine.
//
// Executes one (flattened) task graph on the local peer: units fire when
// every connected input port holds an item, sources fire once per tick()
// (one streaming iteration -- AccumStat's "successive iterations" are
// successive ticks), and Send/Receive proxy units bridge to other peers'
// runtimes through external channels. The engine is deterministic: unit
// RNG streams derive from the runtime seed and the task name, and firing
// order is either a fixed topological worklist (serial) or a wave
// schedule committed in fixed unit-index order (parallel) -- the two are
// bit-identical (DESIGN.md section 4d).
//
// Parallel mode: RuntimeOptions::max_threads > 0 partitions each tick
// into dependency waves -- the set of units whose inputs are all
// satisfied by prior waves -- and dispatches every wave across an
// internal rm::ThreadPool in one batch. Units whose UnitInfo declares
// Concurrency::kSerialOnly (Send/Scatter/Broadcast -- anything with
// external effects) fire on the coordinator thread instead, so external
// sender hooks never need to be thread-safe. Emissions are buffered per
// firing and committed (routed) at the wave barrier in ascending unit
// index, which pins per-port arrival order, RNG streams and checkpoint
// bytes to the serial schedule.
//
// Checkpointing captures the iteration counter, every stateful unit's
// serialised state and all queued in-flight items; restoring into a fresh
// runtime of the same graph resumes exactly (the migration path of paper
// 3.6.2's "check-pointing mechanism may also be employed to migrate
// computation").
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cas/store.hpp"

#include "core/graph/taskgraph.hpp"
#include "core/unit/proxy_units.hpp"
#include "core/unit/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rm/thread_pool.hpp"

namespace cg::core {

struct RuntimeOptions {
  std::uint64_t rng_seed = 1;
  /// When set, units' charge_cpu calls are enforced against this sandbox.
  sandbox::Sandbox* sandbox = nullptr;
  /// Worker threads for wave-parallel ticks; 0 selects the serial firing
  /// loop (no pool is created). Results are bit-identical either way.
  unsigned max_threads = 0;
  /// Memoize pure-unit firings through this content store (borrowed; must
  /// outlive the runtime; nullptr disables). Only units declaring
  /// Concurrency::kPure participate, and only firings that touched neither
  /// ctx.rng() nor ctx.iteration() are stored -- see DESIGN.md section 4f
  /// for the soundness argument. Keys cover unit type, parameters and the
  /// encoded input items, so hits replay across jobs, runs and any peer
  /// sharing the store directory. Replay is bit-identical to recompute, so
  /// serial/parallel equivalence and checkpoint bytes are unaffected.
  cas::ContentStore* memo_store = nullptr;
};

struct RuntimeStats {
  std::uint64_t ticks = 0;
  std::uint64_t firings = 0;
  std::uint64_t items_routed = 0;
  std::uint64_t external_sends = 0;
  std::uint64_t external_deliveries = 0;
  std::uint64_t bytes_sent_external = 0;

  bool operator==(const RuntimeStats&) const = default;
};

class GraphRuntime {
 public:
  /// Flattens, validates (throws std::invalid_argument on a bad graph),
  /// instantiates and configures every unit. Throws std::logic_error when
  /// a unit declares Concurrency::kPure but carries serialisable state.
  GraphRuntime(const TaskGraph& graph, const UnitRegistry& registry,
               RuntimeOptions options = {});

  GraphRuntime(const GraphRuntime&) = delete;
  GraphRuntime& operator=(const GraphRuntime&) = delete;

  /// Install the egress hook for Send units (label, item). Without one,
  /// firing a Send unit throws. The hook is always invoked on the thread
  /// calling tick()/run(), even in wave-parallel mode.
  void set_external_sender(SendUnit::Sender sender);

  /// Bind the engine's instruments (wave-width and barrier-stall
  /// histograms, per-tick parallelism gauge) into `registry` under
  /// "<scope>.runtime.*".
  void set_obs(obs::Registry& registry, const std::string& scope = "");

  /// Join a causal trace: every tick becomes a "runtime.tick" span on
  /// `node`, child of ctx.parent_span (the deploy span that started this
  /// job). `tag` is prefixed to every span detail (e.g. "job=home#1") so
  /// ticks of different jobs on one node stay distinguishable. Tracing
  /// never alters firing order, RNG streams or outputs -- span
  /// bookkeeping happens outside the scheduling loops.
  void set_trace(obs::TracerRef tracer, std::string node,
                 const obs::TraceContext& ctx, std::string tag = "");

  /// One streaming iteration: every source fires once, then the graph
  /// runs to quiescence. Uses the wave scheduler when max_threads > 0.
  void tick();

  /// tick() `iterations` times.
  void run(std::uint64_t iterations);

  /// One streaming iteration on a caller-provided pool (the wave
  /// scheduler, regardless of max_threads).
  void tick_parallel(rm::ThreadPool& pool);

  /// tick_parallel() `iterations` times.
  void run_parallel(rm::ThreadPool& pool, std::uint64_t iterations);

  /// Inject an item arriving on the external channel `label`; it flows out
  /// of the matching Receive unit and the graph runs to quiescence.
  /// Returns false (and drops the item) when no Receive has that label.
  bool deliver(const std::string& label, DataItem item);

  /// Labels of all Receive units (the input pipes a hosting service must
  /// advertise).
  std::vector<std::string> receive_labels() const;

  /// Access a unit by task name (nullptr when absent). Downcast to read
  /// sink results.
  Unit* unit(const std::string& task_name);
  template <typename U>
  U* unit_as(const std::string& task_name) {
    return dynamic_cast<U*>(unit(task_name));
  }

  std::uint64_t iteration() const { return iteration_; }
  const RuntimeStats& stats() const { return stats_; }
  /// Pure-unit firings replayed from / computed into the memo store this
  /// runtime's lifetime. Kept outside RuntimeStats: stats() compares
  /// bit-identical between a cold and a warm run of the same graph, while
  /// these two deliberately differ.
  std::uint64_t memo_hits() const {
    return memo_hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t memo_misses() const {
    return memo_misses_.load(std::memory_order_relaxed);
  }
  /// Firing count per task (diagnostics / reports).
  std::uint64_t firings_of(const std::string& task_name) const;

  /// Serialise iteration counter + unit states + queued items.
  serial::Bytes save_checkpoint() const;
  /// Restore from a checkpoint of the *same* graph (matched by task
  /// names); throws std::invalid_argument on mismatch.
  void restore_checkpoint(const serial::Bytes& data);

  /// Clear all unit state and queues; iteration back to zero.
  void reset();

  std::size_t task_count() const { return nodes_.size(); }

 private:
  struct Node {
    std::string name;
    std::unique_ptr<Unit> unit;
    const UnitInfo* info = nullptr;
    dsp::Rng rng{1};
    std::uint64_t firings = 0;
    /// Queued items per input port.
    std::vector<std::deque<DataItem>> pending;
    /// Which input ports have an inbound connection.
    std::vector<bool> connected;
    /// Out-routing: per output port, list of (target node, target port).
    std::vector<std::vector<std::pair<std::size_t, std::size_t>>> routes;
    bool is_send = false;
    bool is_receive = false;
    /// Concurrency::kSerialOnly -- fires on the coordinator thread.
    bool serial_only = false;
    /// kPure with a memo store attached: firings may be replayed.
    bool memoizable = false;
    /// Pre-encoded memo-key prefix: unit type + ordered parameters.
    serial::Bytes memo_prefix;
  };

  bool ready(const Node& n) const;
  void fire(std::size_t idx);
  /// Run the unit once, consuming queued inputs; returns its emissions
  /// without routing them (the thread-safe part of a parallel wave).
  std::vector<std::pair<std::size_t, DataItem>> invoke(std::size_t idx);
  void route(std::size_t from_idx, std::size_t port, DataItem item);
  void drain();

  /// One wave-scheduled streaming iteration on `pool`.
  void tick_wave(rm::ThreadPool& pool);
  /// Invoke every member of `wave` (pool for parallel-safe units, the
  /// coordinator for serial-only ones), then commit emissions in ascending
  /// unit-index order. `wave` must be sorted ascending. Returns the
  /// coordinator's wait at the barrier, in seconds.
  double dispatch_wave(rm::ThreadPool& pool,
                       const std::vector<std::size_t>& wave);
  /// Drain worklist_ (+ still-ready members of the committed wave) into
  /// the next wave, sorted ascending.
  void collect_next_wave(std::vector<std::size_t>& wave);

  std::vector<Node> nodes_;
  std::unordered_map<std::string, std::size_t> by_name_;
  std::unordered_map<std::string, std::size_t> receive_by_label_;
  std::vector<std::size_t> sources_;
  std::deque<std::size_t> worklist_;
  std::vector<bool> queued_;  ///< node already on the worklist

  RuntimeOptions options_;
  std::unique_ptr<rm::ThreadPool> pool_;  ///< owned when max_threads > 0
  SendUnit::Sender external_sender_;
  std::uint64_t iteration_ = 0;
  RuntimeStats stats_;
  /// Atomics: invoke() runs on pool threads in wave-parallel mode.
  std::atomic<std::uint64_t> memo_hits_{0};
  std::atomic<std::uint64_t> memo_misses_{0};
  obs::CounterRef memo_hits_c_;
  obs::CounterRef memo_misses_c_;

  obs::HistogramRef wave_width_h_;     ///< units per dispatched wave
  obs::HistogramRef barrier_stall_h_;  ///< coordinator wait at the barrier
  obs::GaugeRef parallelism_g_;        ///< firings / waves, last tick
  obs::CounterRef waves_c_;            ///< waves dispatched

  obs::TracerRef tracer_;        ///< "runtime.tick" spans (set_trace)
  std::string trace_node_;
  std::string trace_tag_;        ///< detail prefix ("job=... ")
  obs::TraceContext trace_ctx_;  ///< the job's causal identity
};

}  // namespace cg::core
