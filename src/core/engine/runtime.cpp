#include "core/engine/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "core/graph/validate.hpp"
#include "serial/reader.hpp"
#include "serial/writer.hpp"

namespace cg::core {

GraphRuntime::GraphRuntime(const TaskGraph& graph,
                           const UnitRegistry& registry,
                           RuntimeOptions options)
    : options_(options) {
  TaskGraph flat = flatten(graph);
  validate_or_throw(flat, registry);

  // Instantiate and configure units.
  nodes_.reserve(flat.tasks().size());
  for (const auto& t : flat.tasks()) {
    Node n;
    n.name = t.name;
    n.unit = registry.create(t.unit_type);
    n.info = &registry.info(t.unit_type);
    n.unit->configure(t.params);
    // Per-task deterministic random stream.
    n.rng = dsp::Rng(options_.rng_seed ^
                     std::hash<std::string>{}(t.name));
    n.pending.resize(n.info->inputs.size());
    n.connected.assign(n.info->inputs.size(), false);
    n.routes.resize(n.info->outputs.size());
    n.is_send = (t.unit_type == "Send");
    n.is_receive = (t.unit_type == "Receive");
    n.serial_only = (n.info->concurrency == Concurrency::kSerialOnly);
    // Memoization applies to kPure units only: no instance state (enforced
    // below) and no external effects, so a firing is a function of (type,
    // params, inputs) -- unless it reads the RNG or the iteration counter,
    // which invoke() detects per firing via the ProcessContext flags.
    if (options_.memo_store && n.info->concurrency == Concurrency::kPure) {
      n.memoizable = true;
      serial::Writer pw;
      pw.string(t.unit_type);
      pw.varint(t.params.raw().size());
      for (const auto& [k, v] : t.params.raw()) {
        pw.string(k);
        pw.string(v);
      }
      n.memo_prefix = pw.take();
    }
    // Enforce the purity half of the threading contract: a unit claiming
    // kPure must not carry serialisable state (the other half -- no
    // external effects -- is what kSerialOnly exists to declare).
    if (n.info->concurrency == Concurrency::kPure &&
        !n.unit->save_state().empty()) {
      throw std::logic_error("unit type '" + t.unit_type +
                             "' declares Concurrency::kPure but serialises "
                             "state; declare it kStateful");
    }

    const std::size_t idx = nodes_.size();
    by_name_[n.name] = idx;
    if (n.info->is_source) sources_.push_back(idx);
    if (n.is_receive) {
      const std::string label = t.params.get("label", "");
      if (receive_by_label_.contains(label)) {
        throw std::invalid_argument("duplicate Receive label: " + label);
      }
      receive_by_label_[label] = idx;
    }
    if (n.is_send || t.unit_type == "Scatter" || t.unit_type == "Broadcast") {
      auto hook = [this](const std::string& label, DataItem item) {
        ++stats_.external_sends;
        stats_.bytes_sent_external += item.byte_size();
        if (!external_sender_) {
          throw std::logic_error(
              "Send unit fired but no external sender is installed (label '" +
              label + "')");
        }
        external_sender_(label, std::move(item));
      };
      if (auto* send = dynamic_cast<SendUnit*>(n.unit.get())) {
        send->set_sender(hook);
      } else if (auto* scatter = dynamic_cast<ScatterUnit*>(n.unit.get())) {
        scatter->set_sender(hook);
      } else if (auto* bcast = dynamic_cast<BroadcastUnit*>(n.unit.get())) {
        bcast->set_sender(hook);
      }
    }
    nodes_.push_back(std::move(n));
  }

  // Wire routes and connected-input flags.
  for (const auto& c : flat.connections()) {
    const std::size_t from = by_name_.at(c.from_task);
    const std::size_t to = by_name_.at(c.to_task);
    nodes_[from].routes[c.from_port].emplace_back(to, c.to_port);
    nodes_[to].connected[c.to_port] = true;
  }
  queued_.assign(nodes_.size(), false);

  if (options_.max_threads > 0) {
    pool_ = std::make_unique<rm::ThreadPool>(options_.max_threads);
  }
}

void GraphRuntime::set_external_sender(SendUnit::Sender sender) {
  external_sender_ = std::move(sender);
}

void GraphRuntime::set_obs(obs::Registry& registry, const std::string& scope) {
  wave_width_h_ = registry.histogram(
      obs::scoped(scope, "runtime.wave_width"),
      {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0});
  barrier_stall_h_ = registry.histogram(
      obs::scoped(scope, "runtime.barrier_stall_seconds"),
      {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0});
  parallelism_g_ = registry.gauge(obs::scoped(scope, "runtime.parallelism"));
  waves_c_ = registry.counter(obs::scoped(scope, "runtime.waves"));
  memo_hits_c_ = registry.counter(obs::scoped(scope, "runtime.memo_hits"));
  memo_misses_c_ =
      registry.counter(obs::scoped(scope, "runtime.memo_misses"));
}

void GraphRuntime::set_trace(obs::TracerRef tracer, std::string node,
                             const obs::TraceContext& ctx, std::string tag) {
  tracer_ = tracer;
  trace_node_ = std::move(node);
  trace_ctx_ = ctx;
  trace_tag_ = tag.empty() ? std::string() : tag + " ";
}

bool GraphRuntime::ready(const Node& n) const {
  if (n.is_receive) return false;  // fed by deliver(), never fires
  bool any_connected = false;
  for (std::size_t p = 0; p < n.connected.size(); ++p) {
    if (!n.connected[p]) continue;
    any_connected = true;
    if (n.pending[p].empty()) return false;
  }
  // A unit with no connected inputs only fires as a source (via tick).
  return any_connected;
}

namespace {

/// Memo value layout: varint emission count, then per emission a varint
/// port and a blob-encoded DataItem -- exactly what invoke() returns.
serial::Bytes encode_emissions(
    const std::vector<std::pair<std::size_t, DataItem>>& emissions) {
  serial::Writer w;
  w.varint(emissions.size());
  for (const auto& [port, item] : emissions) {
    w.varint(port);
    w.blob(encode_data_item(item));
  }
  return w.take();
}

std::vector<std::pair<std::size_t, DataItem>> decode_emissions(
    const serial::Bytes& bytes) {
  serial::Reader r(bytes);
  std::vector<std::pair<std::size_t, DataItem>> out;
  const std::uint64_t count = r.varint();
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::size_t port = static_cast<std::size_t>(r.varint());
    out.emplace_back(port, decode_data_item(r.blob()));
  }
  return out;
}

}  // namespace

std::vector<std::pair<std::size_t, DataItem>> GraphRuntime::invoke(
    std::size_t idx) {
  Node& n = nodes_[idx];
  std::vector<DataItem> inputs(n.pending.size());
  for (std::size_t p = 0; p < n.pending.size(); ++p) {
    if (!n.pending[p].empty()) {
      inputs[p] = std::move(n.pending[p].front());
      n.pending[p].pop_front();
    }
  }

  // Memo key: unit type + params (pre-encoded prefix) + the exact encoded
  // input bytes. Runs on pool threads in wave mode -- the store is
  // thread-safe, the counters atomic, and nothing here touches shared
  // runtime state.
  std::string memo_key;
  if (n.memoizable) {
    serial::Writer kw;
    kw.raw(n.memo_prefix);
    kw.varint(inputs.size());
    for (const auto& item : inputs) kw.blob(encode_data_item(item));
    memo_key = "memo/" + cas::sha256(kw.bytes()).hex();
    if (auto stored = options_.memo_store->get_by_key(memo_key)) {
      try {
        auto emissions = decode_emissions(*stored);
        ++n.firings;
        memo_hits_.fetch_add(1, std::memory_order_relaxed);
        memo_hits_c_.inc();
        return emissions;
      } catch (const serial::DecodeError&) {
        // Key resolved to bytes that are not an emission record (ref
        // collision with another keyspace): recompute below.
      }
    }
  }

  ProcessContext ctx(std::move(inputs), iteration_, &n.rng, options_.sandbox);
  n.unit->process(ctx);
  ++n.firings;
  for (auto& [port, item] : ctx.emissions()) {
    if (port >= n.routes.size()) {
      throw std::logic_error("unit '" + n.name + "' emitted on port " +
                             std::to_string(port) + " which it never declared");
    }
    (void)item;
  }

  if (n.memoizable) {
    memo_misses_.fetch_add(1, std::memory_order_relaxed);
    memo_misses_c_.inc();
    // Only firings that were a pure function of their inputs are stored: a
    // firing that read the RNG depends on (and advances) stream position,
    // and one that read the iteration counter depends on tick number, so
    // replaying either would change later behaviour. Conversely, a stored
    // firing touched neither -- replaying it skips no RNG draws and the
    // streams stay aligned with a recomputing run.
    if (!ctx.rng_used() && !ctx.iteration_used()) {
      options_.memo_store->put_keyed(memo_key, encode_emissions(ctx.emissions()));
    }
  }
  return std::move(ctx.emissions());
}

void GraphRuntime::fire(std::size_t idx) {
  auto emissions = invoke(idx);
  ++stats_.firings;
  for (auto& [port, item] : emissions) {
    route(idx, port, std::move(item));
  }
}

void GraphRuntime::route(std::size_t from_idx, std::size_t port,
                         DataItem item) {
  const auto& targets = nodes_[from_idx].routes[port];
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const auto [to, to_port] = targets[i];
    // Copy for fan-out; move the last one.
    DataItem payload = (i + 1 == targets.size()) ? std::move(item) : item;
    nodes_[to].pending[to_port].push_back(std::move(payload));
    ++stats_.items_routed;
    if (!queued_[to]) {
      queued_[to] = true;
      worklist_.push_back(to);
    }
  }
}

void GraphRuntime::drain() {
  while (!worklist_.empty()) {
    const std::size_t idx = worklist_.front();
    worklist_.pop_front();
    queued_[idx] = false;
    // Fire as long as it stays ready (several items may be queued).
    while (ready(nodes_[idx])) fire(idx);
  }
}

void GraphRuntime::tick() {
  if (pool_) {
    tick_wave(*pool_);
    return;
  }
  ++iteration_;
  ++stats_.ticks;
  const std::uint64_t span =
      tracer_ ? tracer_.begin_span(
                    trace_node_, "runtime.tick", trace_ctx_,
                    trace_tag_ + "iter=" + std::to_string(iteration_))
              : 0;
  const std::uint64_t fired_before = stats_.firings;
  for (std::size_t idx : sources_) fire(idx);
  drain();
  if (span != 0) {
    tracer_.end_span(span, trace_node_, "runtime.tick",
                     "fired=" + std::to_string(stats_.firings - fired_before));
  }
}

void GraphRuntime::run(std::uint64_t iterations) {
  for (std::uint64_t i = 0; i < iterations; ++i) tick();
}

void GraphRuntime::tick_parallel(rm::ThreadPool& pool) { tick_wave(pool); }

void GraphRuntime::run_parallel(rm::ThreadPool& pool,
                                std::uint64_t iterations) {
  for (std::uint64_t i = 0; i < iterations; ++i) tick_wave(pool);
}

void GraphRuntime::tick_wave(rm::ThreadPool& pool) {
  ++iteration_;
  ++stats_.ticks;
  const std::uint64_t span =
      tracer_ ? tracer_.begin_span(
                    trace_node_, "runtime.tick", trace_ctx_,
                    trace_tag_ + "iter=" + std::to_string(iteration_))
              : 0;

  // Wave 0: the sources (index-ascending by construction). Each later
  // wave is every node made ready by the previous commit.
  std::vector<std::size_t> wave = sources_;
  std::uint64_t waves = 0;
  std::uint64_t fired = 0;
  double stall_s = 0.0;
  while (!wave.empty()) {
    ++waves;
    fired += wave.size();
    wave_width_h_.observe(static_cast<double>(wave.size()));
    stall_s += dispatch_wave(pool, wave);
    collect_next_wave(wave);
  }
  waves_c_.inc(waves);
  if (waves > 0) {
    parallelism_g_.set(static_cast<double>(fired) /
                       static_cast<double>(waves));
  }
  if (span != 0) {
    tracer_.end_span(span, trace_node_, "runtime.tick",
                     "fired=" + std::to_string(fired) +
                         " waves=" + std::to_string(waves) +
                         " barrier_stall_s=" + std::to_string(stall_s));
  }
}

double GraphRuntime::dispatch_wave(rm::ThreadPool& pool,
                                   const std::vector<std::size_t>& wave) {
  const std::size_t n = wave.size();
  std::vector<std::vector<std::pair<std::size_t, DataItem>>> results(n);
  std::vector<std::exception_ptr> errors(n);

  // Parallel-safe members go to the pool in one batch; serial-only
  // members (external side effects: Send/Scatter/Broadcast) fire on this
  // thread while the batch runs, so sender hooks never leave the
  // coordinator. Each slot touches only its own node -- queues were
  // populated by earlier, serial commits.
  std::vector<std::function<void()>> tasks;
  std::vector<std::size_t> serial_slots;
  tasks.reserve(n);
  for (std::size_t w = 0; w < n; ++w) {
    if (nodes_[wave[w]].serial_only) {
      serial_slots.push_back(w);
      continue;
    }
    tasks.push_back([this, &wave, &results, &errors, w] {
      try {
        results[w] = invoke(wave[w]);
      } catch (...) {
        errors[w] = std::current_exception();
      }
    });
  }
  rm::ThreadPool::Batch batch = pool.submit_batch(std::move(tasks));
  for (std::size_t w : serial_slots) {
    try {
      results[w] = invoke(wave[w]);
    } catch (...) {
      errors[w] = std::current_exception();
    }
  }
  const auto stall_begin = std::chrono::steady_clock::now();
  batch.wait();
  const double stall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    stall_begin)
          .count();
  barrier_stall_h_.observe(stall_s);

  // Deterministic error surfacing: the lowest-index failure wins,
  // independent of which worker lost the race.
  for (const auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }

  // Commit at the barrier in ascending unit-index order (`wave` is
  // sorted). Per-port arrival order matches the serial engine because
  // validation allows one producer per input port; the fixed order
  // additionally pins stats and multi-port interleavings.
  stats_.firings += n;
  for (std::size_t w = 0; w < n; ++w) {
    for (auto& [port, item] : results[w]) {
      route(wave[w], port, std::move(item));
    }
  }
  return stall_s;
}

void GraphRuntime::collect_next_wave(std::vector<std::size_t>& wave) {
  std::vector<std::size_t> next;
  while (!worklist_.empty()) {
    const std::size_t idx = worklist_.front();
    worklist_.pop_front();
    queued_[idx] = false;
    if (ready(nodes_[idx])) next.push_back(idx);
  }
  // A just-fired node with further backlogged items (possible after a
  // checkpoint restore) re-enters the wave so nothing strands.
  for (std::size_t idx : wave) {
    if (ready(nodes_[idx]) &&
        std::find(next.begin(), next.end(), idx) == next.end()) {
      next.push_back(idx);
    }
  }
  std::sort(next.begin(), next.end());
  wave = std::move(next);
}

bool GraphRuntime::deliver(const std::string& label, DataItem item) {
  auto it = receive_by_label_.find(label);
  if (it == receive_by_label_.end()) return false;
  ++stats_.external_deliveries;
  route(it->second, 0, std::move(item));
  drain();
  return true;
}

std::vector<std::string> GraphRuntime::receive_labels() const {
  std::vector<std::string> out;
  out.reserve(receive_by_label_.size());
  for (const auto& [label, idx] : receive_by_label_) out.push_back(label);
  return out;
}

Unit* GraphRuntime::unit(const std::string& task_name) {
  auto it = by_name_.find(task_name);
  return it == by_name_.end() ? nullptr : nodes_[it->second].unit.get();
}

std::uint64_t GraphRuntime::firings_of(const std::string& task_name) const {
  auto it = by_name_.find(task_name);
  return it == by_name_.end() ? 0 : nodes_[it->second].firings;
}

serial::Bytes GraphRuntime::save_checkpoint() const {
  serial::Writer w;
  w.u64(iteration_);
  w.varint(nodes_.size());
  for (const auto& n : nodes_) {
    w.string(n.name);
    w.blob(n.unit->save_state());
    w.varint(n.pending.size());
    for (const auto& q : n.pending) {
      w.varint(q.size());
      for (const auto& item : q) w.blob(encode_data_item(item));
    }
  }
  return w.take();
}

void GraphRuntime::restore_checkpoint(const serial::Bytes& data) {
  serial::Reader r(data);
  iteration_ = r.u64();
  const std::uint64_t count = r.varint();
  if (count != nodes_.size()) {
    throw std::invalid_argument("checkpoint task count mismatch");
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string name = r.string();
    auto it = by_name_.find(name);
    if (it == by_name_.end()) {
      throw std::invalid_argument("checkpoint names unknown task '" + name +
                                  "'");
    }
    Node& n = nodes_[it->second];
    const serial::Bytes state = r.blob();
    n.unit->reset();
    if (!state.empty()) n.unit->restore_state(state);
    const std::uint64_t ports = r.varint();
    if (ports != n.pending.size()) {
      throw std::invalid_argument("checkpoint port count mismatch for '" +
                                  name + "'");
    }
    for (auto& q : n.pending) {
      q.clear();
      const std::uint64_t items = r.varint();
      for (std::uint64_t k = 0; k < items; ++k) {
        q.push_back(decode_data_item(r.blob()));
      }
    }
  }
}

void GraphRuntime::reset() {
  iteration_ = 0;
  stats_ = {};
  worklist_.clear();
  queued_.assign(nodes_.size(), false);
  for (auto& n : nodes_) {
    n.unit->reset();
    n.firings = 0;
    for (auto& q : n.pending) q.clear();
  }
}

}  // namespace cg::core
