#include "core/unit/proxy_units.hpp"

#include <stdexcept>

namespace cg::core {

UnitInfo SendUnit::make_info() {
  UnitInfo i;
  i.type_name = "Send";
  i.concurrency = Concurrency::kSerialOnly;
  i.package = "dist";
  i.description = "Forwards input to a named data channel";
  i.inputs = {PortSpec{"in", kAnyType}};
  return i;
}

const UnitInfo& SendUnit::info() const {
  static const UnitInfo i = make_info();
  return i;
}

void SendUnit::configure(const ParamSet& p) {
  label_ = p.get("label", "");
  if (label_.empty()) throw std::invalid_argument("Send: missing label");
}

void SendUnit::process(ProcessContext& ctx) {
  if (!sender_) {
    throw std::logic_error("Send '" + label_ +
                           "' fired with no channel sender installed");
  }
  sender_(label_, ctx.input(0));
}

UnitInfo ScatterUnit::make_info() {
  UnitInfo i;
  i.type_name = "Scatter";
  i.concurrency = Concurrency::kSerialOnly;
  i.package = "dist";
  i.description = "Round-robin forward to a list of data channels";
  i.inputs = {PortSpec{"in", kAnyType}};
  return i;
}

const UnitInfo& ScatterUnit::info() const {
  static const UnitInfo i = make_info();
  return i;
}

void ScatterUnit::configure(const ParamSet& p) {
  labels_.clear();
  std::string csv = p.get("labels", "");
  std::size_t start = 0;
  while (start <= csv.size() && !csv.empty()) {
    const std::size_t comma = csv.find(',', start);
    const std::string label = csv.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!label.empty()) labels_.push_back(label);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (labels_.empty()) {
    throw std::invalid_argument("Scatter: missing labels");
  }
}

void ScatterUnit::process(ProcessContext& ctx) {
  if (!sender_) {
    throw std::logic_error("Scatter fired with no channel sender installed");
  }
  sender_(labels_[next_ % labels_.size()], ctx.input(0));
  next_ = (next_ + 1) % labels_.size();
}

serial::Bytes ScatterUnit::save_state() const {
  serial::Bytes b;
  b.push_back(static_cast<std::uint8_t>(next_));
  return b;
}

void ScatterUnit::restore_state(const serial::Bytes& state) {
  if (!state.empty()) next_ = state[0];
}

UnitInfo BroadcastUnit::make_info() {
  UnitInfo i;
  i.type_name = "Broadcast";
  i.concurrency = Concurrency::kSerialOnly;
  i.package = "dist";
  i.description = "Forward each item to every listed data channel";
  i.inputs = {PortSpec{"in", kAnyType}};
  return i;
}

const UnitInfo& BroadcastUnit::info() const {
  static const UnitInfo i = make_info();
  return i;
}

void BroadcastUnit::configure(const ParamSet& p) {
  labels_.clear();
  const std::string csv = p.get("labels", "");
  std::size_t start = 0;
  while (start <= csv.size() && !csv.empty()) {
    const std::size_t comma = csv.find(',', start);
    const std::string label = csv.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!label.empty()) labels_.push_back(label);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (labels_.empty()) {
    throw std::invalid_argument("Broadcast: missing labels");
  }
}

void BroadcastUnit::process(ProcessContext& ctx) {
  if (!sender_) {
    throw std::logic_error("Broadcast fired with no channel sender installed");
  }
  for (const auto& label : labels_) sender_(label, ctx.input(0));
}

UnitInfo VoteUnit::make_info() {
  UnitInfo i;
  i.type_name = "Vote";
  i.concurrency = Concurrency::kPure;
  i.package = "dist";
  i.description = "Majority vote over replicated results";
  for (std::size_t k = 0; k < kMaxVoteInputs; ++k) {
    i.inputs.push_back(PortSpec{"r" + std::to_string(k), kAnyType});
  }
  i.outputs = {PortSpec{"majority", kAnyType},
               PortSpec{"agreement", type_bit(DataType::kInteger)},
               PortSpec{"dissent", type_bit(DataType::kInteger)}};
  return i;
}

const UnitInfo& VoteUnit::info() const {
  static const UnitInfo i = make_info();
  return i;
}

void VoteUnit::process(ProcessContext& ctx) {
  // Collect the arrived replicas (unconnected ports are empty).
  std::vector<std::size_t> arrived;
  for (std::size_t p = 0; p < kMaxVoteInputs; ++p) {
    if (ctx.has_input(p)) arrived.push_back(p);
  }
  if (arrived.empty()) {
    throw std::invalid_argument("Vote fired with no inputs");
  }

  // Plurality by pairwise equality (replica counts are tiny).
  std::size_t winner = arrived[0];
  std::size_t winner_count = 0;
  for (std::size_t cand : arrived) {
    std::size_t count = 0;
    for (std::size_t other : arrived) {
      if (ctx.input(cand) == ctx.input(other)) ++count;
    }
    if (count > winner_count) {
      winner_count = count;
      winner = cand;
    }
  }

  std::int64_t dissent = 0;
  for (std::size_t p : arrived) {
    if (!(ctx.input(p) == ctx.input(winner))) {
      dissent |= (std::int64_t{1} << p);
    }
  }
  const bool majority = winner_count * 2 > arrived.size();
  ctx.emit(0, ctx.input(winner));
  ctx.emit(1, static_cast<std::int64_t>(majority ? 1 : 0));
  ctx.emit(2, dissent);
}

UnitInfo ReceiveUnit::make_info() {
  UnitInfo i;
  i.type_name = "Receive";
  i.package = "dist";
  i.description = "Emits items arriving on a named data channel";
  i.outputs = {PortSpec{"out", kAnyType}};
  // Not a source: it fires only when the runtime delivers external data.
  return i;
}

const UnitInfo& ReceiveUnit::info() const {
  static const UnitInfo i = make_info();
  return i;
}

void ReceiveUnit::configure(const ParamSet& p) {
  label_ = p.get("label", "");
  if (label_.empty()) throw std::invalid_argument("Receive: missing label");
}

void ReceiveUnit::process(ProcessContext&) {
  // Deliveries bypass process(); reaching here means the graph wired a
  // Receive as an ordinary unit, which is a bug in the rewrite.
  throw std::logic_error("Receive '" + label_ + "' must not fire directly");
}

void register_proxy_units(UnitRegistry& r) {
  r.add<SendUnit>();
  r.add<ReceiveUnit>();
  r.add<ScatterUnit>();
  r.add<BroadcastUnit>();
  r.add<VoteUnit>();
}

}  // namespace cg::core
