// ConGrid -- the unit (tool) abstraction.
//
// Triana programs are networks of units: "There are several hundred units
// (i.e. programs) and networks of units can be created by graphical
// connections" (paper 3.1). A ConGrid unit declares its ports (with
// accepted data types, for connection type checking), is configured from
// the task's key/value parameters, and implements process(): consume one
// DataItem per connected input port, emit items on output ports. Stateful
// units (AccumStat) additionally expose save/restore for checkpointing and
// migration.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/types/data_item.hpp"
#include "dsp/rng.hpp"
#include "sandbox/sandbox.hpp"
#include "xml/node.hpp"

namespace cg::core {

/// One input or output port: a name plus the set of data types it accepts
/// (a bitmask of type_bit(DataType)).
struct PortSpec {
  std::string name;
  std::uint32_t accepts = kAnyType;
};

/// The threading contract a unit type declares to the wave scheduler
/// (DESIGN.md section 4d). The wave model never fires one instance twice
/// concurrently, so the distinction is about state and external effects,
/// not reentrancy.
enum class Concurrency {
  /// No mutable per-instance state and no effects outside its emissions:
  /// may fire on any pool thread. save_state() must stay empty -- the
  /// runtime enforces this at graph construction.
  kPure,
  /// Owns per-instance state (accumulators, phase, sink buffers) but
  /// touches nothing outside the instance: may fire on a pool thread
  /// concurrently with *other* units. This is the safe default.
  kStateful,
  /// Reaches outside the graph (external senders, shared host resources):
  /// fired only on the engine's coordinator thread, in fixed unit-index
  /// order, so hooks need not be thread-safe.
  kSerialOnly,
};

/// Static description of a unit type -- the CCA-style component metadata
/// the paper encodes in XML ("The description of a Triana unit is also
/// encoded in XML, and based on the CCA", section 3.2).
struct UnitInfo {
  std::string type_name;   ///< e.g. "Wave", "Gaussian", "FFT"
  std::string package;     ///< e.g. "signalproc"
  std::string description;
  std::vector<PortSpec> inputs;
  std::vector<PortSpec> outputs;
  bool is_source = false;  ///< fires every iteration without inputs
  Concurrency concurrency = Concurrency::kStateful;

  xml::Node to_xml() const;
  static UnitInfo from_xml(const xml::Node& n);
};

/// Typed access over a task's string parameters.
class ParamSet {
 public:
  ParamSet() = default;
  explicit ParamSet(std::map<std::string, std::string> kv)
      : kv_(std::move(kv)) {}

  void set(const std::string& key, std::string value) {
    kv_[key] = std::move(value);
  }
  void set_double(const std::string& key, double v);
  void set_int(const std::string& key, long long v);

  bool has(const std::string& key) const { return kv_.contains(key); }
  std::string get(const std::string& key, const std::string& fallback) const;
  double get_double(const std::string& key, double fallback) const;
  long long get_int(const std::string& key, long long fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  const std::map<std::string, std::string>& raw() const { return kv_; }
  bool operator==(const ParamSet&) const = default;

 private:
  std::map<std::string, std::string> kv_;
};

/// Everything a unit sees during one firing.
class ProcessContext {
 public:
  ProcessContext(std::vector<DataItem> inputs, std::uint64_t iteration,
                 dsp::Rng* rng, sandbox::Sandbox* sb)
      : inputs_(std::move(inputs)), iteration_(iteration), rng_(rng),
        sandbox_(sb) {}

  /// The item consumed on `port` this firing (empty when unconnected).
  const DataItem& input(std::size_t port) const;
  bool has_input(std::size_t port) const;
  std::size_t input_count() const { return inputs_.size(); }

  /// Produce an item on an output port; the runtime routes it.
  void emit(std::size_t port, DataItem item);

  /// Which streaming iteration this firing belongs to (sources increment).
  /// Reading it marks the firing iteration-dependent, which (like rng())
  /// excludes it from cross-run memoization: equal inputs at different
  /// iterations may legitimately produce different outputs.
  std::uint64_t iteration() const {
    iteration_used_ = true;
    return iteration_;
  }

  /// Deterministic per-task random stream. Touching it marks the firing
  /// RNG-dependent: its outputs depend on stream position, and replaying
  /// them without advancing the stream would desynchronise later firings,
  /// so such firings are never memoized.
  dsp::Rng& rng() {
    rng_used_ = true;
    return *rng_;
  }

  /// Did this firing read the RNG / the iteration counter? Consulted by
  /// the runtime after process() to decide whether the firing was a pure
  /// function of its inputs (memoization gate).
  bool rng_used() const { return rng_used_; }
  bool iteration_used() const { return iteration_used_; }

  /// Account estimated CPU cost against the host's sandbox (no-op when the
  /// host runs the unit untrusted-free). Throws SandboxViolation on budget
  /// exhaustion, which fails the job, not the host.
  void charge_cpu(double seconds);

  /// Collected emissions, consumed by the runtime after process().
  std::vector<std::pair<std::size_t, DataItem>>& emissions() {
    return emissions_;
  }

 private:
  std::vector<DataItem> inputs_;
  std::vector<std::pair<std::size_t, DataItem>> emissions_;
  std::uint64_t iteration_;
  dsp::Rng* rng_;
  sandbox::Sandbox* sandbox_;
  mutable bool rng_used_ = false;
  mutable bool iteration_used_ = false;
};

/// Base class of every unit.
class Unit {
 public:
  virtual ~Unit() = default;

  virtual const UnitInfo& info() const = 0;

  /// Called once before the first firing, with the task's parameters.
  virtual void configure(const ParamSet& params) { (void)params; }

  /// One firing: consume inputs, emit outputs.
  virtual void process(ProcessContext& ctx) = 0;

  /// Stateful units serialise their state here (checkpoint/migration);
  /// stateless units return empty.
  virtual serial::Bytes save_state() const { return {}; }
  virtual void restore_state(const serial::Bytes& state) { (void)state; }

  /// Forget accumulated state (fresh run).
  virtual void reset() {}
};

}  // namespace cg::core
