#include <algorithm>
#include <cmath>

#include "core/unit/builtin.hpp"
#include "dsp/correlate.hpp"
#include "dsp/fft.hpp"
#include "dsp/spectrum.hpp"
#include "serial/reader.hpp"
#include "serial/writer.hpp"

namespace cg::core {
namespace {

/// Rough cost model charged against the sandbox: N log N flops at a
/// 100 Mflop/s 2003-era machine, expressed in seconds.
double fft_cost_seconds(std::size_t n) {
  const double nn = static_cast<double>(dsp::next_pow2(n));
  return 5.0 * nn * std::log2(std::max(2.0, nn)) / 100e6;
}

const SampleSet& require_samples(ProcessContext& ctx, std::size_t port,
                                 const char* unit) {
  if (ctx.input(port).type() != DataType::kSampleSet) {
    throw std::invalid_argument(std::string(unit) +
                                ": expected a sample-set on port " +
                                std::to_string(port));
  }
  return ctx.input(port).samples();
}

}  // namespace

// -------------------------------------------------------------- GaussianUnit

UnitInfo GaussianUnit::make_info() {
  UnitInfo i;
  i.type_name = "Gaussian";
  i.concurrency = Concurrency::kPure;
  i.package = "signalproc";
  i.description = "Adds Gaussian noise to a signal";
  i.inputs = {PortSpec{"in", type_bit(DataType::kSampleSet)}};
  i.outputs = {PortSpec{"out", type_bit(DataType::kSampleSet)}};
  return i;
}

const UnitInfo& GaussianUnit::info() const {
  static const UnitInfo i = make_info();
  return i;
}

void GaussianUnit::configure(const ParamSet& p) {
  stddev_ = p.get_double("stddev", 1.0);
}

void GaussianUnit::process(ProcessContext& ctx) {
  SampleSet out = require_samples(ctx, 0, "Gaussian");
  for (auto& s : out.samples) s += ctx.rng().gaussian(0.0, stddev_);
  ctx.emit(0, std::move(out));
}

// ------------------------------------------------------------------ FftUnit

UnitInfo FftUnit::make_info() {
  UnitInfo i;
  i.type_name = "FFT";
  i.concurrency = Concurrency::kPure;
  i.package = "signalproc";
  i.description = "One-sided power spectrum of a signal";
  i.inputs = {PortSpec{"signal", type_bit(DataType::kSampleSet)}};
  i.outputs = {PortSpec{"spectrum", type_bit(DataType::kSpectrum)}};
  return i;
}

const UnitInfo& FftUnit::info() const {
  static const UnitInfo i = make_info();
  return i;
}

void FftUnit::configure(const ParamSet& p) {
  window_ = dsp::window_from_name(p.get("window", "rect"));
}

void FftUnit::process(ProcessContext& ctx) {
  const SampleSet& in = require_samples(ctx, 0, "FFT");
  ctx.charge_cpu(fft_cost_seconds(in.samples.size()));
  const auto spec = dsp::power_spectrum(in.samples, in.sample_rate, window_);
  SpectrumData out;
  out.bin_width = spec.bin_width;
  out.power = spec.power;
  ctx.emit(0, std::move(out));
}

// ------------------------------------------------------------ AccumStatUnit

UnitInfo AccumStatUnit::make_info() {
  UnitInfo i;
  i.type_name = "AccumStat";
  i.package = "signalproc";
  i.description = "Running element-wise mean over successive iterations";
  i.inputs = {PortSpec{"in", type_bit(DataType::kSpectrum) |
                             type_bit(DataType::kSampleSet)}};
  i.outputs = {PortSpec{"mean", type_bit(DataType::kSpectrum) |
                                type_bit(DataType::kSampleSet)}};
  return i;
}

const UnitInfo& AccumStatUnit::info() const {
  static const UnitInfo i = make_info();
  return i;
}

void AccumStatUnit::process(ProcessContext& ctx) {
  const DataItem& in = ctx.input(0);
  const std::vector<double>* values = nullptr;
  if (in.type() == DataType::kSpectrum) {
    values = &in.spectrum().power;
    meta_ = in.spectrum().bin_width;
    is_spectrum_ = true;
  } else if (in.type() == DataType::kSampleSet) {
    values = &in.samples().samples;
    meta_ = in.samples().sample_rate;
    is_spectrum_ = false;
  } else {
    throw std::invalid_argument("AccumStat: expected spectrum or sample-set");
  }

  if (sums_.empty()) {
    sums_.assign(values->size(), 0.0);
  } else if (sums_.size() != values->size()) {
    throw std::invalid_argument("AccumStat: input length changed mid-stream");
  }
  for (std::size_t i = 0; i < values->size(); ++i) sums_[i] += (*values)[i];
  ++count_;

  std::vector<double> mean(sums_.size());
  const double inv = 1.0 / static_cast<double>(count_);
  for (std::size_t i = 0; i < sums_.size(); ++i) mean[i] = sums_[i] * inv;

  if (is_spectrum_) {
    SpectrumData out;
    out.bin_width = meta_;
    out.power = std::move(mean);
    ctx.emit(0, std::move(out));
  } else {
    SampleSet out;
    out.sample_rate = meta_;
    out.samples = std::move(mean);
    ctx.emit(0, std::move(out));
  }
}

serial::Bytes AccumStatUnit::save_state() const {
  serial::Writer w;
  w.u64(count_);
  w.f64(meta_);
  w.boolean(is_spectrum_);
  w.f64_vector(sums_);
  return w.take();
}

void AccumStatUnit::restore_state(const serial::Bytes& state) {
  serial::Reader r(state);
  count_ = r.u64();
  meta_ = r.f64();
  is_spectrum_ = r.boolean();
  sums_ = r.f64_vector();
}

void AccumStatUnit::reset() {
  count_ = 0;
  sums_.clear();
}

// ----------------------------------------- element-wise map-style transforms

UnitInfo ScalerUnit::make_info() {
  UnitInfo i;
  i.type_name = "Scaler";
  i.concurrency = Concurrency::kPure;
  i.package = "math";
  i.description = "Multiplies every sample (or a scalar) by a factor";
  i.inputs = {PortSpec{"in", type_bit(DataType::kSampleSet) |
                             type_bit(DataType::kScalar)}};
  i.outputs = {PortSpec{"out", type_bit(DataType::kSampleSet) |
                               type_bit(DataType::kScalar)}};
  return i;
}

const UnitInfo& ScalerUnit::info() const {
  static const UnitInfo i = make_info();
  return i;
}

void ScalerUnit::configure(const ParamSet& p) {
  factor_ = p.get_double("factor", 1.0);
}

void ScalerUnit::process(ProcessContext& ctx) {
  const DataItem& in = ctx.input(0);
  if (in.type() == DataType::kScalar) {
    ctx.emit(0, in.scalar() * factor_);
    return;
  }
  SampleSet out = require_samples(ctx, 0, "Scaler");
  for (auto& s : out.samples) s *= factor_;
  ctx.emit(0, std::move(out));
}

UnitInfo OffsetUnit::make_info() {
  UnitInfo i;
  i.type_name = "Offset";
  i.concurrency = Concurrency::kPure;
  i.package = "math";
  i.description = "Adds a constant offset";
  i.inputs = {PortSpec{"in", type_bit(DataType::kSampleSet) |
                             type_bit(DataType::kScalar)}};
  i.outputs = {PortSpec{"out", type_bit(DataType::kSampleSet) |
                               type_bit(DataType::kScalar)}};
  return i;
}

const UnitInfo& OffsetUnit::info() const {
  static const UnitInfo i = make_info();
  return i;
}

void OffsetUnit::configure(const ParamSet& p) {
  offset_ = p.get_double("offset", 0.0);
}

void OffsetUnit::process(ProcessContext& ctx) {
  const DataItem& in = ctx.input(0);
  if (in.type() == DataType::kScalar) {
    ctx.emit(0, in.scalar() + offset_);
    return;
  }
  SampleSet out = require_samples(ctx, 0, "Offset");
  for (auto& s : out.samples) s += offset_;
  ctx.emit(0, std::move(out));
}

UnitInfo RectifierUnit::make_info() {
  UnitInfo i;
  i.type_name = "Rectifier";
  i.concurrency = Concurrency::kPure;
  i.package = "math";
  i.description = "Absolute value of every sample";
  i.inputs = {PortSpec{"in", type_bit(DataType::kSampleSet)}};
  i.outputs = {PortSpec{"out", type_bit(DataType::kSampleSet)}};
  return i;
}

const UnitInfo& RectifierUnit::info() const {
  static const UnitInfo i = make_info();
  return i;
}

void RectifierUnit::process(ProcessContext& ctx) {
  SampleSet out = require_samples(ctx, 0, "Rectifier");
  for (auto& s : out.samples) s = std::abs(s);
  ctx.emit(0, std::move(out));
}

UnitInfo ClipperUnit::make_info() {
  UnitInfo i;
  i.type_name = "Clipper";
  i.concurrency = Concurrency::kPure;
  i.package = "math";
  i.description = "Clamps samples to [lo, hi]";
  i.inputs = {PortSpec{"in", type_bit(DataType::kSampleSet)}};
  i.outputs = {PortSpec{"out", type_bit(DataType::kSampleSet)}};
  return i;
}

const UnitInfo& ClipperUnit::info() const {
  static const UnitInfo i = make_info();
  return i;
}

void ClipperUnit::configure(const ParamSet& p) {
  lo_ = p.get_double("lo", -1.0);
  hi_ = p.get_double("hi", 1.0);
  if (lo_ > hi_) throw std::invalid_argument("Clipper: lo > hi");
}

void ClipperUnit::process(ProcessContext& ctx) {
  SampleSet out = require_samples(ctx, 0, "Clipper");
  for (auto& s : out.samples) s = std::clamp(s, lo_, hi_);
  ctx.emit(0, std::move(out));
}

UnitInfo MovingAverageUnit::make_info() {
  UnitInfo i;
  i.type_name = "MovingAverage";
  i.concurrency = Concurrency::kPure;
  i.package = "signalproc";
  i.description = "Centred moving average smoother";
  i.inputs = {PortSpec{"in", type_bit(DataType::kSampleSet)}};
  i.outputs = {PortSpec{"out", type_bit(DataType::kSampleSet)}};
  return i;
}

const UnitInfo& MovingAverageUnit::info() const {
  static const UnitInfo i = make_info();
  return i;
}

void MovingAverageUnit::configure(const ParamSet& p) {
  const long long w = p.get_int("window", 5);
  if (w < 1) throw std::invalid_argument("MovingAverage: window < 1");
  window_ = static_cast<std::size_t>(w);
}

void MovingAverageUnit::process(ProcessContext& ctx) {
  const SampleSet& in = require_samples(ctx, 0, "MovingAverage");
  SampleSet out;
  out.sample_rate = in.sample_rate;
  out.samples.resize(in.samples.size());
  const std::ptrdiff_t half = static_cast<std::ptrdiff_t>(window_) / 2;
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(in.samples.size());
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const std::ptrdiff_t lo = std::max<std::ptrdiff_t>(0, i - half);
    const std::ptrdiff_t hi = std::min(n - 1, i + half);
    double acc = 0.0;
    for (std::ptrdiff_t j = lo; j <= hi; ++j) acc += in.samples[j];
    out.samples[i] = acc / static_cast<double>(hi - lo + 1);
  }
  ctx.emit(0, std::move(out));
}

UnitInfo SubsampleUnit::make_info() {
  UnitInfo i;
  i.type_name = "Subsample";
  i.concurrency = Concurrency::kPure;
  i.package = "signalproc";
  i.description = "Keeps every k-th sample";
  i.inputs = {PortSpec{"in", type_bit(DataType::kSampleSet)}};
  i.outputs = {PortSpec{"out", type_bit(DataType::kSampleSet)}};
  return i;
}

const UnitInfo& SubsampleUnit::info() const {
  static const UnitInfo i = make_info();
  return i;
}

void SubsampleUnit::configure(const ParamSet& p) {
  const long long s = p.get_int("stride", 2);
  if (s < 1) throw std::invalid_argument("Subsample: stride < 1");
  stride_ = static_cast<std::size_t>(s);
}

void SubsampleUnit::process(ProcessContext& ctx) {
  const SampleSet& in = require_samples(ctx, 0, "Subsample");
  SampleSet out;
  out.sample_rate = in.sample_rate / static_cast<double>(stride_);
  for (std::size_t i = 0; i < in.samples.size(); i += stride_) {
    out.samples.push_back(in.samples[i]);
  }
  ctx.emit(0, std::move(out));
}

UnitInfo WindowUnit::make_info() {
  UnitInfo i;
  i.type_name = "Window";
  i.concurrency = Concurrency::kPure;
  i.package = "signalproc";
  i.description = "Applies a window function";
  i.inputs = {PortSpec{"in", type_bit(DataType::kSampleSet)}};
  i.outputs = {PortSpec{"out", type_bit(DataType::kSampleSet)}};
  return i;
}

const UnitInfo& WindowUnit::info() const {
  static const UnitInfo i = make_info();
  return i;
}

void WindowUnit::configure(const ParamSet& p) {
  window_ = dsp::window_from_name(p.get("window", "hann"));
}

void WindowUnit::process(ProcessContext& ctx) {
  SampleSet out = require_samples(ctx, 0, "Window");
  const auto w = dsp::make_window(window_, out.samples.size());
  dsp::apply_window(out.samples, w);
  ctx.emit(0, std::move(out));
}

UnitInfo LogScaleUnit::make_info() {
  UnitInfo i;
  i.type_name = "LogScale";
  i.concurrency = Concurrency::kPure;
  i.package = "math";
  i.description = "log10 of samples or spectrum power";
  i.inputs = {PortSpec{"in", type_bit(DataType::kSampleSet) |
                             type_bit(DataType::kSpectrum)}};
  i.outputs = {PortSpec{"out", type_bit(DataType::kSampleSet) |
                              type_bit(DataType::kSpectrum)}};
  return i;
}

const UnitInfo& LogScaleUnit::info() const {
  static const UnitInfo i = make_info();
  return i;
}

void LogScaleUnit::process(ProcessContext& ctx) {
  const DataItem& in = ctx.input(0);
  auto log_map = [](std::vector<double>& v) {
    for (auto& x : v) x = std::log10(std::max(x, 1e-30));
  };
  if (in.type() == DataType::kSpectrum) {
    SpectrumData out = in.spectrum();
    log_map(out.power);
    ctx.emit(0, std::move(out));
  } else if (in.type() == DataType::kSampleSet) {
    SampleSet out = in.samples();
    log_map(out.samples);
    ctx.emit(0, std::move(out));
  } else {
    throw std::invalid_argument("LogScale: expected samples or spectrum");
  }
}

// -------------------------------------------------------- two-input units

namespace {

DataItem combine(const DataItem& a, const DataItem& b, const char* unit,
                 double (*op)(double, double)) {
  if (a.type() == DataType::kScalar && b.type() == DataType::kScalar) {
    return DataItem(op(a.scalar(), b.scalar()));
  }
  if (a.type() == DataType::kSampleSet && b.type() == DataType::kSampleSet) {
    const SampleSet& sa = a.samples();
    const SampleSet& sb = b.samples();
    if (sa.samples.size() != sb.samples.size()) {
      throw std::invalid_argument(std::string(unit) + ": length mismatch");
    }
    SampleSet out = sa;
    for (std::size_t i = 0; i < out.samples.size(); ++i) {
      out.samples[i] = op(out.samples[i], sb.samples[i]);
    }
    return DataItem(std::move(out));
  }
  throw std::invalid_argument(std::string(unit) +
                              ": expected two scalars or two sample-sets");
}

}  // namespace

UnitInfo AdderUnit::make_info() {
  UnitInfo i;
  i.type_name = "Adder";
  i.concurrency = Concurrency::kPure;
  i.package = "math";
  i.description = "Element-wise sum of two inputs";
  i.inputs = {PortSpec{"a", type_bit(DataType::kSampleSet) |
                            type_bit(DataType::kScalar)},
              PortSpec{"b", type_bit(DataType::kSampleSet) |
                            type_bit(DataType::kScalar)}};
  i.outputs = {PortSpec{"sum", type_bit(DataType::kSampleSet) |
                               type_bit(DataType::kScalar)}};
  return i;
}

const UnitInfo& AdderUnit::info() const {
  static const UnitInfo i = make_info();
  return i;
}

void AdderUnit::process(ProcessContext& ctx) {
  ctx.emit(0, combine(ctx.input(0), ctx.input(1), "Adder",
                      [](double x, double y) { return x + y; }));
}

UnitInfo MultiplierUnit::make_info() {
  UnitInfo i;
  i.type_name = "Multiplier";
  i.concurrency = Concurrency::kPure;
  i.package = "math";
  i.description = "Element-wise product of two inputs";
  i.inputs = {PortSpec{"a", type_bit(DataType::kSampleSet) |
                            type_bit(DataType::kScalar)},
              PortSpec{"b", type_bit(DataType::kSampleSet) |
                            type_bit(DataType::kScalar)}};
  i.outputs = {PortSpec{"product", type_bit(DataType::kSampleSet) |
                                   type_bit(DataType::kScalar)}};
  return i;
}

const UnitInfo& MultiplierUnit::info() const {
  static const UnitInfo i = make_info();
  return i;
}

void MultiplierUnit::process(ProcessContext& ctx) {
  ctx.emit(0, combine(ctx.input(0), ctx.input(1), "Multiplier",
                      [](double x, double y) { return x * y; }));
}

UnitInfo CorrelatorUnit::make_info() {
  UnitInfo i;
  i.type_name = "Correlator";
  i.concurrency = Concurrency::kPure;
  i.package = "signalproc";
  i.description = "FFT fast correlation of data against a template";
  i.inputs = {PortSpec{"data", type_bit(DataType::kSampleSet)},
              PortSpec{"template", type_bit(DataType::kSampleSet)}};
  i.outputs = {PortSpec{"correlation", type_bit(DataType::kSampleSet)},
               PortSpec{"peak", type_bit(DataType::kScalar)}};
  return i;
}

const UnitInfo& CorrelatorUnit::info() const {
  static const UnitInfo i = make_info();
  return i;
}

void CorrelatorUnit::process(ProcessContext& ctx) {
  const SampleSet& data = require_samples(ctx, 0, "Correlator");
  const SampleSet& tmpl = require_samples(ctx, 1, "Correlator");
  ctx.charge_cpu(3.0 * fft_cost_seconds(data.samples.size() +
                                        tmpl.samples.size()));
  SampleSet corr;
  corr.sample_rate = data.sample_rate;
  corr.samples = dsp::fast_correlate(data.samples, tmpl.samples);
  const auto match = dsp::matched_filter(data.samples, tmpl.samples);
  ctx.emit(0, std::move(corr));
  ctx.emit(1, match.peak);
}

UnitInfo SpectrumPeakUnit::make_info() {
  UnitInfo i;
  i.type_name = "SpectrumPeak";
  i.concurrency = Concurrency::kPure;
  i.package = "signalproc";
  i.description = "Peak frequency and peak-to-median ratio of a spectrum";
  i.inputs = {PortSpec{"spectrum", type_bit(DataType::kSpectrum)}};
  i.outputs = {PortSpec{"frequency", type_bit(DataType::kScalar)},
               PortSpec{"ratio", type_bit(DataType::kScalar)}};
  return i;
}

const UnitInfo& SpectrumPeakUnit::info() const {
  static const UnitInfo i = make_info();
  return i;
}

void SpectrumPeakUnit::process(ProcessContext& ctx) {
  if (ctx.input(0).type() != DataType::kSpectrum) {
    throw std::invalid_argument("SpectrumPeak: expected a spectrum");
  }
  const SpectrumData& in = ctx.input(0).spectrum();
  dsp::Spectrum s;
  s.bin_width = in.bin_width;
  s.power = in.power;
  ctx.emit(0, dsp::peak_frequency(s));
  ctx.emit(1, dsp::peak_to_median_ratio(s));
}

UnitInfo DelayUnit::make_info() {
  UnitInfo i;
  i.type_name = "Delay";
  i.package = "signalproc";
  i.description = "One-item delay line";
  i.inputs = {PortSpec{"in", kAnyType}};
  i.outputs = {PortSpec{"out", kAnyType}};
  return i;
}

const UnitInfo& DelayUnit::info() const {
  static const UnitInfo i = make_info();
  return i;
}

void DelayUnit::process(ProcessContext& ctx) {
  if (!held_.empty()) ctx.emit(0, held_);
  held_ = ctx.input(0);
}

serial::Bytes DelayUnit::save_state() const {
  return encode_data_item(held_);
}

void DelayUnit::restore_state(const serial::Bytes& state) {
  held_ = decode_data_item(state);
}

UnitInfo IntegratorUnit::make_info() {
  UnitInfo i;
  i.type_name = "Integrator";
  i.package = "math";
  i.description = "Running (element-wise) sum across iterations";
  i.inputs = {PortSpec{"in", type_bit(DataType::kSampleSet) |
                             type_bit(DataType::kScalar)}};
  i.outputs = {PortSpec{"sum", type_bit(DataType::kSampleSet) |
                              type_bit(DataType::kScalar)}};
  return i;
}

const UnitInfo& IntegratorUnit::info() const {
  static const UnitInfo i = make_info();
  return i;
}

void IntegratorUnit::process(ProcessContext& ctx) {
  const DataItem& in = ctx.input(0);
  if (in.type() == DataType::kScalar) {
    scalar_mode_ = true;
    scalar_sum_ += in.scalar();
    ctx.emit(0, scalar_sum_);
    return;
  }
  if (in.type() != DataType::kSampleSet) {
    throw std::invalid_argument("Integrator: expected scalar or sample-set");
  }
  scalar_mode_ = false;
  const SampleSet& s = in.samples();
  rate_ = s.sample_rate;
  if (sums_.empty()) {
    sums_.assign(s.samples.size(), 0.0);
  } else if (sums_.size() != s.samples.size()) {
    throw std::invalid_argument("Integrator: input length changed");
  }
  for (std::size_t i = 0; i < sums_.size(); ++i) sums_[i] += s.samples[i];
  SampleSet out;
  out.sample_rate = rate_;
  out.samples = sums_;
  ctx.emit(0, std::move(out));
}

serial::Bytes IntegratorUnit::save_state() const {
  serial::Writer w;
  w.f64(scalar_sum_);
  w.boolean(scalar_mode_);
  w.f64(rate_);
  w.f64_vector(sums_);
  return w.take();
}

void IntegratorUnit::restore_state(const serial::Bytes& state) {
  serial::Reader r(state);
  scalar_sum_ = r.f64();
  scalar_mode_ = r.boolean();
  rate_ = r.f64();
  sums_ = r.f64_vector();
}

void IntegratorUnit::reset() {
  scalar_sum_ = 0.0;
  sums_.clear();
}

UnitInfo ThresholdUnit::make_info() {
  UnitInfo i;
  i.type_name = "Threshold";
  i.concurrency = Concurrency::kPure;
  i.package = "math";
  i.description = "1 when max |input| exceeds the threshold, else 0";
  i.inputs = {PortSpec{"in", type_bit(DataType::kSampleSet) |
                             type_bit(DataType::kScalar)}};
  i.outputs = {PortSpec{"trigger", type_bit(DataType::kInteger)}};
  return i;
}

const UnitInfo& ThresholdUnit::info() const {
  static const UnitInfo i = make_info();
  return i;
}

void ThresholdUnit::configure(const ParamSet& p) {
  threshold_ = p.get_double("threshold", 1.0);
}

void ThresholdUnit::process(ProcessContext& ctx) {
  const DataItem& in = ctx.input(0);
  double level = 0.0;
  if (in.type() == DataType::kScalar) {
    level = std::abs(in.scalar());
  } else if (in.type() == DataType::kSampleSet) {
    for (double s : in.samples().samples) level = std::max(level, std::abs(s));
  } else {
    throw std::invalid_argument("Threshold: expected samples or scalar");
  }
  ctx.emit(0, static_cast<std::int64_t>(level > threshold_ ? 1 : 0));
}

void register_builtin_transforms(UnitRegistry& r) {
  r.add<GaussianUnit>();
  r.add<FftUnit>();
  r.add<AccumStatUnit>();
  r.add<ScalerUnit>();
  r.add<OffsetUnit>();
  r.add<RectifierUnit>();
  r.add<ClipperUnit>();
  r.add<MovingAverageUnit>();
  r.add<SubsampleUnit>();
  r.add<WindowUnit>();
  r.add<LogScaleUnit>();
  r.add<AdderUnit>();
  r.add<MultiplierUnit>();
  r.add<CorrelatorUnit>();
  r.add<SpectrumPeakUnit>();
  r.add<ThresholdUnit>();
  r.add<DelayUnit>();
  r.add<IntegratorUnit>();
}

}  // namespace cg::core
