#include "core/unit/registry.hpp"

#include <stdexcept>

namespace cg::core {

void UnitRegistry::add(UnitInfo info, Factory factory) {
  const std::string name = info.type_name;
  entries_[name] = Entry{std::move(info), std::move(factory)};
}

const UnitInfo& UnitRegistry::info(const std::string& type_name) const {
  auto it = entries_.find(type_name);
  if (it == entries_.end()) {
    throw std::out_of_range("unknown unit type: " + type_name);
  }
  return it->second.info;
}

std::unique_ptr<Unit> UnitRegistry::create(const std::string& type_name) const {
  auto it = entries_.find(type_name);
  if (it == entries_.end()) {
    throw std::out_of_range("unknown unit type: " + type_name);
  }
  return it->second.factory();
}

std::vector<std::string> UnitRegistry::type_names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) out.push_back(name);
  return out;
}

UnitRegistry UnitRegistry::with_builtins() {
  UnitRegistry r;
  register_builtin_sources(r);
  register_builtin_transforms(r);
  register_builtin_sinks(r);
  register_proxy_units(r);
  return r;
}

}  // namespace cg::core
