// ConGrid -- unit registry.
//
// The executing peer's catalogue of unit types it can instantiate. In the
// paper the "code" for a unit is a Java class downloaded on demand; in
// ConGrid the behaviour is compiled in, and the on-demand path transfers
// the module *artifact* (repo/) whose presence gates instantiation -- the
// registry is the JVM analogue, the artifact cache the classloader's disk.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/unit/unit.hpp"

namespace cg::core {

class UnitRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Unit>()>;

  /// Register a unit type; replaces an existing registration of the same
  /// type name (latest code wins, matching the owner-version rule).
  void add(UnitInfo info, Factory factory);

  /// Convenience: register a default-constructible unit class exposing a
  /// static UnitInfo make_info().
  template <typename U>
  void add() {
    add(U::make_info(), [] { return std::make_unique<U>(); });
  }

  bool has(const std::string& type_name) const {
    return entries_.contains(type_name);
  }

  /// Port/source metadata for validation; throws std::out_of_range for an
  /// unknown type.
  const UnitInfo& info(const std::string& type_name) const;

  /// Instantiate; throws std::out_of_range for an unknown type.
  std::unique_ptr<Unit> create(const std::string& type_name) const;

  std::vector<std::string> type_names() const;
  std::size_t size() const { return entries_.size(); }

  /// A registry pre-loaded with every built-in unit (sources, transforms,
  /// sinks and the distribution proxy units).
  static UnitRegistry with_builtins();

 private:
  struct Entry {
    UnitInfo info;
    Factory factory;
  };
  std::map<std::string, Entry> entries_;
};

/// Registration hooks implemented by the builtin_* translation units.
void register_builtin_sources(UnitRegistry& r);
void register_builtin_transforms(UnitRegistry& r);
void register_builtin_sinks(UnitRegistry& r);
void register_proxy_units(UnitRegistry& r);

}  // namespace cg::core
