#include <cmath>

#include "core/unit/builtin.hpp"
#include "serial/reader.hpp"
#include "serial/writer.hpp"

namespace cg::core {

// ---------------------------------------------------------------- WaveUnit

UnitInfo WaveUnit::make_info() {
  UnitInfo i;
  i.type_name = "Wave";
  i.package = "signalproc";
  i.description = "Periodic waveform source with phase continuity";
  i.outputs = {PortSpec{"signal", type_bit(DataType::kSampleSet)}};
  i.is_source = true;
  return i;
}

const UnitInfo& WaveUnit::info() const {
  static const UnitInfo i = make_info();
  return i;
}

void WaveUnit::configure(const ParamSet& p) {
  freq_ = p.get_double("freq", 50.0);
  amplitude_ = p.get_double("amplitude", 1.0);
  rate_ = p.get_double("rate", 512.0);
  samples_ = static_cast<std::size_t>(p.get_int("samples", 512));
  shape_ = p.get("shape", "sine");
  if (shape_ != "sine" && shape_ != "square" && shape_ != "saw") {
    throw std::invalid_argument("Wave: unknown shape " + shape_);
  }
}

void WaveUnit::process(ProcessContext& ctx) {
  SampleSet out;
  out.sample_rate = rate_;
  out.samples.resize(samples_);
  const double dphase = 2.0 * M_PI * freq_ / rate_;
  for (std::size_t i = 0; i < samples_; ++i) {
    double v;
    if (shape_ == "sine") {
      v = std::sin(phase_);
    } else if (shape_ == "square") {
      v = std::sin(phase_) >= 0.0 ? 1.0 : -1.0;
    } else {  // saw
      v = std::fmod(phase_, 2.0 * M_PI) / M_PI - 1.0;
    }
    out.samples[i] = amplitude_ * v;
    phase_ += dphase;
  }
  // Keep the phase bounded for numerical stability over long runs.
  phase_ = std::fmod(phase_, 2.0 * M_PI);
  ctx.emit(0, std::move(out));
}

serial::Bytes WaveUnit::save_state() const {
  serial::Writer w;
  w.f64(phase_);
  return w.take();
}

void WaveUnit::restore_state(const serial::Bytes& state) {
  serial::Reader r(state);
  phase_ = r.f64();
}

// --------------------------------------------------------- NoiseSourceUnit

UnitInfo NoiseSourceUnit::make_info() {
  UnitInfo i;
  i.type_name = "NoiseSource";
  i.concurrency = Concurrency::kPure;
  i.package = "signalproc";
  i.description = "Gaussian white-noise source";
  i.outputs = {PortSpec{"noise", type_bit(DataType::kSampleSet)}};
  i.is_source = true;
  return i;
}

const UnitInfo& NoiseSourceUnit::info() const {
  static const UnitInfo i = make_info();
  return i;
}

void NoiseSourceUnit::configure(const ParamSet& p) {
  stddev_ = p.get_double("stddev", 1.0);
  rate_ = p.get_double("rate", 512.0);
  samples_ = static_cast<std::size_t>(p.get_int("samples", 512));
}

void NoiseSourceUnit::process(ProcessContext& ctx) {
  SampleSet out;
  out.sample_rate = rate_;
  out.samples.resize(samples_);
  for (auto& s : out.samples) s = ctx.rng().gaussian(0.0, stddev_);
  ctx.emit(0, std::move(out));
}

// ------------------------------------------------------------ ConstantUnit

UnitInfo ConstantUnit::make_info() {
  UnitInfo i;
  i.type_name = "Constant";
  i.concurrency = Concurrency::kPure;
  i.package = "common";
  i.description = "Constant scalar source";
  i.outputs = {PortSpec{"value", type_bit(DataType::kScalar)}};
  i.is_source = true;
  return i;
}

const UnitInfo& ConstantUnit::info() const {
  static const UnitInfo i = make_info();
  return i;
}

void ConstantUnit::configure(const ParamSet& p) {
  value_ = p.get_double("value", 0.0);
}

void ConstantUnit::process(ProcessContext& ctx) { ctx.emit(0, value_); }

// ------------------------------------------------------------- CounterUnit

UnitInfo CounterUnit::make_info() {
  UnitInfo i;
  i.type_name = "Counter";
  i.package = "common";
  i.description = "Monotonic integer source";
  i.outputs = {PortSpec{"count", type_bit(DataType::kInteger)}};
  i.is_source = true;
  return i;
}

const UnitInfo& CounterUnit::info() const {
  static const UnitInfo i = make_info();
  return i;
}

void CounterUnit::configure(const ParamSet& p) {
  start_ = p.get_int("start", 0);
  step_ = p.get_int("step", 1);
}

void CounterUnit::process(ProcessContext& ctx) {
  if (!initialised_) {
    next_ = start_;
    initialised_ = true;
  }
  ctx.emit(0, next_);
  next_ += step_;
}

serial::Bytes CounterUnit::save_state() const {
  serial::Writer w;
  w.i64(next_);
  w.boolean(initialised_);
  return w.take();
}

void CounterUnit::restore_state(const serial::Bytes& state) {
  serial::Reader r(state);
  next_ = r.i64();
  initialised_ = r.boolean();
}

void CounterUnit::reset() {
  next_ = start_;
  initialised_ = false;
}

// ---------------------------------------------------------- TextSourceUnit

UnitInfo TextSourceUnit::make_info() {
  UnitInfo i;
  i.type_name = "TextSource";
  i.concurrency = Concurrency::kPure;
  i.package = "common";
  i.description = "Fixed text source";
  i.outputs = {PortSpec{"text", type_bit(DataType::kText)}};
  i.is_source = true;
  return i;
}

const UnitInfo& TextSourceUnit::info() const {
  static const UnitInfo i = make_info();
  return i;
}

void TextSourceUnit::configure(const ParamSet& p) { text_ = p.get("text", ""); }

void TextSourceUnit::process(ProcessContext& ctx) { ctx.emit(0, text_); }

void register_builtin_sources(UnitRegistry& r) {
  r.add<WaveUnit>();
  r.add<NoiseSourceUnit>();
  r.add<ConstantUnit>();
  r.add<CounterUnit>();
  r.add<TextSourceUnit>();
}

}  // namespace cg::core
