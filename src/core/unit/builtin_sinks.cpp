#include "core/unit/builtin.hpp"

namespace cg::core {

UnitInfo GrapherUnit::make_info() {
  UnitInfo i;
  i.type_name = "Grapher";
  i.package = "display";
  i.description = "Records every received item for inspection";
  i.inputs = {PortSpec{"in", kAnyType}};
  return i;
}

const UnitInfo& GrapherUnit::info() const {
  static const UnitInfo i = make_info();
  return i;
}

void GrapherUnit::process(ProcessContext& ctx) {
  items_.push_back(ctx.input(0));
}

UnitInfo StatSinkUnit::make_info() {
  UnitInfo i;
  i.type_name = "StatSink";
  i.package = "display";
  i.description = "Welford statistics over scalar inputs";
  i.inputs = {PortSpec{"in", type_bit(DataType::kScalar) |
                             type_bit(DataType::kInteger)}};
  return i;
}

const UnitInfo& StatSinkUnit::info() const {
  static const UnitInfo i = make_info();
  return i;
}

void StatSinkUnit::process(ProcessContext& ctx) {
  const DataItem& in = ctx.input(0);
  if (in.type() == DataType::kScalar) {
    stats_.add(in.scalar());
  } else if (in.type() == DataType::kInteger) {
    stats_.add(static_cast<double>(in.integer()));
  } else {
    throw std::invalid_argument("StatSink: expected a scalar or integer");
  }
}

UnitInfo NullSinkUnit::make_info() {
  UnitInfo i;
  i.type_name = "NullSink";
  i.package = "display";
  i.description = "Discards input (load sink)";
  i.inputs = {PortSpec{"in", kAnyType}};
  return i;
}

const UnitInfo& NullSinkUnit::info() const {
  static const UnitInfo i = make_info();
  return i;
}

void NullSinkUnit::process(ProcessContext& ctx) {
  (void)ctx;
  ++received_;
}

void register_builtin_sinks(UnitRegistry& r) {
  r.add<GrapherUnit>();
  r.add<StatSinkUnit>();
  r.add<NullSinkUnit>();
}

}  // namespace cg::core
