#include "core/unit/unit.hpp"

#include <cstdlib>
#include <stdexcept>

namespace cg::core {

xml::Node UnitInfo::to_xml() const {
  xml::Node n("unit");
  n.set_attr("type", type_name);
  n.set_attr("package", package);
  if (is_source) n.set_attr("source", "true");
  if (concurrency == Concurrency::kPure) {
    n.set_attr("concurrency", "pure");
  } else if (concurrency == Concurrency::kSerialOnly) {
    n.set_attr("concurrency", "serial");
  }
  if (!description.empty()) {
    n.add_child("description").set_text(description);
  }
  for (const auto& p : inputs) {
    auto& c = n.add_child("input");
    c.set_attr("name", p.name);
    c.set_attr_int("accepts", p.accepts);
  }
  for (const auto& p : outputs) {
    auto& c = n.add_child("output");
    c.set_attr("name", p.name);
    c.set_attr_int("accepts", p.accepts);
  }
  return n;
}

UnitInfo UnitInfo::from_xml(const xml::Node& n) {
  if (n.name() != "unit") {
    throw xml::XmlError("expected <unit>, got <" + n.name() + ">");
  }
  UnitInfo info;
  info.type_name = n.require_attr("type");
  info.package = n.attr_or("package", "");
  info.is_source = n.attr_or("source", "false") == "true";
  const std::string conc = n.attr_or("concurrency", "stateful");
  if (conc == "pure") {
    info.concurrency = Concurrency::kPure;
  } else if (conc == "serial") {
    info.concurrency = Concurrency::kSerialOnly;
  } else if (conc == "stateful") {
    info.concurrency = Concurrency::kStateful;
  } else {
    throw xml::XmlError("unknown concurrency '" + conc + "'");
  }
  if (const xml::Node* d = n.child("description")) {
    info.description = d->text();
  }
  for (const xml::Node* c : n.children("input")) {
    info.inputs.push_back(PortSpec{
        c->require_attr("name"),
        static_cast<std::uint32_t>(c->attr_int("accepts", kAnyType))});
  }
  for (const xml::Node* c : n.children("output")) {
    info.outputs.push_back(PortSpec{
        c->require_attr("name"),
        static_cast<std::uint32_t>(c->attr_int("accepts", kAnyType))});
  }
  return info;
}

void ParamSet::set_double(const std::string& key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  kv_[key] = buf;
}

void ParamSet::set_int(const std::string& key, long long v) {
  kv_[key] = std::to_string(v);
}

std::string ParamSet::get(const std::string& key,
                          const std::string& fallback) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? fallback : it->second;
}

double ParamSet::get_double(const std::string& key, double fallback) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    throw std::invalid_argument("parameter '" + key + "' is not a number: " +
                                it->second);
  }
  return v;
}

long long ParamSet::get_int(const std::string& key, long long fallback) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  char* end = nullptr;
  long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    throw std::invalid_argument("parameter '" + key +
                                "' is not an integer: " + it->second);
  }
  return v;
}

bool ParamSet::get_bool(const std::string& key, bool fallback) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  if (it->second == "true" || it->second == "1") return true;
  if (it->second == "false" || it->second == "0") return false;
  throw std::invalid_argument("parameter '" + key + "' is not a bool: " +
                              it->second);
}

const DataItem& ProcessContext::input(std::size_t port) const {
  static const DataItem kEmpty;
  if (port >= inputs_.size()) return kEmpty;
  return inputs_[port];
}

bool ProcessContext::has_input(std::size_t port) const {
  return port < inputs_.size() && !inputs_[port].empty();
}

void ProcessContext::emit(std::size_t port, DataItem item) {
  emissions_.emplace_back(port, std::move(item));
}

void ProcessContext::charge_cpu(double seconds) {
  if (sandbox_) sandbox_->charge_cpu(seconds);
}

}  // namespace cg::core
