// ConGrid -- distribution proxy units.
//
// When a control unit rewrites a task graph for distribution (paper 3.3:
// "Control units reroute input data and dynamically re-wire the task graph
// to create a distributed version that is annotated with the particular
// resources ... and the specific data channels"), the cut connections are
// replaced by Send/Receive proxies. A SendUnit forwards its input to a
// named data channel (a p2p pipe label); a ReceiveUnit is the graph-side
// mouth of such a channel -- the runtime injects arriving payloads at its
// output. Param for both: "label".
#pragma once

#include <functional>

#include "core/unit/registry.hpp"

namespace cg::core {

/// Graph-boundary egress: input port 0 -> external channel `label`.
class SendUnit final : public Unit {
 public:
  static UnitInfo make_info();
  const UnitInfo& info() const override;
  void configure(const ParamSet& p) override;
  void process(ProcessContext& ctx) override;

  const std::string& label() const { return label_; }

  /// Installed by the runtime; receives every item that crosses out.
  using Sender = std::function<void(const std::string& label, DataItem)>;
  void set_sender(Sender s) { sender_ = std::move(s); }

 private:
  std::string label_;
  Sender sender_;
};

/// Round-robin scatter proxy used by the parallel (farm) policy: forwards
/// each input item to the next label in its configured list. Param:
/// "labels" (comma-separated). The round-robin cursor is checkpointable so
/// a migrated farm keeps its distribution pattern.
class ScatterUnit final : public Unit {
 public:
  static UnitInfo make_info();
  const UnitInfo& info() const override;
  void configure(const ParamSet& p) override;
  void process(ProcessContext& ctx) override;
  serial::Bytes save_state() const override;
  void restore_state(const serial::Bytes& state) override;
  void reset() override { next_ = 0; }

  using Sender = SendUnit::Sender;
  void set_sender(Sender s) { sender_ = std::move(s); }
  const std::vector<std::string>& labels() const { return labels_; }

 private:
  std::vector<std::string> labels_;
  std::size_t next_ = 0;
  Sender sender_;
};

/// Broadcast proxy used by the replicated policy: forwards each input item
/// to EVERY label in its list (same item to all replicas). Param: "labels"
/// (comma-separated).
class BroadcastUnit final : public Unit {
 public:
  static UnitInfo make_info();
  const UnitInfo& info() const override;
  void configure(const ParamSet& p) override;
  void process(ProcessContext& ctx) override;

  using Sender = SendUnit::Sender;
  void set_sender(Sender s) { sender_ = std::move(s); }
  const std::vector<std::string>& labels() const { return labels_; }

 private:
  std::vector<std::string> labels_;
  Sender sender_;
};

/// Majority vote over replicated results: up to kMaxVoteInputs inputs (use
/// only as many as there are replicas -- the engine fires the unit when
/// every *connected* port has an item). Emits the plurality item (port 0),
/// an agreement flag (port 1: 1 when a strict majority of arrived inputs
/// agree) and a dissent bitmask (port 2: bit i set when input i differed
/// from the winner) -- the signal a controller feeds into its TrustManager.
class VoteUnit final : public Unit {
 public:
  static constexpr std::size_t kMaxVoteInputs = 5;

  static UnitInfo make_info();
  const UnitInfo& info() const override;
  void process(ProcessContext& ctx) override;
};

/// Graph-boundary ingress: external channel `label` -> output port 0. The
/// unit itself never fires through process(); the runtime routes delivered
/// items from its output connections directly.
class ReceiveUnit final : public Unit {
 public:
  static UnitInfo make_info();
  const UnitInfo& info() const override;
  void configure(const ParamSet& p) override;
  void process(ProcessContext& ctx) override;

  const std::string& label() const { return label_; }

 private:
  std::string label_;
};

}  // namespace cg::core
