// ConGrid -- built-in unit library (declarations).
//
// A representative subset of Triana's "several hundred units": signal
// sources, transforms and sinks sufficient to express the paper's Figure 1
// network (Wave -> Gaussian -> FFT -> AccumStat -> Grapher) and the three
// application scenarios. Classes are exposed here (not hidden behind the
// registry) so hosts and tests can downcast sink units to read results.
#pragma once

#include <deque>

#include "core/unit/registry.hpp"
#include "dsp/stats.hpp"
#include "dsp/window.hpp"

namespace cg::core {

// --------------------------------------------------------------- sources

/// Periodic waveform source (sine/square/saw). Phase is carried across
/// iterations (stateful), so consecutive emissions are contiguous signal.
/// Params: freq (Hz, 50), amplitude (1), rate (Hz, 512), samples (512),
/// shape ("sine"|"square"|"saw").
class WaveUnit final : public Unit {
 public:
  static UnitInfo make_info();
  const UnitInfo& info() const override;
  void configure(const ParamSet& p) override;
  void process(ProcessContext& ctx) override;
  serial::Bytes save_state() const override;
  void restore_state(const serial::Bytes& state) override;
  void reset() override { phase_ = 0.0; }

 private:
  double freq_ = 50.0, amplitude_ = 1.0, rate_ = 512.0;
  std::size_t samples_ = 512;
  std::string shape_ = "sine";
  double phase_ = 0.0;
};

/// Gaussian white-noise source. Params: stddev (1), rate (512),
/// samples (512).
class NoiseSourceUnit final : public Unit {
 public:
  static UnitInfo make_info();
  const UnitInfo& info() const override;
  void configure(const ParamSet& p) override;
  void process(ProcessContext& ctx) override;

 private:
  double stddev_ = 1.0, rate_ = 512.0;
  std::size_t samples_ = 512;
};

/// Emits a constant scalar each iteration. Params: value (0).
class ConstantUnit final : public Unit {
 public:
  static UnitInfo make_info();
  const UnitInfo& info() const override;
  void configure(const ParamSet& p) override;
  void process(ProcessContext& ctx) override;

 private:
  double value_ = 0.0;
};

/// Emits 0, 1, 2, ... (stateful). Params: start (0), step (1).
class CounterUnit final : public Unit {
 public:
  static UnitInfo make_info();
  const UnitInfo& info() const override;
  void configure(const ParamSet& p) override;
  void process(ProcessContext& ctx) override;
  serial::Bytes save_state() const override;
  void restore_state(const serial::Bytes& state) override;
  void reset() override;

 private:
  std::int64_t start_ = 0, step_ = 1, next_ = 0;
  bool initialised_ = false;
};

/// Emits a fixed text item each iteration. Params: text ("").
class TextSourceUnit final : public Unit {
 public:
  static UnitInfo make_info();
  const UnitInfo& info() const override;
  void configure(const ParamSet& p) override;
  void process(ProcessContext& ctx) override;

 private:
  std::string text_;
};

// ------------------------------------------------------------- transforms

/// Adds Gaussian noise to a SampleSet -- the "Gaussian" unit of Figure 1.
/// Params: stddev (1).
class GaussianUnit final : public Unit {
 public:
  static UnitInfo make_info();
  const UnitInfo& info() const override;
  void configure(const ParamSet& p) override;
  void process(ProcessContext& ctx) override;

 private:
  double stddev_ = 1.0;
};

/// Power spectrum of a SampleSet (the Figure 1 "FFT" stage). Params:
/// window ("rect"|"hann"|"hamming"|"blackman").
class FftUnit final : public Unit {
 public:
  static UnitInfo make_info();
  const UnitInfo& info() const override;
  void configure(const ParamSet& p) override;
  void process(ProcessContext& ctx) override;

 private:
  dsp::WindowKind window_ = dsp::WindowKind::kRectangular;
};

/// Running element-wise mean over successive spectra or sample sets --
/// the paper's AccumStat ("average the spectra over successive iterations
/// to remove the noise"). Stateful; checkpointable.
class AccumStatUnit final : public Unit {
 public:
  static UnitInfo make_info();
  const UnitInfo& info() const override;
  void process(ProcessContext& ctx) override;
  serial::Bytes save_state() const override;
  void restore_state(const serial::Bytes& state) override;
  void reset() override;

  std::uint64_t count() const { return count_; }

 private:
  std::uint64_t count_ = 0;
  double meta_ = 0.0;  ///< bin_width or sample_rate of accumulated items
  bool is_spectrum_ = true;
  std::vector<double> sums_;
};

/// Multiplies samples by a factor. Params: factor (1).
class ScalerUnit final : public Unit {
 public:
  static UnitInfo make_info();
  const UnitInfo& info() const override;
  void configure(const ParamSet& p) override;
  void process(ProcessContext& ctx) override;

 private:
  double factor_ = 1.0;
};

/// Adds an offset to samples or a scalar. Params: offset (0).
class OffsetUnit final : public Unit {
 public:
  static UnitInfo make_info();
  const UnitInfo& info() const override;
  void configure(const ParamSet& p) override;
  void process(ProcessContext& ctx) override;

 private:
  double offset_ = 0.0;
};

/// Absolute value of every sample.
class RectifierUnit final : public Unit {
 public:
  static UnitInfo make_info();
  const UnitInfo& info() const override;
  void process(ProcessContext& ctx) override;
};

/// Clamp samples to [lo, hi]. Params: lo (-1), hi (1).
class ClipperUnit final : public Unit {
 public:
  static UnitInfo make_info();
  const UnitInfo& info() const override;
  void configure(const ParamSet& p) override;
  void process(ProcessContext& ctx) override;

 private:
  double lo_ = -1.0, hi_ = 1.0;
};

/// Centred moving average over a SampleSet. Params: window (5).
class MovingAverageUnit final : public Unit {
 public:
  static UnitInfo make_info();
  const UnitInfo& info() const override;
  void configure(const ParamSet& p) override;
  void process(ProcessContext& ctx) override;

 private:
  std::size_t window_ = 5;
};

/// Keep every k-th sample. Params: stride (2).
class SubsampleUnit final : public Unit {
 public:
  static UnitInfo make_info();
  const UnitInfo& info() const override;
  void configure(const ParamSet& p) override;
  void process(ProcessContext& ctx) override;

 private:
  std::size_t stride_ = 2;
};

/// Apply a window function in place. Params: window ("hann").
class WindowUnit final : public Unit {
 public:
  static UnitInfo make_info();
  const UnitInfo& info() const override;
  void configure(const ParamSet& p) override;
  void process(ProcessContext& ctx) override;

 private:
  dsp::WindowKind window_ = dsp::WindowKind::kHann;
};

/// log10 of samples/power (floored at 1e-30) -- dB-style display prep.
class LogScaleUnit final : public Unit {
 public:
  static UnitInfo make_info();
  const UnitInfo& info() const override;
  void process(ProcessContext& ctx) override;
};

/// Element-wise sum of two SampleSets (or two scalars).
class AdderUnit final : public Unit {
 public:
  static UnitInfo make_info();
  const UnitInfo& info() const override;
  void process(ProcessContext& ctx) override;
};

/// Element-wise product of two SampleSets (or two scalars).
class MultiplierUnit final : public Unit {
 public:
  static UnitInfo make_info();
  const UnitInfo& info() const override;
  void process(ProcessContext& ctx) override;
};

/// Fast correlation of input 0 (data) against input 1 (template); emits
/// the correlation series on port 0 and the normalised peak on port 1.
class CorrelatorUnit final : public Unit {
 public:
  static UnitInfo make_info();
  const UnitInfo& info() const override;
  void process(ProcessContext& ctx) override;
};

/// Emits the peak frequency (port 0) and peak-to-median ratio (port 1)
/// of a spectrum.
class SpectrumPeakUnit final : public Unit {
 public:
  static UnitInfo make_info();
  const UnitInfo& info() const override;
  void process(ProcessContext& ctx) override;
};

/// One-item delay line: emits the item received on the *previous* firing
/// (nothing on the first). Stateful/checkpointable -- the simplest unit
/// whose correctness depends on migration preserving state.
class DelayUnit final : public Unit {
 public:
  static UnitInfo make_info();
  const UnitInfo& info() const override;
  void process(ProcessContext& ctx) override;
  serial::Bytes save_state() const override;
  void restore_state(const serial::Bytes& state) override;
  void reset() override { held_ = DataItem(); }

 private:
  DataItem held_;
};

/// Running sum: scalars accumulate to a scalar, sample-sets element-wise
/// (lengths must stay constant). Stateful/checkpointable.
class IntegratorUnit final : public Unit {
 public:
  static UnitInfo make_info();
  const UnitInfo& info() const override;
  void process(ProcessContext& ctx) override;
  serial::Bytes save_state() const override;
  void restore_state(const serial::Bytes& state) override;
  void reset() override;

 private:
  double scalar_sum_ = 0.0;
  bool scalar_mode_ = true;
  double rate_ = 1.0;
  std::vector<double> sums_;
};

/// Emits integer 1 when the max |sample| (or scalar) exceeds the
/// threshold, else 0. Params: threshold (1).
class ThresholdUnit final : public Unit {
 public:
  static UnitInfo make_info();
  const UnitInfo& info() const override;
  void configure(const ParamSet& p) override;
  void process(ProcessContext& ctx) override;

 private:
  double threshold_ = 1.0;
};

// ------------------------------------------------------------------ sinks

/// Records every item it receives -- the test/GUI observation point
/// (Figure 2's graph display).
class GrapherUnit final : public Unit {
 public:
  static UnitInfo make_info();
  const UnitInfo& info() const override;
  void process(ProcessContext& ctx) override;
  void reset() override { items_.clear(); }

  const std::vector<DataItem>& items() const { return items_; }

 private:
  std::vector<DataItem> items_;
};

/// Welford statistics over scalar inputs.
class StatSinkUnit final : public Unit {
 public:
  static UnitInfo make_info();
  const UnitInfo& info() const override;
  void process(ProcessContext& ctx) override;
  void reset() override { stats_ = {}; }

  const dsp::RunningStats& stats() const { return stats_; }

 private:
  dsp::RunningStats stats_;
};

/// Discards everything (load sink).
class NullSinkUnit final : public Unit {
 public:
  static UnitInfo make_info();
  const UnitInfo& info() const override;
  void process(ProcessContext& ctx) override;

  std::uint64_t received() const { return received_; }

 private:
  std::uint64_t received_ = 0;
};

}  // namespace cg::core
