#include "core/service/describe.hpp"

#include "xml/write.hpp"

namespace cg::core {
namespace {

std::string accepts_names(std::uint32_t mask) {
  if (mask == kAnyType) return "any";
  std::string out;
  for (std::uint8_t t = 0; t <= static_cast<std::uint8_t>(DataType::kTable);
       ++t) {
    if (mask & type_bit(static_cast<DataType>(t))) {
      if (!out.empty()) out += "|";
      out += data_type_name(static_cast<DataType>(t));
    }
  }
  return out.empty() ? "none" : out;
}

}  // namespace

xml::Node describe_unit_port_type(const UnitInfo& info) {
  xml::Node pt("portType");
  pt.set_attr("name", info.type_name);
  pt.set_attr("package", info.package);
  if (!info.description.empty()) {
    pt.add_child("documentation").set_text(info.description);
  }
  auto& op = pt.add_child("operation");
  op.set_attr("name", "process");
  for (const auto& p : info.inputs) {
    auto& in = op.add_child("input");
    in.set_attr("name", p.name);
    in.set_attr("type", accepts_names(p.accepts));
  }
  for (const auto& p : info.outputs) {
    auto& out = op.add_child("output");
    out.set_attr("name", p.name);
    out.set_attr("type", accepts_names(p.accepts));
  }
  return pt;
}

xml::Node describe_service(const TrianaService& service) {
  xml::Node def("definitions");
  def.set_attr("name", service.id());

  auto& svc = def.add_child("service");
  svc.set_attr("name", service.id());
  auto& port = svc.add_child("port");
  port.set_attr("binding", "congrid-frames");
  port.set_attr("location", service.endpoint().value);
  for (const auto& [k, v] : service.config().capabilities) {
    auto& cap = svc.add_child("capability");
    cap.set_attr("key", k);
    cap.set_attr("value", v);
  }

  // The command-process-server operations every Triana service answers.
  auto& control = def.add_child("portType");
  control.set_attr("name", "TrianaControl");
  for (const char* op_name :
       {"deploy", "cancel", "status", "checkpoint", "rebind"}) {
    control.add_child("operation").set_attr("name", op_name);
  }

  for (const auto& type_name : service.registry().type_names()) {
    def.add_child(describe_unit_port_type(service.registry().info(type_name)));
  }
  return def;
}

std::string service_description_document(const TrianaService& service) {
  return xml::write(describe_service(service));
}

}  // namespace cg::core
