// ConGrid -- WSDL-style service descriptions.
//
// Paper (section 1): "We also hope to provide a Web Services Description
// Language (WSDL) interface to these at a later time, through the
// Java2WSDL interface from IBM." This module is that future work in
// ConGrid's XML dialect: a <definitions> document describing a Triana
// service -- its endpoint, capabilities, control operations, and one
// <portType> per executable unit type with typed <input>/<output> message
// parts. A client that has never met the peer can read what it offers and
// how to connect, which is all WSDL buys the paper's users.
#pragma once

#include <string>

#include "core/service/service.hpp"
#include "xml/node.hpp"

namespace cg::core {

/// Unit type as a WSDL-style portType: one "process" operation whose
/// message parts are the unit's ports with their accepted data types.
xml::Node describe_unit_port_type(const UnitInfo& info);

/// The whole service: endpoint, capability attributes, the control
/// operations (deploy/status/cancel/checkpoint) and every unit portType.
xml::Node describe_service(const TrianaService& service);

/// describe_service rendered as a document string.
std::string service_description_document(const TrianaService& service);

}  // namespace cg::core
