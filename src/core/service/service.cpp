#include "core/service/service.hpp"

#include <algorithm>
#include <set>

#include "core/graph/taskgraph_xml.hpp"
#include "obs/http_server.hpp"
#include "serial/reader.hpp"

namespace cg::core {
namespace {

/// Unit types that are engine infrastructure, never fetched as modules.
bool is_infrastructure(const std::string& unit_type) {
  return unit_type == "Send" || unit_type == "Receive" ||
         unit_type == "Scatter";
}

/// Distinct fetchable unit types in a graph (recursing into groups).
std::set<std::string> module_types(const TaskGraph& g) {
  std::set<std::string> out;
  for (const auto& t : g.tasks()) {
    if (t.is_group()) {
      auto inner = module_types(*t.group);
      out.insert(inner.begin(), inner.end());
    } else if (!is_infrastructure(t.unit_type)) {
      out.insert(t.unit_type);
    }
  }
  return out;
}

/// Labels a graph emits on: Send units' "label" plus the comma-separated
/// "labels" of Scatter/Broadcast proxies (recursing into groups). A fence
/// naming one of these halts the job that owns it; a bounced payload for
/// one is re-sent by the job that owns it.
void collect_send_labels(const TaskGraph& g, std::vector<std::string>& out) {
  for (const auto& t : g.tasks()) {
    if (t.is_group()) {
      collect_send_labels(*t.group, out);
    } else if (t.unit_type == "Send") {
      if (auto l = t.params.get("label", ""); !l.empty()) out.push_back(l);
    } else if (t.unit_type == "Scatter" || t.unit_type == "Broadcast") {
      const std::string csv = t.params.get("labels", "");
      std::size_t start = 0;
      while (start < csv.size()) {
        std::size_t comma = csv.find(',', start);
        if (comma == std::string::npos) comma = csv.size();
        if (comma > start) out.push_back(csv.substr(start, comma - start));
        start = comma + 1;
      }
    }
  }
}

bool contains_label(const std::vector<std::string>& labels,
                    const std::string& label) {
  return std::find(labels.begin(), labels.end(), label) != labels.end();
}

}  // namespace

TrianaService::TrianaService(net::Transport& transport, net::Clock clock,
                             net::Scheduler scheduler,
                             const UnitRegistry& registry,
                             ServiceConfig config)
    : clock_(std::move(clock)),
      scheduler_(std::move(scheduler)),
      registry_(registry),
      config_(std::move(config)),
      transport_(transport, clock_, scheduler_, config_.reliable),
      node_(transport_, clock_,
            p2p::PeerConfig{.peer_id = config_.peer_id}),
      pipes_(node_, scheduler_),
      code_(transport_),
      module_cache_(config_.module_cache_bytes),
      account_(config_.peer_id.empty() ? transport.local().value
                                       : config_.peer_id,
               config_.sandbox_policy, config_.certified_library) {
  if (config_.peer_id.empty()) config_.peer_id = transport.local().value;
  module_cache_.set_backing_store(config_.cas);
  code_.serve_from(&local_repo_);
  // Frame chain: PeerNode (discovery) -> PipeServe (data) -> CodeExchange
  // (code) -> control messages.
  pipes_.set_fallback_handler(
      [this](const net::Endpoint& from, serial::Frame f) {
        code_.on_frame(from, std::move(f));
      });
  code_.set_fallback_handler(
      [this](const net::Endpoint& from, serial::Frame f) {
        handle_control(from, std::move(f));
      });
  // Payloads for a label whose job is suspended or fenced go back to their
  // sender instead of vanishing: the sender re-resolves the label and the
  // item lands at the live incarnation.
  pipes_.set_unknown_pipe_handler(
      [this](const std::string& pipe, const net::Endpoint& from,
             serial::Bytes payload) {
        if (!bounce_labels_.contains(pipe)) return false;
        ++stats_.payloads_bounced;
        obs_.payloads_bounced.inc();
        transport_.send(from, encode(BounceMsg{pipe, std::move(payload)}));
        return true;
      });
}

void TrianaService::announce() {
  const auto advert = node_.make_peer_advert(config_.capabilities);
  node_.publish_local(advert);
  for (const auto& r : node_.rendezvous()) {
    node_.publish_to(r, {advert});
    break;
  }
}

void TrianaService::publish_module(const std::string& unit_type,
                                   const std::string& version,
                                   std::size_t size_bytes) {
  local_repo_.put(
      repo::make_synthetic_artifact(unit_type, version, size_bytes));
}

void TrianaService::publish_graph_modules(const TaskGraph& g,
                                          std::size_t size_bytes) {
  for (const auto& type : module_types(g)) {
    publish_module(type, "1.0", size_bytes);
  }
}

std::string TrianaService::fresh_job_id() {
  return config_.peer_id + "#" + std::to_string(next_job_++);
}

void TrianaService::set_obs(obs::Registry& registry, obs::Tracer* tracer,
                            std::string_view scope) {
  const std::string s = scope.empty() ? config_.peer_id : std::string(scope);
  obs_.deploys_received =
      registry.counter(obs::scoped(s, "service.deploys_received"));
  obs_.duplicate_deploys =
      registry.counter(obs::scoped(s, "service.duplicate_deploys"));
  obs_.jobs_started =
      registry.counter(obs::scoped(s, "service.jobs_started"));
  obs_.jobs_failed = registry.counter(obs::scoped(s, "service.jobs_failed"));
  obs_.jobs_cancelled =
      registry.counter(obs::scoped(s, "service.jobs_cancelled"));
  obs_.modules_fetched =
      registry.counter(obs::scoped(s, "service.modules_fetched"));
  obs_.modules_from_cas =
      registry.counter(obs::scoped(s, "service.modules_from_cas"));
  obs_.jobs_suspended =
      registry.counter(obs::scoped(s, "service.jobs_suspended"));
  obs_.jobs_fenced = registry.counter(obs::scoped(s, "service.jobs_fenced"));
  obs_.promotions = registry.counter(obs::scoped(s, "service.promotions"));
  obs_.payloads_bounced =
      registry.counter(obs::scoped(s, "service.payloads_bounced"));
  obs_.binds_retried =
      registry.counter(obs::scoped(s, "service.binds_retried"));
  obs_.deploy_start_s =
      registry.histogram(obs::scoped(s, "service.deploy_start_s"));
  obs_.deploy_rtt_s =
      registry.histogram(obs::scoped(s, "service.deploy_rtt_s"));
  obs_.tracer = tracer;
  obs_registry_ = &registry;
  obs_scope_ = s;
  transport_.set_obs(registry, tracer, s);
  module_cache_.set_obs(registry, s);
  node_.set_obs(tracer, s);
  code_.set_obs(tracer, s);
  // A store shared between peers keeps the scope of whichever service
  // bound it last; give each peer its own store when per-peer counters
  // matter (the benches do).
  if (config_.cas) config_.cas->set_obs(registry, s);
  // CONGRID_OBS_PORT: the first service bound to a registry exports it on
  // a loopback HTTP server (one per process; later binds reuse it). The
  // registry outlives every service that registered into it in all current
  // stacks, and stop_env_server() exists for ones where it would not.
  obs::HttpServer::from_env(registry, tracer);
}

void TrianaService::join_trace(std::uint64_t trace_id,
                               std::uint64_t parent_span) {
#if CONGRID_OBS_ENABLED
  trace_ctx_ = obs::TraceContext{trace_id, parent_span, 0};
  transport_.set_trace(trace_id);
  node_.set_trace(trace_ctx_);
#else
  (void)trace_id;
  (void)parent_span;
#endif
}

// ---------------------------------------------------------------- client

std::string TrianaService::deploy_remote(const net::Endpoint& target,
                                         const TaskGraph& fragment,
                                         std::uint64_t iterations,
                                         AckHandler on_ack,
                                         serial::Bytes checkpoint,
                                         DeployOptions options) {
  DeployMsg m;
  m.job_id = fresh_job_id();
  m.owner = config_.peer_id;
  m.owner_endpoint = endpoint();
  m.iterations = iterations;
  m.graph_xml = write_taskgraph(fragment, /*pretty=*/false);
  m.checkpoint = std::move(checkpoint);
  m.epoch = options.epoch;
  m.lease_s = options.lease_s;
  m.standby = options.standby;
  // Advertise the content digest of every module we own that the fragment
  // needs: the target can satisfy them from its own store (dedup across
  // names, warm restarts) and can tell a stale cached copy from ours
  // without a round trip. Owner-side, the encoded artifact lands in the
  // store too, so identical modules published under different names share
  // bytes.
  for (const auto& type : module_types(fragment)) {
    if (const auto a = local_repo_.latest(type)) {
      const auto enc = repo::encode_artifact(*a);
      m.module_hashes[type] =
          config_.cas ? config_.cas->put(enc).hex() : cas::sha256(enc).hex();
    }
  }
  const double sent_at = clock_();
  const std::uint64_t span = obs_.tracer.begin_span(
      config_.peer_id, "deploy.client", trace_ctx_, "job=" + m.job_id);
  m.trace = obs::TraceContext{trace_ctx_.trace_id, span, 0};
  ack_handlers_[m.job_id] = [this, sent_at, span,
                             h = std::move(on_ack)](const DeployAckMsg& a) {
    obs_.deploy_rtt_s.observe(clock_() - sent_at);
    obs_.tracer.end_span(span, config_.peer_id, "deploy.client",
                         a.ok ? "acked" : "nacked");
    if (h) h(a);
  };
  transport_.send(target, encode(m));
  return m.job_id;
}

void TrianaService::promote_remote(const net::Endpoint& target,
                                   const std::string& job_id,
                                   AckHandler on_ack) {
  ack_handlers_[job_id] = std::move(on_ack);
  transport_.send(target, encode(PromoteMsg{job_id}));
}

void TrianaService::request_status(const net::Endpoint& target,
                                   const std::string& job_id,
                                   StatusHandler on_status,
                                   std::uint64_t epoch, double lease_s) {
  status_handlers_[job_id] = std::move(on_status);
  transport_.send(target, encode(StatusRequestMsg{job_id, epoch, lease_s}));
}

void TrianaService::request_checkpoint(const net::Endpoint& target,
                                       const std::string& job_id,
                                       CheckpointHandler on_data) {
  ckpt_handlers_[job_id] = std::move(on_data);
  transport_.send(target, encode(CheckpointRequestMsg{job_id}));
}

void TrianaService::cancel_remote(const net::Endpoint& target,
                                  const std::string& job_id) {
  transport_.send(target, encode(CancelMsg{job_id}));
}

void TrianaService::resume_remote(const net::Endpoint& target,
                                  const std::string& job_id,
                                  std::uint64_t epoch, double lease_s) {
  transport_.send(target, encode(ResumeMsg{job_id, epoch, lease_s}));
}

// ------------------------------------------------------------ local jobs

std::string TrianaService::deploy_local(const TaskGraph& graph,
                                        std::uint64_t iterations,
                                        serial::Bytes checkpoint) {
  DeployMsg m;
  m.job_id = fresh_job_id();
  m.owner = config_.peer_id;
  m.owner_endpoint = endpoint();
  m.iterations = iterations;
  m.graph_xml = write_taskgraph(graph, /*pretty=*/false);
  m.checkpoint = std::move(checkpoint);
  m.trace = trace_ctx_;

  PendingDeploy pending;
  pending.msg = std::move(m);
  pending.received_at = clock_();
  pending.span = obs_.tracer.begin_span(config_.peer_id, "deploy", trace_ctx_,
                                        "job=" + pending.msg.job_id);
  // Local deploys never fetch: the owner trivially has its own code.
  const std::string job_id = pending.msg.job_id;
  if (auto error = start_job(std::move(pending))) {
    throw std::invalid_argument("local deploy failed: " + *error);
  }
  return job_id;
}

void TrianaService::tick_job(const std::string& job_id,
                             std::uint64_t iterations) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end() || it->second.failed) return;
  run_iterations(it->second, iterations);
}

GraphRuntime* TrianaService::job_runtime(const std::string& job_id) {
  auto it = jobs_.find(job_id);
  return it == jobs_.end() ? nullptr : it->second.runtime.get();
}

bool TrianaService::job_failed(const std::string& job_id,
                               std::string* error) const {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return false;
  if (error) *error = it->second.error;
  return it->second.failed;
}

bool TrianaService::cancel_local(const std::string& job_id) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return false;
  ++stats_.jobs_cancelled;
  obs_.jobs_cancelled.inc();
  finish_job(it->second, /*violated=*/false);
  teardown_job(it->second);
  jobs_.erase(it);
  return true;
}

// ---------------------------------------------------------------- server

void TrianaService::handle_control(const net::Endpoint& from,
                                   serial::Frame frame) {
  if (frame.type != serial::FrameType::kControl) return;  // nothing else left
  switch (control_type(frame)) {
    case ControlType::kDeploy:
      handle_deploy(from, decode_deploy(frame));
      break;
    case ControlType::kDeployAck: {
      auto m = decode_deploy_ack(frame);
      auto it = ack_handlers_.find(m.job_id);
      if (it != ack_handlers_.end()) {
        auto handler = std::move(it->second);
        ack_handlers_.erase(it);
        if (handler) handler(m);
      }
      break;
    }
    case ControlType::kCancel: {
      auto m = decode_cancel(frame);
      cancel_local(m.job_id);
      break;
    }
    case ControlType::kStatusRequest: {
      auto m = decode_status_request(frame);
      StatusMsg s;
      s.job_id = m.job_id;
      auto it = jobs_.find(m.job_id);
      if (it != jobs_.end()) {
        Job& job = it->second;
        // A probe is supervisor contact: renew the lease (and grant one to
        // a job deployed without). A suspended job does NOT self-resume
        // here: the probe may be a stale retransmission from before a
        // recovery (the reliable layer replays it through an outage), and
        // resuming on it would let a replaced zombie execute retransmitted
        // payloads at the old epoch. The reply carries suspended=true; the
        // CURRENT supervisor answers with an explicit kResume.
        if (m.lease_s > 0.0 && !job.failed && !job.standby) {
          renew_lease(job, m.lease_s);
        }
        s.known = true;
        s.running = !job.failed && !job.suspended;
        s.failed = job.failed;
        s.error = job.error;
        s.epoch = job.epoch;
        s.suspended = job.suspended;
        if (job.runtime) {
          s.iteration = job.runtime->iteration();
          s.firings = job.runtime->stats().firings;
        }
      }
      transport_.send(from, encode(s));
      break;
    }
    case ControlType::kStatus: {
      auto m = decode_status(frame);
      auto it = status_handlers_.find(m.job_id);
      if (it != status_handlers_.end()) {
        auto handler = std::move(it->second);
        status_handlers_.erase(it);
        if (handler) handler(m);
      }
      break;
    }
    case ControlType::kCheckpointRequest: {
      auto m = decode_checkpoint_request(frame);
      CheckpointDataMsg d;
      d.job_id = m.job_id;
      auto it = jobs_.find(m.job_id);
      if (it != jobs_.end() && it->second.runtime && !it->second.failed) {
        d.ok = true;
        d.state = it->second.runtime->save_checkpoint();
      }
      transport_.send(from, encode(d));
      break;
    }
    case ControlType::kRebind: {
      auto m = decode_rebind(frame);
      rebind_channel(m.label);
      if (m.epoch > 0) {
        // Consumer-side fence: a local job still advertising this label at
        // a lower epoch is the zombie the migration replaced.
        std::vector<std::string> stale;
        for (const auto& [id, job] : jobs_) {
          if (job.epoch < m.epoch && contains_label(job.input_labels, m.label)) {
            stale.push_back(id);
          }
        }
        for (const auto& id : stale) fence_halt(id);
      }
      break;
    }
    case ControlType::kFence:
      handle_fence(decode_fence(frame));
      break;
    case ControlType::kBounce:
      handle_bounce(from, decode_bounce(frame));
      break;
    case ControlType::kPromote:
      handle_promote(from, decode_promote(frame));
      break;
    case ControlType::kResume: {
      auto m = decode_resume(frame);
      auto it = jobs_.find(m.job_id);
      if (it != jobs_.end()) {
        Job& job = it->second;
        // Epoch-gated: a resume that raced a fence (the job was re-fenced
        // after the supervisor replied) must not revive it.
        if (!job.failed && !job.standby && m.epoch == job.epoch) {
          if (m.lease_s > 0.0) renew_lease(job, m.lease_s);
          if (job.suspended) resume_job(job);
        }
      }
      break;
    }
    case ControlType::kCheckpointData: {
      auto m = decode_checkpoint_data(frame);
      auto it = ckpt_handlers_.find(m.job_id);
      if (it != ckpt_handlers_.end()) {
        auto handler = std::move(it->second);
        ckpt_handlers_.erase(it);
        if (handler) handler(m);
      }
      break;
    }
  }
}

void TrianaService::send_ack(const net::Endpoint& to,
                             const std::string& job_id, bool ok,
                             const std::string& error) {
  if (to.empty()) return;  // local deploy
  DeployAckMsg m;
  m.job_id = job_id;
  m.ok = ok;
  m.error = error;
  transport_.send(to, encode(m));
}

void TrianaService::handle_deploy(const net::Endpoint& from, DeployMsg m) {
  ++stats_.deploys_received;
  obs_.deploys_received.inc();

  // A worker that is not yet part of any run trace joins the deploy's:
  // its own discovery rounds, fetches and envelopes become children of the
  // controller's run from here on.
  if (m.trace.trace_id != 0 && trace_ctx_.trace_id == 0) {
    join_trace(m.trace.trace_id, m.trace.parent_span);
  }

  // Idempotence guard behind the reliable layer's dedup window: a retried
  // deploy for a job this service already hosts is acknowledged again but
  // never executed twice. A retry for a deploy still fetching modules is
  // dropped -- the in-flight deploy acks when it settles.
  if (jobs_.contains(m.job_id)) {
    ++stats_.duplicate_deploys;
    obs_.duplicate_deploys.inc();
    send_ack(from, m.job_id, true, "");
    return;
  }
  if (pending_.contains(m.job_id)) {
    ++stats_.duplicate_deploys;
    obs_.duplicate_deploys.inc();
    return;
  }

  // Parse early so we can enumerate the modules the fragment needs.
  TaskGraph graph;
  try {
    graph = parse_taskgraph(m.graph_xml);
  } catch (const std::exception& e) {
    send_ack(from, m.job_id, false, std::string("bad graph: ") + e.what());
    ++stats_.jobs_failed;
    obs_.jobs_failed.inc();
    return;
  }

  PendingDeploy pending;
  pending.msg = std::move(m);
  pending.reply_to = from;
  pending.received_at = clock_();
  pending.span = obs_.tracer.begin_span(config_.peer_id, "deploy",
                                        pending.msg.trace,
                                        "job=" + pending.msg.job_id);

  // On-demand code download (paper 3.3), content-addressed when the deploy
  // advertises digests: a local copy -- module cache, backing store, or our
  // own repository -- only satisfies a module whose digest matches what the
  // owner currently publishes (the paper's "owner's version wins" rule,
  // checked by content instead of by version string). Without an advertised
  // digest (older controller) any cached copy is trusted as before.
  std::vector<std::string> missing;
  for (const auto& type : module_types(graph)) {
    const auto adv = pending.msg.module_hashes.find(type);
    const bool has_digest = adv != pending.msg.module_hashes.end();
    const auto matches = [&](const repo::ModuleArtifact& a) {
      return !has_digest || repo::artifact_digest(a).hex() == adv->second;
    };

    if (const auto cached = module_cache_.lookup(type);
        cached && matches(*cached)) {
      continue;
    }
    if (const auto owned = local_repo_.latest(type);
        owned && matches(*owned)) {
      // We own a current copy; stage it into the cache directly.
      module_cache_.insert(*owned);
      continue;
    }
    // Exact-content lookup: the advertised digest may be resident under a
    // different name, from an earlier run (disk tier), or from a peer that
    // shares the store. Any hit here is network bytes not fetched.
    if (has_digest && config_.cas) {
      if (const auto d = cas::Digest::from_hex(adv->second)) {
        if (auto bytes = config_.cas->get(*d)) {
          try {
            module_cache_.insert(repo::decode_artifact(*bytes));
            ++stats_.modules_from_cas;
            obs_.modules_from_cas.inc();
            obs_.tracer.event(config_.peer_id, "cas.hit", pending.msg.trace,
                              "module=" + type);
            continue;
          } catch (const serial::DecodeError&) {
            // Digest resolved to bytes that are not an artifact; fetch.
          }
        }
      }
    }
    missing.push_back(type);
  }

  if (!missing.empty() && !config_.fetch_code_on_demand) {
    send_ack(from, pending.msg.job_id, false,
             "module not available and on-demand fetch is disabled: " +
                 missing.front());
    ++stats_.jobs_failed;
    obs_.jobs_failed.inc();
    obs_.tracer.end_span(pending.span, config_.peer_id, "deploy",
                         "failed: fetch disabled");
    return;
  }

  const std::string job_id = pending.msg.job_id;
  pending.fetches_outstanding = missing.size();
  auto it = pending_.emplace(job_id, std::move(pending)).first;

  if (missing.empty()) {
    maybe_start(job_id);
    return;
  }

  const net::Endpoint owner = it->second.msg.owner_endpoint;
  // Each missing module becomes a "cache.fetch" span, child of the deploy
  // span; the request carries that context so the owner's "code.serve"
  // event lands inside it. The critical-path analyzer charges the deploy's
  // wait on these spans to cache-miss stall.
  const obs::TraceContext deploy_ctx{it->second.msg.trace.trace_id,
                                     it->second.span, 0};
  for (const auto& type : missing) {
    const std::uint64_t fspan = obs_.tracer.begin_span(
        config_.peer_id, "cache.fetch", deploy_ctx, "module=" + type);
    code_.fetch(
        owner, type, "",
        [this, job_id, type,
         fspan](std::optional<repo::ModuleArtifact> a) {
          auto pit = pending_.find(job_id);
          if (pit == pending_.end()) return;  // cancelled
          PendingDeploy& p = pit->second;
          --p.fetches_outstanding;
          if (!a) {
            p.failed = true;
            p.error = "owner has no module '" + type + "'";
          } else {
            ++stats_.modules_fetched;
            obs_.modules_fetched.inc();
            if (!module_cache_.insert(*a)) {
              p.failed = true;
              p.error = "module cache cannot hold '" + type + "'";
            } else {
              p.fetched_modules.push_back(type);
            }
          }
          obs_.tracer.end_span(fspan, config_.peer_id, "cache.fetch",
                               a ? "fetched" : "missing");
          maybe_start(job_id);
        },
        obs::TraceContext{deploy_ctx.trace_id, fspan, 0});
  }
}

void TrianaService::maybe_start(const std::string& job_id) {
  auto it = pending_.find(job_id);
  if (it == pending_.end() || it->second.fetches_outstanding > 0) return;
  PendingDeploy pending = std::move(it->second);
  pending_.erase(it);
  if (pending.failed) {
    fail_deploy(pending, pending.error);
    return;
  }
  start_job(std::move(pending));
}

void TrianaService::fail_deploy(PendingDeploy& pending,
                                const std::string& error) {
  ++stats_.jobs_failed;
  obs_.jobs_failed.inc();
  obs_.tracer.end_span(pending.span, config_.peer_id, "deploy",
                       "failed: " + error);
  send_ack(pending.reply_to, pending.msg.job_id, false, error);
}

std::optional<std::string> TrianaService::start_job(PendingDeploy pending) {
  Job job;
  job.job_id = pending.msg.job_id;
  job.owner = pending.msg.owner.empty() ? "anonymous" : pending.msg.owner;
  job.reply_to = pending.reply_to;
  job.started_at = clock_();
  job.pinned_modules = std::move(pending.fetched_modules);
  job.epoch = pending.msg.epoch;
  job.lease_s = pending.msg.lease_s;
  job.standby = pending.msg.standby;

  TaskGraph graph;
  try {
    graph = parse_taskgraph(pending.msg.graph_xml);

    // Admission control: certified-library policy checks every module
    // hash we are about to execute (paper 3.5's certified software
    // library proposal).
    job.sb = std::make_unique<sandbox::Sandbox>(account_.open_sandbox());
    for (const auto& type : module_types(graph)) {
      auto cached = module_cache_.lookup(type);
      if (!cached && local_repo_.latest(type)) cached = local_repo_.latest(type);
      if (cached) {
        job.sb->admit_module(type, cached->content_hash());
      } else if (config_.certified_library ||
                 config_.sandbox_policy.certified_modules_only) {
        throw sandbox::SandboxViolation("module '" + type +
                                        "' has no artifact to certify");
      }
    }

    RuntimeOptions opt;
    opt.rng_seed = config_.rng_seed ^
                   std::hash<std::string>{}(job.job_id);
    opt.sandbox = job.sb.get();
    if (config_.memoize_pure_units) opt.memo_store = config_.cas;
    job.runtime = std::make_unique<GraphRuntime>(graph, registry_, opt);
    // Job runtimes share the service's scope so runtime.* counters (memo
    // hits/misses among them) accumulate per peer across jobs.
    if (obs_registry_) job.runtime->set_obs(*obs_registry_, obs_scope_);

    if (!pending.msg.checkpoint.empty()) {
      job.runtime->restore_checkpoint(pending.msg.checkpoint);
    }
  } catch (const std::exception& e) {
    fail_deploy(pending, e.what());
    return e.what();
  }

  // Pin fetched modules for the job's lifetime.
  for (const auto& mname : job.pinned_modules) {
    if (module_cache_.contains(mname)) module_cache_.pin(mname);
  }

  // Everything the runtime does for this job -- ticks, wave dispatch --
  // is causally a child of the deploy span that started it.
  job.trace = obs::TraceContext{pending.msg.trace.trace_id, pending.span, 0};
  job.runtime->set_trace(obs_.tracer, config_.peer_id, job.trace,
                         "job=" + job.job_id);

  const std::string job_id = job.job_id;

  // Boundary egress: Send/Scatter emissions go out through p2p pipes.
  job.runtime->set_external_sender(
      [this, job_id](const std::string& label, DataItem item) {
        on_channel_send(job_id, label, std::move(item));
      });

  // Boundary ingress/egress labels. A standby job stays dark: no input
  // adverts (the live incarnation owns the labels) until a kPromote.
  job.input_labels = job.runtime->receive_labels();
  collect_send_labels(graph, job.output_labels);
  auto [jit, _] = jobs_.emplace(job_id, std::move(job));
  Job& stored = jit->second;
  if (!stored.standby) advertise_job_inputs(stored);
  if (stored.lease_s > 0.0) renew_lease(stored, stored.lease_s);

  ++stats_.jobs_started;
  obs_.jobs_started.inc();
  obs_.deploy_start_s.observe(clock_() - pending.received_at);
  obs_.tracer.end_span(pending.span, config_.peer_id, "deploy", "started");
  send_ack(stored.reply_to, job_id, true, "");

  if (pending.msg.iterations > 0 && !stored.standby) {
    run_iterations(stored, pending.msg.iterations);
  }
  return std::nullopt;
}

void TrianaService::advertise_job_inputs(Job& job) {
  const std::string job_id = job.job_id;
  for (const auto& label : job.input_labels) {
    bounce_labels_.erase(label);  // a live job serves it again
    pipes_.advertise_input(
        label,
        [this, job_id, label](const net::Endpoint&, serial::Bytes payload) {
          auto it = jobs_.find(job_id);
          if (it == jobs_.end() || it->second.failed) return;
          ++stats_.pipe_items_in;
          try {
            it->second.runtime->deliver(label, decode_data_item(payload));
          } catch (const std::exception& e) {
            it->second.failed = true;
            it->second.error = e.what();
            finish_job(it->second, /*violated=*/true);
          }
        },
        job.epoch);
  }
}

void TrianaService::run_iterations(Job& job, std::uint64_t iterations) {
  try {
    job.runtime->run(iterations);
    // A run burst typically emitted a flurry of small pipe frames; flush
    // the coalescing buffers so downstream stages see them immediately.
    transport_.flush();
  } catch (const std::exception& e) {
    const bool already_failed = job.failed;
    job.failed = true;
    if (job.error.empty()) job.error = e.what();
    if (!already_failed) {
      ++stats_.jobs_failed;
      obs_.jobs_failed.inc();
    }
    finish_job(job, /*violated=*/true);
  }
}

void TrianaService::on_channel_send(const std::string& job_id,
                                    const std::string& label, DataItem item) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end() || it->second.failed) return;
  Job& job = it->second;

  // Outbound traffic counts against the job's sandbox network budget
  // (the owner pays for what their workflow ships off this host).
  if (job.sb) {
    try {
      job.sb->charge_network(item.byte_size());
    } catch (const sandbox::SandboxViolation&) {
      job.failed = true;
      ++stats_.jobs_failed;
      obs_.jobs_failed.inc();
      finish_job(job, /*violated=*/true);
      // Rethrow so the engine run that produced this item stops too; the
      // caller (run_iterations or a pipe delivery) records the error.
      throw;
    }
  }

  auto pit = job.out_pipes.find(label);
  if (pit != job.out_pipes.end() && pit->second.bound()) {
    ++stats_.pipe_items_out;
    pipes_.send(pit->second, encode_data_item(item), job.epoch);
    return;
  }

  // Not bound yet: queue the item; start the bind on first use.
  const bool bind_started = job.out_backlog.contains(label);
  job.out_backlog[label].push_back(std::move(item));
  if (bind_started) return;

  // The bind is a span under the job's context: its duration is how long
  // the first item on this channel waited for discovery + connection
  // (including retries while the provider is down or mid-recovery).
  const std::uint64_t bspan = obs_.tracer.begin_span(
      config_.peer_id, "pipe.bind", job.trace, "label=" + label);
  start_output_bind(job_id, label, config_.bind_retries, bspan);
}

void TrianaService::start_output_bind(const std::string& job_id,
                                      const std::string& label,
                                      int attempts_left, std::uint64_t bspan) {
  pipes_.bind_output(label, [this, job_id, label, attempts_left,
                             bspan](p2p::OutputPipe pipe) {
    auto jit = jobs_.find(job_id);
    if (jit == jobs_.end()) {
      obs_.tracer.end_span(bspan, config_.peer_id, "pipe.bind", "job-gone");
      return;
    }
    Job& j = jit->second;
    if (!pipe.bound()) {
      // Nobody answered the flood. Under churn that is usually transient:
      // the provider is down for a blip, or dead with its replacement not
      // yet serving. Keep the backlog and ask again -- the supervisor's
      // recovery publishes a fresh advert the retry will find.
      if (attempts_left > 0 && !j.failed) {
        ++stats_.binds_retried;
        obs_.binds_retried.inc();
        scheduler_(config_.bind_retry_s, [this, job_id, label, attempts_left,
                                          bspan] {
          auto it2 = jobs_.find(job_id);
          if (it2 == jobs_.end() || it2->second.failed) {
            obs_.tracer.end_span(bspan, config_.peer_id, "pipe.bind",
                                 "job-gone");
            return;
          }
          // The channel may have been bound elsewhere meanwhile (e.g. a
          // rebind after recovery raced this retry).
          if (it2->second.out_pipes.contains(label)) {
            obs_.tracer.end_span(bspan, config_.peer_id, "pipe.bind",
                                 "superseded");
            return;
          }
          start_output_bind(job_id, label, attempts_left - 1, bspan);
        });
        return;
      }
      j.failed = true;
      j.error = "could not bind output channel '" + label + "'";
      ++stats_.jobs_failed;
      obs_.jobs_failed.inc();
      obs_.tracer.end_span(bspan, config_.peer_id, "pipe.bind", "failed");
      finish_job(j, /*violated=*/false);
      return;
    }
    obs_.tracer.end_span(bspan, config_.peer_id, "pipe.bind", "bound");
    j.out_pipes[label] = pipe;
    auto bit = j.out_backlog.find(label);
    if (bit != j.out_backlog.end()) {
      for (auto& queued : bit->second) {
        ++stats_.pipe_items_out;
        pipes_.send(pipe, encode_data_item(queued), j.epoch);
      }
      j.out_backlog.erase(bit);
    }
  });
}

void TrianaService::rebind_channel(const std::string& label) {
  node_.cache().drop_name(p2p::AdvertKind::kPipe, label);
  for (auto& [id, job] : jobs_) {
    job.out_pipes.erase(label);
  }
}

void TrianaService::finish_job(Job& job, bool violated) {
  if (job.sb) {
    account_.settle(job.owner, "job:" + job.job_id, job.started_at, *job.sb,
                    violated);
    job.sb.reset();
  }
}

void TrianaService::teardown_job(Job& job) {
  for (const auto& label : job.input_labels) {
    // A replacement job may already serve this label (cancel and redeploy
    // can arrive reordered); removing it would sever the new job's pipe.
    if (!label_owned_by_other(job.job_id, label)) pipes_.remove_input(label);
  }
  for (const auto& mname : job.pinned_modules) module_cache_.unpin(mname);
}

bool TrianaService::label_owned_by_other(const std::string& job_id,
                                         const std::string& label) const {
  for (const auto& [id, other] : jobs_) {
    if (id == job_id || other.standby || other.suspended) continue;
    if (contains_label(other.input_labels, label)) return true;
  }
  return false;
}

std::uint64_t TrianaService::job_epoch(const std::string& job_id) const {
  auto it = jobs_.find(job_id);
  return it == jobs_.end() ? 0 : it->second.epoch;
}

bool TrianaService::job_suspended(const std::string& job_id) const {
  auto it = jobs_.find(job_id);
  return it != jobs_.end() && it->second.suspended;
}

// ------------------------------------------------- lease / fence / bounce

void TrianaService::renew_lease(Job& job, double lease_s) {
  job.lease_s = lease_s;
  job.lease_deadline = clock_() + lease_s;
  if (job.lease_timer_armed) return;  // the live chain sees the new deadline
  job.lease_timer_armed = true;
  const std::string job_id = job.job_id;
  scheduler_(lease_s, [this, job_id] { check_lease(job_id); });
}

void TrianaService::check_lease(const std::string& job_id) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return;
  Job& job = it->second;
  job.lease_timer_armed = false;
  if (job.failed || job.suspended || job.lease_deadline <= 0.0) return;
  const double now = clock_();
  if (now + 1e-9 < job.lease_deadline) {
    // Renewed since this timer was set; re-arm for the current deadline.
    job.lease_timer_armed = true;
    scheduler_(job.lease_deadline - now,
               [this, job_id] { check_lease(job_id); });
    return;
  }
  suspend_job(job);
}

void TrianaService::suspend_job(Job& job) {
  // No supervisor contact for a whole lease: assume we are the one who is
  // partitioned. Withdraw the input pipes (so senders stop reaching a
  // possibly-stale incarnation) and bounce anything already in flight.
  // Reversible: a returning supervisor's probe resumes the job; a fence
  // from a completed recovery halts it.
  job.suspended = true;
  ++stats_.jobs_suspended;
  obs_.jobs_suspended.inc();
  obs_.tracer.event(config_.peer_id, "job.suspend", job.trace,
                    "job=" + job.job_id +
                        " epoch=" + std::to_string(job.epoch));
  for (const auto& label : job.input_labels) {
    if (label_owned_by_other(job.job_id, label)) continue;
    pipes_.remove_input(label);
    bounce_labels_.insert(label);
  }
}

void TrianaService::resume_job(Job& job) {
  job.suspended = false;
  ++stats_.jobs_resumed;
  obs_.tracer.event(config_.peer_id, "job.resume", job.trace,
                    "job=" + job.job_id +
                        " epoch=" + std::to_string(job.epoch));
  advertise_job_inputs(job);
}

void TrianaService::fence_halt(const std::string& job_id) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return;
  Job& job = it->second;
  ++stats_.jobs_fenced;
  obs_.jobs_fenced.inc();
  obs_.tracer.event(config_.peer_id, "job.fenced", job.trace,
                    "job=" + job.job_id +
                        " epoch=" + std::to_string(job.epoch));
  // The labels stay bouncy after the job is gone: late payloads addressed
  // to the dead incarnation still get handed back to their senders.
  for (const auto& label : job.input_labels) {
    if (!label_owned_by_other(job.job_id, label)) {
      bounce_labels_.insert(label);
    }
  }
  cancel_local(job_id);
}

void TrianaService::handle_fence(const FenceMsg& m) {
  // Producer fence at the pipe layer: stale-epoch payloads for this label
  // FROM the fenced host are counted and dropped from here on. The sender
  // scope is what keeps fan-in labels safe: every replica of a parallel
  // group funnels into the same home label at its own epoch, and only the
  // replaced host's traffic is stale.
  pipes_.fence(m.label, m.epoch, m.target);
  // On the fenced host itself (or everywhere, for an unscoped fence): any
  // job still SENDING on the label at a lower epoch is a zombie
  // incarnation of the re-deployed fragment.
  if (!m.target.empty() && m.target != endpoint().value) return;
  std::vector<std::string> stale;
  for (const auto& [id, job] : jobs_) {
    if (job.epoch < m.epoch && contains_label(job.output_labels, m.label)) {
      stale.push_back(id);
    }
  }
  for (const auto& id : stale) fence_halt(id);
}

void TrianaService::handle_bounce(const net::Endpoint& from, BounceMsg m) {
  (void)from;
  // A payload we sent was refused (suspended or fenced consumer). Drop the
  // stale binding and re-resolve -- the advert cache prefers the highest
  // epoch, so the re-send lands at the replacement.
  rebind_channel(m.label);
  resend_bounced(m.label, std::move(m.payload), config_.bounce_retries);
}

void TrianaService::resend_bounced(const std::string& label,
                                   serial::Bytes payload, int attempts_left) {
  Job* owner = nullptr;
  for (auto& [id, job] : jobs_) {
    if (!job.failed && contains_label(job.output_labels, label)) {
      owner = &job;
      break;
    }
  }
  if (!owner) {
    ++stats_.bounces_dropped;
    return;
  }
  if (auto pit = owner->out_pipes.find(label);
      pit != owner->out_pipes.end() && pit->second.bound()) {
    ++stats_.pipe_items_out;
    ++stats_.bounces_resent;
    pipes_.send(pit->second, std::move(payload), owner->epoch);
    return;
  }
  // Unbound: resolve our own binding (separate from on_channel_send's
  // backlog machinery -- a failed resolve here retries instead of failing
  // the job, because the replacement may still be deploying).
  const std::string job_id = owner->job_id;
  pipes_.bind_output(
      label, [this, label, job_id, payload = std::move(payload),
              attempts_left](p2p::OutputPipe pipe) mutable {
        auto jit = jobs_.find(job_id);
        if (jit == jobs_.end() || jit->second.failed) {
          ++stats_.bounces_dropped;
          return;
        }
        if (!pipe.bound()) {
          if (attempts_left > 0) {
            scheduler_(config_.bounce_retry_s,
                       [this, label, payload = std::move(payload),
                        attempts_left]() mutable {
                         resend_bounced(label, std::move(payload),
                                        attempts_left - 1);
                       });
          } else {
            ++stats_.bounces_dropped;
          }
          return;
        }
        Job& j = jit->second;
        j.out_pipes[label] = pipe;
        ++stats_.pipe_items_out;
        ++stats_.bounces_resent;
        pipes_.send(pipe, std::move(payload), j.epoch);
      });
}

void TrianaService::handle_promote(const net::Endpoint& from,
                                   const PromoteMsg& m) {
  auto it = jobs_.find(m.job_id);
  if (it == jobs_.end() || it->second.failed) {
    send_ack(from, m.job_id, false, "no such standby job");
    return;
  }
  Job& job = it->second;
  if (job.standby) {
    job.standby = false;
    ++stats_.promotions;
    obs_.promotions.inc();
    obs_.tracer.event(config_.peer_id, "job.promote", job.trace,
                      "job=" + job.job_id +
                          " epoch=" + std::to_string(job.epoch));
    advertise_job_inputs(job);
    if (job.lease_s > 0.0) renew_lease(job, job.lease_s);
  }
  send_ack(from, m.job_id, true, "");
}

}  // namespace cg::core
