#include "core/service/controller.hpp"

#include <algorithm>
#include <set>

namespace cg::core {
namespace {

/// Receive labels of a fragment -- the channels other participants send
/// into, which must be re-resolved after a migration.
std::vector<std::string> fragment_input_labels(const TaskGraph& frag) {
  std::vector<std::string> labels;
  for (const auto& t : frag.tasks()) {
    if (t.unit_type == "Receive") {
      labels.push_back(t.params.get("label", ""));
    }
  }
  return labels;
}

}  // namespace

void TrianaController::discover_workers(
    const p2p::Query& query, int ttl, std::size_t want, double timeout_s,
    std::function<void(std::vector<net::Endpoint>)> done) {
  struct Search {
    std::vector<net::Endpoint> found;
    bool finished = false;
  };
  auto state = std::make_shared<Search>();
  auto& node = home_.node();
  const net::Endpoint self = home_.endpoint();

  // The whole round -- flood/rendezvous query, every response straggling
  // in, the deadline -- is one span under the home peer's current context.
  const std::uint64_t dspan = home_.tracer().begin_span(
      home_.id(), "discovery.round", home_.trace(),
      "want=" + std::to_string(want) + " ttl=" + std::to_string(ttl));

  auto on_response = [state, self, want](
                         const std::vector<p2p::Advertisement>& adverts) {
    if (state->finished) return;
    for (const auto& a : adverts) {
      if (a.provider == self) continue;
      if (std::find(state->found.begin(), state->found.end(), a.provider) ==
          state->found.end()) {
        state->found.push_back(a.provider);
        if (state->found.size() >= want) break;
      }
    }
  };

  p2p::DiscoveryStrategy::CancelFn cancel;
  if (strategy_ != nullptr) {
    cancel = strategy_->start(query, on_response);
  } else {
    const std::uint64_t qid =
        ttl > 0 ? node.discover_flood(query, ttl, on_response)
                : node.discover_rendezvous(query, on_response);
    auto* n = &node;
    cancel = [n, qid] { n->cancel(qid); };
  }

  // One deadline: report whatever arrived by then.
  // (Discovery responses keep no order guarantee; the deadline is the
  // paper's practical answer to "how long do we wait for peers?")
  // One deadline: report whatever arrived by then. We deliberately wait
  // the full timeout even when `want` is reached early -- responses keep
  // arriving and the deadline keeps the behaviour deterministic.
  home_.scheduler()(timeout_s,
                    [this, state, cancel = std::move(cancel), dspan,
                     done = std::move(done)]() {
                      if (state->finished) return;
                      state->finished = true;
                      cancel();
                      home_.tracer().end_span(
                          dspan, home_.id(), "discovery.round",
                          "found=" + std::to_string(state->found.size()));
                      if (trust_) {
                        // Rank best-first; drop quarantined peers.
                        std::stable_sort(
                            state->found.begin(), state->found.end(),
                            [this](const net::Endpoint& a,
                                   const net::Endpoint& b) {
                              return trust_->score(a.value) >
                                     trust_->score(b.value);
                            });
                        std::erase_if(state->found,
                                      [this](const net::Endpoint& e) {
                                        return trust_->quarantined(e.value);
                                      });
                      }
                      done(std::move(state->found));
                    });
}

std::shared_ptr<DistributedRun> TrianaController::distribute(
    const TaskGraph& g, const std::string& group_name,
    const std::vector<net::Endpoint>& workers) {
  if (workers.empty()) {
    throw std::invalid_argument("distribute: no workers");
  }
  const TaskDef& group = g.require_task(group_name);
  const std::string policy_name =
      group.policy.empty() ? "parallel" : group.policy;
  auto policy = make_policy(policy_name);

  auto run = std::make_shared<DistributedRun>();
  run->group = group_name;
  run->prefix = home_.id() + "/g" + std::to_string(next_run_++);

  // Root of the run's causal trace. The trace id is derived from the run
  // prefix (deterministic across replays of the same seed), unless the
  // home service already joined a trace, which this run then continues.
  if (home_.tracer()) {
    std::uint64_t tid = home_.trace().trace_id;
    if (tid == 0) tid = std::hash<std::string>{}(run->prefix) | 1;
    run->trace_id = tid;
    run->root_span = home_.tracer().begin_span(
        home_.id(), "run",
        obs::TraceContext{tid, home_.trace().parent_span, 0},
        "group=" + group_name +
            " workers=" + std::to_string(workers.size()));
    home_.join_trace(tid, run->root_span);
  }

  DistributionPlan plan =
      policy->plan(g, group_name, workers.size(), run->prefix);

  // Deploy fragments first so their input pipes are advertised by the time
  // home-side sends start binding.
  run->fragments.reserve(plan.fragments.size());
  for (std::size_t i = 0; i < plan.fragments.size(); ++i) {
    const net::Endpoint target = workers[i % workers.size()];
    run->workers.push_back(target);
    run->fragments.push_back(plan.fragments[i].clone());

    auto run_weak = std::weak_ptr<DistributedRun>(run);
    run->remote_jobs.push_back(home_.deploy_remote(
        target, plan.fragments[i], /*iterations=*/0,
        [this, run_weak, target](const DeployAckMsg& ack) {
          auto r = run_weak.lock();
          if (!r) return;
          if (ack.ok) {
            ++r->acks_ok;
          } else {
            ++r->acks_failed;
            r->errors.push_back(ack.error);
          }
          if (trust_) {
            trust_->record(target.value, ack.ok
                                             ? sandbox::TrustEvent::kSuccess
                                             : sandbox::TrustEvent::kFailure);
          }
        }));
  }

  run->home_job = home_.deploy_local(plan.home_graph, /*iterations=*/0);
  return run;
}

void TrianaController::report_disagreement(const net::Endpoint& worker) {
  if (trust_) {
    trust_->record(worker.value, sandbox::TrustEvent::kDisagreement);
  }
}

void TrianaController::tick(DistributedRun& run, std::uint64_t n) {
  home_.tick_job(run.home_job, n);
}

GraphRuntime* TrianaController::home_runtime(DistributedRun& run) {
  return home_.job_runtime(run.home_job);
}

void TrianaController::shutdown(DistributedRun& run) {
  for (std::size_t i = 0; i < run.remote_jobs.size(); ++i) {
    if (!run.remote_jobs[i].empty()) {
      home_.cancel_remote(run.workers[i], run.remote_jobs[i]);
    }
  }
  home_.cancel_local(run.home_job);
  if (run.root_span != 0) {
    home_.tracer().end_span(run.root_span, home_.id(), "run", "shutdown");
    run.root_span = 0;
  }
}

void TrianaController::migrate(std::shared_ptr<DistributedRun> run,
                               std::size_t idx,
                               const net::Endpoint& new_worker,
                               std::function<void(bool)> done) {
  if (idx >= run->fragments.size() || run->remote_jobs[idx].empty()) {
    done(false);
    return;
  }
  const net::Endpoint old_worker = run->workers[idx];
  const std::string old_job = run->remote_jobs[idx];

  home_.request_checkpoint(
      old_worker, old_job,
      [this, run, idx, new_worker, old_worker, old_job,
       done = std::move(done)](const CheckpointDataMsg& ckpt) {
        if (!ckpt.ok) {
          done(false);
          return;
        }
        home_.cancel_remote(old_worker, old_job);

        home_.deploy_remote(
            new_worker, run->fragments[idx], /*iterations=*/0,
            [this, run, idx, new_worker, done](const DeployAckMsg& ack) {
              if (!ack.ok) {
                done(false);
                return;
              }
              run->workers[idx] = new_worker;
              run->remote_jobs[idx] = ack.job_id;

              // Everyone sending into the moved fragment must re-resolve.
              const auto labels = fragment_input_labels(run->fragments[idx]);
              for (const auto& label : labels) {
                home_.rebind_channel(label);
                for (std::size_t j = 0; j < run->workers.size(); ++j) {
                  if (j == idx) continue;
                  home_.node().transport().send(run->workers[j],
                                                encode(RebindMsg{label}));
                }
              }
              done(true);
            },
            ckpt.state);
      });
}

}  // namespace cg::core
