#include "core/service/supervisor.hpp"

namespace cg::core {
namespace {

std::vector<std::string> receive_labels_of(const TaskGraph& frag) {
  std::vector<std::string> labels;
  for (const auto& t : frag.tasks()) {
    if (t.unit_type == "Receive") labels.push_back(t.params.get("label", ""));
  }
  return labels;
}

std::string fragment_key(std::size_t idx) {
  return "fragment#" + std::to_string(idx);
}

}  // namespace

RunSupervisor::RunSupervisor(TrianaController& controller,
                             std::shared_ptr<DistributedRun> run,
                             std::vector<net::Endpoint> spares,
                             SupervisorOptions options)
    : controller_(controller),
      run_(std::move(run)),
      spares_(std::move(spares)),
      options_(options) {
  missed_.assign(run_->remote_jobs.size(), 0);
  recovering_.assign(run_->remote_jobs.size(), false);
}

const net::ReliableStats& RunSupervisor::reliable_stats() const {
  return controller_.home().reliable().stats();
}

void RunSupervisor::start() {
  auto self = shared_from_this();
  controller_.home().scheduler()(options_.checkpoint_period_s,
                                 [self] { self->checkpoint_round(); });
  controller_.home().scheduler()(options_.probe_period_s,
                                 [self] { self->probe_round(); });
}

void RunSupervisor::checkpoint_round() {
  if (stopped_) return;
  auto self = shared_from_this();
  for (std::size_t i = 0; i < run_->remote_jobs.size(); ++i) {
    if (recovering_[i]) continue;
    controller_.home().request_checkpoint(
        run_->workers[i], run_->remote_jobs[i],
        [self, i](const CheckpointDataMsg& m) {
          if (self->stopped_ || !m.ok) return;
          ++self->stats_.checkpoints_taken;
          self->store_.put(fragment_key(i), m.state,
                           self->controller_.home().now());
        });
  }
  controller_.home().scheduler()(options_.checkpoint_period_s,
                                 [self] { self->checkpoint_round(); });
}

void RunSupervisor::probe_round() {
  if (stopped_) return;
  auto self = shared_from_this();
  for (std::size_t i = 0; i < run_->remote_jobs.size(); ++i) {
    if (recovering_[i]) continue;
    ++missed_[i];
    if (missed_[i] > options_.max_missed) {
      ++stats_.failures_detected;
      recover(i);
      continue;
    }
    ++stats_.probes_sent;
    controller_.home().request_status(
        run_->workers[i], run_->remote_jobs[i],
        [self, i](const StatusMsg& m) {
          if (self->stopped_) return;
          if (m.known && !m.failed) {
            self->missed_[i] = 0;
            ++self->stats_.probes_answered;
          }
        });
  }
  controller_.home().scheduler()(options_.probe_period_s,
                                 [self] { self->probe_round(); });
}

void RunSupervisor::recover(std::size_t idx) {
  recovering_[idx] = true;
  const net::Endpoint dead = run_->workers[idx];
  if (auto* trust = controller_.trust_manager()) {
    trust->record(dead.value, sandbox::TrustEvent::kFailure);
  }

  if (spares_.empty()) {
    ++stats_.recoveries_failed;
    return;  // stays recovering_: nothing left to probe or redeploy to
  }
  const net::Endpoint spare = spares_.back();
  spares_.pop_back();

  serial::Bytes state;
  if (auto rec = store_.get(fragment_key(idx))) state = rec->state;

  auto self = shared_from_this();
  controller_.home().deploy_remote(
      spare, run_->fragments[idx], /*iterations=*/0,
      [self, idx, spare](const DeployAckMsg& ack) {
        if (self->stopped_) return;
        if (!ack.ok) {
          ++self->stats_.recoveries_failed;
          return;
        }
        self->run_->workers[idx] = spare;
        self->run_->remote_jobs[idx] = ack.job_id;

        // Every sender into the moved fragment must re-resolve.
        for (const auto& label :
             receive_labels_of(self->run_->fragments[idx])) {
          self->controller_.home().rebind_channel(label);
          for (std::size_t j = 0; j < self->run_->workers.size(); ++j) {
            if (j == idx) continue;
            self->controller_.home().node().transport().send(
                self->run_->workers[j], encode(RebindMsg{label}));
          }
        }
        self->missed_[idx] = 0;
        self->recovering_[idx] = false;
        ++self->stats_.recoveries;
      },
      std::move(state));
}

}  // namespace cg::core
