#include "core/service/supervisor.hpp"

#include <algorithm>
#include <stdexcept>

namespace cg::core {
namespace {

std::vector<std::string> receive_labels_of(const TaskGraph& frag) {
  std::vector<std::string> labels;
  for (const auto& t : frag.tasks()) {
    if (t.unit_type == "Receive") labels.push_back(t.params.get("label", ""));
  }
  return labels;
}

/// Fragments emit through Send proxies only (Scatter/Broadcast live in the
/// home graph); these are the labels a fenced recovery must fence.
std::vector<std::string> send_labels_of(const TaskGraph& frag) {
  std::vector<std::string> labels;
  for (const auto& t : frag.tasks()) {
    if (t.unit_type == "Send") labels.push_back(t.params.get("label", ""));
  }
  return labels;
}

std::string fragment_key(std::size_t idx) {
  return "fragment#" + std::to_string(idx);
}

}  // namespace

RunSupervisor::RunSupervisor(TrianaController& controller,
                             std::shared_ptr<DistributedRun> run,
                             std::vector<net::Endpoint> spares,
                             SupervisorOptions options)
    : controller_(controller),
      run_(std::move(run)),
      spares_(std::move(spares)),
      options_(options) {
  const std::size_t n = run_->remote_jobs.size();
  missed_.assign(n, 0);
  recovering_.assign(n, false);
  degraded_.assign(n, false);
  last_contact_.assign(n, 0.0);
  epochs_.assign(n, 0);
  standbys_.assign(n, Standby{});
  FailureDetectorOptions d;
  d.window = options_.detector_window;
  d.min_std_s = options_.detector_min_std_s;
  detectors_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) detectors_.emplace_back(d);
  rebuild_contact_index();
}

const net::ReliableStats& RunSupervisor::reliable_stats() const {
  return controller_.home().reliable().stats();
}

double RunSupervisor::phi_of(std::size_t idx) const {
  if (detectors_[idx].samples() < 2) return 0.0;
  return detectors_[idx].phi(controller_.home().now());
}

void RunSupervisor::set_obs(obs::Registry& registry, obs::Tracer* tracer,
                            std::string_view scope) {
  obs_.checkpoints_taken =
      registry.counter(obs::scoped(scope, "supervisor.checkpoints_taken"));
  obs_.probes_sent =
      registry.counter(obs::scoped(scope, "supervisor.probes_sent"));
  obs_.probes_answered =
      registry.counter(obs::scoped(scope, "supervisor.probes_answered"));
  obs_.failures_detected =
      registry.counter(obs::scoped(scope, "supervisor.failures_detected"));
  obs_.recoveries =
      registry.counter(obs::scoped(scope, "supervisor.recoveries"));
  obs_.recoveries_failed =
      registry.counter(obs::scoped(scope, "supervisor.recoveries_failed"));
  obs_.fenced_msgs =
      registry.counter(obs::scoped(scope, "supervisor.fenced_msgs"));
  obs_.speculative_deploys =
      registry.counter(obs::scoped(scope, "supervisor.speculative_deploys"));
  obs_.recovery_s =
      registry.histogram(obs::scoped(scope, "supervisor.recovery_s"));
  obs_.tracer = tracer;
  obs_.node = scope.empty() ? controller_.home().id() : std::string(scope);
  registry_ = &registry;
  obs_scope_ = scope;
}

void RunSupervisor::set_phi_gauge(std::size_t idx, double phi) {
  if (!registry_) return;
  const std::string& host = run_->workers[idx].value;
  auto it = phi_gauges_.find(host);
  if (it == phi_gauges_.end()) {
    it = phi_gauges_
             .emplace(host, registry_->gauge(obs::scoped(
                                obs_scope_, "supervisor.phi." + host)))
             .first;
  }
  it->second.set(phi);
}

void RunSupervisor::rebuild_contact_index() {
  contact_idx_.clear();
  for (std::size_t i = 0; i < run_->workers.size(); ++i) {
    contact_idx_[run_->workers[i].value] = i;
  }
}

void RunSupervisor::start() {
  if (started_) {
    throw std::logic_error(
        "RunSupervisor::start() called twice (would double the timer loops)");
  }
  started_ = true;
  auto self = shared_from_this();
  const double now = home().now();
  for (double& t : last_contact_) t = now;

  // Piggybacked liveness: ANY frame the home transport receives from a
  // monitored host -- data items, acks, code replies -- is proof of life.
  // Weak capture: the listener outlives the supervisor harmlessly.
  std::weak_ptr<RunSupervisor> weak = self;
  home().reliable().set_activity_listener([weak](const net::Endpoint& from) {
    if (auto locked = weak.lock(); locked && !locked->stopped_) {
      locked->on_activity(from);
    }
  });

  home().scheduler()(options_.checkpoint_period_s,
                     [self] { self->checkpoint_round(); });
  home().scheduler()(options_.probe_period_s, [self] { self->probe_round(); });
}

void RunSupervisor::on_activity(const net::Endpoint& from) {
  auto it = contact_idx_.find(from.value);
  if (it == contact_idx_.end()) return;
  const std::size_t i = it->second;
  if (degraded_[i]) return;
  const double now = home().now();
  // Evidence only: touch() never pollutes the reply-interval history, so a
  // burst of data frames cannot shrink the window and turn the detector
  // trigger-happy once the burst ends.
  detectors_[i].touch(now);
  last_contact_[i] = now;
}

void RunSupervisor::checkpoint_round() {
  if (stopped_) return;
  auto self = shared_from_this();
  for (std::size_t i = 0; i < run_->remote_jobs.size(); ++i) {
    if (recovering_[i] || degraded_[i]) continue;
    controller_.home().request_checkpoint(
        run_->workers[i], run_->remote_jobs[i],
        [self, i](const CheckpointDataMsg& m) {
          if (self->stopped_ || !m.ok) return;
          ++self->stats_.checkpoints_taken;
          self->obs_.checkpoints_taken.inc();
          self->store_.put(fragment_key(i), m.state,
                           self->controller_.home().now());
        });
  }
  controller_.home().scheduler()(options_.checkpoint_period_s,
                                 [self] { self->checkpoint_round(); });
}

void RunSupervisor::probe_round() {
  if (stopped_) return;
  auto self = shared_from_this();
  const double now = home().now();
  for (std::size_t i = 0; i < run_->remote_jobs.size(); ++i) {
    if (recovering_[i] || degraded_[i]) continue;

    bool dead = false;
    bool suspect = false;
    if (detectors_[i].samples() >= 2) {
      const double phi = detectors_[i].phi(now);
      set_phi_gauge(i, phi);
      dead = phi >= options_.phi_dead;
      suspect = phi >= options_.phi_suspect;
    } else {
      // Bootstrap: no reply history to model yet (the host may have been
      // dead from the start) -- fall back to missed-probe counting.
      ++missed_[i];
      dead = missed_[i] > options_.max_missed;
    }

    if (dead) {
      ++stats_.failures_detected;
      obs_.failures_detected.inc();
      recover(i);
      continue;
    }

    if (options_.speculative_backups && fencing()) {
      if (suspect && !standbys_[i].pending && !standbys_[i].ready) {
        deploy_standby(i);
      } else if (!suspect && standbys_[i].ready) {
        cancel_standby(i);  // suspicion subsided; hand the spare back
      }
    }

    ++stats_.probes_sent;
    obs_.probes_sent.inc();
    home().request_status(
        run_->workers[i], run_->remote_jobs[i],
        [self, i](const StatusMsg& m) {
          if (self->stopped_) return;
          if (!m.known || m.failed) return;
          // A reply from a previous incarnation (pre-recovery epoch) is
          // not evidence for the CURRENT fragment host.
          if (m.epoch != self->epochs_[i]) return;
          const double t = self->home().now();
          self->detectors_[i].heartbeat(t);
          self->last_contact_[i] = t;
          self->missed_[i] = 0;
          ++self->stats_.probes_answered;
          self->obs_.probes_answered.inc();
          // A suspended host answering at OUR epoch is a partition
          // survivor, not a zombie: explicitly resume it. The worker never
          // self-resumes off a probe, because a probe can be a stale
          // retransmission from before a recovery.
          if (m.suspended) {
            ++self->stats_.resumes_sent;
            self->home().resume_remote(self->run_->workers[i],
                                       self->run_->remote_jobs[i],
                                       self->epochs_[i], self->options_.lease_s);
          }
        },
        epochs_[i], options_.lease_s);
  }
  home().scheduler()(options_.probe_period_s, [self] { self->probe_round(); });
}

void RunSupervisor::recover(std::size_t idx) {
  recovering_[idx] = true;
  const net::Endpoint dead = run_->workers[idx];
  if (auto* trust = controller_.trust_manager()) {
    trust->record(dead.value, sandbox::TrustEvent::kFailure);
  }

  auto rec = std::make_shared<Recovery>();
  rec->idx = idx;
  rec->dead = dead;
  rec->detected_at = home().now();
  rec->contact_at_detect = last_contact_[idx];
  rec->attempts_left =
      static_cast<int>(spares_.size()) + (standbys_[idx].ready ? 1 : 0);
  if (auto r = store_.get(fragment_key(idx))) rec->state = r->state;
  rec->span = obs_.tracer.begin_span(
      obs_.node, "supervisor.recover",
      "fragment=" + std::to_string(idx) + " dead=" + dead.value);

  if (rec->attempts_left == 0) {
    fail_recovery(rec, "no spare");
    return;
  }

  if (!fencing()) {
    begin_replacement(rec);
    return;
  }

  // Fenced mode: let the zombie's lease run out first. Its lease deadline
  // is at most last_contact + lease_s (renewals stopped with the probes),
  // so after this wait the host -- if it is alive at all -- has provably
  // self-suspended and is bouncing payloads. The replacement never
  // coexists with a live-and-serving zombie.
  const double wait =
      std::max(0.0, last_contact_[idx] + options_.lease_s - home().now()) +
      0.001;
  auto self = shared_from_this();
  home().scheduler()(wait, [self, rec] {
    if (self->stopped_) return;
    if (self->last_contact_[rec->idx] > rec->contact_at_detect) {
      // The host showed life during the wait: partitioned, not dead. It is
      // sitting suspended; the next probe round sees suspended=true and
      // sends it an explicit resume.
      ++self->stats_.recoveries_aborted;
      self->missed_[rec->idx] = 0;
      self->recovering_[rec->idx] = false;
      self->obs_.tracer.end_span(rec->span, self->obs_.node,
                                 "supervisor.recover", "aborted: host alive");
      return;
    }
    self->begin_replacement(rec);
  });
}

void RunSupervisor::begin_replacement(std::shared_ptr<Recovery> rec) {
  if (stopped_) return;
  Standby& sb = standbys_[rec->idx];
  if (sb.ready) {
    // The speculative standby already holds the checkpoint: promotion is
    // one control round-trip instead of a full redeploy.
    const net::Endpoint host = sb.host;
    const std::string job_id = sb.job_id;
    const std::uint64_t epoch = sb.epoch;
    standbys_[rec->idx] = Standby{};
    auto self = shared_from_this();
    auto done = std::make_shared<bool>(false);
    home().promote_remote(
        host, job_id,
        [self, rec, host, job_id, epoch, done](const DeployAckMsg& ack) {
          if (self->stopped_ || *done) return;
          *done = true;
          if (!ack.ok) {
            self->attempt_redeploy(rec);
            return;
          }
          ++self->stats_.speculative_promoted;
          self->complete_recovery(rec, host, job_id, epoch);
        });
    home().scheduler()(options_.redeploy_timeout_s,
                       [self, rec, host, job_id, done] {
                         if (self->stopped_ || *done) return;
                         *done = true;
                         // Correlated failure: the standby's host is silent
                         // too. Do not return it to the pool.
                         ++self->stats_.redeploys_timed_out;
                         self->home().cancel_remote(host, job_id);
                         self->attempt_redeploy(rec);
                       });
    return;
  }
  attempt_redeploy(rec);
}

void RunSupervisor::attempt_redeploy(std::shared_ptr<Recovery> rec) {
  if (stopped_) return;
  if (rec->attempts_left <= 0 || spares_.empty()) {
    fail_recovery(rec, spares_.empty() ? "no spare" : "attempts exhausted");
    return;
  }
  --rec->attempts_left;
  const net::Endpoint spare = spares_.back();
  spares_.pop_back();
  const std::uint64_t epoch = fencing() ? next_epoch_++ : 0;

  DeployOptions opt;
  opt.epoch = epoch;
  opt.lease_s = fencing() ? options_.lease_s : 0.0;

  auto self = shared_from_this();
  auto done = std::make_shared<bool>(false);
  const std::string job_id = home().deploy_remote(
      spare, run_->fragments[rec->idx], /*iterations=*/0,
      [self, rec, spare, epoch, done](const DeployAckMsg& ack) {
        if (self->stopped_) return;
        if (*done) {
          // Ack after the timeout gave up on this spare: the deploy may
          // have landed there -- make sure no orphan job keeps running.
          if (ack.ok) self->home().cancel_remote(spare, ack.job_id);
          return;
        }
        *done = true;
        if (!ack.ok) {
          // The spare is alive but refused (missing module, policy).
          // Return it to the END of the line -- not leaked, not retried
          // first -- and try the next one.
          ++self->stats_.redeploys_nacked;
          self->spares_.insert(self->spares_.begin(), spare);
          self->attempt_redeploy(rec);
          return;
        }
        self->complete_recovery(rec, spare, ack.job_id, epoch);
      },
      rec->state, opt);

  home().scheduler()(options_.redeploy_timeout_s,
                     [self, rec, spare, job_id, done] {
                       if (self->stopped_ || *done) return;
                       *done = true;
                       // A silent spare is probably dead too: drop it from
                       // the pool and cancel the possibly-orphaned deploy
                       // best-effort.
                       ++self->stats_.redeploys_timed_out;
                       self->home().cancel_remote(spare, job_id);
                       self->attempt_redeploy(rec);
                     });
}

void RunSupervisor::complete_recovery(std::shared_ptr<Recovery> rec,
                                      const net::Endpoint& host,
                                      const std::string& job_id,
                                      std::uint64_t epoch) {
  const std::size_t idx = rec->idx;
  run_->workers[idx] = host;
  run_->remote_jobs[idx] = job_id;
  epochs_[idx] = epoch;
  rebuild_contact_index();
  broadcast_refence(idx, epoch, rec->dead);

  // Fresh grace for the new host: the old reply history does not describe
  // it, and a stale evidence clock would re-convict it instantly.
  const double now = home().now();
  missed_[idx] = 0;
  detectors_[idx].reset();
  detectors_[idx].touch(now);
  last_contact_[idx] = now;
  recovering_[idx] = false;
  ++stats_.recoveries;
  obs_.recoveries.inc();
  obs_.recovery_s.observe(now - rec->detected_at);
  obs_.tracer.end_span(rec->span, obs_.node, "supervisor.recover",
                       "recovered epoch=" + std::to_string(epoch));
}

void RunSupervisor::fail_recovery(std::shared_ptr<Recovery> rec,
                                  const std::string& why) {
  ++stats_.recoveries_failed;
  obs_.recoveries_failed.inc();
  // Degraded, not wedged: this fragment is lost for good, the rest of the
  // run keeps being supervised and nothing hangs waiting on it.
  degraded_[rec->idx] = true;
  recovering_[rec->idx] = false;
  obs_.tracer.end_span(rec->span, obs_.node, "supervisor.recover", why);
}

void RunSupervisor::broadcast_refence(std::size_t idx, std::uint64_t epoch,
                                      const net::Endpoint& dead) {
  auto& transport = home().node().transport();
  const bool fenced = fencing();
  const auto send_fence_msg = [&](const net::Endpoint& to, serial::Frame f) {
    transport.send(to, std::move(f));
    ++stats_.fences_sent;
    obs_.fenced_msgs.inc();
  };

  // Every sender into the moved fragment must re-resolve; with fencing on,
  // the rebind also halts a zombie still ADVERTISING these labels -- and is
  // sent to the dead host itself so a returning partitionee learns its
  // fate without guessing.
  for (const auto& label : receive_labels_of(run_->fragments[idx])) {
    home().rebind_channel(label);
    for (std::size_t j = 0; j < run_->workers.size(); ++j) {
      if (j == idx) continue;
      if (fenced) {
        send_fence_msg(run_->workers[j], encode(RebindMsg{label, epoch}));
      } else {
        transport.send(run_->workers[j], encode(RebindMsg{label}));
      }
    }
    if (fenced) send_fence_msg(dead, encode(RebindMsg{label, epoch}));
  }

  if (!fenced) return;

  // Producer fences on the fragment's output labels, scoped to the dead
  // host: stale-epoch payloads FROM it are dropped (counted, never
  // applied) at every consumer -- the home first, since farm results land
  // there. The scope matters for fan-in labels, which every sibling
  // replica shares at its own epoch: an unscoped fence would halt healthy
  // jobs. The dead host itself is told to halt its zombie sender.
  for (const auto& label : send_labels_of(run_->fragments[idx])) {
    home().pipes().fence(label, epoch, dead.value);
    for (std::size_t j = 0; j < run_->workers.size(); ++j) {
      if (j == idx) continue;
      send_fence_msg(run_->workers[j], encode(FenceMsg{label, epoch, dead.value}));
    }
    send_fence_msg(dead, encode(FenceMsg{label, epoch, dead.value}));
  }
}

void RunSupervisor::deploy_standby(std::size_t idx) {
  if (spares_.empty()) return;
  Standby& sb = standbys_[idx];
  sb = Standby{};
  sb.pending = true;
  sb.host = spares_.back();
  spares_.pop_back();
  sb.epoch = next_epoch_++;
  serial::Bytes state;
  if (auto r = store_.get(fragment_key(idx))) state = r->state;
  ++stats_.speculative_deploys;
  obs_.speculative_deploys.inc();

  DeployOptions opt;
  opt.epoch = sb.epoch;
  opt.standby = true;  // dark: no adverts, no emissions until promoted

  const net::Endpoint host = sb.host;
  auto self = shared_from_this();
  home().deploy_remote(
      host, run_->fragments[idx], /*iterations=*/0,
      [self, idx, host](const DeployAckMsg& ack) {
        if (self->stopped_) return;
        Standby& sb = self->standbys_[idx];
        if (!sb.pending || sb.host.value != host.value) return;  // superseded
        sb.pending = false;
        if (!ack.ok) {
          self->spares_.insert(self->spares_.begin(), host);
          sb = Standby{};
          return;
        }
        sb.ready = true;
        sb.job_id = ack.job_id;
      },
      std::move(state), opt);
}

void RunSupervisor::cancel_standby(std::size_t idx) {
  Standby& sb = standbys_[idx];
  if (!sb.ready) return;
  ++stats_.speculative_cancelled;
  home().cancel_remote(sb.host, sb.job_id);
  spares_.push_back(sb.host);
  sb = Standby{};
}

}  // namespace cg::core
