#include "core/service/supervisor.hpp"

namespace cg::core {
namespace {

std::vector<std::string> receive_labels_of(const TaskGraph& frag) {
  std::vector<std::string> labels;
  for (const auto& t : frag.tasks()) {
    if (t.unit_type == "Receive") labels.push_back(t.params.get("label", ""));
  }
  return labels;
}

std::string fragment_key(std::size_t idx) {
  return "fragment#" + std::to_string(idx);
}

}  // namespace

RunSupervisor::RunSupervisor(TrianaController& controller,
                             std::shared_ptr<DistributedRun> run,
                             std::vector<net::Endpoint> spares,
                             SupervisorOptions options)
    : controller_(controller),
      run_(std::move(run)),
      spares_(std::move(spares)),
      options_(options) {
  missed_.assign(run_->remote_jobs.size(), 0);
  recovering_.assign(run_->remote_jobs.size(), false);
}

const net::ReliableStats& RunSupervisor::reliable_stats() const {
  return controller_.home().reliable().stats();
}

void RunSupervisor::set_obs(obs::Registry& registry, obs::Tracer* tracer,
                            std::string_view scope) {
  obs_.checkpoints_taken =
      registry.counter(obs::scoped(scope, "supervisor.checkpoints_taken"));
  obs_.probes_sent =
      registry.counter(obs::scoped(scope, "supervisor.probes_sent"));
  obs_.probes_answered =
      registry.counter(obs::scoped(scope, "supervisor.probes_answered"));
  obs_.failures_detected =
      registry.counter(obs::scoped(scope, "supervisor.failures_detected"));
  obs_.recoveries =
      registry.counter(obs::scoped(scope, "supervisor.recoveries"));
  obs_.recoveries_failed =
      registry.counter(obs::scoped(scope, "supervisor.recoveries_failed"));
  obs_.recovery_s =
      registry.histogram(obs::scoped(scope, "supervisor.recovery_s"));
  obs_.tracer = tracer;
  obs_.node = scope.empty() ? controller_.home().id() : std::string(scope);
}

void RunSupervisor::start() {
  auto self = shared_from_this();
  controller_.home().scheduler()(options_.checkpoint_period_s,
                                 [self] { self->checkpoint_round(); });
  controller_.home().scheduler()(options_.probe_period_s,
                                 [self] { self->probe_round(); });
}

void RunSupervisor::checkpoint_round() {
  if (stopped_) return;
  auto self = shared_from_this();
  for (std::size_t i = 0; i < run_->remote_jobs.size(); ++i) {
    if (recovering_[i]) continue;
    controller_.home().request_checkpoint(
        run_->workers[i], run_->remote_jobs[i],
        [self, i](const CheckpointDataMsg& m) {
          if (self->stopped_ || !m.ok) return;
          ++self->stats_.checkpoints_taken;
          self->obs_.checkpoints_taken.inc();
          self->store_.put(fragment_key(i), m.state,
                           self->controller_.home().now());
        });
  }
  controller_.home().scheduler()(options_.checkpoint_period_s,
                                 [self] { self->checkpoint_round(); });
}

void RunSupervisor::probe_round() {
  if (stopped_) return;
  auto self = shared_from_this();
  for (std::size_t i = 0; i < run_->remote_jobs.size(); ++i) {
    if (recovering_[i]) continue;
    ++missed_[i];
    if (missed_[i] > options_.max_missed) {
      ++stats_.failures_detected;
      obs_.failures_detected.inc();
      recover(i);
      continue;
    }
    ++stats_.probes_sent;
    obs_.probes_sent.inc();
    controller_.home().request_status(
        run_->workers[i], run_->remote_jobs[i],
        [self, i](const StatusMsg& m) {
          if (self->stopped_) return;
          if (m.known && !m.failed) {
            self->missed_[i] = 0;
            ++self->stats_.probes_answered;
            self->obs_.probes_answered.inc();
          }
        });
  }
  controller_.home().scheduler()(options_.probe_period_s,
                                 [self] { self->probe_round(); });
}

void RunSupervisor::recover(std::size_t idx) {
  recovering_[idx] = true;
  const net::Endpoint dead = run_->workers[idx];
  if (auto* trust = controller_.trust_manager()) {
    trust->record(dead.value, sandbox::TrustEvent::kFailure);
  }

  const double detected_at = controller_.home().now();
  const std::uint64_t span = obs_.tracer.begin_span(
      obs_.node, "supervisor.recover",
      "fragment=" + std::to_string(idx) + " dead=" + dead.value);

  if (spares_.empty()) {
    ++stats_.recoveries_failed;
    obs_.recoveries_failed.inc();
    obs_.tracer.end_span(span, obs_.node, "supervisor.recover", "no spare");
    return;  // stays recovering_: nothing left to probe or redeploy to
  }
  const net::Endpoint spare = spares_.back();
  spares_.pop_back();

  serial::Bytes state;
  if (auto rec = store_.get(fragment_key(idx))) state = rec->state;

  auto self = shared_from_this();
  controller_.home().deploy_remote(
      spare, run_->fragments[idx], /*iterations=*/0,
      [self, idx, spare, detected_at, span](const DeployAckMsg& ack) {
        if (self->stopped_) return;
        if (!ack.ok) {
          ++self->stats_.recoveries_failed;
          self->obs_.recoveries_failed.inc();
          self->obs_.tracer.end_span(span, self->obs_.node,
                                     "supervisor.recover", "redeploy nacked");
          return;
        }
        self->run_->workers[idx] = spare;
        self->run_->remote_jobs[idx] = ack.job_id;

        // Every sender into the moved fragment must re-resolve.
        for (const auto& label :
             receive_labels_of(self->run_->fragments[idx])) {
          self->controller_.home().rebind_channel(label);
          for (std::size_t j = 0; j < self->run_->workers.size(); ++j) {
            if (j == idx) continue;
            self->controller_.home().node().transport().send(
                self->run_->workers[j], encode(RebindMsg{label}));
          }
        }
        self->missed_[idx] = 0;
        self->recovering_[idx] = false;
        ++self->stats_.recoveries;
        self->obs_.recoveries.inc();
        self->obs_.recovery_s.observe(self->controller_.home().now() -
                                      detected_at);
        self->obs_.tracer.end_span(span, self->obs_.node,
                                   "supervisor.recover", "recovered");
      },
      std::move(state));
}

}  // namespace cg::core
