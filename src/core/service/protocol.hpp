// ConGrid -- the Triana service control protocol.
//
// Controller <-> service traffic rides in kControl frames. Mirroring the
// paper ("These requests are encoded as XML scripts", section 1), each
// message is an XML document plus an optional binary body (task-graph
// attachments are XML inside the XML; checkpoints are binary bodies).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "core/graph/taskgraph.hpp"
#include "net/endpoint.hpp"
#include "obs/context.hpp"
#include "serial/frame.hpp"

namespace cg::core {

enum class ControlType {
  kDeploy,          ///< controller -> service: run this graph fragment
  kDeployAck,       ///< service -> controller: accepted / failed
  kCancel,          ///< controller -> service: stop and discard a job
  kStatusRequest,   ///< controller -> service
  kStatus,          ///< service -> controller
  kCheckpointRequest,  ///< controller -> service
  kCheckpointData,  ///< service -> controller (binary body)
  kRebind,          ///< controller -> service: channel moved, re-resolve
  kFence,           ///< supervisor -> everyone: reject epochs below this
  kBounce,          ///< service -> sender: payload refused, rebind + resend
  kPromote,         ///< supervisor -> service: standby job goes live
  kResume,          ///< supervisor -> service: un-suspend a leased job
};

struct DeployMsg {
  std::string job_id;
  std::string owner;            ///< billing identity of the submitter
  net::Endpoint owner_endpoint; ///< where module code can be fetched
  std::uint64_t iterations = 0; ///< 0 = reactive (pipe-driven) job
  std::string graph_xml;        ///< the fragment to execute
  serial::Bytes checkpoint;     ///< optional state to restore (migration)
  /// Content digests of the modules the fragment needs: unit type ->
  /// 64-hex SHA-256 of the encoded artifact the owner currently publishes.
  /// A peer holding bytes with a matching digest (module cache or CAS) can
  /// skip the network fetch entirely; a stale cached copy under the same
  /// name is detected the same way. Absent entries (older controllers)
  /// degrade to the plain fetch-from-owner path.
  std::map<std::string, std::string> module_hashes;
  /// Causal context of the deploy (the controller's run trace and the
  /// deploy.client span that issued it). Encoded as fixed-width 16-hex
  /// attributes that are ALWAYS present -- zeros when untraced -- so the
  /// frame size, and hence simulated latency, never depends on whether
  /// tracing is enabled.
  obs::TraceContext trace;
  /// Recovery fencing epoch of the fragment this deploy carries (0 for
  /// unsupervised / first deployments). The job stamps it on every pipe
  /// payload it emits and echoes it in status replies; fences with a
  /// higher epoch halt the job.
  std::uint64_t epoch = 0;
  /// Liveness lease in seconds (0 = none). Renewed by every supervisor
  /// contact; a job whose lease expires suspends itself -- withdraws its
  /// input pipes and bounces inbound payloads -- until the supervisor
  /// reappears or a fence kills it.
  double lease_s = 0.0;
  /// Deploy as a hot standby: restore state and wait, but do not
  /// advertise input pipes or emit anything until a kPromote arrives
  /// (speculative gray-failure backup).
  bool standby = false;
};

struct DeployAckMsg {
  std::string job_id;
  bool ok = false;
  std::string error;
};

struct CancelMsg {
  std::string job_id;
};

struct StatusRequestMsg {
  std::string job_id;
  /// The epoch the supervisor believes current (echoed back for sanity;
  /// 0 = unfenced probing).
  std::uint64_t epoch = 0;
  /// Lease renewal: > 0 extends the job's liveness lease to now+lease_s
  /// (and grants one to a job deployed without).
  double lease_s = 0.0;
};

struct StatusMsg {
  std::string job_id;
  bool known = false;
  bool running = false;
  bool failed = false;
  /// The job's own fencing epoch; a supervisor that has since re-deployed
  /// the fragment at a higher epoch ignores this reply as stale.
  std::uint64_t epoch = 0;
  bool suspended = false;  ///< lease expired, job self-suspended
  std::string error;
  std::uint64_t iteration = 0;
  std::uint64_t firings = 0;
};

struct CheckpointRequestMsg {
  std::string job_id;
};

struct CheckpointDataMsg {
  std::string job_id;
  bool ok = false;
  serial::Bytes state;
};

/// "The provider of channel `label` has moved": drop cached bindings and
/// stale pipe adverts so the next send re-resolves. Applies to every job
/// on the receiving service (jobs ignore labels they don't use). With
/// epoch > 0 it is also a fence on the consumer side: any local job still
/// ADVERTISING `label` at a lower epoch is a zombie from before the
/// migration and is halted.
struct RebindMsg {
  std::string label;
  std::uint64_t epoch = 0;
};

/// Producer fence for channel `label`, scoped to the host `target` (an
/// endpoint value): pipe payloads on `label` FROM that host stamped with an
/// epoch below `epoch` are counted and dropped, never applied -- and on the
/// target host itself, any job still sending on `label` at a lower epoch is
/// halted. The sender scope matters because fan-in channels are shared:
/// every replica of a parallel group funnels into the same home label, each
/// at its own epoch, and only the replaced host's traffic is stale.
/// Broadcast by the supervisor when a fragment is re-deployed so a
/// partitioned host that returns cannot double-fire results. An empty
/// target fences the label for every sender and halts at every receiver.
struct FenceMsg {
  std::string label;
  std::uint64_t epoch = 0;
  std::string target;
};

/// A pipe payload was refused (suspended or fenced consumer) and is handed
/// back to its sender so no item is lost: the sender drops its stale
/// binding, re-resolves `label` and re-sends the payload -- it ends up at
/// the replacement exactly once.
struct BounceMsg {
  std::string label;
  serial::Bytes payload;
};

/// Promote a standby job (deployed with DeployMsg::standby) to live: it
/// advertises its input pipes and starts emitting. Confirmed with a
/// DeployAckMsg for the same job id.
struct PromoteMsg {
  std::string job_id;
};

/// Un-suspend a lease-expired job. Only the CURRENT supervisor sends this
/// (in response to a suspended=true status reply at its own epoch), so a
/// zombie host that was already replaced never self-resumes off a stale
/// retransmitted probe -- over real sockets that race lets the zombie
/// execute a retransmitted payload at the old epoch and the result is
/// fenced at home while the reliable layer counts it delivered.
struct ResumeMsg {
  std::string job_id;
  /// Must match the job's own epoch or the resume is ignored.
  std::uint64_t epoch = 0;
  /// Fresh lease grant (> 0) accompanying the resume.
  double lease_s = 0.0;
};

serial::Frame encode(const DeployMsg& m);
serial::Frame encode(const DeployAckMsg& m);
serial::Frame encode(const CancelMsg& m);
serial::Frame encode(const StatusRequestMsg& m);
serial::Frame encode(const StatusMsg& m);
serial::Frame encode(const CheckpointRequestMsg& m);
serial::Frame encode(const CheckpointDataMsg& m);
serial::Frame encode(const RebindMsg& m);
serial::Frame encode(const FenceMsg& m);
serial::Frame encode(const BounceMsg& m);
serial::Frame encode(const PromoteMsg& m);
serial::Frame encode(const ResumeMsg& m);

/// Peek a control frame's message type; throws serial::DecodeError /
/// xml::XmlError on malformed frames.
ControlType control_type(const serial::Frame& f);

DeployMsg decode_deploy(const serial::Frame& f);
DeployAckMsg decode_deploy_ack(const serial::Frame& f);
CancelMsg decode_cancel(const serial::Frame& f);
StatusRequestMsg decode_status_request(const serial::Frame& f);
StatusMsg decode_status(const serial::Frame& f);
CheckpointRequestMsg decode_checkpoint_request(const serial::Frame& f);
CheckpointDataMsg decode_checkpoint_data(const serial::Frame& f);
RebindMsg decode_rebind(const serial::Frame& f);
FenceMsg decode_fence(const serial::Frame& f);
BounceMsg decode_bounce(const serial::Frame& f);
PromoteMsg decode_promote(const serial::Frame& f);
ResumeMsg decode_resume(const serial::Frame& f);

}  // namespace cg::core
