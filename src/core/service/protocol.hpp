// ConGrid -- the Triana service control protocol.
//
// Controller <-> service traffic rides in kControl frames. Mirroring the
// paper ("These requests are encoded as XML scripts", section 1), each
// message is an XML document plus an optional binary body (task-graph
// attachments are XML inside the XML; checkpoints are binary bodies).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "core/graph/taskgraph.hpp"
#include "net/endpoint.hpp"
#include "obs/context.hpp"
#include "serial/frame.hpp"

namespace cg::core {

enum class ControlType {
  kDeploy,          ///< controller -> service: run this graph fragment
  kDeployAck,       ///< service -> controller: accepted / failed
  kCancel,          ///< controller -> service: stop and discard a job
  kStatusRequest,   ///< controller -> service
  kStatus,          ///< service -> controller
  kCheckpointRequest,  ///< controller -> service
  kCheckpointData,  ///< service -> controller (binary body)
  kRebind,          ///< controller -> service: channel moved, re-resolve
};

struct DeployMsg {
  std::string job_id;
  std::string owner;            ///< billing identity of the submitter
  net::Endpoint owner_endpoint; ///< where module code can be fetched
  std::uint64_t iterations = 0; ///< 0 = reactive (pipe-driven) job
  std::string graph_xml;        ///< the fragment to execute
  serial::Bytes checkpoint;     ///< optional state to restore (migration)
  /// Content digests of the modules the fragment needs: unit type ->
  /// 64-hex SHA-256 of the encoded artifact the owner currently publishes.
  /// A peer holding bytes with a matching digest (module cache or CAS) can
  /// skip the network fetch entirely; a stale cached copy under the same
  /// name is detected the same way. Absent entries (older controllers)
  /// degrade to the plain fetch-from-owner path.
  std::map<std::string, std::string> module_hashes;
  /// Causal context of the deploy (the controller's run trace and the
  /// deploy.client span that issued it). Encoded as fixed-width 16-hex
  /// attributes that are ALWAYS present -- zeros when untraced -- so the
  /// frame size, and hence simulated latency, never depends on whether
  /// tracing is enabled.
  obs::TraceContext trace;
};

struct DeployAckMsg {
  std::string job_id;
  bool ok = false;
  std::string error;
};

struct CancelMsg {
  std::string job_id;
};

struct StatusRequestMsg {
  std::string job_id;
};

struct StatusMsg {
  std::string job_id;
  bool known = false;
  bool running = false;
  bool failed = false;
  std::string error;
  std::uint64_t iteration = 0;
  std::uint64_t firings = 0;
};

struct CheckpointRequestMsg {
  std::string job_id;
};

struct CheckpointDataMsg {
  std::string job_id;
  bool ok = false;
  serial::Bytes state;
};

/// "The provider of channel `label` has moved": drop cached bindings and
/// stale pipe adverts so the next send re-resolves. Applies to every job
/// on the receiving service (jobs ignore labels they don't use).
struct RebindMsg {
  std::string label;
};

serial::Frame encode(const DeployMsg& m);
serial::Frame encode(const DeployAckMsg& m);
serial::Frame encode(const CancelMsg& m);
serial::Frame encode(const StatusRequestMsg& m);
serial::Frame encode(const StatusMsg& m);
serial::Frame encode(const CheckpointRequestMsg& m);
serial::Frame encode(const CheckpointDataMsg& m);
serial::Frame encode(const RebindMsg& m);

/// Peek a control frame's message type; throws serial::DecodeError /
/// xml::XmlError on malformed frames.
ControlType control_type(const serial::Frame& f);

DeployMsg decode_deploy(const serial::Frame& f);
DeployAckMsg decode_deploy_ack(const serial::Frame& f);
CancelMsg decode_cancel(const serial::Frame& f);
StatusRequestMsg decode_status_request(const serial::Frame& f);
StatusMsg decode_status(const serial::Frame& f);
CheckpointRequestMsg decode_checkpoint_request(const serial::Frame& f);
CheckpointDataMsg decode_checkpoint_data(const serial::Frame& f);
RebindMsg decode_rebind(const serial::Frame& f);

}  // namespace cg::core
