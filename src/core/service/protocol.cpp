#include "core/service/protocol.hpp"

#include "serial/reader.hpp"
#include "serial/writer.hpp"
#include "xml/parse.hpp"
#include "xml/write.hpp"

namespace cg::core {
namespace {

/// Control frame layout: string (XML header) + blob (binary body).
serial::Frame pack(const xml::Node& header, const serial::Bytes& body = {}) {
  serial::Writer w;
  w.string(xml::write(header, /*pretty=*/false));
  w.blob(body);
  serial::Frame f;
  f.type = serial::FrameType::kControl;
  f.payload = w.take();
  return f;
}

struct Unpacked {
  xml::Node header;
  serial::Bytes body;
};

Unpacked unpack(const serial::Frame& f) {
  serial::Reader r(f.payload);
  Unpacked u;
  u.header = xml::parse(r.string());
  u.body = r.blob();
  return u;
}

/// Fixed-width 16-hex rendering so the attribute (and frame) size is the
/// same whether or not tracing is active.
std::string hex16(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return s;
}

std::uint64_t parse_hex16(const std::string& s) {
  std::uint64_t v = 0;
  for (char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v |= static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      throw serial::DecodeError("bad hex in trace attribute");
    }
  }
  return v;
}

ControlType type_from_name(const std::string& name) {
  if (name == "deploy") return ControlType::kDeploy;
  if (name == "deploy-ack") return ControlType::kDeployAck;
  if (name == "cancel") return ControlType::kCancel;
  if (name == "status-request") return ControlType::kStatusRequest;
  if (name == "status") return ControlType::kStatus;
  if (name == "checkpoint-request") return ControlType::kCheckpointRequest;
  if (name == "checkpoint-data") return ControlType::kCheckpointData;
  if (name == "rebind") return ControlType::kRebind;
  if (name == "fence") return ControlType::kFence;
  if (name == "bounce") return ControlType::kBounce;
  if (name == "promote") return ControlType::kPromote;
  if (name == "resume") return ControlType::kResume;
  throw serial::DecodeError("unknown control message <" + name + ">");
}

}  // namespace

serial::Frame encode(const DeployMsg& m) {
  xml::Node n("deploy");
  n.set_attr("job", m.job_id);
  n.set_attr("owner", m.owner);
  n.set_attr("owner-endpoint", m.owner_endpoint.value);
  n.set_attr_int("iterations", static_cast<long long>(m.iterations));
  n.set_attr("trace", hex16(m.trace.trace_id));
  n.set_attr("span", hex16(m.trace.parent_span));
  n.set_attr("lc", hex16(m.trace.lamport));
  // Fencing attrs ride fixed-width (epoch) / always-present (lease,
  // standby) so frame sizes do not depend on whether supervision is on.
  n.set_attr("epoch", hex16(m.epoch));
  n.set_attr_double("lease", m.lease_s);
  n.set_attr("standby", m.standby ? "true" : "false");
  n.add_child("graph").set_text(m.graph_xml);
  if (!m.module_hashes.empty()) {
    xml::Node& mods = n.add_child("modules");
    for (const auto& [type, hex] : m.module_hashes) {
      xml::Node& mod = mods.add_child("module");
      mod.set_attr("type", type);
      mod.set_attr("sha256", hex);
    }
  }
  return pack(n, m.checkpoint);
}

serial::Frame encode(const DeployAckMsg& m) {
  xml::Node n("deploy-ack");
  n.set_attr("job", m.job_id);
  n.set_attr("ok", m.ok ? "true" : "false");
  if (!m.error.empty()) n.set_attr("error", m.error);
  return pack(n);
}

serial::Frame encode(const CancelMsg& m) {
  xml::Node n("cancel");
  n.set_attr("job", m.job_id);
  return pack(n);
}

serial::Frame encode(const StatusRequestMsg& m) {
  xml::Node n("status-request");
  n.set_attr("job", m.job_id);
  n.set_attr("epoch", hex16(m.epoch));
  n.set_attr_double("lease", m.lease_s);
  return pack(n);
}

serial::Frame encode(const StatusMsg& m) {
  xml::Node n("status");
  n.set_attr("job", m.job_id);
  n.set_attr("known", m.known ? "true" : "false");
  n.set_attr("running", m.running ? "true" : "false");
  n.set_attr("failed", m.failed ? "true" : "false");
  n.set_attr("epoch", hex16(m.epoch));
  n.set_attr("suspended", m.suspended ? "true" : "false");
  if (!m.error.empty()) n.set_attr("error", m.error);
  n.set_attr_int("iteration", static_cast<long long>(m.iteration));
  n.set_attr_int("firings", static_cast<long long>(m.firings));
  return pack(n);
}

serial::Frame encode(const CheckpointRequestMsg& m) {
  xml::Node n("checkpoint-request");
  n.set_attr("job", m.job_id);
  return pack(n);
}

serial::Frame encode(const CheckpointDataMsg& m) {
  xml::Node n("checkpoint-data");
  n.set_attr("job", m.job_id);
  n.set_attr("ok", m.ok ? "true" : "false");
  return pack(n, m.state);
}

serial::Frame encode(const RebindMsg& m) {
  xml::Node n("rebind");
  n.set_attr("label", m.label);
  n.set_attr("epoch", hex16(m.epoch));
  return pack(n);
}

serial::Frame encode(const FenceMsg& m) {
  xml::Node n("fence");
  n.set_attr("label", m.label);
  n.set_attr("epoch", hex16(m.epoch));
  if (!m.target.empty()) n.set_attr("target", m.target);
  return pack(n);
}

serial::Frame encode(const BounceMsg& m) {
  xml::Node n("bounce");
  n.set_attr("label", m.label);
  return pack(n, m.payload);
}

serial::Frame encode(const PromoteMsg& m) {
  xml::Node n("promote");
  n.set_attr("job", m.job_id);
  return pack(n);
}

serial::Frame encode(const ResumeMsg& m) {
  xml::Node n("resume");
  n.set_attr("job", m.job_id);
  n.set_attr("epoch", hex16(m.epoch));
  n.set_attr_double("lease", m.lease_s);
  return pack(n);
}

ControlType control_type(const serial::Frame& f) {
  return type_from_name(unpack(f).header.name());
}

DeployMsg decode_deploy(const serial::Frame& f) {
  Unpacked u = unpack(f);
  DeployMsg m;
  m.job_id = u.header.require_attr("job");
  m.owner = u.header.attr_or("owner", "");
  m.owner_endpoint = net::Endpoint{u.header.attr_or("owner-endpoint", "")};
  m.iterations =
      static_cast<std::uint64_t>(u.header.attr_int("iterations", 0));
  m.graph_xml = u.header.require_child("graph").text();
  if (const xml::Node* mods = u.header.child("modules")) {
    for (const xml::Node* mod : mods->children("module")) {
      const std::string type = mod->attr_or("type", "");
      const std::string hex = mod->attr_or("sha256", "");
      if (!type.empty() && !hex.empty()) m.module_hashes[type] = hex;
    }
  }
  m.checkpoint = std::move(u.body);
  m.trace.trace_id = parse_hex16(u.header.attr_or("trace", "0"));
  m.trace.parent_span = parse_hex16(u.header.attr_or("span", "0"));
  m.trace.lamport = parse_hex16(u.header.attr_or("lc", "0"));
  m.epoch = parse_hex16(u.header.attr_or("epoch", "0"));
  m.lease_s = u.header.attr_double("lease", 0.0);
  m.standby = u.header.attr_or("standby", "false") == "true";
  return m;
}

DeployAckMsg decode_deploy_ack(const serial::Frame& f) {
  Unpacked u = unpack(f);
  DeployAckMsg m;
  m.job_id = u.header.require_attr("job");
  m.ok = u.header.attr_or("ok", "false") == "true";
  m.error = u.header.attr_or("error", "");
  return m;
}

CancelMsg decode_cancel(const serial::Frame& f) {
  return CancelMsg{unpack(f).header.require_attr("job")};
}

StatusRequestMsg decode_status_request(const serial::Frame& f) {
  Unpacked u = unpack(f);
  StatusRequestMsg m;
  m.job_id = u.header.require_attr("job");
  m.epoch = parse_hex16(u.header.attr_or("epoch", "0"));
  m.lease_s = u.header.attr_double("lease", 0.0);
  return m;
}

StatusMsg decode_status(const serial::Frame& f) {
  Unpacked u = unpack(f);
  StatusMsg m;
  m.job_id = u.header.require_attr("job");
  m.known = u.header.attr_or("known", "false") == "true";
  m.running = u.header.attr_or("running", "false") == "true";
  m.failed = u.header.attr_or("failed", "false") == "true";
  m.epoch = parse_hex16(u.header.attr_or("epoch", "0"));
  m.suspended = u.header.attr_or("suspended", "false") == "true";
  m.error = u.header.attr_or("error", "");
  m.iteration = static_cast<std::uint64_t>(u.header.attr_int("iteration", 0));
  m.firings = static_cast<std::uint64_t>(u.header.attr_int("firings", 0));
  return m;
}

CheckpointRequestMsg decode_checkpoint_request(const serial::Frame& f) {
  return CheckpointRequestMsg{unpack(f).header.require_attr("job")};
}

RebindMsg decode_rebind(const serial::Frame& f) {
  Unpacked u = unpack(f);
  RebindMsg m;
  m.label = u.header.require_attr("label");
  m.epoch = parse_hex16(u.header.attr_or("epoch", "0"));
  return m;
}

FenceMsg decode_fence(const serial::Frame& f) {
  Unpacked u = unpack(f);
  FenceMsg m;
  m.label = u.header.require_attr("label");
  m.epoch = parse_hex16(u.header.attr_or("epoch", "0"));
  m.target = u.header.attr_or("target", "");
  return m;
}

BounceMsg decode_bounce(const serial::Frame& f) {
  Unpacked u = unpack(f);
  BounceMsg m;
  m.label = u.header.require_attr("label");
  m.payload = std::move(u.body);
  return m;
}

PromoteMsg decode_promote(const serial::Frame& f) {
  return PromoteMsg{unpack(f).header.require_attr("job")};
}

ResumeMsg decode_resume(const serial::Frame& f) {
  Unpacked u = unpack(f);
  ResumeMsg m;
  m.job_id = u.header.require_attr("job");
  m.epoch = parse_hex16(u.header.attr_or("epoch", "0"));
  m.lease_s = u.header.attr_double("lease", 0.0);
  return m;
}

CheckpointDataMsg decode_checkpoint_data(const serial::Frame& f) {
  Unpacked u = unpack(f);
  CheckpointDataMsg m;
  m.job_id = u.header.require_attr("job");
  m.ok = u.header.attr_or("ok", "false") == "true";
  m.state = std::move(u.body);
  return m;
}

}  // namespace cg::core
