// ConGrid -- phi-accrual failure detection (compatibility forward).
//
// The detector moved to net/failure_detector.hpp so that layers below
// cg_core -- the overlay routing table in cg_p2p grades its contacts
// with the same suspicion model the supervisor grades its workers --
// can share it without a dependency cycle. This header keeps the
// original spelling (cg::core::PhiAccrualDetector) working for the
// supervisor and existing tests.
#pragma once

#include "net/failure_detector.hpp"

namespace cg::core {

using FailureDetectorOptions = net::FailureDetectorOptions;
using PhiAccrualDetector = net::PhiAccrualDetector;

}  // namespace cg::core
