// ConGrid -- the Triana controller.
//
// "The Triana controller ... acts as a scheduling manager for the complete
// application being run over a Triana network" (paper 3.2). It sits on top
// of a local TrianaService (every node is both client and server):
//
//   1. discover workers -- peer adverts matching capability constraints;
//   2. plan -- hand the graph's group to its distribution policy, which
//      rewrites it into a home graph plus per-resource fragments;
//   3. deploy -- ship each fragment (XML) to a worker; the home graph runs
//      as a local job;
//   4. drive -- tick the home job's sources; data flows out over pipes and
//      results return to the home graph's Receive proxies;
//   5. migrate -- checkpoint a fragment off one worker and resume it on
//      another (paper 3.6.2's checkpointing remark).
#pragma once

#include <functional>
#include <memory>

#include "core/dist/policy.hpp"
#include "core/service/service.hpp"
#include "p2p/strategy.hpp"
#include "sandbox/trust.hpp"

namespace cg::core {

/// The controller's book-keeping for one distributed deployment.
struct DistributedRun {
  std::string group;
  std::string prefix;               ///< unique channel-label prefix
  std::string home_job;             ///< local job id of the home graph
  std::vector<net::Endpoint> workers;   ///< fragment i runs on workers[i]
  std::vector<std::string> remote_jobs; ///< job id of fragment i
  std::vector<TaskGraph> fragments;     ///< retained for migration
  std::size_t acks_ok = 0;
  std::size_t acks_failed = 0;
  std::vector<std::string> errors;
  /// Causal identity of this run: every deploy, fetch, pipe bind and tick
  /// it causes -- on any peer -- carries trace_id; root_span is the open
  /// "run" span (closed by shutdown()). Zero when the home service has no
  /// tracer bound.
  std::uint64_t trace_id = 0;
  std::uint64_t root_span = 0;

  bool all_acked() const {
    return acks_ok + acks_failed == remote_jobs.size();
  }
  bool deployed_ok() const { return all_acked() && acks_failed == 0; }
};

class TrianaController {
 public:
  /// `home` is this user's own peer (must outlive the controller).
  explicit TrianaController(TrianaService& home) : home_(home) {}

  TrianaService& home() { return home_; }

  /// Optional reputation tracking (paper 3.5's future trust models): when
  /// set, discovery results are ranked best-first and quarantined peers
  /// are dropped; deployment acks and failures feed back into the scores.
  /// The manager must outlive the controller.
  void set_trust_manager(sandbox::TrustManager* trust) { trust_ = trust; }
  sandbox::TrustManager* trust_manager() { return trust_; }

  /// Report a result disagreement attributed to `worker` (e.g. from a
  /// Vote unit's dissent mask under the replicated policy).
  void report_disagreement(const net::Endpoint& worker);

  /// Route worker discovery through a pluggable strategy (flooding,
  /// expanding ring, rendezvous, structured overlay -- strategy.hpp).
  /// When unset, discover_workers keeps its legacy behaviour: flooding
  /// with the given TTL, or the rendezvous variant at ttl == 0. The
  /// strategy must outlive the controller.
  void set_discovery_strategy(p2p::DiscoveryStrategy* s) { strategy_ = s; }
  p2p::DiscoveryStrategy* discovery_strategy() { return strategy_; }

  /// Find up to `want` workers matching `query`. With a strategy bound,
  /// `ttl` is ignored and the strategy routes the query; otherwise
  /// flooding with the given TTL (rendezvous variant at ttl == 0). The
  /// callback fires once, after `timeout_s` on the service's scheduler,
  /// with the distinct provider endpoints found (self excluded).
  void discover_workers(const p2p::Query& query, int ttl, std::size_t want,
                        double timeout_s,
                        std::function<void(std::vector<net::Endpoint>)> done);

  /// Plan + deploy: rewrite `g` around `group_name` using the group's
  /// distribution policy ("parallel" when unset) over the given workers,
  /// deploy each fragment, and start the home graph as a reactive local
  /// job. Acks arrive asynchronously; observe run->all_acked().
  /// Throws std::invalid_argument on planning errors (bad group, no
  /// workers).
  std::shared_ptr<DistributedRun> distribute(
      const TaskGraph& g, const std::string& group_name,
      const std::vector<net::Endpoint>& workers);

  /// Fire the home graph's sources `n` times (n streaming iterations).
  void tick(DistributedRun& run, std::uint64_t n = 1);

  /// The home job's runtime (read sinks from here). Nullptr when the home
  /// job failed or is gone.
  GraphRuntime* home_runtime(DistributedRun& run);

  /// Tear down: cancel every remote fragment and the home job.
  void shutdown(DistributedRun& run);

  /// Move fragment `idx` of `run` to `new_worker`: checkpoint it on the
  /// current worker, cancel it there, redeploy with state restored, and
  /// tell every participant to re-resolve the fragment's input channels.
  /// `done(ok)` fires when the new deployment acks (or any step fails).
  void migrate(std::shared_ptr<DistributedRun> run, std::size_t idx,
               const net::Endpoint& new_worker,
               std::function<void(bool)> done);

 private:
  TrianaService& home_;
  sandbox::TrustManager* trust_ = nullptr;
  p2p::DiscoveryStrategy* strategy_ = nullptr;
  std::uint64_t next_run_ = 1;
};

}  // namespace cg::core
