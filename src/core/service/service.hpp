// ConGrid -- the Triana service.
//
// "The Triana Service is comprised of three components: a client, a server
// and a command process server" (paper 3.2). One TrianaService object is a
// full peer daemon:
//
//   * the *server* accepts deploy requests (XML task-graph fragments),
//     fetches any module code it is missing from the workflow's owner
//     (on-demand download, cached and pinned for the job's duration),
//     instantiates a GraphRuntime inside a sandbox billed to the owner's
//     virtual account, and wires the fragment's boundary channels to p2p
//     pipes;
//   * the *client* deploys fragments to other services and tracks acks;
//   * the *command process server* answers status / checkpoint / cancel.
//
// The service is transport-agnostic (sim, inproc or tcp) and single-
// threaded per peer: all handlers run on whatever thread polls the
// transport.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>

#include "cas/store.hpp"
#include "core/engine/runtime.hpp"
#include "core/service/protocol.hpp"
#include "net/reliable.hpp"
#include "obs/obs.hpp"
#include "p2p/pipes.hpp"
#include "repo/code_exchange.hpp"
#include "repo/module_cache.hpp"
#include "sandbox/account.hpp"

namespace cg::core {

struct ServiceConfig {
  std::string peer_id;  ///< defaults to the transport endpoint
  /// Capability attributes advertised in the peer advert (paper section 4:
  /// "simple attributes -- such as CPU capability and available free
  /// memory").
  std::map<std::string, std::string> capabilities = {
      {"cpu_mhz", "2000"}, {"free_mem_mb", "256"}};
  sandbox::Policy sandbox_policy;
  const sandbox::CertifiedLibrary* certified_library = nullptr;
  std::size_t module_cache_bytes = 64u << 20;
  /// When false, deploys only run if every unit type's module is already
  /// cached or locally owned (no network fetch).
  bool fetch_code_on_demand = true;
  /// Per-job RNG seed base (deterministic runs).
  std::uint64_t rng_seed = 1;
  /// Retry/dedup tuning for the reliable control plane (net/reliable.hpp).
  net::ReliableConfig reliable;
  /// Optional content-addressed store (borrowed; must outlive the service).
  /// When set: the module cache writes through to it and falls back to it
  /// on misses; deploys this peer issues advertise per-module content
  /// digests; and deploys it receives resolve advertised digests against
  /// the store before fetching over the network -- so a restart with the
  /// same CAS directory turns re-deploys into disk hits.
  cas::ContentStore* cas = nullptr;
  /// Memoize pure-unit firings through `cas` (requires it to be set):
  /// units declared kPure whose firing touched neither the RNG nor the
  /// iteration counter have their outputs replayed from the store when the
  /// same unit type + params + input bytes recur -- across jobs, runs and
  /// (via a shared store directory) peers.
  bool memoize_pure_units = false;
  /// Bounced-payload re-send: when a payload this service sent comes back
  /// (consumer suspended or fenced), re-resolve the channel and re-send;
  /// retry a failed re-resolve this many times, this far apart (recovery
  /// may still be in flight when the bounce arrives).
  double bounce_retry_s = 1.0;
  int bounce_retries = 8;
  /// Output-channel bind retry: a failed discovery for an output label is
  /// retried this many times, this far apart, before the job is failed.
  /// Under churn the provider may be down for a blip -- or dead and mid
  /// recovery -- when the flood goes out; by the next attempt the host is
  /// back (or the supervisor has redeployed the fragment and the retry
  /// binds the replacement's higher-epoch advert). Only the final failure
  /// is fatal to the job.
  double bind_retry_s = 2.0;
  int bind_retries = 10;
};

/// Client-side knobs for supervised deployments: the fragment's fencing
/// epoch, a liveness lease, and the standby (deploy-but-don't-run) flag.
struct DeployOptions {
  std::uint64_t epoch = 0;
  double lease_s = 0.0;
  bool standby = false;
};

struct ServiceStats {
  std::uint64_t deploys_received = 0;
  std::uint64_t jobs_started = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t jobs_cancelled = 0;
  std::uint64_t modules_fetched = 0;
  /// Deploy-needed modules materialised from the content store (advertised
  /// digest already present locally) instead of fetched from the owner.
  std::uint64_t modules_from_cas = 0;
  std::uint64_t pipe_items_in = 0;
  std::uint64_t pipe_items_out = 0;
  /// Deploys for a job this service already hosts (a retransmitted deploy
  /// that slipped past the reliable layer's dedup window): re-acked, never
  /// re-executed.
  std::uint64_t duplicate_deploys = 0;
  // -- lease / fencing / bounce (fenced recovery) ----------------------------
  std::uint64_t jobs_suspended = 0;   ///< lease expiries (self-suspensions)
  std::uint64_t jobs_resumed = 0;     ///< lease renewals after a suspension
  std::uint64_t jobs_fenced = 0;      ///< stale jobs halted by fence/rebind
  std::uint64_t promotions = 0;       ///< standby jobs promoted to live
  std::uint64_t payloads_bounced = 0; ///< inbound payloads returned to sender
  std::uint64_t binds_retried = 0;    ///< output binds re-issued (churn blips)
  std::uint64_t bounces_resent = 0;   ///< returned payloads re-sent by us
  std::uint64_t bounces_dropped = 0;  ///< returned payloads given up on
};

class TrianaService {
 public:
  /// Everything passed in must outlive the service. The service wraps the
  /// raw transport in a ReliableTransport (controller protocol, code
  /// exchange and discovery all ride it) and installs itself at the end of
  /// the frame-handler chain
  /// (PeerNode -> PipeServe -> CodeExchange -> control).
  TrianaService(net::Transport& transport, net::Clock clock,
                net::Scheduler scheduler, const UnitRegistry& registry,
                ServiceConfig config = {});

  TrianaService(const TrianaService&) = delete;
  TrianaService& operator=(const TrianaService&) = delete;

  const std::string& id() const { return config_.peer_id; }
  net::Endpoint endpoint() const { return node_.endpoint(); }
  /// Seconds on this service's ambient clock (virtual or wall).
  double now() const { return clock_(); }

  p2p::PeerNode& node() { return node_; }
  const UnitRegistry& registry() const { return registry_; }
  const ServiceConfig& config() const { return config_; }
  p2p::PipeServe& pipes() { return pipes_; }
  repo::CodeExchange& code() { return code_; }
  repo::ModuleCache& module_cache() { return module_cache_; }
  repo::ModuleRepository& local_repo() { return local_repo_; }
  sandbox::VirtualAccount& account() { return account_; }
  const ServiceStats& stats() const { return stats_; }
  /// The reliable layer every control/code/discovery frame rides; exposes
  /// retry/timeout/dedup counters (ReliableStats) to the supervisor and
  /// benches.
  net::ReliableTransport& reliable() { return transport_; }
  const net::ReliableTransport& reliable() const { return transport_; }

  /// Bind this peer's metrics/tracing in one call: "service.*" counters,
  /// deploy latency histograms, plus the underlying reliable transport's
  /// and module cache's instruments, all scoped under `scope` (default:
  /// this peer's id). Deploys become trace spans (received -> started /
  /// failed on the server; sent -> acked on the client).
  void set_obs(obs::Registry& registry, obs::Tracer* tracer = nullptr,
               std::string_view scope = {});

  /// Adopt a run-level causal context: deploys, discovery rounds, module
  /// fetches and pipe binds this peer initiates become children of
  /// (trace_id, parent_span), and the reliable layer stamps every envelope
  /// it originates with trace_id. A service whose trace id is still 0
  /// adopts the context of the first traced deploy it receives, so workers
  /// join the controller's run trace with no extra signalling.
  void join_trace(std::uint64_t trace_id, std::uint64_t parent_span);
  const obs::TraceContext& trace() const { return trace_ctx_; }
  /// The bound tracer handle (null-safe; empty before set_obs).
  obs::TracerRef tracer() const { return obs_.tracer; }

  /// Publish this peer's advert (capabilities) into the local cache and to
  /// the configured rendezvous, making the service discoverable.
  void announce();

  /// Publish a synthetic module artifact for `unit_type` into the local
  /// repository (this peer becomes its owner/served source).
  void publish_module(const std::string& unit_type,
                      const std::string& version = "1.0",
                      std::size_t size_bytes = 8192);

  /// Publish artifacts for every unit type appearing in `g` (recursing
  /// into groups). What workflow owners do before distributing.
  void publish_graph_modules(const TaskGraph& g,
                             std::size_t size_bytes = 8192);

  // -- client side ------------------------------------------------------------
  using AckHandler = std::function<void(const DeployAckMsg&)>;
  using StatusHandler = std::function<void(const StatusMsg&)>;
  using CheckpointHandler = std::function<void(const CheckpointDataMsg&)>;

  /// Deploy a fragment to a remote service. Returns the job id assigned to
  /// the deployment; the handler fires when the ack arrives (never
  /// synchronously).
  std::string deploy_remote(const net::Endpoint& target,
                            const TaskGraph& fragment,
                            std::uint64_t iterations, AckHandler on_ack,
                            serial::Bytes checkpoint = {},
                            DeployOptions options = {});

  /// Promote a standby job on `target` to live; the handler fires with the
  /// confirming DeployAckMsg (ok=false when the job is unknown there).
  void promote_remote(const net::Endpoint& target, const std::string& job_id,
                      AckHandler on_ack);

  /// The scheduler this service runs timers on (exposed for the
  /// controller's discovery deadlines).
  const net::Scheduler& scheduler() const { return scheduler_; }

  /// Probe a remote job. `epoch` is echoed for staleness filtering;
  /// `lease_s` > 0 renews (or grants) the job's liveness lease -- the
  /// probe doubles as proof the supervisor is alive.
  void request_status(const net::Endpoint& target, const std::string& job_id,
                      StatusHandler on_status, std::uint64_t epoch = 0,
                      double lease_s = 0.0);
  void request_checkpoint(const net::Endpoint& target,
                          const std::string& job_id,
                          CheckpointHandler on_data);
  void cancel_remote(const net::Endpoint& target, const std::string& job_id);
  /// Un-suspend a lease-expired remote job. Only the current supervisor
  /// calls this (the worker never self-resumes off a probe, which may be a
  /// stale retransmission from before a recovery).
  void resume_remote(const net::Endpoint& target, const std::string& job_id,
                     std::uint64_t epoch, double lease_s);

  // -- local jobs --------------------------------------------------------------
  /// Run a graph as a local job owned by this peer (no code fetch). With
  /// iterations > 0 the sources are ticked immediately; a reactive job
  /// (iterations == 0) just sits wired to its pipes. Returns the job id.
  /// Throws std::invalid_argument on a bad graph.
  std::string deploy_local(const TaskGraph& graph, std::uint64_t iterations,
                           serial::Bytes checkpoint = {});

  /// Tick a local reactive/streaming job's sources (drives home graphs).
  void tick_job(const std::string& job_id, std::uint64_t iterations = 1);

  /// Runtime of a job hosted here (nullptr when unknown) -- used to read
  /// sink units out of home graphs and by tests.
  GraphRuntime* job_runtime(const std::string& job_id);

  /// True when the job exists and has failed; error output parameter.
  bool job_failed(const std::string& job_id, std::string* error = nullptr) const;

  std::size_t job_count() const { return jobs_.size(); }

  /// Cancel a job hosted here (settles billing, releases modules/pipes).
  bool cancel_local(const std::string& job_id);

  /// Drop every job's binding for `label` plus stale pipe adverts, so the
  /// next item sent on it re-resolves (migration support). Also invoked by
  /// inbound kRebind control messages.
  void rebind_channel(const std::string& label);

  /// The fencing epoch of a job hosted here (0 when unknown/unfenced).
  std::uint64_t job_epoch(const std::string& job_id) const;
  /// True when the job exists and has self-suspended on an expired lease.
  bool job_suspended(const std::string& job_id) const;

 private:
  struct Job {
    std::string job_id;
    std::string owner;
    net::Endpoint reply_to;  ///< who deployed (for acks); empty for local
    std::unique_ptr<sandbox::Sandbox> sb;
    std::unique_ptr<GraphRuntime> runtime;
    bool failed = false;
    std::string error;
    double started_at = 0;
    std::vector<std::string> pinned_modules;
    std::vector<std::string> input_labels;  ///< advertised pipes to remove
    std::vector<std::string> output_labels;  ///< labels this job sends on
    std::map<std::string, p2p::OutputPipe> out_pipes;
    std::map<std::string, std::vector<DataItem>> out_backlog;
    std::uint64_t epoch = 0;      ///< fencing epoch (stamped on all sends)
    double lease_s = 0.0;         ///< liveness lease length (0 = none)
    double lease_deadline = 0.0;  ///< next expiry on the ambient clock
    bool lease_timer_armed = false;  ///< one expiry timer chain per job
    bool suspended = false;       ///< lease expired; inputs withdrawn
    bool standby = false;         ///< dormant until kPromote
    /// The job's causal identity: the deploy's trace, parented by this
    /// service's "deploy" span. Runtime ticks and pipe binds hang off it.
    obs::TraceContext trace;
  };

  /// A deploy waiting for module fetches.
  struct PendingDeploy {
    DeployMsg msg;
    net::Endpoint reply_to;  ///< empty for local deploys
    std::size_t fetches_outstanding = 0;
    bool failed = false;
    std::string error;
    std::vector<std::string> fetched_modules;
    double received_at = 0.0;  ///< for the deploy_start_s histogram
    std::uint64_t span = 0;    ///< open "deploy" trace span
  };

  struct Obs {
    obs::CounterRef deploys_received, duplicate_deploys, jobs_started,
        jobs_failed, jobs_cancelled, modules_fetched, modules_from_cas;
    obs::CounterRef jobs_suspended, jobs_fenced, promotions, payloads_bounced,
        binds_retried;
    obs::HistogramRef deploy_start_s;  ///< server: received -> started
    obs::HistogramRef deploy_rtt_s;    ///< client: sent -> acked
    obs::TracerRef tracer;
  };

  void handle_control(const net::Endpoint& from, serial::Frame frame);
  void handle_deploy(const net::Endpoint& from, DeployMsg m);
  void maybe_start(const std::string& job_id);
  /// Returns the error on failure (ack already sent), nullopt on success.
  std::optional<std::string> start_job(PendingDeploy pending);
  void fail_deploy(PendingDeploy& pending, const std::string& error);
  void send_ack(const net::Endpoint& to, const std::string& job_id, bool ok,
                const std::string& error);
  void finish_job(Job& job, bool violated);
  void teardown_job(Job& job);
  void on_channel_send(const std::string& job_id, const std::string& label,
                       DataItem item);
  /// Issue (or re-issue) the discovery+bind for an output label; on an
  /// unbound result, retries up to `attempts_left` more times before
  /// failing the job. `bspan` is the open "pipe.bind" trace span.
  void start_output_bind(const std::string& job_id, const std::string& label,
                         int attempts_left, std::uint64_t bspan);
  void run_iterations(Job& job, std::uint64_t iterations);
  std::string fresh_job_id();

  // Lease / fencing / bounce (fenced recovery).
  void advertise_job_inputs(Job& job);
  bool label_owned_by_other(const std::string& job_id,
                            const std::string& label) const;
  void renew_lease(Job& job, double lease_s);
  void check_lease(const std::string& job_id);
  void suspend_job(Job& job);
  void resume_job(Job& job);
  /// Halt a zombie job overtaken by a higher-epoch fence/rebind: its input
  /// labels keep bouncing, the job itself is cancelled.
  void fence_halt(const std::string& job_id);
  void handle_fence(const FenceMsg& m);
  void handle_bounce(const net::Endpoint& from, BounceMsg m);
  void handle_promote(const net::Endpoint& from, const PromoteMsg& m);
  void resend_bounced(const std::string& label, serial::Bytes payload,
                      int attempts_left);

  net::Clock clock_;
  net::Scheduler scheduler_;
  const UnitRegistry& registry_;
  ServiceConfig config_;

  /// Declared before node_/pipes_/code_: they are built on top of it.
  net::ReliableTransport transport_;

  p2p::PeerNode node_;
  p2p::PipeServe pipes_;
  repo::CodeExchange code_;
  repo::ModuleRepository local_repo_;
  repo::ModuleCache module_cache_;
  sandbox::VirtualAccount account_;

  std::map<std::string, Job> jobs_;
  std::map<std::string, PendingDeploy> pending_;
  /// Labels whose payloads are bounced back to the sender while no live
  /// job serves them (suspended or fenced incarnations); prevents silent
  /// item loss during recovery.
  std::set<std::string> bounce_labels_;
  std::map<std::string, AckHandler> ack_handlers_;      // by job id
  std::map<std::string, StatusHandler> status_handlers_;
  std::map<std::string, CheckpointHandler> ckpt_handlers_;
  std::uint64_t next_job_ = 1;
  ServiceStats stats_;
  Obs obs_;
  obs::Registry* obs_registry_ = nullptr;  ///< rebound onto job runtimes
  std::string obs_scope_;
  obs::TraceContext trace_ctx_;  ///< run-level context (join_trace)
};

}  // namespace cg::core
