// ConGrid -- run supervision: failure detection and automatic recovery.
//
// The paper's Consumer Grid loses peers without notice ("connection lost,
// user intervenes", 3.6.2) and proposes checkpointing "to migrate
// computation if necessary". The RunSupervisor automates that loop for a
// DistributedRun:
//
//   * every checkpoint_period it captures each fragment's state into a
//     CheckpointStore (latest-wins);
//   * every probe_period it sends a status probe to each fragment's host;
//     a host that misses `max_missed` consecutive probes is declared dead;
//   * a dead fragment is re-deployed to the next spare worker, restored
//     from its last stored checkpoint, and every participant is told to
//     re-resolve the moved channels;
//   * failures and recoveries feed the controller's TrustManager when one
//     is installed.
//
// The supervisor is driven entirely by the home service's scheduler, so it
// works identically in simulated and wall-clock time.
#pragma once

#include <memory>

#include "core/checkpoint/checkpoint.hpp"
#include "core/service/controller.hpp"
#include "obs/obs.hpp"

namespace cg::core {

struct SupervisorOptions {
  double checkpoint_period_s = 30.0;
  double probe_period_s = 10.0;
  /// Probes with no reply before a host is declared dead.
  int max_missed = 3;
};

struct SupervisorStats {
  std::uint64_t checkpoints_taken = 0;
  std::uint64_t probes_sent = 0;
  std::uint64_t probes_answered = 0;
  std::uint64_t failures_detected = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t recoveries_failed = 0;  ///< no spare or redeploy nacked
};

class RunSupervisor : public std::enable_shared_from_this<RunSupervisor> {
 public:
  /// `spares` are workers not currently part of the run; each recovery
  /// consumes one. The controller and run must outlive the supervisor.
  RunSupervisor(TrianaController& controller,
                std::shared_ptr<DistributedRun> run,
                std::vector<net::Endpoint> spares,
                SupervisorOptions options = {});

  /// Bind metrics/tracing: "<scope>.supervisor.*" counters plus a
  /// failure-detection -> recovery-complete latency histogram; each
  /// recovery is a trace span. Call before start().
  void set_obs(obs::Registry& registry, obs::Tracer* tracer = nullptr,
               std::string_view scope = {});

  /// Begin the periodic loops. Call once.
  void start();

  /// Stop scheduling further work (in-flight callbacks become no-ops).
  void stop() { stopped_ = true; }

  const SupervisorStats& stats() const { return stats_; }
  const CheckpointStore& checkpoints() const { return store_; }
  std::size_t spares_left() const { return spares_.size(); }

  /// Retry/timeout/dedup counters of the home service's reliable layer --
  /// how hard the control plane is working to keep this run alive.
  const net::ReliableStats& reliable_stats() const;

 private:
  struct Obs {
    obs::CounterRef checkpoints_taken, probes_sent, probes_answered,
        failures_detected, recoveries, recoveries_failed;
    obs::HistogramRef recovery_s;  ///< detection -> recovery ack
    obs::TracerRef tracer;
    std::string node;
  };

  void checkpoint_round();
  void probe_round();
  void recover(std::size_t idx);

  TrianaController& controller_;
  std::shared_ptr<DistributedRun> run_;
  std::vector<net::Endpoint> spares_;
  SupervisorOptions options_;
  CheckpointStore store_;
  std::vector<int> missed_;       ///< consecutive unanswered probes
  std::vector<bool> recovering_;  ///< guards double recovery per fragment
  bool stopped_ = false;
  SupervisorStats stats_;
  Obs obs_;
};

}  // namespace cg::core
