// ConGrid -- run supervision: adaptive failure detection, fenced recovery.
//
// The paper's Consumer Grid loses peers without notice ("connection lost,
// user intervenes", 3.6.2) and proposes checkpointing "to migrate
// computation if necessary". The RunSupervisor automates that loop for a
// DistributedRun:
//
//   * every checkpoint_period it captures each fragment's state into a
//     CheckpointStore (latest-wins);
//   * every probe_period it sends a status probe to each fragment's host
//     and scores the host's *suspicion* with a phi-accrual detector
//     (failure_detector.hpp) fed by probe-reply inter-arrivals and by
//     liveness piggybacked on ordinary data-plane traffic. phi >= phi_dead
//     declares the host dead; until the detector has history, the legacy
//     missed-probe count (max_missed) decides;
//   * a dead fragment is re-deployed to the next spare, restored from its
//     last checkpoint, and -- when lease fencing is on (lease_s > 0) --
//     given a bumped *recovery epoch*. The supervisor first waits out the
//     zombie's lease (so a partitioned host has provably self-suspended
//     before the replacement exists), then fences the fragment's channels:
//     stale-epoch payloads are dropped at the receiver and the returning
//     zombie is halted, so a host coming back mid-recovery can neither
//     double-fire results nor capture rebinding senders;
//   * a host that is suspected (phi >= phi_suspect) but not yet dead can
//     get a *speculative standby*: its fragment deployed dark from the
//     last checkpoint on a spare, promoted instantly if the host dies,
//     cancelled (spare returned) if suspicion subsides;
//   * failures and recoveries feed the controller's TrustManager when one
//     is installed.
//
// The supervisor is driven entirely by the home service's scheduler, so it
// works identically in simulated and wall-clock time.
#pragma once

#include <memory>
#include <unordered_map>

#include "core/checkpoint/checkpoint.hpp"
#include "core/service/controller.hpp"
#include "core/service/failure_detector.hpp"
#include "obs/obs.hpp"

namespace cg::core {

struct SupervisorOptions {
  double checkpoint_period_s = 30.0;
  double probe_period_s = 10.0;
  /// Bootstrap rule: probes with no reply before a host is declared dead
  /// while the adaptive detector has too little history (< 2 reply
  /// intervals -- e.g. a worker that was dead from the start).
  int max_missed = 3;

  // -- adaptive (phi-accrual) detection ------------------------------------
  /// Reply inter-arrival window and variance floor (see FailureDetector-
  /// Options); the floor keeps one metronomic link from turning into a
  /// hair trigger.
  std::size_t detector_window = 32;
  double detector_min_std_s = 0.25;
  /// Suspicion threshold: phi at which a host is *suspected* (eligible for
  /// a speculative standby, not yet recovered from).
  double phi_suspect = 3.0;
  /// Conviction threshold: phi at which a host is declared dead. phi = 8
  /// is roughly "the current silence had a one-in-10^8 chance under the
  /// observed reply cadence".
  double phi_dead = 8.0;

  // -- fenced recovery ------------------------------------------------------
  /// Liveness lease granted to fragments via probes (0 = fencing off,
  /// legacy unfenced recovery). With a lease, recovery waits until the
  /// zombie's lease has provably expired (it has self-suspended and is
  /// bouncing inbound payloads) before the replacement is deployed at a
  /// bumped epoch, and fences the fragment's channels afterwards.
  double lease_s = 0.0;

  // -- speculative standby --------------------------------------------------
  /// Deploy a dark standby from the last checkpoint when a host is
  /// suspected; promote on death, cancel when suspicion subsides.
  /// Requires lease_s > 0 (promotion relies on epoch fencing).
  bool speculative_backups = false;

  // -- redeploy robustness --------------------------------------------------
  /// A recovery redeploy (or standby promote) unacknowledged for this long
  /// is abandoned: the possibly-orphaned deploy is cancelled best-effort
  /// and the next spare is tried.
  double redeploy_timeout_s = 15.0;
};

struct SupervisorStats {
  std::uint64_t checkpoints_taken = 0;
  std::uint64_t probes_sent = 0;
  std::uint64_t probes_answered = 0;
  std::uint64_t failures_detected = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t recoveries_failed = 0;  ///< out of spares / all nacked
  /// Recoveries abandoned because the "dead" host showed life during the
  /// lease wait (the next probe round sends it an explicit resume).
  std::uint64_t recoveries_aborted = 0;
  /// Explicit kResume msgs sent to suspended-but-current hosts.
  std::uint64_t resumes_sent = 0;
  std::uint64_t redeploys_nacked = 0;     ///< spare refused; returned to pool
  std::uint64_t redeploys_timed_out = 0;  ///< spare silent; dropped
  std::uint64_t fences_sent = 0;          ///< fence/rebind msgs broadcast
  std::uint64_t speculative_deploys = 0;
  std::uint64_t speculative_promoted = 0;
  std::uint64_t speculative_cancelled = 0;
};

class RunSupervisor : public std::enable_shared_from_this<RunSupervisor> {
 public:
  /// `spares` are workers not currently part of the run; each recovery
  /// consumes one. The controller and run must outlive the supervisor.
  RunSupervisor(TrianaController& controller,
                std::shared_ptr<DistributedRun> run,
                std::vector<net::Endpoint> spares,
                SupervisorOptions options = {});

  /// Bind metrics/tracing: "<scope>.supervisor.*" counters, a per-host
  /// "supervisor.phi.<endpoint>" suspicion gauge, plus a failure-detection
  /// -> recovery-complete latency histogram; each recovery is a trace span
  /// tagged with the fragment's new epoch. Call before start().
  void set_obs(obs::Registry& registry, obs::Tracer* tracer = nullptr,
               std::string_view scope = {});

  /// Begin the periodic loops. Call once; a second call throws
  /// std::logic_error (it would double every timer chain).
  void start();

  /// Stop scheduling further work. In-flight callbacks become no-ops:
  /// after stop() neither stats nor the run are mutated.
  void stop() { stopped_ = true; }

  const SupervisorStats& stats() const { return stats_; }
  const CheckpointStore& checkpoints() const { return store_; }
  std::size_t spares_left() const { return spares_.size(); }
  /// Current fencing epoch of a fragment (0 until its first recovery).
  std::uint64_t epoch_of(std::size_t idx) const { return epochs_[idx]; }
  /// True when the fragment is lost for good (recovery exhausted spares);
  /// the run is degraded but the supervisor keeps serving the rest.
  bool degraded(std::size_t idx) const { return degraded_[idx]; }
  /// Current suspicion score for a fragment's host (0 while bootstrapping).
  double phi_of(std::size_t idx) const;

  /// Retry/timeout/dedup counters of the home service's reliable layer --
  /// how hard the control plane is working to keep this run alive.
  const net::ReliableStats& reliable_stats() const;

 private:
  /// One in-flight recovery: consumes spares until one acks, the lease wait
  /// and every redeploy attempt carry this through their callbacks.
  struct Recovery {
    std::size_t idx = 0;
    net::Endpoint dead;          ///< the host being replaced
    double detected_at = 0.0;
    double contact_at_detect = 0.0;  ///< to spot life during the lease wait
    serial::Bytes state;         ///< checkpoint to restore
    std::uint64_t span = 0;      ///< open "supervisor.recover" trace span
    int attempts_left = 0;       ///< spares we may still try
  };

  /// A dark standby for a suspected host.
  struct Standby {
    bool pending = false;  ///< deploy in flight
    bool ready = false;    ///< acked, promotable
    net::Endpoint host;
    std::string job_id;
    std::uint64_t epoch = 0;
  };

  struct Obs {
    obs::CounterRef checkpoints_taken, probes_sent, probes_answered,
        failures_detected, recoveries, recoveries_failed, fenced_msgs,
        speculative_deploys;
    obs::HistogramRef recovery_s;  ///< detection -> recovery ack
    obs::TracerRef tracer;
    std::string node;
  };

  TrianaService& home() const { return controller_.home(); }
  bool fencing() const { return options_.lease_s > 0.0; }

  void checkpoint_round();
  void probe_round();
  void on_activity(const net::Endpoint& from);
  void rebuild_contact_index();
  void set_phi_gauge(std::size_t idx, double phi);

  void recover(std::size_t idx);
  /// After the zombie's lease has provably expired (no-op wait when
  /// fencing is off): promote the standby if one is ready, else redeploy.
  void begin_replacement(std::shared_ptr<Recovery> rec);
  void attempt_redeploy(std::shared_ptr<Recovery> rec);
  void complete_recovery(std::shared_ptr<Recovery> rec,
                         const net::Endpoint& host, const std::string& job_id,
                         std::uint64_t epoch);
  void fail_recovery(std::shared_ptr<Recovery> rec, const std::string& why);
  /// Tell everyone fragment `idx` moved: rebind its input labels, fence its
  /// output labels at `epoch` (fencing mode), including the dead host so a
  /// returning zombie halts itself.
  void broadcast_refence(std::size_t idx, std::uint64_t epoch,
                         const net::Endpoint& dead);

  void deploy_standby(std::size_t idx);
  void cancel_standby(std::size_t idx);

  TrianaController& controller_;
  std::shared_ptr<DistributedRun> run_;
  std::vector<net::Endpoint> spares_;
  SupervisorOptions options_;
  CheckpointStore store_;
  std::vector<int> missed_;       ///< consecutive unanswered probes (bootstrap)
  std::vector<bool> recovering_;  ///< guards double recovery per fragment
  std::vector<bool> degraded_;    ///< lost for good; stop probing
  std::vector<PhiAccrualDetector> detectors_;
  std::vector<double> last_contact_;  ///< last evidence of life per fragment
  std::vector<std::uint64_t> epochs_; ///< active fencing epoch per fragment
  std::vector<Standby> standbys_;
  std::unordered_map<std::string, std::size_t> contact_idx_;  ///< endpoint -> fragment
  std::uint64_t next_epoch_ = 1;
  bool started_ = false;
  bool stopped_ = false;
  SupervisorStats stats_;
  Obs obs_;
  obs::Registry* registry_ = nullptr;  ///< for lazy per-host phi gauges
  std::string obs_scope_;
  std::unordered_map<std::string, obs::GaugeRef> phi_gauges_;
};

}  // namespace cg::core
