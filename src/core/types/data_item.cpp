#include "core/types/data_item.hpp"

#include "serial/reader.hpp"
#include "serial/writer.hpp"

namespace cg::core {

std::size_t DataItem::byte_size() const {
  switch (type()) {
    case DataType::kEmpty: return 1;
    case DataType::kScalar: return 9;
    case DataType::kInteger: return 9;
    case DataType::kText: return 1 + text().size();
    case DataType::kSampleSet: return 9 + samples().samples.size() * 8;
    case DataType::kSpectrum: return 9 + spectrum().power.size() * 8;
    case DataType::kImage: return 9 + image().pixels.size() * 8;
    case DataType::kTable: {
      std::size_t n = 1;
      for (const auto& c : table().columns) n += c.size() + 1;
      for (const auto& r : table().rows) {
        for (const auto& cell : r) n += cell.size() + 1;
      }
      return n;
    }
  }
  return 1;
}

std::string data_type_name(DataType t) {
  switch (t) {
    case DataType::kEmpty: return "empty";
    case DataType::kScalar: return "scalar";
    case DataType::kInteger: return "integer";
    case DataType::kText: return "text";
    case DataType::kSampleSet: return "sample-set";
    case DataType::kSpectrum: return "spectrum";
    case DataType::kImage: return "image";
    case DataType::kTable: return "table";
  }
  return "empty";
}

serial::Bytes encode_data_item(const DataItem& item) {
  serial::Writer w(item.byte_size() + 8);
  w.u8(static_cast<std::uint8_t>(item.type()));
  switch (item.type()) {
    case DataType::kEmpty:
      break;
    case DataType::kScalar:
      w.f64(item.scalar());
      break;
    case DataType::kInteger:
      w.i64(item.integer());
      break;
    case DataType::kText:
      w.string(item.text());
      break;
    case DataType::kSampleSet:
      w.f64(item.samples().sample_rate);
      w.f64_vector(item.samples().samples);
      break;
    case DataType::kSpectrum:
      w.f64(item.spectrum().bin_width);
      w.f64_vector(item.spectrum().power);
      break;
    case DataType::kImage:
      w.u32(item.image().width);
      w.u32(item.image().height);
      w.f64_vector(item.image().pixels);
      break;
    case DataType::kTable: {
      const Table& t = item.table();
      w.varint(t.columns.size());
      for (const auto& c : t.columns) w.string(c);
      w.varint(t.rows.size());
      for (const auto& r : t.rows) {
        if (r.size() != t.columns.size()) {
          throw std::invalid_argument("table row arity mismatch");
        }
        for (const auto& cell : r) w.string(cell);
      }
      break;
    }
  }
  return w.take();
}

DataItem decode_data_item(const serial::Bytes& bytes) {
  serial::Reader r(bytes);
  const auto t = static_cast<DataType>(r.u8());
  switch (t) {
    case DataType::kEmpty:
      return DataItem();
    case DataType::kScalar:
      return DataItem(r.f64());
    case DataType::kInteger:
      return DataItem(static_cast<std::int64_t>(r.i64()));
    case DataType::kText:
      return DataItem(r.string());
    case DataType::kSampleSet: {
      SampleSet s;
      s.sample_rate = r.f64();
      s.samples = r.f64_vector();
      return DataItem(std::move(s));
    }
    case DataType::kSpectrum: {
      SpectrumData s;
      s.bin_width = r.f64();
      s.power = r.f64_vector();
      return DataItem(std::move(s));
    }
    case DataType::kImage: {
      ImageFrame f;
      f.width = r.u32();
      f.height = r.u32();
      f.pixels = r.f64_vector();
      if (f.pixels.size() !=
          static_cast<std::size_t>(f.width) * f.height) {
        throw serial::DecodeError("image pixel count mismatch");
      }
      return DataItem(std::move(f));
    }
    case DataType::kTable: {
      Table tb;
      const std::uint64_t ncols = r.varint();
      for (std::uint64_t i = 0; i < ncols; ++i) {
        tb.columns.push_back(r.string());
      }
      const std::uint64_t nrows = r.varint();
      for (std::uint64_t i = 0; i < nrows; ++i) {
        std::vector<std::string> row;
        for (std::uint64_t j = 0; j < ncols; ++j) row.push_back(r.string());
        tb.rows.push_back(std::move(row));
      }
      return DataItem(std::move(tb));
    }
  }
  throw serial::DecodeError("unknown DataItem type tag");
}

}  // namespace cg::core
