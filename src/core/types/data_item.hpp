// ConGrid -- the typed data model flowing between units.
//
// Triana "provides a set of built-in data types that can be used to connect
// different Peer services -- and undertake type checking on their
// connectivity" (paper 3.1; the workflow example carries
// triana.types.SampleSet). ConGrid's DataItem is a closed variant over the
// types the built-in unit library manipulates: scalars, text, sampled
// signals, spectra, image frames and small relational tables. Ports declare
// which alternatives they accept via a type mask, and graph validation
// rejects incompatible connections before anything runs.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "serial/bytes.hpp"

namespace cg::core {

/// A uniformly sampled real signal (triana.types.SampleSet analogue).
struct SampleSet {
  double sample_rate = 1.0;  ///< Hz
  std::vector<double> samples;
  bool operator==(const SampleSet&) const = default;
};

/// A one-sided power spectrum.
struct SpectrumData {
  double bin_width = 1.0;  ///< Hz per bin
  std::vector<double> power;
  bool operator==(const SpectrumData&) const = default;
};

/// A dense grayscale raster (galaxy-animation frames).
struct ImageFrame {
  std::uint32_t width = 0;
  std::uint32_t height = 0;
  std::vector<double> pixels;  ///< row-major, width*height
  bool operator==(const ImageFrame&) const = default;
};

/// A small relational table (database-access scenario).
struct Table {
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
  bool operator==(const Table&) const = default;
};

/// Discriminants, also used as bits in port type masks.
enum class DataType : std::uint8_t {
  kEmpty = 0,
  kScalar = 1,
  kInteger = 2,
  kText = 3,
  kSampleSet = 4,
  kSpectrum = 5,
  kImage = 6,
  kTable = 7,
};

/// Bitmask helpers for PortSpec::accepts.
constexpr std::uint32_t type_bit(DataType t) {
  return 1u << static_cast<std::uint8_t>(t);
}
constexpr std::uint32_t kAnyType = 0xFFFFFFFFu;

/// The value travelling along a connection.
class DataItem {
 public:
  DataItem() = default;
  DataItem(double v) : value_(v) {}                       // NOLINT(runtime/explicit)
  DataItem(std::int64_t v) : value_(v) {}                 // NOLINT
  DataItem(std::string v) : value_(std::move(v)) {}       // NOLINT
  DataItem(SampleSet v) : value_(std::move(v)) {}         // NOLINT
  DataItem(SpectrumData v) : value_(std::move(v)) {}      // NOLINT
  DataItem(ImageFrame v) : value_(std::move(v)) {}        // NOLINT
  DataItem(Table v) : value_(std::move(v)) {}             // NOLINT

  DataType type() const {
    return static_cast<DataType>(value_.index());
  }
  bool empty() const { return type() == DataType::kEmpty; }

  /// Typed accessors; throw std::bad_variant_access on mismatch.
  double scalar() const { return std::get<double>(value_); }
  std::int64_t integer() const { return std::get<std::int64_t>(value_); }
  const std::string& text() const { return std::get<std::string>(value_); }
  const SampleSet& samples() const { return std::get<SampleSet>(value_); }
  const SpectrumData& spectrum() const {
    return std::get<SpectrumData>(value_);
  }
  const ImageFrame& image() const { return std::get<ImageFrame>(value_); }
  const Table& table() const { return std::get<Table>(value_); }

  /// Approximate payload size (for bandwidth accounting).
  std::size_t byte_size() const;

  bool operator==(const DataItem&) const = default;

 private:
  std::variant<std::monostate, double, std::int64_t, std::string, SampleSet,
               SpectrumData, ImageFrame, Table>
      value_;
};

/// Human-readable type name ("sample-set", "spectrum", ...).
std::string data_type_name(DataType t);

/// Binary codec: DataItems travel over pipes and inside checkpoints.
serial::Bytes encode_data_item(const DataItem& item);
DataItem decode_data_item(const serial::Bytes& bytes);

}  // namespace cg::core
