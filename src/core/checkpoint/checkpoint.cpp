#include "core/checkpoint/checkpoint.hpp"

#include "serial/reader.hpp"
#include "serial/writer.hpp"

namespace cg::core {

bool CheckpointStore::put(const std::string& key, serial::Bytes state,
                          double taken_at) {
  auto it = records_.find(key);
  if (it == records_.end()) {
    records_[key] = CheckpointRecord{std::move(state), taken_at, 1};
    return true;
  }
  if (taken_at < it->second.taken_at) return false;  // stale
  it->second.state = std::move(state);
  it->second.taken_at = taken_at;
  ++it->second.sequence;
  return true;
}

std::optional<CheckpointRecord> CheckpointStore::get(
    const std::string& key) const {
  auto it = records_.find(key);
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

bool CheckpointStore::erase(const std::string& key) {
  return records_.erase(key) > 0;
}

std::size_t CheckpointStore::total_bytes() const {
  std::size_t n = 0;
  for (const auto& [key, r] : records_) n += r.state.size();
  return n;
}

serial::Bytes CheckpointStore::serialise() const {
  serial::Writer w;
  w.varint(records_.size());
  for (const auto& [key, r] : records_) {
    w.string(key);
    w.blob(r.state);
    w.f64(r.taken_at);
    w.u64(r.sequence);
  }
  return w.take();
}

CheckpointStore CheckpointStore::deserialise(const serial::Bytes& data) {
  serial::Reader r(data);
  CheckpointStore store;
  const std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::string key = r.string();
    CheckpointRecord rec;
    rec.state = r.blob();
    rec.taken_at = r.f64();
    rec.sequence = r.u64();
    store.records_[key] = std::move(rec);
  }
  return store;
}

}  // namespace cg::core
