// ConGrid -- checkpoint store.
//
// Controller-side keeper of fragment checkpoints: the periodic-checkpoint
// loop of experiment E8 stores each fragment's latest state here so that
// when a volunteer disappears mid-computation, the fragment resumes on a
// new worker from the last saved state rather than from scratch (paper
// 3.6.2: "A check-pointing mechanism may also be employed to migrate
// computation if necessary").
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "serial/bytes.hpp"

namespace cg::core {

struct CheckpointRecord {
  serial::Bytes state;
  double taken_at = 0;       ///< clock seconds when captured
  std::uint64_t sequence = 0;  ///< monotonically increasing per key
};

/// Latest-wins store of checkpoints keyed by an application-chosen id
/// (fragment index, job id, ...). Serialisable so a controller can itself
/// be restarted.
class CheckpointStore {
 public:
  /// Store a newer checkpoint for `key`; stale sequence numbers are
  /// rejected (returns false) so out-of-order arrivals cannot regress.
  bool put(const std::string& key, serial::Bytes state, double taken_at);

  std::optional<CheckpointRecord> get(const std::string& key) const;
  bool erase(const std::string& key);
  std::size_t size() const { return records_.size(); }
  /// Sum of stored state bytes (capacity planning in E8).
  std::size_t total_bytes() const;

  serial::Bytes serialise() const;
  static CheckpointStore deserialise(const serial::Bytes& data);

 private:
  std::map<std::string, CheckpointRecord> records_;
};

}  // namespace cg::core
