// ConGrid -- task graphs.
//
// The workflow document at the heart of Triana (paper 3.1-3.4 and Code
// Segment 1): tasks (unit instances with parameters), data-flow
// connections, and hierarchical *group* tasks. "Tools have to be grouped in
// order to be distributed ... the unit of distribution is a group"; a group
// carries its distribution policy and explicit port maps from the group's
// boundary ports to inner task ports (Code Segment 1's node0 mapping).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/unit/unit.hpp"

namespace cg::core {

/// A data-flow edge: (from_task, from_port) -> (to_task, to_port). `label`
/// is assigned during distribution annotation ("each group input and output
/// connection is uniquely labelled by the local service", 3.4); empty for
/// purely local connections.
struct Connection {
  std::string from_task;
  std::size_t from_port = 0;
  std::string to_task;
  std::size_t to_port = 0;
  std::string label;

  bool operator==(const Connection&) const = default;
};

class TaskGraph;

/// Maps one boundary port of a group to an inner task port.
struct GroupPort {
  std::string inner_task;
  std::size_t inner_port = 0;
  bool operator==(const GroupPort&) const = default;
};

/// One node of a task graph: either a unit instance or a nested group.
struct TaskDef {
  std::string name;
  std::string unit_type;  ///< empty for groups
  ParamSet params;

  // Group-only fields.
  std::unique_ptr<TaskGraph> group;  ///< nested graph when this is a group
  std::string policy;                ///< distribution policy name
  std::vector<GroupPort> group_inputs;   ///< boundary input -> inner port
  std::vector<GroupPort> group_outputs;  ///< inner port -> boundary output

  bool is_group() const { return group != nullptr; }

  TaskDef clone() const;
};

/// A named workflow. Move-only (owns nested graphs); use clone() to copy.
class TaskGraph {
 public:
  TaskGraph() = default;
  explicit TaskGraph(std::string name) : name_(std::move(name)) {}

  TaskGraph(TaskGraph&&) = default;
  TaskGraph& operator=(TaskGraph&&) = default;
  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  /// Add a unit task. Throws std::invalid_argument on duplicate names.
  TaskDef& add_task(const std::string& name, const std::string& unit_type,
                    ParamSet params = {});

  /// Add a group task wrapping `inner`, with a distribution policy name
  /// ("", "parallel" or "p2p").
  TaskDef& add_group(const std::string& name, TaskGraph inner,
                     const std::string& policy = "");

  /// Connect (from:port) -> (to:port).
  Connection& connect(const std::string& from, std::size_t from_port,
                      const std::string& to, std::size_t to_port);

  const TaskDef* task(const std::string& name) const;
  TaskDef* task(const std::string& name);
  /// Task lookup that throws std::out_of_range with context.
  const TaskDef& require_task(const std::string& name) const;

  const std::vector<TaskDef>& tasks() const { return tasks_; }
  std::vector<TaskDef>& tasks() { return tasks_; }
  const std::vector<Connection>& connections() const { return connections_; }
  std::vector<Connection>& connections() { return connections_; }

  /// Connections into / out of a given task.
  std::vector<const Connection*> inputs_of(const std::string& task) const;
  std::vector<const Connection*> outputs_of(const std::string& task) const;

  /// Deep copy.
  TaskGraph clone() const;

  /// Total number of tasks including those inside nested groups.
  std::size_t total_task_count() const;

 private:
  std::string name_;
  std::vector<TaskDef> tasks_;
  std::vector<Connection> connections_;
};

/// Inline every group (recursively): inner tasks are renamed
/// "<group>/<task>" and boundary connections re-wired through the port
/// maps. The result contains only unit tasks.
TaskGraph flatten(const TaskGraph& g);

}  // namespace cg::core
