// ConGrid -- task-graph XML codec.
//
// The paper's workflows are XML documents (Code Segment 1); ConGrid's
// format mirrors its structure: <task> elements with <param> children,
// nested <taskgraph> for groups with <groupinput>/<groupoutput> port maps,
// and <connection> elements. Everything the engine needs round-trips, so a
// graph can be shipped to a remote Triana service as text ("the graph
// itself is a text file that does not consume many resources", 3.3).
#pragma once

#include <string>

#include "core/graph/taskgraph.hpp"
#include "xml/node.hpp"

namespace cg::core {

xml::Node taskgraph_to_xml(const TaskGraph& g);
TaskGraph taskgraph_from_xml(const xml::Node& n);

/// Document-string convenience wrappers.
std::string write_taskgraph(const TaskGraph& g, bool pretty = true);
TaskGraph parse_taskgraph(const std::string& document);

}  // namespace cg::core
