// ConGrid -- group extraction and annotation.
//
// The distribution procedure of paper 3.4: "a workflow is annotated in two
// ways: firstly, each group input and output connection is uniquely
// labelled by the local service; and, secondly, the group being distributed
// is extracted from the workflow and sent to the remote Triana service."
// extract_group() performs exactly that split: the home graph keeps
// Send/Receive proxies where the group used to be, and the remote fragment
// is the group's inner graph fitted with matching Receive/Send proxies.
// Labels are unique per extraction (prefix supplied by the caller), and
// are the names the remote side advertises as input pipes.
#pragma once

#include <string>
#include <vector>

#include "core/graph/taskgraph.hpp"

namespace cg::core {

/// One cross-peer data channel created by an extraction.
struct BoundaryChannel {
  std::string label;        ///< globally unique pipe name
  std::size_t group_port;   ///< which boundary port of the group
  bool into_group;          ///< true: home -> remote; false: remote -> home
  bool operator==(const BoundaryChannel&) const = default;
};

struct GroupExtraction {
  TaskGraph home_graph;      ///< original graph, group replaced by proxies
  TaskGraph remote_fragment; ///< inner graph plus boundary proxies
  std::vector<BoundaryChannel> channels;
};

/// Split `g` around its group task `group_name`. `label_prefix` must be
/// unique per deployment (the controller includes a nonce); channel labels
/// are "<prefix>/in<i>" and "<prefix>/out<j>". Throws std::out_of_range if
/// the task is missing, std::invalid_argument if it is not a group.
GroupExtraction extract_group(const TaskGraph& g,
                              const std::string& group_name,
                              const std::string& label_prefix);

}  // namespace cg::core
