#include "core/graph/validate.hpp"

#include <map>
#include <set>
#include <stdexcept>

namespace cg::core {
namespace {

std::string conn_desc(const Connection& c) {
  return c.from_task + ":" + std::to_string(c.from_port) + "->" + c.to_task +
         ":" + std::to_string(c.to_port);
}

/// (input count, output count) of a task, or nullopt when unknowable
/// (unknown unit type -- already reported separately).
struct PortCounts {
  std::size_t in = 0;
  std::size_t out = 0;
};

std::optional<PortCounts> port_counts(const TaskDef& t,
                                      const UnitRegistry& registry) {
  if (t.is_group()) {
    return PortCounts{t.group_inputs.size(), t.group_outputs.size()};
  }
  if (!registry.has(t.unit_type)) return std::nullopt;
  const UnitInfo& info = registry.info(t.unit_type);
  return PortCounts{info.inputs.size(), info.outputs.size()};
}

void validate_into(const TaskGraph& g, const UnitRegistry& registry,
                   const std::string& prefix,
                   std::vector<ValidationIssue>& issues) {
  auto report = [&](const std::string& where, const std::string& problem) {
    issues.push_back(ValidationIssue{prefix + where, problem});
  };

  // -- tasks ---------------------------------------------------------------
  for (const auto& t : g.tasks()) {
    if (t.is_group()) {
      // Port maps must reference existing inner tasks and valid ports.
      auto check_map = [&](const std::vector<GroupPort>& ports,
                           bool is_input) {
        for (std::size_t i = 0; i < ports.size(); ++i) {
          const TaskDef* inner = t.group->task(ports[i].inner_task);
          if (!inner) {
            report(t.name, std::string("group ") +
                               (is_input ? "input" : "output") + " port " +
                               std::to_string(i) +
                               " maps to unknown inner task '" +
                               ports[i].inner_task + "'");
            continue;
          }
          auto counts = port_counts(*inner, registry);
          if (!counts) continue;  // unknown type reported during recursion
          const std::size_t limit = is_input ? counts->in : counts->out;
          if (ports[i].inner_port >= limit) {
            report(t.name, "group port map exceeds inner task's ports");
          }
        }
      };
      check_map(t.group_inputs, true);
      check_map(t.group_outputs, false);
      validate_into(*t.group, registry, prefix + t.name + "/", issues);
      continue;
    }
    if (!registry.has(t.unit_type)) {
      report(t.name, "unknown unit type '" + t.unit_type + "'");
    }
  }

  // -- connections ------------------------------------------------------------
  std::set<std::pair<std::string, std::size_t>> used_inputs;
  for (const auto& c : g.connections()) {
    const TaskDef* from = g.task(c.from_task);
    const TaskDef* to = g.task(c.to_task);
    if (!from) report(conn_desc(c), "unknown source task");
    if (!to) report(conn_desc(c), "unknown destination task");
    if (!from || !to) continue;

    auto fc = port_counts(*from, registry);
    auto tc = port_counts(*to, registry);
    if (fc && c.from_port >= fc->out) {
      report(conn_desc(c), "source port out of range");
    }
    if (tc && c.to_port >= tc->in) {
      report(conn_desc(c), "destination port out of range");
    }

    if (!used_inputs.insert({c.to_task, c.to_port}).second) {
      report(conn_desc(c), "destination input port already connected");
    }

    // Type compatibility, when both endpoints are unit tasks with known
    // types. (Group boundaries are checked once flattened.)
    if (!from->is_group() && !to->is_group() && fc && tc &&
        c.from_port < fc->out && c.to_port < tc->in) {
      const auto& out_spec = registry.info(from->unit_type).outputs[c.from_port];
      const auto& in_spec = registry.info(to->unit_type).inputs[c.to_port];
      if ((out_spec.accepts & in_spec.accepts) == 0) {
        report(conn_desc(c), "incompatible port types");
      }
    }
  }

  // -- acyclicity (Kahn) ----------------------------------------------------
  std::map<std::string, std::size_t> indegree;
  for (const auto& t : g.tasks()) indegree[t.name] = 0;
  for (const auto& c : g.connections()) {
    if (indegree.contains(c.to_task) && g.task(c.from_task)) {
      ++indegree[c.to_task];
    }
  }
  std::vector<std::string> ready;
  for (const auto& [name, deg] : indegree) {
    if (deg == 0) ready.push_back(name);
  }
  std::size_t visited = 0;
  while (!ready.empty()) {
    const std::string t = ready.back();
    ready.pop_back();
    ++visited;
    for (const auto& c : g.connections()) {
      if (c.from_task != t) continue;
      auto it = indegree.find(c.to_task);
      if (it == indegree.end()) continue;
      if (--it->second == 0) ready.push_back(c.to_task);
    }
  }
  if (visited != indegree.size()) {
    report("(graph)", "cycle detected");
  }
}

}  // namespace

std::string ValidationReport::to_string() const {
  std::string out;
  for (const auto& i : issues) {
    out += i.where + ": " + i.problem + "\n";
  }
  return out;
}

ValidationReport validate(const TaskGraph& g, const UnitRegistry& registry) {
  ValidationReport report;
  validate_into(g, registry, "", report.issues);
  return report;
}

void validate_or_throw(const TaskGraph& g, const UnitRegistry& registry) {
  ValidationReport r = validate(g, registry);
  if (!r.ok()) {
    throw std::invalid_argument("invalid task graph '" + g.name() + "':\n" +
                                r.to_string());
  }
}

}  // namespace cg::core
