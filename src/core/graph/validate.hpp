// ConGrid -- task-graph validation.
//
// Triana "undertake[s] type checking on their connectivity" (paper 3.1)
// before anything is deployed. Validation resolves every task's unit type
// against a registry, checks port indices, verifies the type masks of
// connected ports overlap, checks group port maps, and rejects cycles (the
// engine executes DAG data-flow). Problems are reported all at once rather
// than fail-fast, so a GUI could show every red connection.
#pragma once

#include <string>
#include <vector>

#include "core/graph/taskgraph.hpp"
#include "core/unit/registry.hpp"

namespace cg::core {

struct ValidationIssue {
  std::string where;    ///< task or "a:0->b:1" connection description
  std::string problem;
};

struct ValidationReport {
  std::vector<ValidationIssue> issues;
  bool ok() const { return issues.empty(); }
  /// All problems joined, one per line (for exception messages).
  std::string to_string() const;
};

/// Validate `g` (recursing into groups) against `registry`.
ValidationReport validate(const TaskGraph& g, const UnitRegistry& registry);

/// validate() and throw std::invalid_argument when not ok.
void validate_or_throw(const TaskGraph& g, const UnitRegistry& registry);

}  // namespace cg::core
