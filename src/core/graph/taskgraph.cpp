#include "core/graph/taskgraph.hpp"

#include <stdexcept>

namespace cg::core {

TaskDef TaskDef::clone() const {
  TaskDef t;
  t.name = name;
  t.unit_type = unit_type;
  t.params = params;
  t.policy = policy;
  t.group_inputs = group_inputs;
  t.group_outputs = group_outputs;
  if (group) t.group = std::make_unique<TaskGraph>(group->clone());
  return t;
}

TaskDef& TaskGraph::add_task(const std::string& name,
                             const std::string& unit_type, ParamSet params) {
  if (task(name)) {
    throw std::invalid_argument("duplicate task name: " + name);
  }
  TaskDef t;
  t.name = name;
  t.unit_type = unit_type;
  t.params = std::move(params);
  tasks_.push_back(std::move(t));
  return tasks_.back();
}

TaskDef& TaskGraph::add_group(const std::string& name, TaskGraph inner,
                              const std::string& policy) {
  if (task(name)) {
    throw std::invalid_argument("duplicate task name: " + name);
  }
  TaskDef t;
  t.name = name;
  t.group = std::make_unique<TaskGraph>(std::move(inner));
  t.policy = policy;
  tasks_.push_back(std::move(t));
  return tasks_.back();
}

Connection& TaskGraph::connect(const std::string& from, std::size_t from_port,
                               const std::string& to, std::size_t to_port) {
  connections_.push_back(Connection{from, from_port, to, to_port, ""});
  return connections_.back();
}

const TaskDef* TaskGraph::task(const std::string& name) const {
  for (const auto& t : tasks_) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

TaskDef* TaskGraph::task(const std::string& name) {
  for (auto& t : tasks_) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

const TaskDef& TaskGraph::require_task(const std::string& name) const {
  const TaskDef* t = task(name);
  if (!t) {
    throw std::out_of_range("graph '" + name_ + "' has no task '" + name +
                            "'");
  }
  return *t;
}

std::vector<const Connection*> TaskGraph::inputs_of(
    const std::string& task) const {
  std::vector<const Connection*> out;
  for (const auto& c : connections_) {
    if (c.to_task == task) out.push_back(&c);
  }
  return out;
}

std::vector<const Connection*> TaskGraph::outputs_of(
    const std::string& task) const {
  std::vector<const Connection*> out;
  for (const auto& c : connections_) {
    if (c.from_task == task) out.push_back(&c);
  }
  return out;
}

TaskGraph TaskGraph::clone() const {
  TaskGraph g(name_);
  for (const auto& t : tasks_) g.tasks_.push_back(t.clone());
  g.connections_ = connections_;
  return g;
}

std::size_t TaskGraph::total_task_count() const {
  std::size_t n = 0;
  for (const auto& t : tasks_) {
    n += t.is_group() ? t.group->total_task_count() : 1;
  }
  return n;
}

namespace {

/// Follow a group boundary port down to the unit task that actually owns
/// it, across arbitrarily nested groups. Returns the flattened task path
/// (relative to the group's inner graph) and the unit-level port.
std::pair<std::string, std::size_t> resolve_boundary(const TaskGraph& inner,
                                                     const GroupPort& gp,
                                                     bool is_input) {
  const TaskDef& t = inner.require_task(gp.inner_task);
  if (!t.is_group()) return {gp.inner_task, gp.inner_port};
  const auto& ports = is_input ? t.group_inputs : t.group_outputs;
  if (gp.inner_port >= ports.size()) {
    throw std::out_of_range("group '" + t.name + "' has no " +
                            (is_input ? "input" : "output") + " port " +
                            std::to_string(gp.inner_port));
  }
  auto nested = resolve_boundary(*t.group, ports[gp.inner_port], is_input);
  return {t.name + "/" + nested.first, nested.second};
}

}  // namespace

TaskGraph flatten(const TaskGraph& g) {
  TaskGraph out(g.name());

  // 1. Emit tasks: unit tasks verbatim, groups recursively flattened with
  //    prefixed names.
  for (const auto& t : g.tasks()) {
    if (!t.is_group()) {
      out.tasks().push_back(t.clone());
      continue;
    }
    TaskGraph inner = flatten(*t.group);
    for (auto& it : inner.tasks()) {
      TaskDef moved = std::move(it);
      moved.name = t.name + "/" + moved.name;
      out.tasks().push_back(std::move(moved));
    }
    for (auto c : inner.connections()) {
      c.from_task = t.name + "/" + c.from_task;
      c.to_task = t.name + "/" + c.to_task;
      out.connections().push_back(std::move(c));
    }
  }

  // 2. Re-wire outer connections whose endpoints are groups through the
  //    boundary port maps.
  for (const auto& c : g.connections()) {
    Connection r = c;
    if (const TaskDef* from = g.task(c.from_task); from && from->is_group()) {
      if (c.from_port >= from->group_outputs.size()) {
        throw std::out_of_range("group '" + from->name +
                                "' has no output port " +
                                std::to_string(c.from_port));
      }
      auto [path, port] = resolve_boundary(
          *from->group, from->group_outputs[c.from_port], /*is_input=*/false);
      r.from_task = from->name + "/" + path;
      r.from_port = port;
    }
    if (const TaskDef* to = g.task(c.to_task); to && to->is_group()) {
      if (c.to_port >= to->group_inputs.size()) {
        throw std::out_of_range("group '" + to->name +
                                "' has no input port " +
                                std::to_string(c.to_port));
      }
      auto [path, port] = resolve_boundary(
          *to->group, to->group_inputs[c.to_port], /*is_input=*/true);
      r.to_task = to->name + "/" + path;
      r.to_port = port;
    }
    out.connections().push_back(std::move(r));
  }
  return out;
}

}  // namespace cg::core
