#include "core/graph/taskgraph_xml.hpp"

#include "xml/parse.hpp"
#include "xml/write.hpp"

namespace cg::core {

xml::Node taskgraph_to_xml(const TaskGraph& g) {
  xml::Node n("taskgraph");
  n.set_attr("name", g.name());
  for (const auto& t : g.tasks()) {
    auto& tn = n.add_child("task");
    tn.set_attr("name", t.name);
    if (t.is_group()) {
      if (!t.policy.empty()) tn.set_attr("policy", t.policy);
      tn.add_child(taskgraph_to_xml(*t.group));
      for (const auto& gp : t.group_inputs) {
        auto& c = tn.add_child("groupinput");
        c.set_attr("task", gp.inner_task);
        c.set_attr_int("port", static_cast<long long>(gp.inner_port));
      }
      for (const auto& gp : t.group_outputs) {
        auto& c = tn.add_child("groupoutput");
        c.set_attr("task", gp.inner_task);
        c.set_attr_int("port", static_cast<long long>(gp.inner_port));
      }
    } else {
      tn.set_attr("type", t.unit_type);
    }
    for (const auto& [k, v] : t.params.raw()) {
      auto& p = tn.add_child("param");
      p.set_attr("key", k);
      p.set_attr("value", v);
    }
  }
  for (const auto& c : g.connections()) {
    auto& cn = n.add_child("connection");
    cn.set_attr("from", c.from_task);
    cn.set_attr_int("fromport", static_cast<long long>(c.from_port));
    cn.set_attr("to", c.to_task);
    cn.set_attr_int("toport", static_cast<long long>(c.to_port));
    if (!c.label.empty()) cn.set_attr("label", c.label);
  }
  return n;
}

TaskGraph taskgraph_from_xml(const xml::Node& n) {
  if (n.name() != "taskgraph") {
    throw xml::XmlError("expected <taskgraph>, got <" + n.name() + ">");
  }
  TaskGraph g(n.attr_or("name", ""));
  for (const xml::Node* tn : n.children("task")) {
    ParamSet params;
    for (const xml::Node* p : tn->children("param")) {
      params.set(p->require_attr("key"), p->require_attr("value"));
    }
    const std::string name = tn->require_attr("name");
    if (const xml::Node* inner = tn->child("taskgraph")) {
      TaskDef& t = g.add_group(name, taskgraph_from_xml(*inner),
                               tn->attr_or("policy", ""));
      t.params = std::move(params);
      for (const xml::Node* gp : tn->children("groupinput")) {
        t.group_inputs.push_back(GroupPort{
            gp->require_attr("task"),
            static_cast<std::size_t>(gp->attr_int("port", 0))});
      }
      for (const xml::Node* gp : tn->children("groupoutput")) {
        t.group_outputs.push_back(GroupPort{
            gp->require_attr("task"),
            static_cast<std::size_t>(gp->attr_int("port", 0))});
      }
    } else {
      g.add_task(name, tn->require_attr("type"), std::move(params));
    }
  }
  for (const xml::Node* cn : n.children("connection")) {
    Connection c;
    c.from_task = cn->require_attr("from");
    c.from_port = static_cast<std::size_t>(cn->attr_int("fromport", 0));
    c.to_task = cn->require_attr("to");
    c.to_port = static_cast<std::size_t>(cn->attr_int("toport", 0));
    c.label = cn->attr_or("label", "");
    g.connections().push_back(std::move(c));
  }
  return g;
}

std::string write_taskgraph(const TaskGraph& g, bool pretty) {
  return xml::write(taskgraph_to_xml(g), pretty);
}

TaskGraph parse_taskgraph(const std::string& document) {
  return taskgraph_from_xml(xml::parse(document));
}

}  // namespace cg::core
