#include "core/graph/group_ops.hpp"

#include <stdexcept>

namespace cg::core {

GroupExtraction extract_group(const TaskGraph& g,
                              const std::string& group_name,
                              const std::string& label_prefix) {
  const TaskDef& group = g.require_task(group_name);
  if (!group.is_group()) {
    throw std::invalid_argument("task '" + group_name + "' is not a group");
  }

  GroupExtraction ex;

  // ---- remote fragment: inner graph + boundary proxies -------------------
  ex.remote_fragment = group.group->clone();
  ex.remote_fragment.set_name(g.name() + "/" + group_name);
  for (std::size_t i = 0; i < group.group_inputs.size(); ++i) {
    const std::string label = label_prefix + "/in" + std::to_string(i);
    ParamSet p;
    p.set("label", label);
    ex.remote_fragment.add_task("__recv" + std::to_string(i), "Receive", p);
    ex.remote_fragment.connect("__recv" + std::to_string(i), 0,
                               group.group_inputs[i].inner_task,
                               group.group_inputs[i].inner_port);
    ex.channels.push_back(BoundaryChannel{label, i, /*into_group=*/true});
  }
  for (std::size_t j = 0; j < group.group_outputs.size(); ++j) {
    const std::string label = label_prefix + "/out" + std::to_string(j);
    ParamSet p;
    p.set("label", label);
    ex.remote_fragment.add_task("__send" + std::to_string(j), "Send", p);
    ex.remote_fragment.connect(group.group_outputs[j].inner_task,
                               group.group_outputs[j].inner_port,
                               "__send" + std::to_string(j), 0);
    ex.channels.push_back(BoundaryChannel{label, j, /*into_group=*/false});
  }

  // ---- home graph: replace the group with Send/Receive proxies ------------
  ex.home_graph = TaskGraph(g.name());
  for (const auto& t : g.tasks()) {
    if (t.name == group_name) continue;
    ex.home_graph.tasks().push_back(t.clone());
  }
  // Proxies, one per boundary port actually used by outer connections --
  // but create them for every port so labels stay index-aligned.
  for (std::size_t i = 0; i < group.group_inputs.size(); ++i) {
    ParamSet p;
    p.set("label", label_prefix + "/in" + std::to_string(i));
    ex.home_graph.add_task(group_name + ".in" + std::to_string(i), "Send", p);
  }
  for (std::size_t j = 0; j < group.group_outputs.size(); ++j) {
    ParamSet p;
    p.set("label", label_prefix + "/out" + std::to_string(j));
    ex.home_graph.add_task(group_name + ".out" + std::to_string(j), "Receive",
                           p);
  }
  for (const auto& c : g.connections()) {
    Connection r = c;
    if (c.to_task == group_name) {
      r.to_task = group_name + ".in" + std::to_string(c.to_port);
      r.to_port = 0;
      r.label = label_prefix + "/in" + std::to_string(c.to_port);
    }
    if (c.from_task == group_name) {
      r.from_task = group_name + ".out" + std::to_string(c.from_port);
      r.from_port = 0;
      r.label = label_prefix + "/out" + std::to_string(c.from_port);
    }
    ex.home_graph.connections().push_back(std::move(r));
  }
  return ex;
}

}  // namespace cg::core
