#include "obs/metrics.hpp"

#include <algorithm>

#include "obs/json.hpp"

namespace cg::obs {

std::string scoped(std::string_view scope, std::string_view name) {
  if (scope.empty()) return std::string(name);
  std::string out;
  out.reserve(scope.size() + 1 + name.size());
  out.append(scope);
  out += '.';
  out.append(name);
  return out;
}

double HistogramData::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const std::uint64_t in_bucket = counts[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cum + in_bucket) >= target) {
      // Interpolate within [lo, hi); the overflow bucket is clamped to max.
      const double lo = b == 0 ? std::min(min, bounds.empty() ? min : bounds[0])
                               : bounds[b - 1];
      const double hi = b < bounds.size() ? bounds[b] : max;
      if (hi <= lo) return hi;
      const double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(in_bucket);
      return lo + std::clamp(frac, 0.0, 1.0) * (hi - lo);
    }
    cum += in_bucket;
  }
  return max;
}

const std::vector<double>& Histogram::default_latency_bounds() {
  static const std::vector<double> kBounds = {
      0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1,
      0.2,   0.5,   1.0,   2.0,  5.0,  10.0, 30.0, 60.0};
  return kBounds;
}

#if CONGRID_OBS_ENABLED

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(bounds.empty() ? default_latency_bounds() : std::move(bounds)),
      counts_(bounds_.size() + 1) {}

void Histogram::observe(double v) noexcept {
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), v);
  counts_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
  cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::count() const noexcept {
  return count_.load(std::memory_order_relaxed);
}

HistogramData Histogram::snapshot() const {
  HistogramData d;
  d.bounds = bounds_;
  d.counts.reserve(counts_.size());
  for (const auto& c : counts_) {
    d.counts.push_back(c.load(std::memory_order_relaxed));
  }
  d.count = count();
  d.sum = sum_.load(std::memory_order_relaxed);
  d.min = d.count ? min_.load(std::memory_order_relaxed) : 0.0;
  d.max = d.count ? max_.load(std::memory_order_relaxed) : 0.0;
  return d;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  return counters_[name];
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard lock(mu_);
  return gauges_[name];
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  std::lock_guard lock(mu_);
  return histograms_.try_emplace(name, std::move(bounds)).first->second;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot s;
  std::lock_guard lock(mu_);
  for (const auto& [name, c] : counters_) s.counters[name] = c.value();
  for (const auto& [name, g] : gauges_) s.gauges[name] = g.value();
  for (const auto& [name, h] : histograms_) s.histograms[name] = h.snapshot();
  return s;
}

#else  // CONGRID_OBS_ENABLED == 0

Histogram::Histogram(std::vector<double>) {}
void Histogram::observe(double) noexcept {}
std::uint64_t Histogram::count() const noexcept { return 0; }
HistogramData Histogram::snapshot() const { return {}; }

namespace {
Counter g_nop_counter;
Gauge g_nop_gauge;
Histogram g_nop_histogram;
}  // namespace

Counter& Registry::counter(const std::string&) { return g_nop_counter; }
Gauge& Registry::gauge(const std::string&) { return g_nop_gauge; }
Histogram& Registry::histogram(const std::string&, std::vector<double>) {
  return g_nop_histogram;
}
MetricsSnapshot Registry::snapshot() const { return {}; }

#endif  // CONGRID_OBS_ENABLED

std::uint64_t MetricsSnapshot::counter(const std::string& name) const {
  const auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

double MetricsSnapshot::gauge(const std::string& name) const {
  const auto it = gauges.find(name);
  return it == gauges.end() ? 0.0 : it->second;
}

const HistogramData* MetricsSnapshot::histogram(
    const std::string& name) const {
  const auto it = histograms.find(name);
  return it == histograms.end() ? nullptr : &it->second;
}

double MetricsSnapshot::histogram_quantile(const std::string& name,
                                           double q) const {
  const HistogramData* h = histogram(name);
  return h == nullptr ? 0.0 : h->quantile(q);
}

std::string MetricsSnapshot::to_json(bool pretty) const {
  const char* nl = pretty ? "\n" : "";
  const char* ind = pretty ? "  " : "";
  const char* ind2 = pretty ? "    " : "";
  std::string out;
  out += '{';
  out += nl;

  const auto emit_group = [&](const char* title, auto&& body, bool last) {
    out += ind;
    out += json_quote(title);
    out += pretty ? ": {" : ":{";
    out += nl;
    body();
    out += ind;
    out += '}';
    if (!last) out += ',';
    out += nl;
  };

  emit_group(
      "counters",
      [&] {
        std::size_t n = 0;
        for (const auto& [name, v] : counters) {
          out += ind2;
          out += json_quote(name);
          out += pretty ? ": " : ":";
          out += std::to_string(v);
          if (++n < counters.size()) out += ',';
          out += nl;
        }
      },
      false);

  emit_group(
      "gauges",
      [&] {
        std::size_t n = 0;
        for (const auto& [name, v] : gauges) {
          out += ind2;
          out += json_quote(name);
          out += pretty ? ": " : ":";
          out += json_number(v);
          if (++n < gauges.size()) out += ',';
          out += nl;
        }
      },
      false);

  emit_group(
      "histograms",
      [&] {
        std::size_t n = 0;
        for (const auto& [name, h] : histograms) {
          out += ind2;
          out += json_quote(name);
          out += pretty ? ": " : ":";
          out += "{\"count\":" + std::to_string(h.count);
          out += ",\"sum\":" + json_number(h.sum);
          out += ",\"min\":" + json_number(h.min);
          out += ",\"max\":" + json_number(h.max);
          out += ",\"mean\":" + json_number(h.mean());
          out += ",\"p50\":" + json_number(h.quantile(0.5));
          out += ",\"p95\":" + json_number(h.quantile(0.95));
          out += ",\"p99\":" + json_number(h.quantile(0.99));
          out += ",\"bounds\":[";
          for (std::size_t b = 0; b < h.bounds.size(); ++b) {
            if (b) out += ',';
            out += json_number(h.bounds[b]);
          }
          out += "],\"counts\":[";
          for (std::size_t b = 0; b < h.counts.size(); ++b) {
            if (b) out += ',';
            out += std::to_string(h.counts[b]);
          }
          out += "]}";
          if (++n < histograms.size()) out += ',';
          out += nl;
        }
      },
      true);

  out += '}';
  return out;
}

}  // namespace cg::obs
