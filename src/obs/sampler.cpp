#include "obs/sampler.hpp"

namespace cg::obs {

#if CONGRID_OBS_ENABLED

Sampler::Sampler(const Registry& registry) : Sampler(registry, Options{}) {}

Sampler::Sampler(const Registry& registry, Options opt)
    : opt_(opt), registry_(registry) {
  if (opt_.period_s <= 0.0) opt_.period_s = 1.0;
  if (opt_.window < 2) opt_.window = 2;
}

void Sampler::sample(double now_s) {
  // Snapshot outside the sampler's own lock: Registry::snapshot() takes the
  // registry mutex and may copy a few kilobytes.
  MetricsSnapshot snap = registry_.snapshot();
  std::lock_guard lock(mu_);
  window_.push_back(Sample{now_s, std::move(snap)});
  while (window_.size() > opt_.window) window_.pop_front();
  last_sample_t_ = now_s;
}

bool Sampler::maybe_sample(double now_s) {
  {
    std::lock_guard lock(mu_);
    if (last_sample_t_ >= 0.0 && now_s - last_sample_t_ < opt_.period_s) {
      return false;
    }
  }
  sample(now_s);
  return true;
}

std::size_t Sampler::size() const {
  std::lock_guard lock(mu_);
  return window_.size();
}

double Sampler::span_s() const {
  std::lock_guard lock(mu_);
  if (window_.size() < 2) return 0.0;
  return window_.back().t - window_.front().t;
}

MetricsSnapshot Sampler::latest() const {
  std::lock_guard lock(mu_);
  return window_.empty() ? MetricsSnapshot{} : window_.back().snapshot;
}

double Sampler::latest_t() const {
  std::lock_guard lock(mu_);
  return window_.empty() ? 0.0 : window_.back().t;
}

std::map<std::string, double> Sampler::counter_rates() const {
  std::lock_guard lock(mu_);
  std::map<std::string, double> rates;
  if (window_.size() < 2) return rates;
  const Sample& oldest = window_.front();
  const Sample& newest = window_.back();
  const double span = newest.t - oldest.t;
  if (span <= 0.0) return rates;
  for (const auto& [name, v] : newest.snapshot.counters) {
    const auto it = oldest.snapshot.counters.find(name);
    const std::uint64_t before = it == oldest.snapshot.counters.end()
                                     ? 0
                                     : it->second;
    // Counters are monotonic; a registry swap mid-window would break that,
    // so clamp rather than emit a negative rate.
    const std::uint64_t delta = v >= before ? v - before : 0;
    rates[name] = static_cast<double>(delta) / span;
  }
  return rates;
}

double Sampler::rate(const std::string& name) const {
  const auto rates = counter_rates();
  const auto it = rates.find(name);
  return it == rates.end() ? 0.0 : it->second;
}

#else  // CONGRID_OBS_ENABLED == 0

Sampler::Sampler(const Registry& registry) : Sampler(registry, Options{}) {}
Sampler::Sampler(const Registry&, Options opt) : opt_(opt) {}
void Sampler::sample(double) {}
bool Sampler::maybe_sample(double) { return false; }
std::size_t Sampler::size() const { return 0; }
double Sampler::span_s() const { return 0.0; }
MetricsSnapshot Sampler::latest() const { return {}; }
double Sampler::latest_t() const { return 0.0; }
std::map<std::string, double> Sampler::counter_rates() const { return {}; }
double Sampler::rate(const std::string&) const { return 0.0; }

#endif  // CONGRID_OBS_ENABLED

}  // namespace cg::obs
