// ConGrid -- structured event tracer: a bounded ring of timestamped events.
//
// Metrics say *how much*; traces say *what happened when*. The tracer
// records instants and spans (begin/end pairs sharing an id) stamped with
// sim time -- virtual seconds when driven from a SimNetwork, wall seconds
// otherwise -- and scoped to a node (peer id or "sim:<n>"), so one trace
// interleaves every peer of a simulated grid in causal order.
//
// Storage is a fixed-capacity ring: when full, the oldest events are
// overwritten and `dropped()` counts what was lost -- tracing must never
// grow without bound under retry storms. Export is JSONL (one JSON object
// per line), the format trace viewers and ad-hoc grep/jq both stomach.
//
// With CONGRID_OBS off every method is an inline no-op and the ring is
// never allocated.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/context.hpp"
#include "obs/metrics.hpp"  // CONGRID_OBS_ENABLED default

namespace cg::obs {

enum class EventKind : std::uint8_t { kInstant, kSpanBegin, kSpanEnd };

struct TraceEvent {
  double t = 0.0;          ///< tracer clock (sim seconds)
  EventKind kind = EventKind::kInstant;
  std::uint64_t span = 0;  ///< 0 for instants; begin/end pairs share an id
  std::string node;        ///< per-node scope ("home", "sim:3", ...)
  std::string name;        ///< event type ("reliable.retx", "deploy", ...)
  std::string detail;      ///< freeform "k=v k=v" payload
  /// Causal identity (PR 5): which per-run trace this event belongs to,
  /// which span caused it, and the node's Lamport clock. All zero for
  /// untraced events; exported to JSONL only when set.
  std::uint64_t trace = 0;
  std::uint64_t parent = 0;
  std::uint64_t lamport = 0;
};

class Tracer {
 public:
  /// `capacity` caps resident events; 0 is clamped to 1.
  explicit Tracer(std::size_t capacity = 4096);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Timestamp source; components driven by a SimNetwork install its
  /// virtual clock (SimNetwork::set_obs does this automatically).
  void set_clock(std::function<double()> clock);

  /// Make ring overwrites visible as metrics: binds the counter
  /// "<scope>.trace.dropped_events" (incremented once per overwritten
  /// event) and the gauge "<scope>.trace.ring_overwrites" (current
  /// dropped() total), so an incomplete trace shows up both in the
  /// snapshot a run exports and on a live /metrics scrape.
  void set_obs(Registry& registry, std::string_view scope = {});

  void event(std::string node, std::string name, std::string detail = "");
  /// Instant stamped with a causal context (cross-peer events).
  void event(std::string node, std::string name, const TraceContext& ctx,
             std::string detail = "");

  /// Open a span; returns its id (never 0 when enabled).
  std::uint64_t begin_span(std::string node, std::string name,
                           std::string detail = "");
  /// Open a span inside trace `ctx.trace_id`, caused by `ctx.parent_span`.
  std::uint64_t begin_span(std::string node, std::string name,
                           const TraceContext& ctx, std::string detail = "");
  /// Close a span by id. Ending span 0 (a disabled begin) is a no-op.
  void end_span(std::uint64_t span, std::string node, std::string name,
                std::string detail = "");

  /// Resident events, oldest first.
  std::vector<TraceEvent> events() const;
  std::size_t size() const;
  std::size_t capacity() const;
  /// Events overwritten since construction / clear().
  std::uint64_t dropped() const;
  void clear();

  /// JSONL export: a header object
  ///   {"congrid_trace":1,"events":N,"dropped":D,"capacity":C[,"node":...]}
  /// followed by one JSON object per event per line. "" when tracing is
  /// compiled out. Each line parses as a standalone JSON value
  /// (json_valid). `node_filter`, when non-empty, keeps only that node's
  /// events -- how per-peer trace files are produced from the shared ring
  /// (span ids stay globally unique across the filtered files, so
  /// congrid-trace can merge them back).
  std::string to_jsonl(std::string_view node_filter = {}) const;

#if CONGRID_OBS_ENABLED
 private:
  void push(TraceEvent ev);

  mutable std::mutex mu_;
  std::function<double()> clock_;
  std::vector<TraceEvent> ring_;
  std::size_t cap_;
  std::size_t head_ = 0;  ///< next write slot
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t next_span_ = 1;
  CounterRef dropped_c_;
  GaugeRef overwrites_g_;
#endif
};

/// Null-safe tracer handle, same idea as CounterRef.
class TracerRef {
 public:
  TracerRef() = default;
#if CONGRID_OBS_ENABLED
  /*implicit*/ TracerRef(Tracer* t) : t_(t) {}
  /// Guard string-building at call sites: `if (tracer) tracer.event(...)`.
  explicit operator bool() const { return t_ != nullptr; }
  void event(std::string node, std::string name,
             std::string detail = "") const {
    if (t_) t_->event(std::move(node), std::move(name), std::move(detail));
  }
  void event(std::string node, std::string name, const TraceContext& ctx,
             std::string detail = "") const {
    if (t_) {
      t_->event(std::move(node), std::move(name), ctx, std::move(detail));
    }
  }
  std::uint64_t begin_span(std::string node, std::string name,
                           std::string detail = "") const {
    return t_ ? t_->begin_span(std::move(node), std::move(name),
                               std::move(detail))
              : 0;
  }
  std::uint64_t begin_span(std::string node, std::string name,
                           const TraceContext& ctx,
                           std::string detail = "") const {
    return t_ ? t_->begin_span(std::move(node), std::move(name), ctx,
                               std::move(detail))
              : 0;
  }
  void end_span(std::uint64_t span, std::string node, std::string name,
                std::string detail = "") const {
    if (t_) {
      t_->end_span(span, std::move(node), std::move(name), std::move(detail));
    }
  }
  Tracer* get() const { return t_; }

 private:
  Tracer* t_ = nullptr;
#else
  /*implicit*/ TracerRef(Tracer*) {}
  explicit operator bool() const { return false; }
  void event(std::string, std::string, std::string = "") const {}
  void event(std::string, std::string, const TraceContext&,
             std::string = "") const {}
  std::uint64_t begin_span(std::string, std::string, std::string = "") const {
    return 0;
  }
  std::uint64_t begin_span(std::string, std::string, const TraceContext&,
                           std::string = "") const {
    return 0;
  }
  void end_span(std::uint64_t, std::string, std::string,
                std::string = "") const {}
  Tracer* get() const { return nullptr; }
#endif
};

}  // namespace cg::obs
