#include "obs/trace.hpp"

#include <algorithm>

#include "obs/json.hpp"

namespace cg::obs {

#if CONGRID_OBS_ENABLED

Tracer::Tracer(std::size_t capacity) : cap_(std::max<std::size_t>(1, capacity)) {
  ring_.resize(cap_);
}

void Tracer::set_clock(std::function<double()> clock) {
  std::lock_guard lock(mu_);
  clock_ = std::move(clock);
}

void Tracer::set_obs(Registry& registry, std::string_view scope) {
  std::lock_guard lock(mu_);
  dropped_c_ = registry.counter(scoped(scope, "trace.dropped_events"));
  overwrites_g_ = registry.gauge(scoped(scope, "trace.ring_overwrites"));
  overwrites_g_.set(static_cast<double>(dropped_));
}

void Tracer::push(TraceEvent ev) {
  std::lock_guard lock(mu_);
  ev.t = clock_ ? clock_() : 0.0;
  ring_[head_] = std::move(ev);
  head_ = (head_ + 1) % cap_;
  if (size_ < cap_) {
    ++size_;
  } else {
    ++dropped_;
    dropped_c_.inc();
    overwrites_g_.set(static_cast<double>(dropped_));
  }
}

void Tracer::event(std::string node, std::string name, std::string detail) {
  push(TraceEvent{0.0, EventKind::kInstant, 0, std::move(node),
                  std::move(name), std::move(detail)});
}

void Tracer::event(std::string node, std::string name, const TraceContext& ctx,
                   std::string detail) {
  push(TraceEvent{0.0, EventKind::kInstant, 0, std::move(node),
                  std::move(name), std::move(detail), ctx.trace_id,
                  ctx.parent_span, ctx.lamport});
}

std::uint64_t Tracer::begin_span(std::string node, std::string name,
                                 std::string detail) {
  std::uint64_t id;
  {
    std::lock_guard lock(mu_);
    id = next_span_++;
  }
  push(TraceEvent{0.0, EventKind::kSpanBegin, id, std::move(node),
                  std::move(name), std::move(detail)});
  return id;
}

std::uint64_t Tracer::begin_span(std::string node, std::string name,
                                 const TraceContext& ctx, std::string detail) {
  std::uint64_t id;
  {
    std::lock_guard lock(mu_);
    id = next_span_++;
  }
  push(TraceEvent{0.0, EventKind::kSpanBegin, id, std::move(node),
                  std::move(name), std::move(detail), ctx.trace_id,
                  ctx.parent_span, ctx.lamport});
  return id;
}

void Tracer::end_span(std::uint64_t span, std::string node, std::string name,
                      std::string detail) {
  if (span == 0) return;
  push(TraceEvent{0.0, EventKind::kSpanEnd, span, std::move(node),
                  std::move(name), std::move(detail)});
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(size_);
  const std::size_t start = (head_ + cap_ - size_) % cap_;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % cap_]);
  }
  return out;
}

std::size_t Tracer::size() const {
  std::lock_guard lock(mu_);
  return size_;
}

std::size_t Tracer::capacity() const { return cap_; }

std::uint64_t Tracer::dropped() const {
  std::lock_guard lock(mu_);
  return dropped_;
}

void Tracer::clear() {
  std::lock_guard lock(mu_);
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
  overwrites_g_.set(0.0);
}

#else  // CONGRID_OBS_ENABLED == 0

Tracer::Tracer(std::size_t) {}
void Tracer::set_clock(std::function<double()>) {}
void Tracer::set_obs(Registry&, std::string_view) {}
void Tracer::event(std::string, std::string, std::string) {}
void Tracer::event(std::string, std::string, const TraceContext&,
                   std::string) {}
std::uint64_t Tracer::begin_span(std::string, std::string, std::string) {
  return 0;
}
std::uint64_t Tracer::begin_span(std::string, std::string,
                                 const TraceContext&, std::string) {
  return 0;
}
void Tracer::end_span(std::uint64_t, std::string, std::string, std::string) {}
std::vector<TraceEvent> Tracer::events() const { return {}; }
std::size_t Tracer::size() const { return 0; }
std::size_t Tracer::capacity() const { return 0; }
std::uint64_t Tracer::dropped() const { return 0; }
void Tracer::clear() {}

#endif  // CONGRID_OBS_ENABLED

namespace {

[[maybe_unused]] const char* kind_name(EventKind k) {
  switch (k) {
    case EventKind::kSpanBegin:
      return "begin";
    case EventKind::kSpanEnd:
      return "end";
    case EventKind::kInstant:
    default:
      return "event";
  }
}

// Trace ids are hashes and may exceed 2^53; exported as fixed-width hex
// strings so JSON consumers never round them through a double.
[[maybe_unused]] std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xF];
    v >>= 4;
  }
  return out;
}

}  // namespace

std::string Tracer::to_jsonl(std::string_view node_filter) const {
#if CONGRID_OBS_ENABLED
  const std::vector<TraceEvent> evs = events();
  std::size_t count = 0;
  for (const TraceEvent& ev : evs) {
    if (node_filter.empty() || ev.node == node_filter) ++count;
  }
  std::string out;
  // Header first: lets congrid-trace detect ring overwrites (an incomplete
  // trace would otherwise yield a confidently wrong critical path).
  out += "{\"congrid_trace\":1,\"events\":" + std::to_string(count);
  out += ",\"dropped\":" + std::to_string(dropped());
  out += ",\"capacity\":" + std::to_string(capacity());
  if (!node_filter.empty()) out += ",\"node\":" + json_quote(node_filter);
  out += "}\n";
  for (const TraceEvent& ev : evs) {
    if (!node_filter.empty() && ev.node != node_filter) continue;
    out += "{\"t\":" + json_number(ev.t);
    out += ",\"kind\":";
    out += json_quote(kind_name(ev.kind));
    if (ev.span != 0) out += ",\"span\":" + std::to_string(ev.span);
    out += ",\"node\":" + json_quote(ev.node);
    out += ",\"name\":" + json_quote(ev.name);
    if (!ev.detail.empty()) out += ",\"detail\":" + json_quote(ev.detail);
    if (ev.trace != 0 || ev.parent != 0 || ev.lamport != 0) {
      out += ",\"trace\":\"" + hex64(ev.trace) + "\"";
      out += ",\"parent\":" + std::to_string(ev.parent);
      out += ",\"lc\":" + std::to_string(ev.lamport);
    }
    out += "}\n";
  }
  return out;
#else
  (void)node_filter;
  return "";
#endif
}

}  // namespace cg::obs
