#include "obs/trace.hpp"

#include <algorithm>

#include "obs/json.hpp"

namespace cg::obs {

#if CONGRID_OBS_ENABLED

Tracer::Tracer(std::size_t capacity) : cap_(std::max<std::size_t>(1, capacity)) {
  ring_.resize(cap_);
}

void Tracer::set_clock(std::function<double()> clock) {
  std::lock_guard lock(mu_);
  clock_ = std::move(clock);
}

void Tracer::push(TraceEvent ev) {
  std::lock_guard lock(mu_);
  ev.t = clock_ ? clock_() : 0.0;
  ring_[head_] = std::move(ev);
  head_ = (head_ + 1) % cap_;
  if (size_ < cap_) {
    ++size_;
  } else {
    ++dropped_;
  }
}

void Tracer::event(std::string node, std::string name, std::string detail) {
  push(TraceEvent{0.0, EventKind::kInstant, 0, std::move(node),
                  std::move(name), std::move(detail)});
}

std::uint64_t Tracer::begin_span(std::string node, std::string name,
                                 std::string detail) {
  std::uint64_t id;
  {
    std::lock_guard lock(mu_);
    id = next_span_++;
  }
  push(TraceEvent{0.0, EventKind::kSpanBegin, id, std::move(node),
                  std::move(name), std::move(detail)});
  return id;
}

void Tracer::end_span(std::uint64_t span, std::string node, std::string name,
                      std::string detail) {
  if (span == 0) return;
  push(TraceEvent{0.0, EventKind::kSpanEnd, span, std::move(node),
                  std::move(name), std::move(detail)});
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(size_);
  const std::size_t start = (head_ + cap_ - size_) % cap_;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % cap_]);
  }
  return out;
}

std::size_t Tracer::size() const {
  std::lock_guard lock(mu_);
  return size_;
}

std::size_t Tracer::capacity() const { return cap_; }

std::uint64_t Tracer::dropped() const {
  std::lock_guard lock(mu_);
  return dropped_;
}

void Tracer::clear() {
  std::lock_guard lock(mu_);
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
}

#else  // CONGRID_OBS_ENABLED == 0

Tracer::Tracer(std::size_t) {}
void Tracer::set_clock(std::function<double()>) {}
void Tracer::event(std::string, std::string, std::string) {}
std::uint64_t Tracer::begin_span(std::string, std::string, std::string) {
  return 0;
}
void Tracer::end_span(std::uint64_t, std::string, std::string, std::string) {}
std::vector<TraceEvent> Tracer::events() const { return {}; }
std::size_t Tracer::size() const { return 0; }
std::size_t Tracer::capacity() const { return 0; }
std::uint64_t Tracer::dropped() const { return 0; }
void Tracer::clear() {}

#endif  // CONGRID_OBS_ENABLED

namespace {

const char* kind_name(EventKind k) {
  switch (k) {
    case EventKind::kSpanBegin:
      return "begin";
    case EventKind::kSpanEnd:
      return "end";
    case EventKind::kInstant:
    default:
      return "event";
  }
}

}  // namespace

std::string Tracer::to_jsonl() const {
  std::string out;
  for (const TraceEvent& ev : events()) {
    out += "{\"t\":" + json_number(ev.t);
    out += ",\"kind\":";
    out += json_quote(kind_name(ev.kind));
    if (ev.span != 0) out += ",\"span\":" + std::to_string(ev.span);
    out += ",\"node\":" + json_quote(ev.node);
    out += ",\"name\":" + json_quote(ev.name);
    if (!ev.detail.empty()) out += ",\"detail\":" + json_quote(ev.detail);
    out += "}\n";
  }
  return out;
}

}  // namespace cg::obs
