#include "obs/http_server.hpp"

#if CONGRID_OBS_ENABLED
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#endif

#include <cstdlib>
#include <memory>
#include <mutex>

#include "obs/json.hpp"
#include "obs/prometheus.hpp"

#if CONGRID_OBS_ENABLED
#include "net/socket_util.hpp"
#endif

namespace cg::obs {

namespace {

// The dashboard is one self-contained file: no external assets, works from
// a `curl -O` as well as from the live endpoint. It polls /metrics.json
// and renders counter rates (with per-row sparklines from client-side
// history), gauge values and histogram quantiles. Light/dark follow the
// browser; all series marks use one blue so identity is carried by the row
// label, never by hue alone.
constexpr std::string_view kDashboardHtml = R"HTML(<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>ConGrid live obs</title>
<style>
  :root {
    color-scheme: light dark;
    --surface: #fcfcfb; --surface-2: #f1f0ee;
    --ink: #0b0b0b; --ink-2: #52514e; --line: #dddcd8;
    --series: #2a78d6; --good: #008300; --bad: #e34948;
  }
  @media (prefers-color-scheme: dark) {
    :root {
      --surface: #1a1a19; --surface-2: #242422;
      --ink: #ffffff; --ink-2: #c3c2b7; --line: #3a3936;
      --series: #3987e5; --good: #30b030; --bad: #e66767;
    }
  }
  body { margin: 0; background: var(--surface); color: var(--ink);
         font: 14px/1.45 system-ui, sans-serif; }
  main { max-width: 1080px; margin: 0 auto; padding: 16px 20px 48px; }
  header { display: flex; align-items: baseline; gap: 12px; flex-wrap: wrap; }
  h1 { font-size: 18px; margin: 8px 0; }
  h2 { font-size: 14px; margin: 24px 0 8px; color: var(--ink-2);
       text-transform: uppercase; letter-spacing: .04em; }
  #status { color: var(--ink-2); font-size: 13px; }
  #status.err { color: var(--bad); }
  .tiles { display: flex; gap: 12px; flex-wrap: wrap; margin-top: 8px; }
  .tile { background: var(--surface-2); border-radius: 8px;
          padding: 10px 14px; min-width: 150px; }
  .tile .v { font-size: 22px; font-variant-numeric: tabular-nums; }
  .tile .k { color: var(--ink-2); font-size: 12px; overflow-wrap: anywhere; }
  input { background: var(--surface-2); color: var(--ink); width: 280px;
          border: 1px solid var(--line); border-radius: 6px;
          padding: 6px 10px; margin: 10px 0 2px; font: inherit; }
  table { border-collapse: collapse; width: 100%; }
  th, td { text-align: left; padding: 4px 10px 4px 0;
           border-bottom: 1px solid var(--line);
           font-variant-numeric: tabular-nums; }
  th { color: var(--ink-2); font-weight: 500; font-size: 12px; }
  td.num, th.num { text-align: right; }
  td.name { overflow-wrap: anywhere; color: var(--ink); }
  svg.spark { display: block; }
  svg.spark polyline { fill: none; stroke: var(--series); stroke-width: 2;
                       stroke-linejoin: round; stroke-linecap: round; }
</style>
</head>
<body>
<main>
  <header>
    <h1>ConGrid live obs</h1>
    <span id="status">connecting&hellip;</span>
  </header>
  <div class="tiles" id="tiles"></div>
  <input id="filter" type="search" placeholder="filter metrics&hellip;"
         aria-label="filter metrics">
  <h2>Counters</h2>
  <table><thead><tr><th>name</th><th class="num">total</th>
    <th class="num">rate/s</th><th>last 2 min</th></tr></thead>
    <tbody id="counters"></tbody></table>
  <h2>Gauges</h2>
  <table><thead><tr><th>name</th><th class="num">value</th></tr></thead>
    <tbody id="gauges"></tbody></table>
  <h2>Histograms</h2>
  <table><thead><tr><th>name</th><th class="num">count</th>
    <th class="num">mean</th><th class="num">p50</th><th class="num">p95</th>
    <th class="num">p99</th></tr></thead>
    <tbody id="hists"></tbody></table>
</main>
<script>
"use strict";
const hist = new Map();          // counter name -> recent rates
const HLEN = 60;                 // ~2 min of 2 s polls
const fmt = v => !isFinite(v) ? "-" :
  Math.abs(v) >= 100 ? v.toFixed(0) :
  Math.abs(v) >= 1 ? v.toFixed(2) : v.toPrecision(3);
const esc = s => s.replace(/[&<>"]/g,
  c => ({"&":"&amp;","<":"&lt;",">":"&gt;",'"':"&quot;"}[c]));
function spark(vals) {
  if (vals.length < 2) return "";
  const max = Math.max(...vals, 1e-9);
  const pts = vals.map((v, i) =>
    `${(i / (HLEN - 1) * 118 + 1).toFixed(1)},` +
    `${(22 - v / max * 20).toFixed(1)}`).join(" ");
  return `<svg class="spark" width="120" height="24" role="img">` +
    `<title>peak ${fmt(max)}/s</title><polyline points="${pts}"/></svg>`;
}
function render(d) {
  const q = document.getElementById("filter").value.toLowerCase();
  const hit = n => n.toLowerCase().includes(q);
  const rates = d.rates || {};
  const names = Object.keys(d.metrics.counters);
  for (const n of names) {
    if (!hist.has(n)) hist.set(n, []);
    const h = hist.get(n);
    h.push(rates[n] || 0);
    if (h.length > HLEN) h.shift();
  }
  const top = names.filter(n => (rates[n] || 0) > 0)
    .sort((a, b) => rates[b] - rates[a]).slice(0, 4);
  document.getElementById("tiles").innerHTML = top.map(n =>
    `<div class="tile"><div class="v">${fmt(rates[n])}/s</div>` +
    `<div class="k">${esc(n)}</div></div>`).join("") ||
    `<div class="tile"><div class="v">idle</div>` +
    `<div class="k">no counter moved in the window</div></div>`;
  document.getElementById("counters").innerHTML = names.filter(hit)
    .sort((a, b) => (rates[b] || 0) - (rates[a] || 0) || a.localeCompare(b))
    .map(n => `<tr><td class="name">${esc(n)}</td>` +
      `<td class="num">${d.metrics.counters[n]}</td>` +
      `<td class="num">${fmt(rates[n] || 0)}</td>` +
      `<td>${spark(hist.get(n))}</td></tr>`).join("");
  document.getElementById("gauges").innerHTML =
    Object.entries(d.metrics.gauges).filter(([n]) => hit(n))
    .map(([n, v]) => `<tr><td class="name">${esc(n)}</td>` +
      `<td class="num">${fmt(v)}</td></tr>`).join("");
  document.getElementById("hists").innerHTML =
    Object.entries(d.metrics.histograms).filter(([n]) => hit(n))
    .map(([n, h]) => `<tr><td class="name">${esc(n)}</td>` +
      `<td class="num">${h.count}</td><td class="num">${fmt(h.mean)}</td>` +
      `<td class="num">${fmt(h.p50)}</td><td class="num">${fmt(h.p95)}</td>` +
      `<td class="num">${fmt(h.p99)}</td></tr>`).join("");
  document.getElementById("status").textContent =
    `window ${fmt(d.window_s)} s / ${d.samples} samples - ` +
    `${new Date(d.ts * 1000).toLocaleTimeString()}`;
  document.getElementById("status").className = "";
}
async function tick() {
  try {
    const r = await fetch("/metrics.json", {cache: "no-store"});
    render(await r.json());
  } catch (e) {
    const st = document.getElementById("status");
    st.textContent = "scrape failed: " + e;
    st.className = "err";
  }
}
tick();
setInterval(tick, 2000);
document.getElementById("filter").addEventListener("input", tick);
</script>
</body>
</html>
)HTML";

#if CONGRID_OBS_ENABLED

double mono_s() {
  using namespace std::chrono;
  return duration_cast<duration<double>>(
             steady_clock::now().time_since_epoch())
      .count();
}

double wall_s() {
  using namespace std::chrono;
  return duration_cast<duration<double>>(
             system_clock::now().time_since_epoch())
      .count();
}

std::string http_response(int code, const char* reason,
                          std::string_view content_type,
                          std::string_view body) {
  std::string r = "HTTP/1.1 " + std::to_string(code) + " " + reason + "\r\n";
  r += "Content-Type: ";
  r += content_type;
  r += "\r\nContent-Length: " + std::to_string(body.size());
  r += "\r\nCache-Control: no-store\r\nConnection: close\r\n\r\n";
  r += body;
  return r;
}

std::string too_large_response() {
  return http_response(431, "Request Header Fields Too Large",
                       "text/plain; charset=utf-8",
                       "request exceeds the configured limit\n");
}

/// Value of header `name` (case-insensitive) in a raw request, or "".
std::string_view header_value(std::string_view raw, std::string_view name) {
  std::size_t pos = raw.find("\r\n");
  while (pos != std::string_view::npos && pos + 2 < raw.size()) {
    const std::size_t eol = raw.find("\r\n", pos + 2);
    if (eol == std::string_view::npos) break;
    std::string_view line = raw.substr(pos + 2, eol - pos - 2);
    if (line.empty()) break;  // end of headers
    const std::size_t colon = line.find(':');
    if (colon != std::string_view::npos && colon == name.size()) {
      bool match = true;
      for (std::size_t i = 0; i < name.size(); ++i) {
        const char a = line[i];
        const char b = name[i];
        if ((a | 0x20) != (b | 0x20)) {
          match = false;
          break;
        }
      }
      if (match) {
        std::string_view v = line.substr(colon + 1);
        while (!v.empty() && (v.front() == ' ' || v.front() == '\t')) {
          v.remove_prefix(1);
        }
        return v;
      }
    }
    pos = eol;
  }
  return {};
}

#endif  // CONGRID_OBS_ENABLED

}  // namespace

std::string_view HttpServer::dashboard_html() { return kDashboardHtml; }

HttpServer::HttpServer(Registry& registry, Tracer* tracer,
                       HttpServerOptions opt)
    : registry_(registry),
      tracer_(tracer),
      opt_(opt),
      sampler_(registry,
               Sampler::Options{opt.sample_period_s, opt.sample_window}) {}

HttpServer::~HttpServer() { stop(); }

#if CONGRID_OBS_ENABLED

bool HttpServer::start() {
  std::lock_guard lock(mu_);
  if (running_.load()) return true;
  net::Listener l;
  try {
    l = net::make_loopback_listener(opt_.port);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "congrid-obs: cannot listen on 127.0.0.1:%u (%s)\n",
                 static_cast<unsigned>(opt_.port), e.what());
    return false;
  }
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    ::close(l.fd);
    return false;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = l.fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, l.fd, &ev) < 0) {
    ::close(l.fd);
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    return false;
  }
  listen_fd_ = l.fd;
  bound_port_ = l.port;
  stop_.store(false);
  running_.store(true);
  pump_ = std::thread([this] { pump_loop(); });
  return true;
}

void HttpServer::stop() {
  std::lock_guard lock(mu_);
  if (!running_.load()) return;
  stop_.store(true);
  if (pump_.joinable()) pump_.join();
  for (auto& [fd, c] : conns_) {
    (void)c;
    ::close(fd);
  }
  conns_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  listen_fd_ = -1;
  epoll_fd_ = -1;
  bound_port_ = 0;
  running_.store(false);
}

bool HttpServer::running() const { return running_.load(); }

std::uint16_t HttpServer::port() const {
  std::lock_guard lock(mu_);
  return bound_port_;
}

std::string HttpServer::url() const {
  const std::uint16_t p = port();
  if (p == 0) return "";
  return "http://127.0.0.1:" + std::to_string(p) + "/";
}

void HttpServer::pump_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    sampler_.maybe_sample(mono_s());
    epoll_event evs[16];
    const int n = epoll_wait(epoll_fd_, evs, 16, /*timeout_ms=*/100);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // epoll fd gone: only stop() does that, bail out
    }
    for (int i = 0; i < n; ++i) {
      const int fd = evs[i].data.fd;
      if (fd == listen_fd_) {
        accept_ready();
        continue;
      }
      if (evs[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) {
        conn_readable(fd);
      }
      if ((evs[i].events & EPOLLOUT) != 0 && conns_.count(fd) != 0) {
        conn_flush(fd);
      }
    }
  }
}

void HttpServer::accept_ready() {
  for (;;) {
    const int fd =
        accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: try again next wake
    // Bounded connection table: a scrape plane never needs more, and the
    // bound keeps an accept() flood from growing server state.
    if (conns_.size() >= 64) {
      ::close(fd);
      continue;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    conns_.emplace(fd, Conn{});
  }
}

void HttpServer::conn_readable(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& c = it->second;
  char buf[2048];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      if (c.responded) continue;  // drain and discard trailing bytes
      c.in.append(buf, static_cast<std::size_t>(n));
      if (c.in.size() > opt_.max_request_bytes) {
        c.out = too_large_response();
        c.responded = true;
      } else if (c.in.find("\r\n\r\n") != std::string::npos) {
        c.out = respond(c.in);
        c.responded = true;
      }
      if (c.responded) {
        // Keep EPOLLIN so late request bytes are drained (not RST) while
        // the response goes out.
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLOUT;
        ev.data.fd = fd;
        epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
        conn_flush(fd);
        return;
      }
      continue;
    }
    if (n == 0) {
      // EOF: either the graceful close handshake completed (we sent our
      // FIN after the response, the client answered) or the request never
      // completed. Done either way.
      close_conn(fd);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    close_conn(fd);
    return;
  }
}

bool HttpServer::conn_flush(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return false;
  Conn& c = it->second;
  if (!c.responded) return true;
  while (c.out_pos < c.out.size()) {
    const ssize_t n =
        ::write(fd, c.out.data() + c.out_pos, c.out.size() - c.out_pos);
    if (n > 0) {
      c.out_pos += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    close_conn(fd);
    return false;
  }
  // Response fully written. Connection: close, but gracefully: shut down
  // our write side and wait for the client's EOF instead of closing with
  // request bytes possibly unread -- an immediate close() there turns into
  // an RST that can destroy the in-flight response (the 431 path would be
  // unreliable exactly when it matters).
  if (!c.fin_sent) {
    ::shutdown(fd, SHUT_WR);
    c.fin_sent = true;
    epoll_event ev{};
    ev.events = EPOLLIN;  // drop EPOLLOUT: nothing left to write
    ev.data.fd = fd;
    epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
  }
  return true;
}

void HttpServer::close_conn(int fd) {
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  conns_.erase(fd);
}

std::string HttpServer::metrics_json() const {
  const MetricsSnapshot snap = registry_.snapshot();
  const auto rates = sampler_.counter_rates();
  std::string out = "{\"ts\":" + json_number(wall_s());
  out += ",\"window_s\":" + json_number(sampler_.span_s());
  out += ",\"samples\":" + std::to_string(sampler_.size());
  out += ",\"rates\":{";
  std::size_t i = 0;
  for (const auto& [name, r] : rates) {
    if (i++) out += ',';
    out += json_quote(name) + ":" + json_number(r);
  }
  out += "},\"metrics\":" + snap.to_json(/*pretty=*/false) + "}";
  return out;
}

std::string HttpServer::respond(std::string_view raw_request) const {
  const std::size_t eol = raw_request.find("\r\n");
  const std::string_view line =
      eol == std::string_view::npos ? raw_request : raw_request.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    return http_response(400, "Bad Request", "text/plain; charset=utf-8",
                         "malformed request line\n");
  }
  const std::string_view method = line.substr(0, sp1);
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t q = target.find('?');
  if (q != std::string_view::npos) target = target.substr(0, q);

  if (method != "GET" && method != "HEAD") {
    return http_response(405, "Method Not Allowed",
                         "text/plain; charset=utf-8",
                         "only GET is supported\n");
  }

  if (target == "/healthz") {
    return http_response(200, "OK", "text/plain; charset=utf-8", "ok\n");
  }
  if (target == "/") {
    return http_response(200, "OK", "text/html; charset=utf-8",
                         kDashboardHtml);
  }
  if (target == "/metrics.json" ||
      (target == "/metrics" &&
       header_value(raw_request, "Accept").find("application/json") !=
           std::string_view::npos)) {
    return http_response(200, "OK", "application/json", metrics_json());
  }
  if (target == "/metrics") {
    return http_response(200, "OK",
                         "text/plain; version=0.0.4; charset=utf-8",
                         to_prometheus(registry_.snapshot()));
  }
  if (target == "/trace") {
    if (tracer_ == nullptr) {
      return http_response(404, "Not Found", "text/plain; charset=utf-8",
                           "no tracer bound\n");
    }
    return http_response(200, "OK", "application/x-ndjson",
                         tracer_->to_jsonl());
  }
  return http_response(404, "Not Found", "text/plain; charset=utf-8",
                       "unknown path\n");
}

#else  // CONGRID_OBS_ENABLED == 0

bool HttpServer::start() { return false; }
void HttpServer::stop() {}
bool HttpServer::running() const { return false; }
std::uint16_t HttpServer::port() const { return 0; }
std::string HttpServer::url() const { return ""; }
std::string HttpServer::respond(std::string_view) const { return ""; }

#endif  // CONGRID_OBS_ENABLED

namespace {

std::mutex g_env_server_mu;
std::unique_ptr<HttpServer> g_env_server;
bool g_env_attempted = false;

}  // namespace

HttpServer* HttpServer::from_env(Registry& registry, Tracer* tracer) {
#if CONGRID_OBS_ENABLED
  std::lock_guard lock(g_env_server_mu);
  if (g_env_attempted) return g_env_server.get();
  g_env_attempted = true;
  const char* v = std::getenv("CONGRID_OBS_PORT");
  if (v == nullptr || *v == '\0') return nullptr;
  const long port = std::strtol(v, nullptr, 10);
  if (port < 0 || port > 65535) {
    std::fprintf(stderr, "congrid-obs: ignoring CONGRID_OBS_PORT=%s\n", v);
    return nullptr;
  }
  HttpServerOptions opt;
  opt.port = static_cast<std::uint16_t>(port);
  auto server = std::make_unique<HttpServer>(registry, tracer, opt);
  if (!server->start()) return nullptr;
  std::fprintf(stderr, "congrid-obs: serving live metrics on %s\n",
               server->url().c_str());
  g_env_server = std::move(server);
  return g_env_server.get();
#else
  (void)registry;
  (void)tracer;
  return nullptr;
#endif
}

void HttpServer::stop_env_server() {
  std::lock_guard lock(g_env_server_mu);
  g_env_server.reset();
  g_env_attempted = false;
}

}  // namespace cg::obs
