// ConGrid -- lock-cheap metrics: counters, gauges, fixed-bucket histograms.
//
// The control plane made reliable in PR 2 was still a black box: no way to
// see retransmit rates, deploy latencies or cache hit ratios without a
// debugger. This registry gives every subsystem named instruments that are
//
//   * cheap on the hot path: each instrument is plain atomic storage, no
//     lock is ever taken after registration (the registry's mutex guards
//     only name -> instrument resolution and snapshotting);
//   * stable: instruments live as long as the registry, so components
//     resolve them once in set_obs() and keep raw pointers;
//   * exportable: Registry::snapshot() returns a MetricsSnapshot that
//     serialises to JSON -- the BENCH_*.json artifacts CI uploads and
//     gates on.
//
// Compiled-out mode: configuring with -DCONGRID_OBS=OFF defines
// CONGRID_OBS_ENABLED=0 and every method below becomes an empty inline --
// call sites stay, costs vanish, and snapshots are empty but still valid
// JSON. Code must therefore never branch on metric values for behaviour.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#ifndef CONGRID_OBS_ENABLED
#define CONGRID_OBS_ENABLED 1
#endif

namespace cg::obs {

/// Monotonic event count. Relaxed atomics: per-metric totals need no
/// ordering against anything else.
class Counter {
 public:
#if CONGRID_OBS_ENABLED
  void inc(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
#else
  void inc(std::uint64_t = 1) noexcept {}
  std::uint64_t value() const noexcept { return 0; }
#endif
};

/// Point-in-time level (bytes resident, peers up, queue depth).
class Gauge {
 public:
#if CONGRID_OBS_ENABLED
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
#else
  void set(double) noexcept {}
  void add(double) noexcept {}
  double value() const noexcept { return 0.0; }
#endif
};

/// One histogram's exported state; quantiles are estimated by linear
/// interpolation inside the winning bucket.
struct HistogramData {
  std::vector<double> bounds;          ///< upper bounds, ascending
  std::vector<std::uint64_t> counts;   ///< bounds.size() + 1 (overflow last)
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when count == 0
  double max = 0.0;

  double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
  /// q in [0,1]; returns 0 when empty.
  double quantile(double q) const;
};

/// Fixed-bucket histogram: one atomic increment + one atomic add per
/// observation, bucket found by branch-free-ish linear scan (bucket counts
/// are small, typically <= 16).
class Histogram {
 public:
  /// `bounds` are ascending upper bounds; values above the last bound land
  /// in an implicit overflow bucket. Empty bounds get default_latency_bounds.
  explicit Histogram(std::vector<double> bounds = {});

  void observe(double v) noexcept;
  HistogramData snapshot() const;
  std::uint64_t count() const noexcept;

  /// Exponential seconds scale (1 ms .. 60 s) suited to simulated link and
  /// control-plane latencies.
  static const std::vector<double>& default_latency_bounds();

#if CONGRID_OBS_ENABLED
 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  ///< bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
#endif
};

/// Null-safe instrument handles. Components hold these (default state:
/// unbound, every call a no-op) and bind them in set_obs(); with
/// CONGRID_OBS off they carry no pointer at all and compile to nothing.
class CounterRef {
 public:
  CounterRef() = default;
#if CONGRID_OBS_ENABLED
  /*implicit*/ CounterRef(Counter& c) : c_(&c) {}
  void inc(std::uint64_t n = 1) const noexcept {
    if (c_) c_->inc(n);
  }
  std::uint64_t value() const noexcept { return c_ ? c_->value() : 0; }

 private:
  Counter* c_ = nullptr;
#else
  /*implicit*/ CounterRef(Counter&) {}
  void inc(std::uint64_t = 1) const noexcept {}
  std::uint64_t value() const noexcept { return 0; }
#endif
};

class GaugeRef {
 public:
  GaugeRef() = default;
#if CONGRID_OBS_ENABLED
  /*implicit*/ GaugeRef(Gauge& g) : g_(&g) {}
  void set(double v) const noexcept {
    if (g_) g_->set(v);
  }
  void add(double d) const noexcept {
    if (g_) g_->add(d);
  }

 private:
  Gauge* g_ = nullptr;
#else
  /*implicit*/ GaugeRef(Gauge&) {}
  void set(double) const noexcept {}
  void add(double) const noexcept {}
#endif
};

class HistogramRef {
 public:
  HistogramRef() = default;
#if CONGRID_OBS_ENABLED
  /*implicit*/ HistogramRef(Histogram& h) : h_(&h) {}
  void observe(double v) const noexcept {
    if (h_) h_->observe(v);
  }

 private:
  Histogram* h_ = nullptr;
#else
  /*implicit*/ HistogramRef(Histogram&) {}
  void observe(double) const noexcept {}
#endif
};

/// Everything a registry knew at one instant; the unit benches dump as
/// BENCH_*.json. Lookup helpers return zero/null for unknown names so test
/// code reads naturally.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;

  std::uint64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  const HistogramData* histogram(const std::string& name) const;
  /// Quantile of a named histogram; 0 when the name is unknown or empty.
  /// The one extraction path for benches and the HTTP plane alike, so a
  /// dashboard p95 and a BENCH_*.json p95 can never disagree.
  double histogram_quantile(const std::string& name, double q) const;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  /// Always valid JSON, including from an empty / OBS-off snapshot.
  std::string to_json(bool pretty = true) const;
};

/// Name -> instrument table. Registration and snapshot take a mutex;
/// resolved instruments are updated lock-free. Same name + kind always
/// yields the same instrument, so independent components may share one
/// (e.g. two transports aggregating into unscoped "reliable.retransmits").
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` applies only on first registration of `name`.
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {});

  MetricsSnapshot snapshot() const;

#if CONGRID_OBS_ENABLED
 private:
  mutable std::mutex mu_;
  // Node-based maps: element addresses are stable for the registry's life.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
#endif
};

/// "scope.name", or just "name" when scope is empty. Per-node metric
/// scoping: services pass their peer id, benches a sweep-point label.
std::string scoped(std::string_view scope, std::string_view name);

}  // namespace cg::obs
