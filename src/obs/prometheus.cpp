#include "obs/prometheus.hpp"

#include <set>

#include "obs/json.hpp"

namespace cg::obs {

namespace {

bool prom_name_byte(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

/// Label values escape backslash, double quote and newline (exposition
/// format rules); everything else passes through byte-for-byte.
std::string prom_label_value(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out = "congrid_";
  out.reserve(out.size() + name.size());
  for (char c : name) out += prom_name_byte(c) ? c : '_';
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  // Sanitisation can collide ("a.b" and "a_b" share a Prometheus name); a
  // second TYPE line for the same name is invalid exposition, so only the
  // first is emitted. The `name` label keeps the samples distinguishable.
  std::set<std::string> typed;
  const auto type_line = [&](const std::string& pname, const char* kind) {
    if (typed.insert(pname).second) {
      out += "# TYPE " + pname + " " + kind + "\n";
    }
  };
  const auto name_label = [](const std::string& raw) {
    return "{name=\"" + prom_label_value(raw) + "\"}";
  };

  for (const auto& [name, v] : snapshot.counters) {
    const std::string pname = prometheus_name(name);
    type_line(pname, "counter");
    out += pname + name_label(name) + " " + std::to_string(v) + "\n";
  }
  for (const auto& [name, v] : snapshot.gauges) {
    const std::string pname = prometheus_name(name);
    type_line(pname, "gauge");
    out += pname + name_label(name) + " " + json_number(v) + "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string pname = prometheus_name(name);
    type_line(pname, "histogram");
    const std::string base_label = prom_label_value(name);
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      cum += h.counts[b];
      const std::string le =
          b < h.bounds.size() ? json_number(h.bounds[b]) : "+Inf";
      out += pname + "_bucket{name=\"" + base_label + "\",le=\"" + le +
             "\"} " + std::to_string(cum) + "\n";
    }
    out += pname + "_sum" + name_label(name) + " " + json_number(h.sum) + "\n";
    out +=
        pname + "_count" + name_label(name) + " " + std::to_string(h.count) +
        "\n";
  }
  return out;
}

}  // namespace cg::obs
