// ConGrid -- observability façade: metrics registry + event tracer.
//
// Include this one header to instrument a component. The pattern every
// instrumented subsystem follows (SimNetwork, ReliableTransport,
// TrianaService, RunSupervisor, ModuleCache, churn driver):
//
//   * hold unbound CounterRef / GaugeRef / HistogramRef / TracerRef
//     members -- all no-ops until bound, all compiled out entirely under
//     -DCONGRID_OBS=OFF;
//   * expose set_obs(Registry&, Tracer*, scope) resolving each instrument
//     once by name ("<scope>.<subsystem>.<metric>") -- no lock or lookup
//     ever runs on the hot path afterwards;
//   * benches call Registry::snapshot().to_json() and write BENCH_*.json,
//     which CI uploads and validates;
//   * for live inspection, obs/http_server.hpp serves the registry (and
//     sampler-window rates, obs/sampler.hpp) over loopback HTTP -- in
//     Prometheus text exposition (obs/prometheus.hpp) and JSON.
//
// See DESIGN.md section 4c for the metric name inventory and 4j for the
// HTTP plane.
#pragma once

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
