// ConGrid -- Prometheus text exposition (format 0.0.4) for a snapshot.
//
// The /metrics endpoint must speak the one format every scrape stack
// already understands. The mapping is mechanical:
//
//   counters    -> `# TYPE <name> counter`  + one sample line
//   gauges      -> `# TYPE <name> gauge`    + one sample line
//   histograms  -> `# TYPE <name> histogram` + cumulative `_bucket{le=...}`
//                  lines (ending with le="+Inf"), `_sum` and `_count`
//
// ConGrid metric names are dotted and scope-prefixed ("home.reliable.
// retransmits", "e12.calm/phi8.net.sim.delivered"); Prometheus names admit
// only [a-zA-Z0-9_:], so every other byte is rewritten to '_' and the
// whole name is prefixed "congrid_". The original dotted name is preserved
// verbatim in a `name` label so dashboards can group by the real scope
// without reverse-engineering the sanitisation.
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace cg::obs {

/// "home.reliable.sent" -> "congrid_home_reliable_sent".
std::string prometheus_name(std::string_view name);

/// The whole snapshot in exposition format. Deterministic: instruments are
/// emitted in the registry's (sorted) order. Empty snapshots yield "" --
/// still a valid exposition payload.
std::string to_prometheus(const MetricsSnapshot& snapshot);

}  // namespace cg::obs
