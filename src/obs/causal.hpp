// ConGrid -- causal trace analysis (the library behind congrid-trace).
//
// Consumes the JSONL files Tracer::to_jsonl produces -- one per peer or
// one merged ring -- and reconstructs the run's causal DAG:
//
//   * span begin/end pairs (deploys, fetches, binds, ticks) linked by the
//     parent-span field every traced component stamps;
//   * cross-peer transfers, paired by (connection, sequence id) from the
//     sender's "reliable.msg" span and the receiver's "reliable.recv"
//     event, with "reliable.retx" events folded into a retransmit tally.
//
// On top of the DAG it computes a critical path: the chain of local
// activity and network transfers that ends at the last event of the
// trace, with every second of wall (sim) time attributed to a category --
// compute, link latency, retransmit stall, cache-miss wait, wave-barrier
// stall or other. The analyzer is pure offline code: it does not depend
// on CONGRID_OBS_ENABLED and never touches a live Tracer.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace cg::obs::causal {

/// One parsed JSONL line (header lines are folded into Trace counters).
struct Event {
  enum class Kind { kInstant, kBegin, kEnd };
  double t = 0.0;
  Kind kind = Kind::kInstant;
  std::uint64_t span = 0;
  std::string node;
  std::string name;
  std::string detail;
  std::uint64_t trace = 0;  ///< decoded from the 16-hex "trace" field
  std::uint64_t parent = 0;
  std::uint64_t lamport = 0;
};

/// A begin/end pair. `closed` is false for a begin with no matching end.
struct Span {
  std::uint64_t id = 0;
  std::string node;
  std::string name;
  std::string detail;      ///< begin detail (deterministic k=v fields)
  std::string end_detail;  ///< end detail (outcome, timings)
  double begin_t = 0.0;
  double end_t = 0.0;
  bool closed = false;
  std::uint64_t trace = 0;
  std::uint64_t parent = 0;
  std::uint64_t lamport = 0;
};

/// A sender->receiver envelope journey, paired by (conn, seq).
struct Transfer {
  std::string conn;  ///< "src>dst" as both sides spell it
  std::string type;  ///< frame type tag (control/data/code/discovery/...)
  std::uint64_t seq = 0;
  std::string src, dst;    ///< split out of conn
  double send_t = 0.0;     ///< first transmission (span begin)
  double last_tx_t = 0.0;  ///< last (re)transmission before delivery
  double recv_t = 0.0;     ///< unique delivery at the receiver
  int retx = 0;            ///< retransmissions observed
  bool delivered = false;
  std::uint64_t span = 0;          ///< sender's reliable.msg span id
  std::uint64_t send_lamport = 0;  ///< sender clock at first tx
  std::uint64_t recv_lamport = 0;  ///< receiver clock after merge
};

/// One step of the critical path, oldest first.
struct PathStep {
  double t0 = 0.0, t1 = 0.0;
  std::string category;  ///< compute|link|retx_stall|cache_wait|...
  std::string node;      ///< where the time was spent (dst for links)
  std::string what;      ///< span name or transfer conn/type
};

struct Report {
  std::vector<std::string> errors;    ///< validation failures (exit 1)
  std::vector<std::string> warnings;  ///< dropped events, clock anomalies
  std::size_t events = 0;
  std::size_t spans = 0;
  std::size_t transfers = 0;
  std::uint64_t dropped = 0;  ///< ring overwrites summed over inputs
  double t0 = 0.0, t1 = 0.0;  ///< trace time range
  std::vector<PathStep> critical_path;         ///< oldest first
  std::map<std::string, double> attribution;   ///< category -> seconds
  bool ok() const { return errors.empty(); }
  /// One JSON object (json_valid); errors/warnings/attribution/path.
  std::string to_json() const;
  /// Human-facing summary: attribution table + longest path steps.
  std::string to_markdown() const;
};

/// A merged set of trace files. Feed every file through add_jsonl, then
/// call finish() once; analyze()/signature() operate on the result.
class Trace {
 public:
  /// Parse one JSONL document (header + events). Unknown keys are
  /// ignored; malformed lines throw std::runtime_error with the line
  /// number. May be called repeatedly to merge per-peer files.
  void add_jsonl(std::string_view text);

  /// Sort merged events by time (stable), pair spans and transfers.
  void finish();

  const std::vector<Event>& events() const { return events_; }
  const std::vector<Span>& spans() const { return spans_; }
  const std::vector<Transfer>& transfers() const { return transfers_; }
  std::uint64_t dropped() const { return dropped_; }

  /// Structural validation: unpaired spans (warning instead when events
  /// were dropped -- the pair may have been overwritten), recv-before-
  /// send, parent cycles. Returns the error list; warnings accumulate in
  /// analyze()'s report.
  std::vector<std::string> validate() const;

  /// Loss-invariant causal-DAG signature: sorted edge labels built from
  /// closed spans (node/name/begin-detail, linked to their parent span's
  /// label) plus per-(conn,type) transfer ordinals. Discovery and
  /// heartbeat transfers are excluded -- their send counts legitimately
  /// vary with timing (expanding-ring retries, keepalives) -- so two runs
  /// of the same seed, lossy or not, produce the same signature.
  std::vector<std::string> signature() const;

  /// Validation + critical path + attribution.
  Report analyze() const;

 private:
  std::vector<Event> events_;
  std::vector<Span> spans_;
  std::vector<Transfer> transfers_;
  std::uint64_t dropped_ = 0;
  bool finished_ = false;
};

/// Extract the value of `key` from a "k=v k=v" detail string ("" when
/// absent). Exposed for tests and the CLI.
std::string detail_get(std::string_view detail, std::string_view key);

}  // namespace cg::obs::causal
