#include "obs/causal.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "obs/json.hpp"

namespace cg::obs::causal {
namespace {

// ------------------------------------------------------------ line parser
//
// Tracer::to_jsonl emits flat objects (string / number / bool values,
// never nested), so a tiny cursor parser suffices; json_valid stays the
// strict gate for *producing* JSON, this is the consuming half.

struct Cursor {
  std::string_view s;
  std::size_t i = 0;

  bool done() const { return i >= s.size(); }
  char peek() const { return s[i]; }
  void skip_ws() {
    while (!done() && (s[i] == ' ' || s[i] == '\t')) ++i;
  }
  void expect(char c, const char* what) {
    skip_ws();
    if (done() || s[i] != c) {
      throw std::runtime_error(std::string("expected ") + what);
    }
    ++i;
  }
};

std::string parse_string(Cursor& c) {
  c.expect('"', "string");
  std::string out;
  while (!c.done() && c.peek() != '"') {
    char ch = c.s[c.i++];
    if (ch != '\\') {
      out += ch;
      continue;
    }
    if (c.done()) throw std::runtime_error("dangling escape");
    char e = c.s[c.i++];
    switch (e) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        if (c.i + 4 > c.s.size()) throw std::runtime_error("bad \\u escape");
        unsigned v = 0;
        for (int k = 0; k < 4; ++k) {
          char h = c.s[c.i++];
          v <<= 4;
          if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') v |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') v |= static_cast<unsigned>(h - 'A' + 10);
          else throw std::runtime_error("bad \\u escape");
        }
        // Encode the code point as UTF-8 (surrogate pairs are not
        // produced by our exporter; a lone surrogate round-trips as-is).
        if (v < 0x80) {
          out += static_cast<char>(v);
        } else if (v < 0x800) {
          out += static_cast<char>(0xC0 | (v >> 6));
          out += static_cast<char>(0x80 | (v & 0x3F));
        } else {
          out += static_cast<char>(0xE0 | (v >> 12));
          out += static_cast<char>(0x80 | ((v >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (v & 0x3F));
        }
        break;
      }
      default:
        throw std::runtime_error("unknown escape");
    }
  }
  if (c.done()) throw std::runtime_error("unterminated string");
  ++c.i;  // closing quote
  return out;
}

double parse_number(Cursor& c) {
  const char* begin = c.s.data() + c.i;
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end == begin) throw std::runtime_error("bad number");
  c.i += static_cast<std::size_t>(end - begin);
  return v;
}

/// One flat JSON object -> key/value callbacks. `on_string` / `on_number`
/// receive each member as encountered.
template <typename OnString, typename OnNumber>
void parse_object(std::string_view line, OnString on_string,
                  OnNumber on_number) {
  Cursor c{line};
  c.expect('{', "'{'");
  c.skip_ws();
  if (!c.done() && c.peek() == '}') {
    ++c.i;
    return;
  }
  for (;;) {
    c.skip_ws();
    const std::string key = parse_string(c);
    c.expect(':', "':'");
    c.skip_ws();
    if (c.done()) throw std::runtime_error("truncated object");
    const char ch = c.peek();
    if (ch == '"') {
      on_string(key, parse_string(c));
    } else if (ch == 't') {
      if (c.s.substr(c.i, 4) != "true") throw std::runtime_error("bad token");
      c.i += 4;
      on_number(key, 1.0);
    } else if (ch == 'f') {
      if (c.s.substr(c.i, 5) != "false") throw std::runtime_error("bad token");
      c.i += 5;
      on_number(key, 0.0);
    } else if (ch == 'n') {
      if (c.s.substr(c.i, 4) != "null") throw std::runtime_error("bad token");
      c.i += 4;
    } else {
      on_number(key, parse_number(c));
    }
    c.skip_ws();
    if (c.done()) throw std::runtime_error("truncated object");
    if (c.peek() == ',') {
      ++c.i;
      continue;
    }
    if (c.peek() == '}') {
      ++c.i;
      return;
    }
    throw std::runtime_error("expected ',' or '}'");
  }
}

std::uint64_t parse_hex64(const std::string& s) {
  std::uint64_t v = 0;
  for (char ch : s) {
    v <<= 4;
    if (ch >= '0' && ch <= '9') v |= static_cast<std::uint64_t>(ch - '0');
    else if (ch >= 'a' && ch <= 'f') v |= static_cast<std::uint64_t>(ch - 'a' + 10);
    else if (ch >= 'A' && ch <= 'F') v |= static_cast<std::uint64_t>(ch - 'A' + 10);
    else throw std::runtime_error("bad hex trace id");
  }
  return v;
}

std::uint64_t detail_u64(std::string_view detail, std::string_view key) {
  const std::string v = detail_get(detail, key);
  return v.empty() ? 0 : std::strtoull(v.c_str(), nullptr, 10);
}

double detail_f64(std::string_view detail, std::string_view key) {
  const std::string v = detail_get(detail, key);
  return v.empty() ? 0.0 : std::strtod(v.c_str(), nullptr);
}

std::string transfer_key(const std::string& conn, std::uint64_t seq) {
  return conn + "#" + std::to_string(seq);
}

/// [t0,t1) interval; the merged, clipped activity of one span category.
struct Interval {
  double a = 0, b = 0;
};

double clip_overlap(const std::vector<Interval>& ivals, double a, double b) {
  double total = 0;
  for (const auto& iv : ivals) {
    const double lo = std::max(a, iv.a);
    const double hi = std::min(b, iv.b);
    if (hi > lo) total += hi - lo;
  }
  return total;
}

}  // namespace

std::string detail_get(std::string_view detail, std::string_view key) {
  std::size_t i = 0;
  while (i < detail.size()) {
    // token = [i, sp)
    std::size_t sp = detail.find(' ', i);
    if (sp == std::string_view::npos) sp = detail.size();
    const std::string_view tok = detail.substr(i, sp - i);
    const std::size_t eq = tok.find('=');
    if (eq != std::string_view::npos && tok.substr(0, eq) == key) {
      return std::string(tok.substr(eq + 1));
    }
    i = sp + 1;
  }
  return "";
}

void Trace::add_jsonl(std::string_view text) {
  finished_ = false;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) nl = text.size();
    const std::string_view line = text.substr(pos, nl - pos);
    pos = nl + 1;
    ++line_no;
    if (line.empty()) continue;

    Event ev;
    bool is_header = false;
    std::uint64_t header_dropped = 0;
    try {
      parse_object(
          line,
          [&](const std::string& key, const std::string& val) {
            if (key == "kind") {
              if (val == "begin") ev.kind = Event::Kind::kBegin;
              else if (val == "end") ev.kind = Event::Kind::kEnd;
              else ev.kind = Event::Kind::kInstant;
            } else if (key == "node") {
              ev.node = val;
            } else if (key == "name") {
              ev.name = val;
            } else if (key == "detail") {
              ev.detail = val;
            } else if (key == "trace") {
              ev.trace = parse_hex64(val);
            }
          },
          [&](const std::string& key, double val) {
            if (key == "t") ev.t = val;
            else if (key == "span") ev.span = static_cast<std::uint64_t>(val);
            else if (key == "parent") ev.parent = static_cast<std::uint64_t>(val);
            else if (key == "lc") ev.lamport = static_cast<std::uint64_t>(val);
            else if (key == "congrid_trace") is_header = true;
            else if (key == "dropped") header_dropped = static_cast<std::uint64_t>(val);
          });
    } catch (const std::exception& e) {
      throw std::runtime_error("line " + std::to_string(line_no) + ": " +
                               e.what());
    }
    if (is_header) {
      dropped_ += header_dropped;
      continue;
    }
    events_.push_back(std::move(ev));
  }
}

void Trace::finish() {
  if (finished_) return;
  finished_ = true;
  std::stable_sort(events_.begin(), events_.end(),
                   [](const Event& a, const Event& b) { return a.t < b.t; });

  spans_.clear();
  transfers_.clear();
  std::unordered_map<std::uint64_t, std::size_t> span_idx;
  std::unordered_map<std::string, std::size_t> xfer_idx;

  for (const Event& ev : events_) {
    if (ev.kind == Event::Kind::kBegin) {
      if (span_idx.contains(ev.span)) continue;  // duplicate id: keep first
      Span s;
      s.id = ev.span;
      s.node = ev.node;
      s.name = ev.name;
      s.detail = ev.detail;
      s.begin_t = ev.t;
      s.trace = ev.trace;
      s.parent = ev.parent;
      s.lamport = ev.lamport;
      span_idx[s.id] = spans_.size();
      spans_.push_back(std::move(s));
      if (ev.name == "reliable.msg") {
        const std::string conn = detail_get(ev.detail, "conn");
        const std::uint64_t seq = detail_u64(ev.detail, "seq");
        const std::string key = transfer_key(conn, seq);
        auto xit = xfer_idx.find(key);
        if (xit != xfer_idx.end()) {
          // A receiver-only half already exists (its recv sorted earlier
          // than this begin -- skewed clocks between merged files). Attach
          // the sender side so validate() can flag recv-before-send.
          Transfer& x = transfers_[xit->second];
          if (x.span == 0) {
            x.src = ev.node;
            x.send_t = ev.t;
            x.last_tx_t = ev.t;
            x.span = ev.span;
            x.send_lamport = ev.lamport;
          }
        } else {
          Transfer x;
          x.conn = conn;
          x.type = detail_get(ev.detail, "type");
          x.seq = seq;
          const std::size_t gt = conn.find('>');
          if (gt != std::string::npos) {
            x.src = conn.substr(0, gt);
            x.dst = conn.substr(gt + 1);
          }
          // The event's node name is authoritative for the critical-path
          // walk (conn endpoints are transport addresses, not obs nodes).
          x.src = ev.node;
          x.send_t = ev.t;
          x.last_tx_t = ev.t;
          x.span = ev.span;
          x.send_lamport = ev.lamport;
          xfer_idx[key] = transfers_.size();
          transfers_.push_back(std::move(x));
        }
      }
      continue;
    }
    if (ev.kind == Event::Kind::kEnd) {
      auto it = span_idx.find(ev.span);
      if (it != span_idx.end() && !spans_[it->second].closed) {
        Span& s = spans_[it->second];
        s.closed = true;
        s.end_t = ev.t;
        s.end_detail = ev.detail;
      }
      continue;
    }
    // Instants.
    if (ev.name == "reliable.retx") {
      const std::string key = transfer_key(detail_get(ev.detail, "conn"),
                                           detail_u64(ev.detail, "seq"));
      auto it = xfer_idx.find(key);
      if (it != xfer_idx.end() && !transfers_[it->second].delivered) {
        ++transfers_[it->second].retx;
        transfers_[it->second].last_tx_t = ev.t;
      }
    } else if (ev.name == "reliable.recv") {
      const std::string conn = detail_get(ev.detail, "conn");
      const std::uint64_t seq = detail_u64(ev.detail, "seq");
      const std::string key = transfer_key(conn, seq);
      auto it = xfer_idx.find(key);
      if (it == xfer_idx.end()) {
        // Receiver-only half (sender file missing or overwritten):
        // span stays 0, validate() flags it.
        Transfer x;
        x.conn = conn;
        x.type = detail_get(ev.detail, "type");
        x.seq = seq;
        const std::size_t gt = conn.find('>');
        if (gt != std::string::npos) {
          x.src = conn.substr(0, gt);
          x.dst = conn.substr(gt + 1);
        }
        x.dst = ev.node;
        x.send_t = ev.t;
        x.last_tx_t = ev.t;
        x.recv_t = ev.t;
        x.recv_lamport = ev.lamport;
        x.delivered = true;
        xfer_idx[key] = transfers_.size();
        transfers_.push_back(std::move(x));
      } else if (!transfers_[it->second].delivered) {
        transfers_[it->second].delivered = true;
        transfers_[it->second].dst = ev.node;
        transfers_[it->second].recv_t = ev.t;
        transfers_[it->second].recv_lamport = ev.lamport;
      }
    }
  }
}

std::vector<std::string> Trace::validate() const {
  std::vector<std::string> errors;
  const bool lossy_ring = dropped_ > 0;

  // Span pairing. In-flight reliable.msg spans (sent, ack not yet seen at
  // export) are normal and reported as warnings by analyze(), not here.
  std::unordered_set<std::uint64_t> begun;
  for (const Span& s : spans_) begun.insert(s.id);
  for (const Span& s : spans_) {
    if (!s.closed && s.name != "reliable.msg" && !lossy_ring) {
      errors.push_back("unpaired span begin: id=" + std::to_string(s.id) +
                       " name=" + s.name + " node=" + s.node);
    }
  }
  for (const Event& ev : events_) {
    if (ev.kind == Event::Kind::kEnd && !begun.contains(ev.span) &&
        !lossy_ring) {
      errors.push_back("span end without begin: id=" +
                       std::to_string(ev.span) + " name=" + ev.name);
    }
  }

  // Transfers.
  for (const Transfer& x : transfers_) {
    if (x.delivered && x.span != 0 && x.recv_t < x.send_t) {
      errors.push_back("recv before send: conn=" + x.conn +
                       " seq=" + std::to_string(x.seq));
    }
    if (x.delivered && x.span == 0 && !lossy_ring) {
      errors.push_back("recv without matching send: conn=" + x.conn +
                       " seq=" + std::to_string(x.seq));
    }
  }

  // Parent cycles: follow parent edges with a visited stamp per walk.
  std::unordered_map<std::uint64_t, std::uint64_t> parent_of;
  for (const Span& s : spans_) parent_of[s.id] = s.parent;
  std::unordered_map<std::uint64_t, int> color;  // 0 new, 1 active, 2 done
  for (const Span& s : spans_) {
    std::vector<std::uint64_t> path;
    std::uint64_t cur = s.id;
    while (cur != 0 && parent_of.contains(cur) && color[cur] == 0) {
      color[cur] = 1;
      path.push_back(cur);
      cur = parent_of[cur];
    }
    if (cur != 0 && parent_of.contains(cur) && color[cur] == 1) {
      errors.push_back("parent cycle through span id=" + std::to_string(cur));
    }
    for (std::uint64_t id : path) color[id] = 2;
  }
  return errors;
}

std::vector<std::string> Trace::signature() const {
  std::vector<std::string> sig;

  // Span structure: label every non-wire span by (node, name, begin
  // detail) -- all deterministic fields -- and emit its parent edge.
  std::unordered_map<std::uint64_t, std::string> label;
  for (const Span& s : spans_) {
    if (s.name == "reliable.msg") continue;
    label[s.id] = s.node + "/" + s.name +
                  (s.detail.empty() ? "" : "?" + s.detail);
  }
  for (const Span& s : spans_) {
    if (s.name == "reliable.msg") continue;
    auto pit = label.find(s.parent);
    sig.push_back("span:" + (pit == label.end() ? std::string("root")
                                                : pit->second) +
                  "=>" + label[s.id]);
  }

  // Transfer structure: per-(conn,type) ordinals. Raw sequence ids shift
  // under loss (the reliable layer's counter is shared across message
  // types and discovery send counts vary), ordinals do not. Discovery and
  // heartbeat traffic is timing-sensitive by design and excluded.
  std::map<std::string, int> ordinal;
  for (const Transfer& x : transfers_) {  // transfers_ is send-time ordered
    if (x.span == 0) continue;            // receiver-only half
    if (x.type == "discovery" || x.type == "heartbeat") continue;
    const std::string group = x.conn + "|" + x.type;
    sig.push_back("xfer:" + group + "#" + std::to_string(ordinal[group]++));
  }

  std::sort(sig.begin(), sig.end());
  return sig;
}

Report Trace::analyze() const {
  Report r;
  r.events = events_.size();
  r.spans = spans_.size();
  r.transfers = transfers_.size();
  r.dropped = dropped_;
  r.errors = validate();
  if (dropped_ > 0) {
    r.warnings.push_back(std::to_string(dropped_) +
                         " events overwritten in the ring; trace is "
                         "incomplete and unpaired spans are expected");
  }
  for (const Span& s : spans_) {
    if (!s.closed && (s.name == "reliable.msg" || dropped_ > 0)) {
      r.warnings.push_back("open span at export: id=" + std::to_string(s.id) +
                           " name=" + s.name + " node=" + s.node);
    }
  }
  for (const Transfer& x : transfers_) {
    if (x.delivered && x.span != 0 && x.send_lamport != 0 &&
        x.recv_lamport != 0 && x.recv_lamport <= x.send_lamport) {
      r.warnings.push_back("lamport clock did not advance across conn=" +
                           x.conn + " seq=" + std::to_string(x.seq));
    }
  }
  if (events_.empty()) {
    r.warnings.push_back("no events");
    return r;
  }
  r.t0 = events_.front().t;
  r.t1 = events_.back().t;

  // Per-node activity intervals for local-time attribution, in priority
  // order: waiting on a module fetch outranks everything (the deploy is
  // blocked), then pipe binding, then compute.
  struct NodeActivity {
    std::vector<Interval> cache;    // cache.fetch spans
    std::vector<Interval> bind;     // pipe.bind spans
    std::vector<Interval> compute;  // runtime.tick spans
    double barrier_s = 0;           // summed from tick end details
  };
  std::map<std::string, NodeActivity> act;
  for (const Span& s : spans_) {
    if (!s.closed || s.end_t <= s.begin_t) {
      // Zero-width spans still matter for the barrier tally below.
      if (s.closed && s.name == "runtime.tick") {
        act[s.node].barrier_s += detail_f64(s.end_detail, "barrier_stall_s");
      }
      continue;
    }
    if (s.name == "cache.fetch") {
      act[s.node].cache.push_back({s.begin_t, s.end_t});
    } else if (s.name == "pipe.bind") {
      act[s.node].bind.push_back({s.begin_t, s.end_t});
    } else if (s.name == "runtime.tick") {
      act[s.node].compute.push_back({s.begin_t, s.end_t});
      act[s.node].barrier_s += detail_f64(s.end_detail, "barrier_stall_s");
    }
  }

  auto attribute_local = [&](const std::string& node, double a, double b) {
    if (b <= a) return;
    const NodeActivity& na = act[node];
    double cache_s = clip_overlap(na.cache, a, b);
    double bind_s = clip_overlap(na.bind, a, b);
    double compute_s = clip_overlap(na.compute, a, b);
    // Overlaps resolve by priority; each category cedes to the ones above.
    double remaining = b - a;
    cache_s = std::min(cache_s, remaining);
    remaining -= cache_s;
    bind_s = std::min(bind_s, remaining);
    remaining -= bind_s;
    compute_s = std::min(compute_s, remaining);
    remaining -= compute_s;
    // Wave-barrier stall is wall time inside tick spans, reported by the
    // engine itself; carve it out of compute.
    double barrier_s = std::min(na.barrier_s, compute_s);
    compute_s -= barrier_s;
    r.attribution["cache_wait"] += cache_s;
    r.attribution["bind_wait"] += bind_s;
    r.attribution["compute"] += compute_s;
    r.attribution["barrier_stall"] += barrier_s;
    r.attribution["other"] += remaining;
    std::string what = "local";
    std::string cat = "other";
    if (cache_s >= bind_s && cache_s >= compute_s && cache_s > 0) {
      cat = "cache_wait";
      what = "cache.fetch";
    } else if (bind_s >= compute_s && bind_s > 0) {
      cat = "bind_wait";
      what = "pipe.bind";
    } else if (compute_s > 0) {
      cat = "compute";
      what = "runtime.tick";
    }
    r.critical_path.push_back({a, b, cat, node, what});
  };

  // Ack arrivals are causal edges too: a "reliable.msg" span on the
  // sender ends ("acked ...") exactly when the receiver's ack lands, so
  // the walk can hop sender<-receiver even though acks themselves are
  // not traced as transfers. Without this, a run whose last event is on
  // the originating peer (every request/ack benchmark) dead-ends there.
  std::map<std::uint64_t, std::size_t> xfer_by_span;
  for (std::size_t i = 0; i < transfers_.size(); ++i) {
    if (transfers_[i].delivered && transfers_[i].span != 0) {
      xfer_by_span[transfers_[i].span] = i;
    }
  }

  // Backward walk from the last event: local activity back to the latest
  // inbound transfer (or returning ack), hop to its sender, repeat.
  // Newest-first, reversed at the end. Each round trip can cost two
  // hops (ack + payload), hence the 2x step budget.
  double cur_t = r.t1;
  std::string cur_node = events_.back().node;
  const std::size_t step_limit = 2 * transfers_.size() + 16;
  for (std::size_t step = 0; step < step_limit && cur_t > r.t0; ++step) {
    const Transfer* best = nullptr;
    for (const Transfer& x : transfers_) {
      if (!x.delivered || x.span == 0) continue;
      if (x.dst != cur_node) continue;
      if (x.recv_t > cur_t || x.send_t >= cur_t) continue;
      if (!best || x.recv_t > best->recv_t) best = &x;
    }
    // Latest acked outbound message whose ack landed here by cur_t; its
    // delivery at the far end strictly precedes cur_t, so the hop makes
    // progress.
    const Span* ack = nullptr;
    const Transfer* ack_x = nullptr;
    for (const Span& s : spans_) {
      if (!s.closed || s.name != "reliable.msg" || s.node != cur_node) {
        continue;
      }
      if (s.end_t > cur_t) continue;
      if (s.end_detail.compare(0, 5, "acked") != 0) continue;
      const auto it = xfer_by_span.find(s.id);
      if (it == xfer_by_span.end()) continue;
      const Transfer& x = transfers_[it->second];
      if (x.dst == cur_node || x.recv_t >= cur_t) continue;
      if (!ack || s.end_t > ack->end_t) {
        ack = &s;
        ack_x = &x;
      }
    }
    // Prefer whichever predecessor event arrived later; ties go to the
    // delivered payload (the more direct cause).
    if (ack && (!best || ack->end_t > best->recv_t)) {
      attribute_local(cur_node, ack->end_t, cur_t);
      if (ack->end_t > ack_x->recv_t) {
        r.attribution["link"] += ack->end_t - ack_x->recv_t;
        r.critical_path.push_back({ack_x->recv_t, ack->end_t, "link",
                                   cur_node,
                                   ack_x->conn + " " + ack_x->type + " seq=" +
                                       std::to_string(ack_x->seq) + " ack"});
      }
      cur_t = ack_x->recv_t;
      cur_node = ack_x->dst;
      continue;
    }
    if (!best || best->recv_t <= r.t0) {
      attribute_local(cur_node, r.t0, cur_t);
      break;
    }
    attribute_local(cur_node, best->recv_t, cur_t);
    const std::string what = best->conn + " " + best->type +
                             " seq=" + std::to_string(best->seq);
    if (best->recv_t > best->last_tx_t) {
      r.attribution["link"] += best->recv_t - best->last_tx_t;
      r.critical_path.push_back(
          {best->last_tx_t, best->recv_t, "link", best->dst, what});
    }
    if (best->last_tx_t > best->send_t) {
      r.attribution["retx_stall"] += best->last_tx_t - best->send_t;
      r.critical_path.push_back({best->send_t, best->last_tx_t, "retx_stall",
                                 best->src,
                                 what + " retx=" + std::to_string(best->retx)});
    }
    cur_t = best->send_t;
    cur_node = best->src;
  }
  std::reverse(r.critical_path.begin(), r.critical_path.end());
  return r;
}

std::string Report::to_json() const {
  std::string out = "{";
  out += "\"ok\":" + std::string(ok() ? "true" : "false");
  out += ",\"events\":" + std::to_string(events);
  out += ",\"spans\":" + std::to_string(spans);
  out += ",\"transfers\":" + std::to_string(transfers);
  out += ",\"dropped\":" + std::to_string(dropped);
  out += ",\"t0\":" + json_number(t0);
  out += ",\"t1\":" + json_number(t1);
  out += ",\"errors\":[";
  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (i) out += ",";
    out += json_quote(errors[i]);
  }
  out += "],\"warnings\":[";
  for (std::size_t i = 0; i < warnings.size(); ++i) {
    if (i) out += ",";
    out += json_quote(warnings[i]);
  }
  out += "],\"attribution\":{";
  bool first = true;
  for (const auto& [cat, sec] : attribution) {
    if (!first) out += ",";
    first = false;
    out += json_quote(cat) + ":" + json_number(sec);
  }
  out += "},\"critical_path\":[";
  for (std::size_t i = 0; i < critical_path.size(); ++i) {
    const PathStep& p = critical_path[i];
    if (i) out += ",";
    out += "{\"t0\":" + json_number(p.t0);
    out += ",\"t1\":" + json_number(p.t1);
    out += ",\"category\":" + json_quote(p.category);
    out += ",\"node\":" + json_quote(p.node);
    out += ",\"what\":" + json_quote(p.what);
    out += "}";
  }
  out += "]}";
  return out;
}

std::string Report::to_markdown() const {
  std::string out;
  out += "## congrid-trace report\n\n";
  out += "- events: " + std::to_string(events) +
         ", spans: " + std::to_string(spans) +
         ", transfers: " + std::to_string(transfers) + "\n";
  out += "- time range: " + json_number(t0) + "s .. " + json_number(t1) +
         "s (" + json_number(t1 - t0) + "s)\n";
  if (dropped > 0) {
    out += "- **" + std::to_string(dropped) +
           " events dropped** (ring overwrote them); results are partial\n";
  }
  out += "\n### Critical-path attribution\n\n";
  out += "| category | seconds | share |\n|---|---:|---:|\n";
  double total = 0;
  for (const auto& [cat, sec] : attribution) total += sec;
  for (const auto& [cat, sec] : attribution) {
    const double pct = total > 0 ? 100.0 * sec / total : 0.0;
    out += "| " + cat + " | " + json_number(sec) + " | " +
           json_number(pct) + "% |\n";
  }
  out += "\n### Critical path (" + std::to_string(critical_path.size()) +
         " steps)\n\n";
  out += "| t0 | t1 | category | node | what |\n|---:|---:|---|---|---|\n";
  for (const PathStep& p : critical_path) {
    out += "| " + json_number(p.t0) + " | " + json_number(p.t1) + " | " +
           p.category + " | " + p.node + " | " + p.what + " |\n";
  }
  if (!errors.empty()) {
    out += "\n### Errors\n\n";
    for (const auto& e : errors) out += "- " + e + "\n";
  }
  if (!warnings.empty()) {
    out += "\n### Warnings\n\n";
    for (const auto& w : warnings) out += "- " + w + "\n";
  }
  return out;
}

}  // namespace cg::obs::causal
