// ConGrid -- tiny JSON utilities for the observability layer.
//
// The obs layer exports metrics snapshots and trace events as JSON so CI
// and analysis scripts can consume bench output without scraping printf
// tables. We need exactly three things -- string escaping, locale-proof
// number formatting, and a validity check the tests and the CI bench-smoke
// job can gate on -- so this is hand-rolled rather than a dependency (the
// container policy forbids new third-party packages anyway).
#pragma once

#include <string>
#include <string_view>

namespace cg::obs {

/// Append `s` to `out` as JSON string *contents* (no surrounding quotes),
/// escaping quotes, backslashes and control characters. Bytes that do not
/// form well-formed UTF-8 are replaced with U+FFFD so the output is always
/// a parseable JSON string, whatever ends up in a node/detail field.
void append_json_escaped(std::string& out, std::string_view s);

/// `s` as a complete JSON string token, quotes included.
std::string json_quote(std::string_view s);

/// `v` as a JSON number token. Non-finite values (inf/nan have no JSON
/// spelling) become 0 so exports stay parseable.
std::string json_number(double v);

/// Strict validity check: true iff `text` is one complete JSON value
/// (object, array, string, number, bool or null) with nothing but
/// whitespace around it. A real recursive-descent parse, not a heuristic:
/// the CI bench-smoke job fails on anything this rejects.
bool json_valid(std::string_view text);

}  // namespace cg::obs
