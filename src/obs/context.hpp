// ConGrid -- cross-peer trace context.
//
// The causal identity a message or span carries between peers: which
// per-run trace it belongs to, which span caused it, and the sender's
// Lamport clock at send time. The struct is deliberately dependency-free
// (three integers) so the wire layer (serial/frame.hpp), the transports
// and the tracer can all share one type without linking anything.
//
// Wire rule: the context is ALWAYS encoded, as three fixed-width u64s,
// zero-filled when tracing is off or compiled out. Frame sizes -- and
// therefore SimNetwork latencies, schedules and run outputs -- are
// bit-identical whether tracing is on, off, or built with
// -DCONGRID_OBS=OFF.
#pragma once

#include <algorithm>
#include <cstdint>

#ifndef CONGRID_OBS_ENABLED
#define CONGRID_OBS_ENABLED 1
#endif

namespace cg::obs {

/// Causal identity carried by messages and spans. trace_id == 0 means
/// "untraced": the fields still travel (fixed width) but carry nothing.
struct TraceContext {
  std::uint64_t trace_id = 0;     ///< per-run id, assigned by the controller
  std::uint64_t parent_span = 0;  ///< span that caused this message/span
  std::uint64_t lamport = 0;      ///< sender's logical clock at send time

  bool active() const { return trace_id != 0; }
  bool operator==(const TraceContext&) const = default;
};

/// Size of the encoded context: three u64s, always present.
constexpr std::size_t kTraceContextWireSize = 24;

/// Per-peer Lamport clock. tick() before sending, merge() on receive
/// (max(local, remote) + 1): comparing clocks then orders any two events
/// connected by a message chain. Compiles to constant zeros under
/// -DCONGRID_OBS=OFF so the wire carries zero-filled contexts.
class LamportClock {
 public:
#if CONGRID_OBS_ENABLED
  std::uint64_t tick() { return ++t_; }
  std::uint64_t merge(std::uint64_t remote) {
    t_ = std::max(t_, remote) + 1;
    return t_;
  }
  std::uint64_t now() const { return t_; }

 private:
  std::uint64_t t_ = 0;
#else
  std::uint64_t tick() { return 0; }
  std::uint64_t merge(std::uint64_t) { return 0; }
  std::uint64_t now() const { return 0; }
#endif
};

}  // namespace cg::obs
