#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace cg::obs {

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  append_json_escaped(out, s);
  out += '"';
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  // %.17g round-trips every double; trim to something readable when the
  // short form is exact.
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

namespace {

/// Recursive-descent JSON parser used only for validation.
struct Parser {
  std::string_view s;
  std::size_t i = 0;
  int depth = 0;
  static constexpr int kMaxDepth = 128;

  bool at_end() const { return i >= s.size(); }
  char peek() const { return s[i]; }

  void skip_ws() {
    while (!at_end() &&
           (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r')) {
      ++i;
    }
  }

  bool literal(std::string_view word) {
    if (s.substr(i, word.size()) != word) return false;
    i += word.size();
    return true;
  }

  bool string() {
    if (at_end() || peek() != '"') return false;
    ++i;
    while (!at_end()) {
      const char c = s[i++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (at_end()) return false;
        const char e = s[i++];
        if (e == 'u') {
          for (int k = 0; k < 4; ++k) {
            if (at_end() || !std::isxdigit(static_cast<unsigned char>(s[i]))) {
              return false;
            }
            ++i;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool digits() {
    if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      return false;
    }
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) ++i;
    return true;
  }

  bool number() {
    if (!at_end() && peek() == '-') ++i;
    if (at_end()) return false;
    if (peek() == '0') {
      ++i;
    } else if (!digits()) {
      return false;
    }
    if (!at_end() && peek() == '.') {
      ++i;
      if (!digits()) return false;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++i;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++i;
      if (!digits()) return false;
    }
    return true;
  }

  bool value() {
    if (++depth > kMaxDepth) return false;
    skip_ws();
    if (at_end()) return false;
    bool ok = false;
    switch (peek()) {
      case '{':
        ok = object();
        break;
      case '[':
        ok = array();
        break;
      case '"':
        ok = string();
        break;
      case 't':
        ok = literal("true");
        break;
      case 'f':
        ok = literal("false");
        break;
      case 'n':
        ok = literal("null");
        break;
      default:
        ok = number();
    }
    --depth;
    return ok;
  }

  bool object() {
    ++i;  // '{'
    skip_ws();
    if (!at_end() && peek() == '}') {
      ++i;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (at_end() || s[i++] != ':') return false;
      if (!value()) return false;
      skip_ws();
      if (at_end()) return false;
      const char c = s[i++];
      if (c == '}') return true;
      if (c != ',') return false;
    }
  }

  bool array() {
    ++i;  // '['
    skip_ws();
    if (!at_end() && peek() == ']') {
      ++i;
      return true;
    }
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (at_end()) return false;
      const char c = s[i++];
      if (c == ']') return true;
      if (c != ',') return false;
    }
  }
};

}  // namespace

bool json_valid(std::string_view text) {
  Parser p{text};
  if (!p.value()) return false;
  p.skip_ws();
  return p.at_end();
}

}  // namespace cg::obs
