#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace cg::obs {

namespace {

/// Length of the valid UTF-8 sequence starting at s[i], or 0 if the bytes
/// there are not well-formed UTF-8 (overlong forms, surrogates, stray
/// continuation bytes, truncation). Strings reaching the exporter are
/// usually ASCII, but node/detail fields are freeform -- a single invalid
/// byte must not make a whole merged JSONL trace unparseable.
std::size_t utf8_seq_len(std::string_view s, std::size_t i) {
  const auto b = [&](std::size_t k) {
    return static_cast<unsigned char>(s[i + k]);
  };
  const unsigned char lead = b(0);
  if (lead < 0x80) return 1;
  if (lead < 0xC2) return 0;  // continuation byte or overlong 2-byte lead
  const auto cont = [&](std::size_t k) {
    return i + k < s.size() && (b(k) & 0xC0) == 0x80;
  };
  if (lead < 0xE0) return cont(1) ? 2 : 0;
  if (lead < 0xF0) {
    if (!cont(1) || !cont(2)) return 0;
    if (lead == 0xE0 && b(1) < 0xA0) return 0;  // overlong
    if (lead == 0xED && b(1) >= 0xA0) return 0;  // UTF-16 surrogate range
    return 3;
  }
  if (lead < 0xF5) {
    if (!cont(1) || !cont(2) || !cont(3)) return 0;
    if (lead == 0xF0 && b(1) < 0x90) return 0;  // overlong
    if (lead == 0xF4 && b(1) >= 0x90) return 0;  // above U+10FFFF
    return 4;
  }
  return 0;  // 0xF5..0xFF never appear in UTF-8
}

/// Bytes consumed by one replacement character when the sequence at s[i]
/// is ill-formed: the maximal subpart of a valid sequence (the W3C/WHATWG
/// decoding rule), so a truncated 3-byte character costs one U+FFFD, not
/// one per byte.
std::size_t invalid_seq_len(std::string_view s, std::size_t i) {
  const auto b = [&](std::size_t k) {
    return static_cast<unsigned char>(s[i + k]);
  };
  const unsigned char lead = b(0);
  const auto in = [&](std::size_t k, unsigned char lo, unsigned char hi) {
    return i + k < s.size() && b(k) >= lo && b(k) <= hi;
  };
  if (lead >= 0xC2 && lead <= 0xDF) return 1;  // missing continuation
  unsigned char lo = 0x80, hi = 0xBF;  // constrained second-byte ranges
  if (lead == 0xE0) lo = 0xA0;
  if (lead == 0xED) hi = 0x9F;
  if (lead == 0xF0) lo = 0x90;
  if (lead == 0xF4) hi = 0x8F;
  if (lead >= 0xE0 && lead <= 0xEF) return in(1, lo, hi) ? 2 : 1;
  if (lead >= 0xF0 && lead <= 0xF4) {
    if (!in(1, lo, hi)) return 1;
    return in(2, 0x80, 0xBF) ? 3 : 2;
  }
  return 1;  // stray continuation byte or invalid lead
}

}  // namespace

void append_json_escaped(std::string& out, std::string_view s) {
  for (std::size_t i = 0; i < s.size();) {
    const char c = s[i];
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else if (static_cast<unsigned char>(c) >= 0x80) {
          // Multi-byte sequence: emit verbatim when well-formed, replace
          // the maximal ill-formed subpart with one U+FFFD otherwise.
          const std::size_t len = utf8_seq_len(s, i);
          if (len == 0) {
            out += "\xEF\xBF\xBD";  // U+FFFD REPLACEMENT CHARACTER
            i += invalid_seq_len(s, i);
            continue;
          }
          out.append(s.substr(i, len));
          i += len;
          continue;
        } else {
          out += c;
        }
    }
    ++i;
  }
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  append_json_escaped(out, s);
  out += '"';
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  // %.17g round-trips every double; trim to something readable when the
  // short form is exact.
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

namespace {

/// Recursive-descent JSON parser used only for validation.
struct Parser {
  std::string_view s;
  std::size_t i = 0;
  int depth = 0;
  static constexpr int kMaxDepth = 128;

  bool at_end() const { return i >= s.size(); }
  char peek() const { return s[i]; }

  void skip_ws() {
    while (!at_end() &&
           (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r')) {
      ++i;
    }
  }

  bool literal(std::string_view word) {
    if (s.substr(i, word.size()) != word) return false;
    i += word.size();
    return true;
  }

  bool string() {
    if (at_end() || peek() != '"') return false;
    ++i;
    while (!at_end()) {
      const char c = s[i++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (at_end()) return false;
        const char e = s[i++];
        if (e == 'u') {
          for (int k = 0; k < 4; ++k) {
            if (at_end() || !std::isxdigit(static_cast<unsigned char>(s[i]))) {
              return false;
            }
            ++i;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool digits() {
    if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      return false;
    }
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) ++i;
    return true;
  }

  bool number() {
    if (!at_end() && peek() == '-') ++i;
    if (at_end()) return false;
    if (peek() == '0') {
      ++i;
    } else if (!digits()) {
      return false;
    }
    if (!at_end() && peek() == '.') {
      ++i;
      if (!digits()) return false;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++i;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++i;
      if (!digits()) return false;
    }
    return true;
  }

  bool value() {
    if (++depth > kMaxDepth) return false;
    skip_ws();
    if (at_end()) return false;
    bool ok = false;
    switch (peek()) {
      case '{':
        ok = object();
        break;
      case '[':
        ok = array();
        break;
      case '"':
        ok = string();
        break;
      case 't':
        ok = literal("true");
        break;
      case 'f':
        ok = literal("false");
        break;
      case 'n':
        ok = literal("null");
        break;
      default:
        ok = number();
    }
    --depth;
    return ok;
  }

  bool object() {
    ++i;  // '{'
    skip_ws();
    if (!at_end() && peek() == '}') {
      ++i;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (at_end() || s[i++] != ':') return false;
      if (!value()) return false;
      skip_ws();
      if (at_end()) return false;
      const char c = s[i++];
      if (c == '}') return true;
      if (c != ',') return false;
    }
  }

  bool array() {
    ++i;  // '['
    skip_ws();
    if (!at_end() && peek() == ']') {
      ++i;
      return true;
    }
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (at_end()) return false;
      const char c = s[i++];
      if (c == ']') return true;
      if (c != ',') return false;
    }
  }
};

}  // namespace

bool json_valid(std::string_view text) {
  Parser p{text};
  if (!p.value()) return false;
  p.skip_ws();
  return p.at_end();
}

}  // namespace cg::obs
