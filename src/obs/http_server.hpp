// ConGrid -- embedded HTTP server: the live view of a running process.
//
// Every obs artifact before this was post-hoc: metrics and trace rings
// were dumped to JSON/JSONL after a run ended, so a 220-second churn
// campaign was a black box while it actually ran. This server makes the
// obs state of a live process scrapeable:
//
//   GET /healthz       "ok" -- liveness probe for scripts and CI
//   GET /metrics       Prometheus text exposition (format 0.0.4); answers
//                      JSON instead when the Accept header asks for
//                      application/json
//   GET /metrics.json  snapshot + sampler window rates as one JSON object
//   GET /trace         the most recent ring-buffer spans as JSONL (the
//                      same format Tracer::to_jsonl exports post-hoc)
//   GET /              a single-file HTML dashboard that polls
//                      /metrics.json and renders counter rates, gauges
//                      and histogram quantiles live
//
// Design: one loopback listener (127.0.0.1 only -- never a routable
// interface), one epoll pump thread, bounded request buffers (oversized
// requests get 431 and the connection is closed), Connection: close on
// every response. The pump thread also drives the Sampler, so rates are
// available without any cooperation from the instrumented code. The
// reactor reuses the non-blocking listener helpers proven by
// TcpTransport (net/socket_util.hpp).
//
// Off by default: nothing listens unless start() is called explicitly
// (benches' --obs-port) or CONGRID_OBS_PORT is set (from_env, used by the
// service stack). With CONGRID_OBS off every method is a no-op, start()
// returns false, and no socket is ever opened -- the acceptance test for
// the compiled-out mode asserts exactly that.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"

#if CONGRID_OBS_ENABLED
#include <atomic>
#include <thread>
#include <unordered_map>
#endif

namespace cg::obs {

struct HttpServerOptions {
  std::uint16_t port = 0;  ///< 0 picks an ephemeral port (read back: port())
  /// Requests larger than this (headers included) are answered with 431
  /// and the connection is closed -- the server never buffers unboundedly.
  std::size_t max_request_bytes = 8192;
  double sample_period_s = 1.0;  ///< sampler cadence on the pump thread
  std::size_t sample_window = 64;
};

class HttpServer {
 public:
  /// `registry` (and `tracer`, when given) must outlive the server --
  /// stop() or destroy the server before they go away. The constructor
  /// does not open a socket; start() does.
  explicit HttpServer(Registry& registry, Tracer* tracer = nullptr,
                      HttpServerOptions opt = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Bind 127.0.0.1:<port>, start the pump thread. Returns false (and
  /// stays stopped) if the port is taken, on any socket error, or always
  /// under -DCONGRID_OBS=OFF. Idempotent while running.
  bool start();
  /// Stop the pump thread and close the listener and every connection.
  /// Safe to call twice; the destructor calls it.
  void stop();
  bool running() const;

  /// Actual bound port (useful with port 0); 0 when not running.
  std::uint16_t port() const;
  /// "http://127.0.0.1:<port>/"; "" when not running.
  std::string url() const;

  /// The sliding-window snapshotter the pump thread drives; tests may
  /// call sample() on it directly.
  Sampler& sampler() { return sampler_; }
  const Sampler& sampler() const { return sampler_; }

  /// Pure request -> response mapping: takes one complete HTTP/1.1
  /// request (request line + headers), returns the full response bytes.
  /// The socket loop calls this; tests can validate routing and payloads
  /// without opening a socket. "" under -DCONGRID_OBS=OFF.
  std::string respond(std::string_view raw_request) const;

  /// The embedded single-file dashboard served at "/".
  static std::string_view dashboard_html();

  /// Honour the CONGRID_OBS_PORT environment knob: on the first call with
  /// the variable set to a port number, start a process-wide server on
  /// that port bound to `registry`/`tracer` and return it; later calls
  /// return the same server (whatever registry they pass). Returns
  /// nullptr when the variable is unset/invalid, the bind fails, or obs
  /// is compiled out. The caller's registry must then live until process
  /// exit or stop_env_server().
  static HttpServer* from_env(Registry& registry, Tracer* tracer = nullptr);
  /// Stop and discard the from_env server (for tests and orderly
  /// shutdown paths).
  static void stop_env_server();

 private:
  Registry& registry_;
  Tracer* tracer_ = nullptr;
  HttpServerOptions opt_;
  Sampler sampler_;

#if CONGRID_OBS_ENABLED
  struct Conn {
    std::string in;
    std::string out;
    std::size_t out_pos = 0;
    bool responded = false;  ///< request handled, draining out
    bool fin_sent = false;   ///< response written, waiting for client EOF
  };

  void pump_loop();
  void accept_ready();
  void conn_readable(int fd);
  bool conn_flush(int fd);  ///< false if the connection was closed
  void close_conn(int fd);
  std::string metrics_json() const;

  mutable std::mutex mu_;  ///< guards listener/thread lifecycle state
  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::thread pump_;
  std::unordered_map<int, Conn> conns_;  ///< pump-thread only
#endif
};

}  // namespace cg::obs
