// ConGrid -- sampler: a short sliding window of registry snapshots.
//
// The registry's counters are monotonic totals, which is the right shape
// for post-hoc JSON artifacts but the wrong shape for a live view: "what
// is this run doing NOW" means msgs/s, retransmits/s, churn events/s --
// rates over a recent window, not lifetime sums. The Sampler keeps the
// last N snapshots of one registry, each stamped with the caller's clock,
// and derives per-second counter rates from the window's endpoints. The
// obs HTTP server drives it from its pump thread (one snapshot per
// period) and serves the rates on /metrics.json; nothing else in the
// system depends on it.
//
// Thread-safety: all methods take the sampler's mutex. Snapshotting the
// registry is itself lock-cheap (one mutex, atomic reads), so a 1 Hz
// sampling cadence is invisible to the instrumented hot paths.
//
// With CONGRID_OBS off every method is an inline no-op: nothing is
// sampled, rates are empty, and the window never allocates.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>

#include "obs/metrics.hpp"

namespace cg::obs {

/// One entry of the sliding window.
struct Sample {
  double t = 0.0;  ///< caller's clock (wall seconds for the HTTP server)
  MetricsSnapshot snapshot;
};

class Sampler {
 public:
  struct Options {
    double period_s = 1.0;     ///< minimum spacing maybe_sample() enforces
    std::size_t window = 64;   ///< samples retained (oldest evicted)
  };

  // Two overloads, not `Options opt = {}`: GCC parses a nested class's
  // default member initialisers too late for that default argument.
  explicit Sampler(const Registry& registry);
  Sampler(const Registry& registry, Options opt);

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Snapshot the registry now, stamped `now_s`; evicts the oldest sample
  /// once the window is full.
  void sample(double now_s);

  /// sample() only if at least period_s has passed since the last sample
  /// (or none has been taken). Returns true when a sample was taken. The
  /// HTTP pump calls this every loop iteration.
  bool maybe_sample(double now_s);

  /// Samples currently resident.
  std::size_t size() const;

  /// Seconds spanned by the window (newest.t - oldest.t); 0 with < 2
  /// samples.
  double span_s() const;

  /// Newest snapshot, or an empty one before the first sample.
  MetricsSnapshot latest() const;

  /// Timestamp of the newest sample (0 before the first).
  double latest_t() const;

  /// Per-second rate of every counter across the window: (newest value -
  /// oldest value) / span. Counters that appeared mid-window rate against
  /// an implicit 0 at the oldest sample's time. Empty with < 2 samples.
  std::map<std::string, double> counter_rates() const;

  /// Rate of one counter; 0 when unknown or the window is too short.
  double rate(const std::string& name) const;

  const Options& options() const { return opt_; }

 private:
  Options opt_;
#if CONGRID_OBS_ENABLED
  const Registry& registry_;
  mutable std::mutex mu_;
  std::deque<Sample> window_;
  double last_sample_t_ = -1.0;
#endif
};

}  // namespace cg::obs
