// ConGrid -- time and deferred-execution function types.
//
// Shared by every layer that must run both in simulated time (SimNetwork's
// virtual clock) and in real time (steady_clock + a timer loop): bind Clock
// and Scheduler to the environment once, and the layer above doesn't care
// which world it lives in.
#pragma once

#include <chrono>
#include <functional>

namespace cg::net {

/// Seconds on the ambient clock (virtual or wall).
using Clock = std::function<double()>;

/// Run `fn` after `delay_s` seconds on the ambient clock.
using Scheduler = std::function<void(double delay_s, std::function<void()> fn)>;

/// A wall-clock Clock based on steady_clock, starting near zero at first
/// call site construction.
inline Clock steady_clock_seconds() {
  const auto epoch = std::chrono::steady_clock::now();
  return [epoch] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch)
        .count();
  };
}

}  // namespace cg::net
