// ConGrid -- transport endpoint addressing.
//
// An Endpoint names a place a Frame can be sent. The scheme prefix selects
// the transport family:
//   sim:<node-id>       deterministic simulated network node
//   inproc:<name>       in-process hub registration
//   tcp:<host>:<port>   real socket listener
// Endpoints are plain value types; the transport that created them knows how
// to interpret the rest of the string.
#pragma once

#include <functional>
#include <string>

namespace cg::net {

struct Endpoint {
  std::string value;

  bool operator==(const Endpoint&) const = default;
  auto operator<=>(const Endpoint&) const = default;
  bool empty() const { return value.empty(); }
};

inline Endpoint sim_endpoint(std::uint32_t node_id) {
  return Endpoint{"sim:" + std::to_string(node_id)};
}

inline Endpoint inproc_endpoint(const std::string& name) {
  return Endpoint{"inproc:" + name};
}

inline Endpoint tcp_endpoint(const std::string& host, std::uint16_t port) {
  return Endpoint{"tcp:" + host + ":" + std::to_string(port)};
}

}  // namespace cg::net

template <>
struct std::hash<cg::net::Endpoint> {
  std::size_t operator()(const cg::net::Endpoint& e) const noexcept {
    return std::hash<std::string>{}(e.value);
  }
};
