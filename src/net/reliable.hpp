// ConGrid -- reliable request/reply layer.
//
// The paper's volunteer DSL/cable peers vanish without notice (3.6.2) and
// their links drop frames; a fire-and-forget control plane silently wedges a
// distributed run on a single lost deploy or ack. ReliableTransport wraps
// any Transport with at-least-once delivery:
//
//   * every selected outbound frame rides in a kReliable envelope carrying
//     a sender-scoped message id (serial::encode_envelope);
//   * the receiver confirms each envelope with a kAck and suppresses
//     duplicate ids per sender, so retried deploys/cancels stay idempotent
//     -- at-least-once + dedup = effectively-once for control messages;
//   * the sender retransmits unacknowledged messages with exponential
//     backoff plus deterministic jitter until a configurable deadline or
//     retry budget is exhausted, then gives up and (optionally) reports the
//     expiry to a drop handler.
//
// Which frame types get the treatment is policy: by default everything
// except kHeartbeat (liveness probes are only meaningful fresh) and kAck
// itself. Acks ride unreliable -- a lost ack simply provokes one more
// retransmission, which provokes a fresh ack.
//
// The layer is transport-agnostic and single-threaded per instance, like
// everything above it: timers run on the ambient Scheduler, so the same
// code is exact over SimNetwork virtual time and best-effort over wall
// clocks.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "dsp/rng.hpp"
#include "net/time.hpp"
#include "net/transport.hpp"
#include "obs/obs.hpp"

namespace cg::net {

/// Retry/dedup tuning. Defaults suit simulated consumer-DSL links (~40 ms
/// one-way): first retry after ~8x RTT, give up after ~20 s.
struct ReliableConfig {
  double rto_initial_s = 0.6;  ///< first retransmission timeout
  double rto_max_s = 5.0;      ///< backoff ceiling
  double backoff = 2.0;        ///< RTO multiplier per retry
  /// Uniform jitter applied to every (re)transmission timer as a fraction
  /// of the RTO, desynchronising retry storms after an outage.
  double jitter_frac = 0.1;
  double deadline_s = 20.0;    ///< total time before a message expires
  int max_retries = 6;         ///< retransmissions before giving up
  std::size_t dedup_window = 1024;  ///< remembered ids per sender
  std::uint64_t seed = 1;      ///< jitter RNG seed (determinism)
  /// Which frame types are sent reliably; the rest pass through untouched.
  /// Null means the default policy (everything but kHeartbeat).
  std::function<bool(serial::FrameType)> reliable_type;

  /// Wire batching (GraphLab-style buffered exchange): when on, small
  /// outbound frames headed for the same peer -- envelopes, acks,
  /// passthrough alike -- are coalesced and sent as one kBatch frame when
  /// a size/count threshold fills or a short flush timer fires. Off by
  /// default: batching reorders the event schedule, so deterministic sim
  /// baselines opt in explicitly.
  bool batch = false;
  std::size_t batch_max_bytes = 16 * 1024;  ///< flush when buffered payload hits this
  std::size_t batch_max_frames = 64;        ///< flush when this many are buffered
  double batch_flush_s = 0.002;             ///< max added latency before a flush
  /// Frames with payloads at least this large skip the coalescer (after
  /// flushing what's buffered, so per-destination order still holds).
  std::size_t batch_bypass_bytes = 4096;
};

/// Counters for the supervisor, benches and chaos tests. Deterministic for
/// a given seed + FaultPlan, so two identical runs must compare equal.
struct ReliableStats {
  std::uint64_t sent = 0;           ///< reliable messages originated
  std::uint64_t retransmits = 0;    ///< extra copies sent
  std::uint64_t acked = 0;          ///< confirmed by the receiver
  std::uint64_t expired = 0;        ///< gave up (deadline/retry budget)
  std::uint64_t delivered = 0;      ///< unique reliable frames passed up
  std::uint64_t duplicates_suppressed = 0;  ///< retransmitted copies eaten
  std::uint64_t acks_sent = 0;
  std::uint64_t passthrough_sent = 0;       ///< frames outside the policy
  std::uint64_t passthrough_delivered = 0;
  std::uint64_t batches_sent = 0;           ///< kBatch frames put on the wire
  std::uint64_t frames_coalesced = 0;       ///< frames that rode in a batch
  std::uint64_t batch_bypassed = 0;         ///< oversized frames sent alone
  std::uint64_t batches_received = 0;       ///< kBatch frames unpacked
  std::uint64_t malformed_dropped = 0;      ///< undecodable frames discarded

  bool operator==(const ReliableStats&) const = default;
};

/// Transport decorator adding at-least-once delivery with receiver-side
/// duplicate suppression. The inner transport, clock and scheduler must
/// outlive this object.
class ReliableTransport final : public Transport {
 public:
  /// Fired when a reliable message exhausts its retries (e.g. the peer is
  /// gone for good). Receives the destination and the original frame.
  using DropHandler =
      std::function<void(const Endpoint& to, const serial::Frame& frame)>;

  /// Fired for EVERY frame this transport receives -- acks, reliable
  /// envelopes, passthrough -- before any processing. Any frame from a
  /// peer is proof the peer is alive, so a failure detector listening
  /// here gets liveness piggybacked on ordinary data-plane traffic for
  /// free (no extra probes on the wire).
  using ActivityListener = std::function<void(const Endpoint& from)>;

  ReliableTransport(Transport& inner, Clock clock, Scheduler scheduler,
                    ReliableConfig config = {});

  ReliableTransport(const ReliableTransport&) = delete;
  ReliableTransport& operator=(const ReliableTransport&) = delete;

  Endpoint local() const override { return inner_.local(); }
  void send(const Endpoint& to, serial::Frame frame) override;
  void set_handler(FrameHandler handler) override {
    handler_ = std::move(handler);
  }
  std::size_t poll() override { return inner_.poll(); }

  /// Flush every per-destination batch buffer, then the inner transport.
  /// Hot paths call this after a burst so coalesced frames do not sit out
  /// the flush timer.
  void flush() override;

  void set_drop_handler(DropHandler h) { on_drop_ = std::move(h); }
  void set_activity_listener(ActivityListener l) {
    on_activity_ = std::move(l);
  }

  /// Bind metrics/tracing: "<scope>.reliable.*" counters, ack-latency and
  /// backoff-wait histograms, plus a trace span per reliable message
  /// (begin at first send, end at ack or expiry). `scope` doubles as the
  /// tracer's node id -- pass the peer id.
  void set_obs(obs::Registry& registry, obs::Tracer* tracer = nullptr,
               std::string_view scope = {});

  /// Join causal trace `trace_id`: every envelope this transport originates
  /// is stamped with it (plus the sending span and the local Lamport clock)
  /// so receivers can attach their work to the same per-run trace. A
  /// transport with no explicit trace adopts the id of the first traced
  /// envelope it receives -- workers join the controller's run trace
  /// without any extra signalling. No-op (zeros on the wire) when the obs
  /// layer is compiled out; the envelope bytes stay, so frame sizes and
  /// simulated latencies never change with tracing.
  void set_trace(std::uint64_t trace_id);
  std::uint64_t trace_id() const { return trace_id_; }
  /// Local Lamport clock: ticked per originated envelope, merged on every
  /// envelope received. Exposed so app layers (service, discovery) can
  /// stamp their own messages consistently.
  obs::LamportClock& lamport() { return lamport_; }

  const ReliableStats& stats() const { return stats_; }
  const ReliableConfig& config() const { return config_; }
  /// Messages sent but neither acked nor expired yet.
  std::size_t in_flight() const { return pending_.size(); }
  Transport& inner() { return inner_; }

 private:
  struct Pending {
    Endpoint to;
    serial::Frame wire;     ///< the kReliable envelope, resent verbatim
    serial::Frame original; ///< what the caller sent (for the drop handler)
    double first_sent_at = 0.0;
    double rto_s = 0.0;
    int retries = 0;
    std::uint64_t span = 0;  ///< open trace span (0 when untraced)
  };

  struct Obs {
    obs::CounterRef sent, retransmits, acked, expired, delivered, dedup_hits,
        acks_sent, passthrough_sent, passthrough_delivered, batches_sent,
        frames_coalesced;
    obs::HistogramRef ack_latency_s, backoff_wait_s;
    obs::TracerRef tracer;
    std::string node;  ///< tracer scope
  };

  /// Per-sender window of recently seen message ids (set + FIFO eviction).
  struct SeenWindow {
    std::unordered_set<std::uint64_t> ids;
    std::deque<std::uint64_t> order;
  };

  /// Per-destination coalescing buffer (active only with config_.batch).
  struct BatchBuf {
    Endpoint to;
    std::vector<serial::Frame> frames;
    std::size_t bytes = 0;        ///< batched-wire cost accumulated so far
    bool flush_scheduled = false; ///< a flush timer is in flight
  };

  bool is_reliable_type(serial::FrameType t) const;
  void on_frame(const Endpoint& from, serial::Frame frame);
  void schedule_retry(std::uint64_t id, double delay_s);
  void on_retry_timer(std::uint64_t id);
  double jittered(double delay_s);
  /// Every outbound frame (original, retransmit, ack, passthrough) goes
  /// through here; it either forwards directly or coalesces into kBatch.
  void wire_send(const Endpoint& to, serial::Frame frame);
  void flush_dest(const Endpoint& to);
  void on_batch_timer(const std::string& key);

  Transport& inner_;
  Clock clock_;
  Scheduler scheduler_;
  ReliableConfig config_;
  dsp::Rng rng_;
  Obs obs_;
  FrameHandler handler_;
  DropHandler on_drop_;
  ActivityListener on_activity_;
  std::map<std::uint64_t, Pending> pending_;
  std::unordered_map<std::string, BatchBuf> batch_;  // by endpoint value
  std::unordered_map<std::string, SeenWindow> seen_;
  std::uint64_t next_id_ = 1;
  std::uint64_t trace_id_ = 0;
  obs::LamportClock lamport_;
  ReliableStats stats_;
};

}  // namespace cg::net
