// ConGrid -- network backend seam.
//
// Everything the service stack needs from its environment -- transports for
// peers, a clock, deferred execution, fault scripting, and a way to drive
// the world forward -- behind one interface, so the SAME harness code (a
// chaos test, a parity test, a bench) runs over the discrete-event
// simulator or over real TCP sockets on 127.0.0.1 by swapping the backend.
//
// Semantics both backends honour:
//   * add_node() hands out transports for consecutive node ids 0, 1, 2...;
//   * clock()/scheduler() are the ambient time functions for that world
//     (virtual seconds for sim, wall seconds since construction for TCP);
//   * arm_faults() applies a FaultPlan at the transport boundary: per-link
//     drop/duplicate/delay/corrupt plus scripted crash windows, where a
//     "crashed" node blackholes frames in both directions while its timers
//     keep firing (matching SimNetwork::set_up);
//   * run_until(t) drives I/O and timers until the backend clock passes t.
//
// Determinism differs by construction: the simulator replays bit-for-bit,
// real sockets do not. Parity tests therefore compare *outcomes* (the
// multiset of delivered results, exactly-once ledgers), which the reliable
// layer makes deterministic even when timing is not.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "net/fault.hpp"
#include "net/sim_network.hpp"
#include "net/time.hpp"
#include "net/transport.hpp"

namespace cg::net {

/// Abstract world for the service stack. Single-threaded: construct nodes,
/// arm faults, then pump with run_until from one thread.
class NetworkBackend {
 public:
  virtual ~NetworkBackend() = default;

  /// Create the transport for the next node id (0, 1, 2, ...). Owned by
  /// the backend; valid until the backend dies. Call before run_until.
  virtual Transport& add_node() = 0;

  /// Ambient time functions for services living in this world.
  virtual Clock clock() = 0;
  virtual Scheduler scheduler() = 0;

  virtual double now() const = 0;

  /// Run `fn` after `delay_s` seconds of backend time.
  virtual void schedule(double delay_s, std::function<void()> fn) = 0;

  /// Drive I/O and timers until now() >= t_s.
  virtual void run_until(double t_s) = 0;

  /// Drive until `done()` returns true or now() >= t_s (the budget for
  /// slow CI runners). Returns done()'s final value, so a test can assert
  /// completion instead of racing a timer.
  virtual bool run_until(double t_s, const std::function<bool()>& done) = 0;

  /// Install a fault script. Crash windows are scheduled relative to the
  /// CURRENT backend time. Call at most once, before the traffic it should
  /// affect.
  virtual void arm_faults(const FaultPlan& plan, std::uint64_t seed) = 0;

  /// What the fault machinery actually did (zeroes when never armed).
  virtual FaultStats fault_stats() const = 0;

  /// Manually take a node down / bring it back (blackhole semantics).
  virtual void set_up(std::size_t node, bool up) = 0;

  /// "sim" or "tcp" -- for parameterised test names and bench labels.
  virtual std::string name() const = 0;
};

/// The discrete-event world: wraps SimNetwork + FaultInjector.
class SimBackend final : public NetworkBackend {
 public:
  explicit SimBackend(LinkParams params = {}, std::uint64_t seed = 1)
      : net_(params, seed) {}

  SimNetwork& net() { return net_; }

  Transport& add_node() override { return net_.add_node(); }
  Clock clock() override {
    return [this] { return net_.now(); };
  }
  Scheduler scheduler() override {
    return [this](double d, std::function<void()> fn) {
      net_.schedule(d, std::move(fn));
    };
  }
  double now() const override { return net_.now(); }
  void schedule(double delay_s, std::function<void()> fn) override {
    net_.schedule(delay_s, std::move(fn));
  }
  void run_until(double t_s) override { net_.run_until(t_s); }
  bool run_until(double t_s, const std::function<bool()>& done) override;
  void arm_faults(const FaultPlan& plan, std::uint64_t seed) override;
  FaultStats fault_stats() const override {
    return injector_ ? injector_->stats() : FaultStats{};
  }
  void set_up(std::size_t node, bool up) override {
    net_.set_up(static_cast<std::uint32_t>(node), up);
  }
  std::string name() const override { return "sim"; }

 private:
  SimNetwork net_;
  std::unique_ptr<FaultInjector> injector_;
};

}  // namespace cg::net
