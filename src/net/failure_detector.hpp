// ConGrid -- phi-accrual failure detection (adaptive suspicion scoring).
//
// The paper's volunteers vanish without notice (3.6.2), but a fixed
// missed-probe count is the wrong knife: on a lossy DSL link it kills
// peers that are merely dropping frames, and on a quiet one it waits
// probe_period * max_missed even when the peer has been answering like
// clockwork. Following Hayashibara's phi-accrual design, the detector
// keeps a sliding window of observed reply inter-arrival times and scores
// the CURRENT silence against that history:
//
//   phi(now) = -log10( P[gap >= elapsed] )
//
// under a normal model of the window. phi ~ 1 means "this gap happens one
// time in ten", phi ~ 8 "one time in 10^8". Consumers pick thresholds
// (suspect / dead) instead of counts, and the same thresholds adapt
// automatically: a jittery link widens the window's deviation and earns
// proportionally more patience.
//
// Liveness evidence comes in two grades:
//   * heartbeat(now) -- a probe reply on the regular cadence; records the
//     inter-arrival interval AND refreshes the evidence clock;
//   * touch(now)     -- piggybacked proof of life from ordinary data-plane
//     traffic (any frame received from the host); refreshes the evidence
//     clock WITHOUT polluting the interval history, so bursty data
//     traffic cannot shrink the window and make the detector
//     trigger-happy afterwards.
#pragma once

#include <cstddef>
#include <deque>

namespace cg::net {

struct FailureDetectorOptions {
  /// Sliding window of reply inter-arrival samples.
  std::size_t window = 32;
  /// Floor on the modelled standard deviation: perfectly regular simulated
  /// replies would otherwise make any gap look infinitely suspicious.
  double min_std_s = 0.25;
};

class PhiAccrualDetector {
 public:
  explicit PhiAccrualDetector(FailureDetectorOptions options = {});

  /// A probe reply arrived: record the interval since the previous
  /// heartbeat and reset the evidence clock.
  void heartbeat(double now);

  /// Any other proof of life (data ack, status for another epoch, ...):
  /// reset the evidence clock only.
  void touch(double now);

  /// Suspicion level of the silence since the last evidence. 0 before the
  /// first heartbeat and whenever the elapsed gap is no longer than the
  /// window's mean.
  double phi(double now) const;

  /// Recorded inter-arrival samples. Callers should fall back to simple
  /// missed-probe counting until this reaches 2 (a host that dies before
  /// ever answering gives the detector nothing to model).
  std::size_t samples() const { return intervals_.size(); }

  /// Forget everything (fragment moved to a different host).
  void reset();

 private:
  FailureDetectorOptions options_;
  std::deque<double> intervals_;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double last_heartbeat_ = -1.0;  ///< < 0 until the first heartbeat
  double last_evidence_ = -1.0;
};

}  // namespace cg::net
