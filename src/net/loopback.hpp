// ConGrid -- real-socket backend: the full service stack over TCP loopback.
//
// TcpLoopbackBackend implements the NetworkBackend seam with one
// TcpTransport per node, all bound to ephemeral ports on 127.0.0.1 and
// pumped from a single thread. Services built on it are byte-identical on
// the wire to services on the simulator (same serial framing), but every
// frame crosses a real kernel socket: connect/accept, partial writes,
// coalesced reads -- the failure modes the simulator cannot show.
//
// Fault injection ports the SimNetwork FaultPlan to the socket world with a
// decorator (FaultTransport) between each service and its TcpTransport:
// outbound frames are dropped / duplicated / delayed by the scripted
// per-link probabilities, and a node inside a crash window blackholes both
// directions while its timers keep running -- the same observable semantics
// chaos tests rely on in the sim. Frame corruption maps to a drop at the
// boundary: on a real wire TCP's checksum (and our CRC at the decoder)
// already turns corruption into loss, which is exactly how the sim's
// CRC-reject path behaves.
//
// Timers (retransmits, supervisor probes, batch flushes) run on an ordered
// wall-clock TimerQueue owned by the backend; the scheduler() closure feeds
// it. run_until pumps: fire due timers, poll every socket, sleep briefly
// when idle.
//
// Every frame decision can be recorded to a pcap-style JSONL wire log
// (bounded ring) for post-mortem when a CI run fails.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "dsp/rng.hpp"
#include "net/backend.hpp"
#include "net/tcp.hpp"

namespace cg::net {

/// One wire-log record: what happened to one frame at the fault boundary.
struct WireLogRecord {
  double t = 0.0;
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  std::uint8_t type = 0;
  std::uint32_t bytes = 0;
  const char* verdict = "sent";  ///< sent|dropped|delayed|dup|rx_dropped
};

class TcpLoopbackBackend;

/// Transport decorator applying scripted faults on the way to/from a real
/// TcpTransport. Owned by the backend, one per node.
class FaultTransport final : public Transport {
 public:
  FaultTransport(TcpLoopbackBackend& owner, std::uint32_t node,
                 TcpTransport& inner);

  Endpoint local() const override { return inner_.local(); }
  void send(const Endpoint& to, serial::Frame frame) override;
  void set_handler(FrameHandler handler) override;
  std::size_t poll() override { return inner_.poll(); }
  void flush() override { inner_.flush(); }

  TcpTransport& tcp() { return inner_; }

 private:
  friend class TcpLoopbackBackend;

  TcpLoopbackBackend& owner_;
  std::uint32_t node_;
  TcpTransport& inner_;
  FrameHandler handler_;
  bool up_ = true;
};

/// NetworkBackend over real loopback TCP. Single-threaded; wall-clock time
/// starts at ~0 on construction.
class TcpLoopbackBackend final : public NetworkBackend {
 public:
  TcpLoopbackBackend();

  Transport& add_node() override;
  Clock clock() override;
  Scheduler scheduler() override;
  double now() const override { return clock_(); }
  void schedule(double delay_s, std::function<void()> fn) override;
  void run_until(double t_s) override;
  bool run_until(double t_s, const std::function<bool()>& done) override;
  void arm_faults(const FaultPlan& plan, std::uint64_t seed) override;
  FaultStats fault_stats() const override { return fault_stats_; }
  void set_up(std::size_t node, bool up) override;
  std::string name() const override { return "tcp"; }

  /// Pump once: fire due timers, poll every socket. Returns true if any
  /// timer fired or frame moved (used to decide whether to sleep).
  bool pump();

  /// Raw TCP transport of a node (stats, socket-buffer hooks). Valid after
  /// that node's add_node().
  TcpTransport& tcp(std::size_t node) { return nodes_[node]->tcp(); }

  /// Force SO_SNDBUF/SO_RCVBUF on sockets of nodes created from now on.
  void set_socket_buffer_bytes(int bytes) { socket_buf_bytes_ = bytes; }

  /// Keep the last `cap` frame decisions for dump_wire_log. 0 disables.
  void set_wire_log_capacity(std::size_t cap) { wire_log_cap_ = cap; }
  const std::deque<WireLogRecord>& wire_log() const { return wire_log_; }
  /// Write the wire log as JSONL (one record per line). Returns false if
  /// the file could not be opened.
  bool dump_wire_log(const std::string& path) const;

 private:
  friend class FaultTransport;

  struct Timer {
    double at = 0.0;
    std::uint64_t seq = 0;  ///< insertion order breaks at-ties
    std::function<void()> fn;
    bool operator>(const Timer& o) const {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  /// Deliver or fault one outbound frame from `from` towards `to`.
  void route_send(std::uint32_t from, const Endpoint& to, serial::Frame frame,
                  bool is_replay);
  /// Inbound boundary: drops frames addressed to a down node.
  void route_recv(FaultTransport& ft, const Endpoint& from,
                  serial::Frame frame);
  const LinkFaults& faults_for(std::uint32_t from, std::uint32_t to) const;
  std::uint32_t node_of(const Endpoint& e) const;
  void log_frame(std::uint32_t from, std::uint32_t to, const serial::Frame& f,
                 const char* verdict);

  Clock clock_;
  std::vector<std::unique_ptr<TcpTransport>> tcps_;
  std::vector<std::unique_ptr<FaultTransport>> nodes_;
  std::unordered_map<std::string, std::uint32_t> node_by_endpoint_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers_;
  std::uint64_t timer_seq_ = 0;

  bool faults_armed_ = false;
  FaultPlan plan_;
  dsp::Rng rng_{1};
  FaultStats fault_stats_;

  int socket_buf_bytes_ = 0;
  std::size_t wire_log_cap_ = 0;
  std::deque<WireLogRecord> wire_log_;
};

}  // namespace cg::net
