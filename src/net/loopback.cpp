#include "net/loopback.hpp"

#include <fstream>
#include <thread>

namespace cg::net {

// ---------------------------------------------------------- FaultTransport

FaultTransport::FaultTransport(TcpLoopbackBackend& owner, std::uint32_t node,
                               TcpTransport& inner)
    : owner_(owner), node_(node), inner_(inner) {
  inner_.set_handler([this](const Endpoint& from, serial::Frame f) {
    owner_.route_recv(*this, from, std::move(f));
  });
}

void FaultTransport::send(const Endpoint& to, serial::Frame frame) {
  owner_.route_send(node_, to, std::move(frame), /*is_replay=*/false);
}

void FaultTransport::set_handler(FrameHandler handler) {
  handler_ = std::move(handler);
}

// ----------------------------------------------------- TcpLoopbackBackend

TcpLoopbackBackend::TcpLoopbackBackend() : clock_(steady_clock_seconds()) {}

Transport& TcpLoopbackBackend::add_node() {
  auto tcp = std::make_unique<TcpTransport>();
  if (socket_buf_bytes_ > 0) tcp->set_socket_buffer_bytes(socket_buf_bytes_);
  const auto id = static_cast<std::uint32_t>(nodes_.size());
  node_by_endpoint_[tcp->local().value] = id;
  tcps_.push_back(std::move(tcp));
  nodes_.push_back(std::make_unique<FaultTransport>(*this, id, *tcps_.back()));
  return *nodes_.back();
}

Clock TcpLoopbackBackend::clock() { return clock_; }

Scheduler TcpLoopbackBackend::scheduler() {
  return [this](double d, std::function<void()> fn) {
    schedule(d, std::move(fn));
  };
}

void TcpLoopbackBackend::schedule(double delay_s, std::function<void()> fn) {
  timers_.push(
      Timer{clock_() + std::max(delay_s, 0.0), timer_seq_++, std::move(fn)});
}

bool TcpLoopbackBackend::pump() {
  bool moved = false;
  // Fire timers due now. Timers scheduled by a firing timer for "now" run
  // in the same pump, like the simulator's event loop.
  const double t = clock_();
  while (!timers_.empty() && timers_.top().at <= t) {
    auto fn = std::move(const_cast<Timer&>(timers_.top()).fn);
    timers_.pop();
    fn();
    moved = true;
  }
  for (auto& tcp : tcps_) {
    if (tcp->poll_wait(0) > 0) moved = true;
  }
  return moved;
}

void TcpLoopbackBackend::run_until(double t_s) {
  while (clock_() < t_s) {
    if (!pump()) {
      // Idle: sleep briefly rather than spin. 200 us keeps the compressed
      // test timelines (timers of a few ms) accurate enough.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
}

bool TcpLoopbackBackend::run_until(double t_s,
                                   const std::function<bool()>& done) {
  while (!done()) {
    if (clock_() >= t_s) break;
    if (!pump()) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  return done();
}

void TcpLoopbackBackend::arm_faults(const FaultPlan& plan,
                                    std::uint64_t seed) {
  plan_ = plan;
  rng_ = dsp::Rng(seed);
  faults_armed_ = true;
  for (const CrashWindow& w : plan_.crashes) {
    schedule(w.at_s, [this, w] {
      set_up(w.node, false);
      ++fault_stats_.crashes_opened;
    });
    if (w.duration_s > 0.0) {
      schedule(w.at_s + w.duration_s, [this, w] {
        set_up(w.node, true);
        ++fault_stats_.crashes_closed;
      });
    }
  }
}

void TcpLoopbackBackend::set_up(std::size_t node, bool up) {
  if (node < nodes_.size()) nodes_[node]->up_ = up;
}

const LinkFaults& TcpLoopbackBackend::faults_for(std::uint32_t from,
                                                 std::uint32_t to) const {
  auto it = plan_.per_link.find({from, to});
  return it != plan_.per_link.end() ? it->second : plan_.default_link;
}

std::uint32_t TcpLoopbackBackend::node_of(const Endpoint& e) const {
  auto it = node_by_endpoint_.find(e.value);
  return it != node_by_endpoint_.end() ? it->second
                                       : static_cast<std::uint32_t>(-1);
}

void TcpLoopbackBackend::log_frame(std::uint32_t from, std::uint32_t to,
                                   const serial::Frame& f,
                                   const char* verdict) {
  if (wire_log_cap_ == 0) return;
  wire_log_.push_back(WireLogRecord{
      clock_(), from, to, static_cast<std::uint8_t>(f.type),
      static_cast<std::uint32_t>(f.payload.size()), verdict});
  while (wire_log_.size() > wire_log_cap_) wire_log_.pop_front();
}

void TcpLoopbackBackend::route_send(std::uint32_t from, const Endpoint& to,
                                    serial::Frame frame, bool is_replay) {
  const std::uint32_t dst = node_of(to);
  // A node inside a crash window sends nothing.
  if (from < nodes_.size() && !nodes_[from]->up_) {
    log_frame(from, dst, frame, "dropped");
    return;
  }
  if (faults_armed_ && !is_replay) {
    ++fault_stats_.frames_seen;
    const LinkFaults& lf = faults_for(from, dst);
    if (lf.drop > 0.0 && rng_.uniform() < lf.drop) {
      ++fault_stats_.dropped;
      log_frame(from, dst, frame, "dropped");
      return;
    }
    // On a real wire, corruption IS loss: the kernel checksum or our frame
    // CRC rejects the bytes and the reliable layer retransmits. Model it
    // as a drop so both backends exercise the same recovery path.
    if (lf.corrupt > 0.0 && rng_.uniform() < lf.corrupt) {
      ++fault_stats_.corrupted;
      log_frame(from, dst, frame, "dropped");
      return;
    }
    if (lf.duplicate > 0.0 && rng_.uniform() < lf.duplicate) {
      ++fault_stats_.duplicated;
      serial::Frame copy = frame;
      log_frame(from, dst, copy, "dup");
      // The extra copy arrives late, like the sim's fresh-latency copy.
      const double extra =
          lf.delay_min_s +
          (lf.delay_max_s - lf.delay_min_s) * rng_.uniform();
      schedule(extra, [this, from, to, copy = std::move(copy)]() mutable {
        route_send(from, to, std::move(copy), /*is_replay=*/true);
      });
    }
    if (lf.delay > 0.0 && rng_.uniform() < lf.delay) {
      ++fault_stats_.delayed;
      const double extra =
          lf.delay_min_s +
          (lf.delay_max_s - lf.delay_min_s) * rng_.uniform();
      log_frame(from, dst, frame, "delayed");
      schedule(extra, [this, from, to, f = std::move(frame)]() mutable {
        route_send(from, to, std::move(f), /*is_replay=*/true);
      });
      return;
    }
  }
  log_frame(from, dst, frame, "sent");
  tcps_[from]->send(to, std::move(frame));
}

void TcpLoopbackBackend::route_recv(FaultTransport& ft, const Endpoint& from,
                                    serial::Frame frame) {
  // Inbound boundary: a crashed node hears nothing (frames already in the
  // kernel's buffers still arrive at the socket; we blackhole them here,
  // mirroring SimNetwork's delivery-time up-check).
  if (!ft.up_) {
    log_frame(node_of(from), ft.node_, frame, "rx_dropped");
    return;
  }
  if (ft.handler_) ft.handler_(from, std::move(frame));
}

bool TcpLoopbackBackend::dump_wire_log(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  for (const WireLogRecord& r : wire_log_) {
    out << "{\"t\":" << r.t << ",\"from\":" << r.from << ",\"to\":" << r.to
        << ",\"type\":" << static_cast<int>(r.type)
        << ",\"bytes\":" << r.bytes << ",\"verdict\":\"" << r.verdict
        << "\"}\n";
  }
  return true;
}

}  // namespace cg::net
