// ConGrid -- in-process transport.
//
// A thread-safe mailbox hub for running several peers inside one process
// with real (wall-clock) concurrency -- the integration tests use it to run
// a controller and several services on different threads without sockets.
#pragma once

#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "net/transport.hpp"

namespace cg::net {

class InprocHub;

/// A registered mailbox on an InprocHub. Thread-safe: any thread may send;
/// the owning thread polls.
class InprocTransport final : public Transport {
 public:
  ~InprocTransport() override;

  Endpoint local() const override { return inproc_endpoint(name_); }
  void send(const Endpoint& to, serial::Frame frame) override;
  void set_handler(FrameHandler handler) override;
  std::size_t poll() override;

 private:
  friend class InprocHub;
  InprocTransport(InprocHub* hub, std::string name)
      : hub_(hub), name_(std::move(name)) {}

  void deliver(Endpoint from, serial::Frame frame);

  InprocHub* hub_;
  std::string name_;
  std::mutex mu_;
  FrameHandler handler_;
  std::deque<std::pair<Endpoint, serial::Frame>> inbox_;
};

/// The registry mapping inproc names to mailboxes. Must outlive all the
/// transports it creates.
class InprocHub {
 public:
  /// Register a mailbox under `name`; throws std::invalid_argument if the
  /// name is taken.
  std::unique_ptr<InprocTransport> create(const std::string& name);

  /// Number of live registrations.
  std::size_t size() const;

 private:
  friend class InprocTransport;
  void route(const Endpoint& from, const Endpoint& to, serial::Frame frame);
  void unregister(const std::string& name);

  mutable std::mutex mu_;
  std::unordered_map<std::string, InprocTransport*> boxes_;
};

}  // namespace cg::net
