#include "net/fault.hpp"

#include <stdexcept>

namespace cg::net {

FaultInjector::FaultInjector(SimNetwork& net, FaultPlan plan,
                             std::uint64_t seed)
    : net_(net), plan_(std::move(plan)), rng_(seed) {}

void FaultInjector::arm() {
  if (armed_) throw std::logic_error("FaultInjector::arm called twice");
  armed_ = true;

  net_.set_fault_fn([this](std::uint32_t from, std::uint32_t to,
                           const serial::Frame& frame) {
    return on_frame(from, to, frame);
  });

  const double now = net_.now();
  for (const CrashWindow& cw : plan_.crashes) {
    if (cw.at_s < now) {
      throw std::invalid_argument("FaultInjector: crash window in the past");
    }
    net_.schedule(cw.at_s - now, [this, node = cw.node] {
      net_.set_up(node, false);
      ++stats_.crashes_opened;
    });
    if (cw.duration_s > 0.0) {
      net_.schedule(cw.at_s + cw.duration_s - now, [this, node = cw.node] {
        net_.set_up(node, true);
        ++stats_.crashes_closed;
      });
    }
  }
}

void FaultInjector::disarm() {
  net_.set_fault_fn(nullptr);
  armed_ = false;
}

const LinkFaults& FaultInjector::faults_for(std::uint32_t from,
                                            std::uint32_t to) const {
  auto it = plan_.per_link.find({from, to});
  return it != plan_.per_link.end() ? it->second : plan_.default_link;
}

FaultAction FaultInjector::on_frame(std::uint32_t from, std::uint32_t to,
                                    const serial::Frame& frame) {
  (void)frame;
  ++stats_.frames_seen;
  const LinkFaults& lf = faults_for(from, to);

  FaultAction a;
  // Sample every fault class even when an earlier one already decided the
  // frame's fate: the consumed random numbers must not depend on outcomes,
  // or replacing one probability would shift the whole downstream stream
  // and break A/B comparisons between near-identical plans.
  const bool drop = lf.drop > 0.0 && rng_.chance(lf.drop);
  const bool dup = lf.duplicate > 0.0 && rng_.chance(lf.duplicate);
  const bool corrupt = lf.corrupt > 0.0 && rng_.chance(lf.corrupt);
  const bool delay = lf.delay > 0.0 && rng_.chance(lf.delay);
  const double extra =
      lf.delay_min_s + rng_.uniform() * (lf.delay_max_s - lf.delay_min_s);

  if (drop) {
    a.drop = true;
    ++stats_.dropped;
    return a;
  }
  if (dup) {
    a.duplicates = 1;
    ++stats_.duplicated;
  }
  if (corrupt) {
    a.corrupt = true;
    ++stats_.corrupted;
  }
  if (delay) {
    a.extra_delay_s = extra;
    ++stats_.delayed;
  }
  return a;
}

}  // namespace cg::net
