// ConGrid -- deterministic discrete-event network simulator.
//
// The paper's Consumer Grid targets thousands of DSL/cable hosts; we cannot
// run those for real, so benches run peers over this simulator instead
// (the substitution table in DESIGN.md). It models, per message:
//
//   delivery_time = now + base_latency + jitter + bytes / bandwidth
//
// with an optional loss probability, and supports node up/down state so the
// churn module can model volunteer availability. Time is virtual (seconds
// as double); the whole simulation is single-threaded and, given a seed,
// bit-for-bit reproducible.
//
// Higher layers may also schedule plain callbacks (schedule()) to model
// computation time on a node -- e.g. "this peer spends 3.2 s filtering a
// chunk" -- so end-to-end experiments account for compute and communication
// in the same clock.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "dsp/rng.hpp"
#include "net/transport.hpp"
#include "obs/obs.hpp"

namespace cg::net {

/// Link model parameters. Defaults approximate a 2003-era consumer DSL
/// population: tens of milliseconds of latency, ~1 Mbit/s usable upstream.
struct LinkParams {
  double base_latency_s = 0.040;    ///< fixed one-way latency
  double jitter_s = 0.010;          ///< uniform extra latency in [0, jitter]
  double bandwidth_Bps = 128e3;     ///< serialisation rate, bytes/second
  double loss_probability = 0.0;    ///< independent per-message drop chance
  /// Frames below this size (control traffic) skip the bandwidth term --
  /// they fit in one MTU and their cost is latency-dominated.
  std::size_t small_frame_bytes = 1200;
};

/// Aggregate traffic counters, readable at any time.
struct SimStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;     ///< loss model + injected drops
  std::uint64_t messages_to_down_node = 0;
  std::uint64_t messages_duplicated = 0;  ///< extra copies from fault hook
  /// Frames whose payload CRC no longer matched at delivery (bit corruption
  /// in flight): rejected like a real NIC discards a bad-FCS frame, never
  /// handed to the application.
  std::uint64_t messages_corrupt_rejected = 0;
  std::uint64_t bytes_sent = 0;

  bool operator==(const SimStats&) const = default;
};

/// What the fault hook may do to one frame in flight. A duplicated frame is
/// delivered `1 + duplicates` times, each copy with independently sampled
/// latency (so duplicates also reorder).
struct FaultAction {
  bool drop = false;
  int duplicates = 0;
  double extra_delay_s = 0.0;  ///< added to each copy's latency (reordering)
  bool corrupt = false;        ///< flip payload bits in flight
};

class SimNetwork;

/// Transport endpoint living inside a SimNetwork. Created by
/// SimNetwork::add_node(); owned by the network.
class SimTransport final : public Transport {
 public:
  Endpoint local() const override { return sim_endpoint(id_); }
  void send(const Endpoint& to, serial::Frame frame) override;
  void set_handler(FrameHandler handler) override { handler_ = std::move(handler); }
  /// Delivery is driven by the SimNetwork event loop; poll is a no-op.
  std::size_t poll() override { return 0; }

  std::uint32_t id() const { return id_; }

 private:
  friend class SimNetwork;
  SimTransport(SimNetwork* net, std::uint32_t id) : net_(net), id_(id) {}

  SimNetwork* net_;
  std::uint32_t id_;
  FrameHandler handler_;
};

/// The event loop + virtual clock shared by all SimTransports.
class SimNetwork {
 public:
  explicit SimNetwork(LinkParams params = {}, std::uint64_t seed = 1);
  ~SimNetwork();

  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  /// Create a new node; the returned transport is owned by the network and
  /// valid for its lifetime.
  SimTransport& add_node();

  std::size_t node_count() const { return nodes_.size(); }
  SimTransport& node(std::uint32_t id) { return *nodes_.at(id); }

  /// Current virtual time in seconds.
  double now() const { return now_; }

  /// Mark a node up or down. Frames addressed to a down node are counted
  /// and discarded at delivery time (the sender cannot tell -- as with a
  /// consumer host whose DSL dropped).
  void set_up(std::uint32_t id, bool up);
  bool is_up(std::uint32_t id) const { return up_.at(id); }

  /// Schedule an arbitrary callback at now + delay (delay >= 0). Used to
  /// model computation time and timers.
  void schedule(double delay_s, std::function<void()> fn);

  /// Process the next event. Returns false when the queue is empty.
  bool step();

  /// Run until the virtual clock reaches `t` (events at exactly t are
  /// processed). Returns the number of events processed.
  std::size_t run_until(double t);

  /// Drain the event queue (bounded by max_events as a runaway guard).
  /// Returns the number of events processed.
  std::size_t run_all(std::size_t max_events = 50'000'000);

  const SimStats& stats() const { return stats_; }
  const LinkParams& params() const { return params_; }

  /// Per-message latency override hook: when set, replaces the base+jitter
  /// part of the delay (bandwidth still applies). Lets experiments model
  /// heterogeneous link quality.
  using LatencyFn = std::function<double(std::uint32_t from, std::uint32_t to)>;
  void set_latency_fn(LatencyFn fn) { latency_fn_ = std::move(fn); }

  /// Per-message fault hook, consulted after the loss model: the
  /// FaultInjector (net/fault.hpp) layers scripted drop / duplicate /
  /// delay / corrupt behaviour through this. While a hook is installed the
  /// simulator also models wire integrity: each frame's payload CRC is
  /// captured at send time and re-verified at delivery, so a corrupted
  /// frame is rejected (messages_corrupt_rejected) instead of trusted.
  using FaultFn = std::function<FaultAction(
      std::uint32_t from, std::uint32_t to, const serial::Frame& frame)>;
  void set_fault_fn(FaultFn fn) { fault_fn_ = std::move(fn); }

  /// Bind metrics/tracing (obs/obs.hpp). Counters land under
  /// "<scope>.net.*" plus a "net.link_delay_s" latency histogram; node
  /// up/down transitions become per-node trace events. When a tracer is
  /// given its clock is pointed at this simulator's virtual time, so every
  /// event in the run is stamped in sim seconds.
  void set_obs(obs::Registry& registry, obs::Tracer* tracer = nullptr,
               std::string_view scope = {});

  /// Per-node Lamport clock as seen by the wire: merged from each
  /// kReliable envelope's trace context at delivery (max(local, remote)+1,
  /// same rule as ReliableTransport), so even a node whose upper layers do
  /// no tracing orders its network-level events against the rest of the
  /// grid. Only maintained while a tracer is bound -- observability must
  /// cost nothing when off.
  std::uint64_t lamport_of(std::uint32_t id) const {
    return id < lamports_.size() ? lamports_[id].now() : 0;
  }

 private:
  friend class SimTransport;

  struct Event {
    double time;
    std::uint64_t seq;  ///< tie-breaker: FIFO among simultaneous events
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void submit(std::uint32_t from, const Endpoint& to, serial::Frame frame);
  void push_event(double time, std::function<void()> fn);
  void deliver_copy(std::uint32_t from, std::uint32_t dst, serial::Frame frame,
                    double extra_delay_s, std::uint32_t sent_crc,
                    bool verify_crc);

  struct Obs {
    obs::CounterRef frames_sent, frames_delivered, frames_dropped,
        frames_to_down, frames_duplicated, frames_corrupt_rejected,
        bytes_sent, node_up, node_down;
    obs::HistogramRef link_delay_s;
    obs::TracerRef tracer;
  };

  LinkParams params_;
  dsp::Rng rng_;
  Obs obs_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::vector<std::unique_ptr<SimTransport>> nodes_;
  std::vector<bool> up_;
  std::vector<obs::LamportClock> lamports_;  ///< wire-level clocks, per node
  SimStats stats_;
  LatencyFn latency_fn_;
  FaultFn fault_fn_;
};

}  // namespace cg::net
