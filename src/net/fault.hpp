// ConGrid -- scripted fault injection for SimNetwork.
//
// Chaos tests need misbehaving networks that misbehave the *same way* every
// run. FaultInjector compiles a declarative FaultPlan -- per-link frame
// fault probabilities plus per-node crash windows -- into the SimNetwork
// fault hook (set_fault_fn) and scheduled set_up() calls. All randomness
// comes from the injector's own seeded Rng, independent of the network's
// latency/loss stream, so the same (seed, plan) pair replays bit-for-bit.
//
// What it can do to a frame in flight, per link: drop it, deliver extra
// copies (each with fresh latency, so duplicates also arrive out of order),
// delay it by a sampled extra latency (reordering it past later frames),
// or flip a payload bit (the simulator's CRC check then rejects it at the
// receiver, which the reliable layer experiences as loss). Crash windows
// take a node down at a scripted time and optionally bring it back up.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "dsp/rng.hpp"
#include "net/sim_network.hpp"

namespace cg::net {

/// Per-link fault probabilities. All independent per frame; delay is
/// sampled uniformly from [delay_min_s, delay_max_s] when it fires.
struct LinkFaults {
  double drop = 0.0;
  double duplicate = 0.0;   ///< chance of one extra copy
  double corrupt = 0.0;     ///< chance of a single-bit flip in flight
  double delay = 0.0;       ///< chance of extra latency (reordering)
  double delay_min_s = 0.05;
  double delay_max_s = 0.50;
};

/// One scripted outage: `node` goes down at `at_s` and, if `duration_s` is
/// positive, comes back up at `at_s + duration_s` (a crash-and-restart).
/// A non-positive duration is a permanent crash.
struct CrashWindow {
  std::uint32_t node = 0;
  double at_s = 0.0;
  double duration_s = 0.0;
};

/// The whole script: ambient faults for every link, overrides for specific
/// (from, to) pairs, and the crash schedule.
struct FaultPlan {
  LinkFaults default_link;
  std::map<std::pair<std::uint32_t, std::uint32_t>, LinkFaults> per_link;
  std::vector<CrashWindow> crashes;
};

/// What the injector actually did, for assertions and reports.
struct FaultStats {
  std::uint64_t frames_seen = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t delayed = 0;
  std::uint64_t crashes_opened = 0;
  std::uint64_t crashes_closed = 0;

  bool operator==(const FaultStats&) const = default;
};

/// Owns the plan + RNG and drives one SimNetwork. Construct, then arm()
/// once before running the simulation. The injector must outlive the
/// network's event processing (it is captured by reference in the hook).
class FaultInjector {
 public:
  FaultInjector(SimNetwork& net, FaultPlan plan, std::uint64_t seed = 1);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Install the fault hook and schedule every crash window. Call once.
  void arm();

  /// Remove the fault hook (crash windows already scheduled still fire).
  void disarm();

  const FaultStats& stats() const { return stats_; }
  const FaultPlan& plan() const { return plan_; }

 private:
  FaultAction on_frame(std::uint32_t from, std::uint32_t to,
                       const serial::Frame& frame);
  const LinkFaults& faults_for(std::uint32_t from, std::uint32_t to) const;

  SimNetwork& net_;
  FaultPlan plan_;
  dsp::Rng rng_;
  FaultStats stats_;
  bool armed_ = false;
};

}  // namespace cg::net
