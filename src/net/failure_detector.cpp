#include "net/failure_detector.hpp"

#include <algorithm>
#include <cmath>

namespace cg::net {
namespace {

/// -log10 of the normal upper-tail probability at z standard deviations.
/// Uses erfc directly while it has precision, then the asymptotic
/// expansion (Mills ratio) once erfc underflows -- phi keeps growing
/// smoothly instead of saturating at the double floor.
double phi_of_z(double z) {
  if (z <= 0.0) return 0.0;
  const double tail = 0.5 * std::erfc(z / std::sqrt(2.0));
  if (tail > 1e-300) return -std::log10(tail);
  // tail ~ exp(-z^2/2) / (z * sqrt(2*pi))
  constexpr double kLn10 = 2.302585092994046;
  return z * z / (2.0 * kLn10) +
         std::log10(z * std::sqrt(2.0 * 3.141592653589793));
}

}  // namespace

PhiAccrualDetector::PhiAccrualDetector(FailureDetectorOptions options)
    : options_(options) {
  if (options_.window == 0) options_.window = 1;
}

void PhiAccrualDetector::heartbeat(double now) {
  if (last_heartbeat_ >= 0.0) {
    const double interval = std::max(0.0, now - last_heartbeat_);
    intervals_.push_back(interval);
    sum_ += interval;
    sum_sq_ += interval * interval;
    if (intervals_.size() > options_.window) {
      const double old = intervals_.front();
      intervals_.pop_front();
      sum_ -= old;
      sum_sq_ -= old * old;
    }
  }
  last_heartbeat_ = now;
  last_evidence_ = std::max(last_evidence_, now);
}

void PhiAccrualDetector::touch(double now) {
  last_evidence_ = std::max(last_evidence_, now);
}

double PhiAccrualDetector::phi(double now) const {
  if (last_evidence_ < 0.0 || intervals_.empty()) return 0.0;
  const double n = static_cast<double>(intervals_.size());
  const double mean = sum_ / n;
  const double var = std::max(0.0, sum_sq_ / n - mean * mean);
  const double std_dev = std::max(options_.min_std_s, std::sqrt(var));
  const double elapsed = std::max(0.0, now - last_evidence_);
  return phi_of_z((elapsed - mean) / std_dev);
}

void PhiAccrualDetector::reset() {
  intervals_.clear();
  sum_ = 0.0;
  sum_sq_ = 0.0;
  last_heartbeat_ = -1.0;
  last_evidence_ = -1.0;
}

}  // namespace cg::net
