#include "net/reliable.hpp"

#include <algorithm>

#include "serial/reader.hpp"

namespace cg::net {
namespace {

// Short type tag used in transfer-event details; congrid-trace buckets
// transfers by it (and excludes timing-sensitive discovery traffic from
// DAG signatures).
const char* type_tag(serial::FrameType t) {
  switch (t) {
    case serial::FrameType::kControl:
      return "control";
    case serial::FrameType::kData:
      return "data";
    case serial::FrameType::kCode:
      return "code";
    case serial::FrameType::kDiscovery:
      return "discovery";
    case serial::FrameType::kHeartbeat:
      return "heartbeat";
    default:
      return "other";
  }
}

// Both directions spell the connection the same way -- "<src>><dst>" with
// endpoint values -- so the analyzer can pair a send with its recv on
// (conn, seq) alone.
std::string conn_name(const Endpoint& src, const Endpoint& dst) {
  return src.value + ">" + dst.value;
}

}  // namespace

ReliableTransport::ReliableTransport(Transport& inner, Clock clock,
                                     Scheduler scheduler,
                                     ReliableConfig config)
    : inner_(inner),
      clock_(std::move(clock)),
      scheduler_(std::move(scheduler)),
      config_(std::move(config)),
      rng_(config_.seed) {
  inner_.set_handler([this](const Endpoint& from, serial::Frame f) {
    on_frame(from, std::move(f));
  });
}

void ReliableTransport::set_obs(obs::Registry& registry, obs::Tracer* tracer,
                                std::string_view scope) {
  obs_.sent = registry.counter(obs::scoped(scope, "reliable.sent"));
  obs_.retransmits =
      registry.counter(obs::scoped(scope, "reliable.retransmits"));
  obs_.acked = registry.counter(obs::scoped(scope, "reliable.acked"));
  obs_.expired = registry.counter(obs::scoped(scope, "reliable.expired"));
  obs_.delivered = registry.counter(obs::scoped(scope, "reliable.delivered"));
  obs_.dedup_hits =
      registry.counter(obs::scoped(scope, "reliable.dedup_hits"));
  obs_.acks_sent = registry.counter(obs::scoped(scope, "reliable.acks_sent"));
  obs_.passthrough_sent =
      registry.counter(obs::scoped(scope, "reliable.passthrough_sent"));
  obs_.passthrough_delivered =
      registry.counter(obs::scoped(scope, "reliable.passthrough_delivered"));
  obs_.batches_sent =
      registry.counter(obs::scoped(scope, "reliable.batches_sent"));
  obs_.frames_coalesced =
      registry.counter(obs::scoped(scope, "reliable.frames_coalesced"));
  obs_.ack_latency_s =
      registry.histogram(obs::scoped(scope, "reliable.ack_latency_s"));
  obs_.backoff_wait_s =
      registry.histogram(obs::scoped(scope, "reliable.backoff_wait_s"));
  obs_.tracer = tracer;
  obs_.node = scope.empty() ? inner_.local().value : std::string(scope);
}

void ReliableTransport::set_trace(std::uint64_t trace_id) {
#if CONGRID_OBS_ENABLED
  trace_id_ = trace_id;
#else
  (void)trace_id;  // zeros stay on the wire; sizes are unchanged either way
#endif
}

bool ReliableTransport::is_reliable_type(serial::FrameType t) const {
  // Never re-wrap the layer's own traffic, whatever the policy says.
  if (t == serial::FrameType::kReliable || t == serial::FrameType::kAck ||
      t == serial::FrameType::kBatch) {
    return false;
  }
  if (config_.reliable_type) return config_.reliable_type(t);
  // Default: everything but liveness probes, which are only useful fresh.
  return t != serial::FrameType::kHeartbeat;
}

double ReliableTransport::jittered(double delay_s) {
  if (config_.jitter_frac <= 0.0) return delay_s;
  return delay_s * (1.0 + config_.jitter_frac * (2.0 * rng_.uniform() - 1.0));
}

void ReliableTransport::wire_send(const Endpoint& to, serial::Frame frame) {
  if (!config_.batch) {
    inner_.send(to, std::move(frame));
    return;
  }
  if (frame.payload.size() >= config_.batch_bypass_bytes) {
    // Big frames gain nothing from coalescing; flush what's buffered first
    // so per-destination send order is preserved, then send it standalone.
    flush_dest(to);
    ++stats_.batch_bypassed;
    inner_.send(to, std::move(frame));
    return;
  }
  BatchBuf& b = batch_[to.value];
  b.to = to;
  b.bytes += serial::kBatchEntryOverhead + frame.payload.size();
  b.frames.push_back(std::move(frame));
  if (b.frames.size() >= config_.batch_max_frames ||
      b.bytes >= config_.batch_max_bytes) {
    flush_dest(to);
    return;
  }
  if (!b.flush_scheduled) {
    b.flush_scheduled = true;
    scheduler_(config_.batch_flush_s,
               [this, key = to.value] { on_batch_timer(key); });
  }
}

void ReliableTransport::on_batch_timer(const std::string& key) {
  auto it = batch_.find(key);
  if (it == batch_.end()) return;
  it->second.flush_scheduled = false;
  if (!it->second.frames.empty()) flush_dest(it->second.to);
}

void ReliableTransport::flush_dest(const Endpoint& to) {
  auto it = batch_.find(to.value);
  if (it == batch_.end() || it->second.frames.empty()) return;
  std::vector<serial::Frame> frames = std::move(it->second.frames);
  it->second.frames.clear();
  it->second.bytes = 0;
  if (frames.size() == 1) {
    // No point paying batch framing for one frame.
    inner_.send(to, std::move(frames.front()));
    return;
  }
  ++stats_.batches_sent;
  stats_.frames_coalesced += frames.size();
  obs_.batches_sent.inc();
  obs_.frames_coalesced.inc(frames.size());
  inner_.send(to, serial::encode_batch(frames));
}

void ReliableTransport::flush() {
  if (config_.batch) {
    for (auto& [key, b] : batch_) {
      if (!b.frames.empty()) flush_dest(b.to);
    }
  }
  inner_.flush();
}

void ReliableTransport::send(const Endpoint& to, serial::Frame frame) {
  if (!is_reliable_type(frame.type)) {
    ++stats_.passthrough_sent;
    obs_.passthrough_sent.inc();
    wire_send(to, std::move(frame));
    return;
  }

  const std::uint64_t id = next_id_++;
  Pending p;
  p.to = to;
  p.first_sent_at = clock_();
  p.rto_s = config_.rto_initial_s;
  if (obs_.tracer) {
    p.span = obs_.tracer.begin_span(
        obs_.node, "reliable.msg",
        obs::TraceContext{trace_id_, 0, lamport_.now()},
        "seq=" + std::to_string(id) +
            " conn=" + conn_name(inner_.local(), to) + " type=" +
            type_tag(frame.type));
  }
  // The envelope's parent is the sending span: the receiver's recv event
  // (and anything caused by the delivery) hangs off it in the causal DAG.
  const obs::TraceContext wire_trace{trace_id_, p.span, lamport_.tick()};
  p.wire = serial::encode_envelope(id, frame, wire_trace);
  p.original = std::move(frame);

  wire_send(to, p.wire);
  ++stats_.sent;
  obs_.sent.inc();
  const double first_retry = jittered(p.rto_s);
  pending_.emplace(id, std::move(p));
  schedule_retry(id, first_retry);
}

void ReliableTransport::schedule_retry(std::uint64_t id, double delay_s) {
  obs_.backoff_wait_s.observe(delay_s);
  scheduler_(delay_s, [this, id] { on_retry_timer(id); });
}

void ReliableTransport::on_retry_timer(std::uint64_t id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;  // acked meanwhile
  Pending& p = it->second;

  const bool over_deadline =
      clock_() - p.first_sent_at >= config_.deadline_s;
  if (over_deadline || p.retries >= config_.max_retries) {
    ++stats_.expired;
    obs_.expired.inc();
    obs_.tracer.end_span(p.span, obs_.node, "reliable.msg", "expired");
    // Move out before erasing: the drop handler may send (and re-enter).
    Endpoint to = std::move(p.to);
    serial::Frame original = std::move(p.original);
    pending_.erase(it);
    if (on_drop_) on_drop_(to, original);
    return;
  }

  ++p.retries;
  ++stats_.retransmits;
  obs_.retransmits.inc();
  if (obs_.tracer) {
    obs_.tracer.event(obs_.node, "reliable.retx",
                      obs::TraceContext{trace_id_, p.span, lamport_.now()},
                      "seq=" + std::to_string(id) +
                          " conn=" + conn_name(inner_.local(), p.to) +
                          " try=" + std::to_string(p.retries));
  }
  wire_send(p.to, p.wire);
  p.rto_s = std::min(p.rto_s * config_.backoff, config_.rto_max_s);
  schedule_retry(id, jittered(p.rto_s));
}

void ReliableTransport::on_frame(const Endpoint& from, serial::Frame frame) {
  if (frame.type == serial::FrameType::kBatch) {
    // Unwrap and process each sub-frame as if it arrived alone. Recursion
    // cannot nest: the codec rejects a batch inside a batch.
    std::vector<serial::Frame> subs;
    try {
      subs = serial::decode_batch(frame);
    } catch (const serial::DecodeError&) {
      ++stats_.malformed_dropped;
      return;
    }
    ++stats_.batches_received;
    for (serial::Frame& sub : subs) on_frame(from, std::move(sub));
    return;
  }

  if (on_activity_) on_activity_(from);
  if (frame.type == serial::FrameType::kAck) {
    std::uint64_t id = 0;
    try {
      id = serial::decode_ack(frame);
    } catch (const serial::DecodeError&) {
      ++stats_.malformed_dropped;
      return;
    }
    if (auto it = pending_.find(id); it != pending_.end()) {
      ++stats_.acked;
      obs_.acked.inc();
      obs_.ack_latency_s.observe(clock_() - it->second.first_sent_at);
      obs_.tracer.end_span(it->second.span, obs_.node, "reliable.msg",
                           "acked retx=" +
                               std::to_string(it->second.retries));
      pending_.erase(it);
    }
    return;  // duplicate ack for an already-settled message: ignore
  }

  if (frame.type != serial::FrameType::kReliable) {
    ++stats_.passthrough_delivered;
    obs_.passthrough_delivered.inc();
    if (handler_) handler_(from, std::move(frame));
    return;
  }

  serial::ReliableEnvelope env;
  try {
    env = serial::decode_envelope(frame);
  } catch (const serial::DecodeError&) {
    // A real-socket peer can hand us anything; drop instead of unwinding
    // through the reactor.
    ++stats_.malformed_dropped;
    return;
  }

  // Clock-merge rule: every received envelope advances the local Lamport
  // clock past the sender's (max(local, remote) + 1), so clock order
  // refines the happens-before relation across peers. Duplicates merge
  // too -- a retransmission still happened-after its send.
  const std::uint64_t merged = lamport_.merge(env.trace.lamport);
  // A transport with no trace of its own joins the run trace of its
  // traffic; this is how workers adopt the controller's per-run id.
  if (env.trace.trace_id != 0 && trace_id_ == 0) {
    trace_id_ = env.trace.trace_id;
  }

  // Always re-ack: the sender retransmits exactly because an earlier ack
  // (or the message itself) was lost.
  wire_send(from, serial::encode_ack(env.msg_id));
  ++stats_.acks_sent;
  obs_.acks_sent.inc();

  SeenWindow& win = seen_[from.value];
  if (win.ids.contains(env.msg_id)) {
    ++stats_.duplicates_suppressed;
    obs_.dedup_hits.inc();
    return;
  }
  win.ids.insert(env.msg_id);
  win.order.push_back(env.msg_id);
  while (win.order.size() > config_.dedup_window) {
    win.ids.erase(win.order.front());
    win.order.pop_front();
  }

  ++stats_.delivered;
  obs_.delivered.inc();
  if (obs_.tracer) {
    // The recv half of the transfer pair: same conn/seq spelling as the
    // sender's reliable.msg span, parented to the sending span via the
    // envelope's context.
    obs_.tracer.event(
        obs_.node, "reliable.recv",
        obs::TraceContext{env.trace.trace_id, env.trace.parent_span, merged},
        "seq=" + std::to_string(env.msg_id) +
            " conn=" + conn_name(from, inner_.local()) + " type=" +
            type_tag(env.inner.type));
  }
  if (handler_) handler_(from, std::move(env.inner));
}

}  // namespace cg::net
