#include "net/inproc.hpp"

#include <stdexcept>
#include <vector>

namespace cg::net {

InprocTransport::~InprocTransport() {
  if (hub_) hub_->unregister(name_);
}

void InprocTransport::send(const Endpoint& to, serial::Frame frame) {
  hub_->route(local(), to, std::move(frame));
}

void InprocTransport::set_handler(FrameHandler handler) {
  std::lock_guard lock(mu_);
  handler_ = std::move(handler);
}

void InprocTransport::deliver(Endpoint from, serial::Frame frame) {
  std::lock_guard lock(mu_);
  inbox_.emplace_back(std::move(from), std::move(frame));
}

std::size_t InprocTransport::poll() {
  // Drain under the lock, dispatch outside it so handlers can send()
  // (which may route straight back to this mailbox).
  std::deque<std::pair<Endpoint, serial::Frame>> batch;
  FrameHandler handler;
  {
    std::lock_guard lock(mu_);
    batch.swap(inbox_);
    handler = handler_;
  }
  if (!handler) return 0;
  for (auto& [from, frame] : batch) {
    handler(from, std::move(frame));
  }
  return batch.size();
}

std::unique_ptr<InprocTransport> InprocHub::create(const std::string& name) {
  std::lock_guard lock(mu_);
  auto t = std::unique_ptr<InprocTransport>(new InprocTransport(this, name));
  auto [it, inserted] = boxes_.emplace(name, t.get());
  if (!inserted) {
    t->hub_ = nullptr;  // avoid unregistering the existing entry on destroy
    throw std::invalid_argument("inproc name already registered: " + name);
  }
  (void)it;
  return t;
}

std::size_t InprocHub::size() const {
  std::lock_guard lock(mu_);
  return boxes_.size();
}

void InprocHub::route(const Endpoint& from, const Endpoint& to,
                      serial::Frame frame) {
  InprocTransport* dst = nullptr;
  {
    std::lock_guard lock(mu_);
    if (to.value.rfind("inproc:", 0) != 0) {
      throw std::invalid_argument(
          "InprocTransport can only address inproc: endpoints, got " +
          to.value);
    }
    auto it = boxes_.find(to.value.substr(7));
    if (it == boxes_.end()) return;  // receiver gone: best-effort drop
    dst = it->second;
  }
  dst->deliver(from, std::move(frame));
}

void InprocHub::unregister(const std::string& name) {
  std::lock_guard lock(mu_);
  boxes_.erase(name);
}

}  // namespace cg::net
