#include "net/sim_network.hpp"

#include <algorithm>
#include <stdexcept>

#include "serial/crc32.hpp"
#include "serial/frame.hpp"
#include "serial/reader.hpp"

namespace cg::net {

void SimTransport::send(const Endpoint& to, serial::Frame frame) {
  net_->submit(id_, to, std::move(frame));
}

SimNetwork::SimNetwork(LinkParams params, std::uint64_t seed)
    : params_(params), rng_(seed) {}

SimNetwork::~SimNetwork() = default;

SimTransport& SimNetwork::add_node() {
  const auto id = static_cast<std::uint32_t>(nodes_.size());
  nodes_.emplace_back(std::unique_ptr<SimTransport>(new SimTransport(this, id)));
  up_.push_back(true);
  lamports_.emplace_back();
  return *nodes_.back();
}

void SimNetwork::set_up(std::uint32_t id, bool up) {
  if (up_.at(id) != up) {
    (up ? obs_.node_up : obs_.node_down).inc();
    if (obs_.tracer) {
      obs_.tracer.event("sim:" + std::to_string(id),
                        up ? "net.node_up" : "net.node_down",
                        obs::TraceContext{0, 0, lamport_of(id)});
    }
  }
  up_.at(id) = up;
}

void SimNetwork::set_obs(obs::Registry& registry, obs::Tracer* tracer,
                         std::string_view scope) {
  obs_.frames_sent = registry.counter(obs::scoped(scope, "net.frames_sent"));
  obs_.frames_delivered =
      registry.counter(obs::scoped(scope, "net.frames_delivered"));
  obs_.frames_dropped =
      registry.counter(obs::scoped(scope, "net.frames_dropped"));
  obs_.frames_to_down =
      registry.counter(obs::scoped(scope, "net.frames_to_down_node"));
  obs_.frames_duplicated =
      registry.counter(obs::scoped(scope, "net.frames_duplicated"));
  obs_.frames_corrupt_rejected =
      registry.counter(obs::scoped(scope, "net.frames_corrupt_rejected"));
  obs_.bytes_sent = registry.counter(obs::scoped(scope, "net.bytes_sent"));
  obs_.node_up = registry.counter(obs::scoped(scope, "net.node_up"));
  obs_.node_down = registry.counter(obs::scoped(scope, "net.node_down"));
  obs_.link_delay_s =
      registry.histogram(obs::scoped(scope, "net.link_delay_s"));
  obs_.tracer = tracer;
  if (tracer) tracer->set_clock([this] { return now_; });
}

void SimNetwork::schedule(double delay_s, std::function<void()> fn) {
  if (delay_s < 0.0) throw std::invalid_argument("schedule: negative delay");
  push_event(now_ + delay_s, std::move(fn));
}

void SimNetwork::push_event(double time, std::function<void()> fn) {
  queue_.push(Event{time, next_seq_++, std::move(fn)});
}

void SimNetwork::submit(std::uint32_t from, const Endpoint& to,
                        serial::Frame frame) {
  // Parse the "sim:<id>" target.
  if (to.value.rfind("sim:", 0) != 0) {
    throw std::invalid_argument("SimTransport can only address sim: endpoints, got " +
                                to.value);
  }
  const std::uint32_t dst =
      static_cast<std::uint32_t>(std::stoul(to.value.substr(4)));
  if (dst >= nodes_.size()) {
    throw std::out_of_range("sim endpoint refers to unknown node " + to.value);
  }

  ++stats_.messages_sent;
  obs_.frames_sent.inc();
  const std::size_t wire_bytes = serial::kFrameHeaderSize +
                                 frame.payload.size() +
                                 serial::kFrameTrailerSize;
  stats_.bytes_sent += wire_bytes;
  obs_.bytes_sent.inc(wire_bytes);

  // A sender that is itself down cannot transmit.
  if (!up_.at(from)) {
    ++stats_.messages_to_down_node;
    obs_.frames_to_down.inc();
    return;
  }

  if (params_.loss_probability > 0.0 && rng_.chance(params_.loss_probability)) {
    ++stats_.messages_dropped;
    obs_.frames_dropped.inc();
    return;
  }

  // Scripted faults (drop / duplicate / delay / corrupt) layer on after the
  // ambient loss model. While a hook is installed, delivery also verifies
  // the payload CRC captured here, so in-flight corruption is rejected at
  // the receiver instead of handed to the application.
  const bool verify_crc = static_cast<bool>(fault_fn_);
  // The CRC the sender stamped on the wire: captured before any in-flight
  // corruption, so a flipped bit is caught at delivery.
  const std::uint32_t sent_crc =
      verify_crc ? serial::crc32(frame.payload) : 0u;

  FaultAction action;
  if (fault_fn_) {
    action = fault_fn_(from, dst, frame);
    if (action.drop) {
      ++stats_.messages_dropped;
      obs_.frames_dropped.inc();
      return;
    }
    if (action.corrupt && !frame.payload.empty()) {
      // Flip one deterministic-random bit per corrupted frame.
      const std::uint64_t bit = rng_.below(frame.payload.size() * 8);
      frame.payload[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
  }

  for (int copy = 0; copy < 1 + action.duplicates; ++copy) {
    if (copy > 0) {
      ++stats_.messages_duplicated;
      obs_.frames_duplicated.inc();
    }
    deliver_copy(from, dst, frame, action.extra_delay_s, sent_crc,
                 verify_crc);
  }
}

void SimNetwork::deliver_copy(std::uint32_t from, std::uint32_t dst,
                              serial::Frame frame, double extra_delay_s,
                              std::uint32_t sent_crc, bool verify_crc) {
  const std::size_t wire_bytes = serial::kFrameHeaderSize +
                                 frame.payload.size() +
                                 serial::kFrameTrailerSize;
  double latency = latency_fn_ ? latency_fn_(from, dst)
                               : params_.base_latency_s +
                                     rng_.uniform() * params_.jitter_s;
  if (wire_bytes > params_.small_frame_bytes && params_.bandwidth_Bps > 0.0) {
    latency += static_cast<double>(wire_bytes) / params_.bandwidth_Bps;
  }
  latency += extra_delay_s;
  obs_.link_delay_s.observe(latency);

  push_event(now_ + latency,
             [this, from, dst, verify_crc, sent_crc,
              f = std::move(frame)]() mutable {
               if (!up_.at(dst)) {
                 ++stats_.messages_to_down_node;
                 obs_.frames_to_down.inc();
                 return;
               }
               if (verify_crc && serial::crc32(f.payload) != sent_crc) {
                 ++stats_.messages_corrupt_rejected;
                 obs_.frames_corrupt_rejected.inc();
                 if (obs_.tracer) {
                   obs_.tracer.event("sim:" + std::to_string(dst),
                                     "net.corrupt_reject",
                                     obs::TraceContext{0, 0, lamport_of(dst)});
                 }
                 return;
               }
               ++stats_.messages_delivered;
               obs_.frames_delivered.inc();
               // Wire-level clock merge: envelopes carry the sender's
               // Lamport stamp; merging here orders this node's network
               // events after the send even when the layers above never
               // look at the context. Skipped entirely when untraced.
               if (obs_.tracer && f.type == serial::FrameType::kReliable &&
                   f.payload.size() >= 8 + obs::kTraceContextWireSize) {
                 lamports_[dst].merge(serial::peek_envelope_trace(f).lamport);
               } else if (obs_.tracer &&
                          f.type == serial::FrameType::kBatch) {
                 // A batch may carry several envelopes; merge each stamp so
                 // batching never loosens the happens-before order.
                 try {
                   for (const serial::Frame& sub : serial::decode_batch(f)) {
                     if (sub.type == serial::FrameType::kReliable &&
                         sub.payload.size() >=
                             8 + obs::kTraceContextWireSize) {
                       lamports_[dst].merge(
                           serial::peek_envelope_trace(sub).lamport);
                     }
                   }
                 } catch (const serial::DecodeError&) {
                   // Corrupt batch: deliver anyway; the layer above drops it.
                 }
               }
               auto& node = *nodes_.at(dst);
               if (node.handler_) {
                 node.handler_(sim_endpoint(from), std::move(f));
               }
             });
}

bool SimNetwork::step() {
  if (queue_.empty()) return false;
  // Move the event out before running it: the callback may push new events.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.time;
  ev.fn();
  return true;
}

std::size_t SimNetwork::run_until(double t) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().time <= t) {
    step();
    ++n;
  }
  now_ = std::max(now_, t);
  return n;
}

std::size_t SimNetwork::run_all(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

}  // namespace cg::net
