#include "net/sim_network.hpp"

#include <stdexcept>

namespace cg::net {

void SimTransport::send(const Endpoint& to, serial::Frame frame) {
  net_->submit(id_, to, std::move(frame));
}

SimNetwork::SimNetwork(LinkParams params, std::uint64_t seed)
    : params_(params), rng_(seed) {}

SimNetwork::~SimNetwork() = default;

SimTransport& SimNetwork::add_node() {
  const auto id = static_cast<std::uint32_t>(nodes_.size());
  nodes_.emplace_back(std::unique_ptr<SimTransport>(new SimTransport(this, id)));
  up_.push_back(true);
  return *nodes_.back();
}

void SimNetwork::set_up(std::uint32_t id, bool up) { up_.at(id) = up; }

void SimNetwork::schedule(double delay_s, std::function<void()> fn) {
  if (delay_s < 0.0) throw std::invalid_argument("schedule: negative delay");
  push_event(now_ + delay_s, std::move(fn));
}

void SimNetwork::push_event(double time, std::function<void()> fn) {
  queue_.push(Event{time, next_seq_++, std::move(fn)});
}

void SimNetwork::submit(std::uint32_t from, const Endpoint& to,
                        serial::Frame frame) {
  // Parse the "sim:<id>" target.
  if (to.value.rfind("sim:", 0) != 0) {
    throw std::invalid_argument("SimTransport can only address sim: endpoints, got " +
                                to.value);
  }
  const std::uint32_t dst =
      static_cast<std::uint32_t>(std::stoul(to.value.substr(4)));
  if (dst >= nodes_.size()) {
    throw std::out_of_range("sim endpoint refers to unknown node " + to.value);
  }

  ++stats_.messages_sent;
  const std::size_t wire_bytes = serial::kFrameHeaderSize +
                                 frame.payload.size() +
                                 serial::kFrameTrailerSize;
  stats_.bytes_sent += wire_bytes;

  // A sender that is itself down cannot transmit.
  if (!up_.at(from)) {
    ++stats_.messages_to_down_node;
    return;
  }

  if (params_.loss_probability > 0.0 && rng_.chance(params_.loss_probability)) {
    ++stats_.messages_dropped;
    return;
  }

  double latency = latency_fn_ ? latency_fn_(from, dst)
                               : params_.base_latency_s +
                                     rng_.uniform() * params_.jitter_s;
  if (wire_bytes > params_.small_frame_bytes && params_.bandwidth_Bps > 0.0) {
    latency += static_cast<double>(wire_bytes) / params_.bandwidth_Bps;
  }

  push_event(now_ + latency,
             [this, from, dst, f = std::move(frame)]() mutable {
               if (!up_.at(dst)) {
                 ++stats_.messages_to_down_node;
                 return;
               }
               ++stats_.messages_delivered;
               auto& node = *nodes_.at(dst);
               if (node.handler_) {
                 node.handler_(sim_endpoint(from), std::move(f));
               }
             });
}

bool SimNetwork::step() {
  if (queue_.empty()) return false;
  // Move the event out before running it: the callback may push new events.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.time;
  ev.fn();
  return true;
}

std::size_t SimNetwork::run_until(double t) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().time <= t) {
    step();
    ++n;
  }
  now_ = std::max(now_, t);
  return n;
}

std::size_t SimNetwork::run_all(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

}  // namespace cg::net
