#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <stdexcept>
#include <vector>

#include "net/socket_util.hpp"
#include "serial/reader.hpp"

namespace cg::net {

struct TcpTransport::Conn {
  int fd = -1;
  bool connecting = false;      ///< non-blocking connect still in flight
  bool hello_seen = false;      ///< first inbound HELLO consumed
  Endpoint peer;                ///< who the frames are "from"
  serial::FrameDecoder decoder;
  std::deque<serial::Bytes> outq;  ///< encoded frames awaiting the wire
  std::size_t out_pos = 0;      ///< bytes of outq.front() already written
  bool want_write = false;      ///< EPOLLOUT currently requested
};

namespace {

// sys_fail / set_nonblocking come from net/socket_util.hpp, shared with the
// obs HTTP server.

/// Parse "tcp:<host>:<port>"; only dotted-quad IPv4 and "localhost".
sockaddr_in parse_tcp(const Endpoint& e) {
  if (e.value.rfind("tcp:", 0) != 0) {
    throw std::invalid_argument("TcpTransport can only address tcp: endpoints, got " +
                                e.value);
  }
  const std::string rest = e.value.substr(4);
  const auto colon = rest.rfind(':');
  if (colon == std::string::npos) {
    throw std::invalid_argument("malformed tcp endpoint: " + e.value);
  }
  std::string host = rest.substr(0, colon);
  if (host == "localhost") host = "127.0.0.1";
  const int port = std::stoi(rest.substr(colon + 1));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::invalid_argument("unresolvable host in endpoint: " + e.value);
  }
  return addr;
}

}  // namespace

TcpTransport::TcpTransport(std::uint16_t port) {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) sys_fail("epoll_create1");

  const Listener l = make_loopback_listener(port);
  listen_fd_ = l.fd;
  port_ = l.port;

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
    sys_fail("epoll_ctl listen");
  }
}

TcpTransport::~TcpTransport() {
  for (auto& [fd, c] : conns_) {
    (void)c;
    ::close(fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Endpoint TcpTransport::local() const { return tcp_endpoint("127.0.0.1", port_); }

void TcpTransport::queue_frame(Conn& c, const serial::Frame& f) {
  c.outq.push_back(serial::encode_frame(f));
  ++stats_.frames_sent;
  if (c.connecting) {
    if (!c.want_write) {
      c.want_write = true;
      update_epoll(c);
    }
    return;
  }
  // Opportunistic drain: most sends go straight to the kernel without a
  // round-trip through epoll. try_drain arms EPOLLOUT itself on EAGAIN.
  try_drain(c);
}

void TcpTransport::apply_socket_buffers(int fd) {
  if (socket_buf_bytes_ <= 0) return;
  setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &socket_buf_bytes_,
             sizeof(socket_buf_bytes_));
  setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &socket_buf_bytes_,
             sizeof(socket_buf_bytes_));
}

bool TcpTransport::try_drain(Conn& c) {
  constexpr std::size_t kMaxIov = 64;
  while (!c.outq.empty()) {
    iovec iov[kMaxIov];
    std::size_t niov = 0;
    std::size_t queued = 0;
    for (const serial::Bytes& b : c.outq) {
      if (niov == kMaxIov) break;
      const std::size_t skip = (niov == 0) ? c.out_pos : 0;
      iov[niov].iov_base = const_cast<std::uint8_t*>(b.data() + skip);
      iov[niov].iov_len = b.size() - skip;
      queued += iov[niov].iov_len;
      ++niov;
    }
    ssize_t n = ::writev(c.fd, iov, static_cast<int>(niov));
    ++stats_.writev_calls;
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_conn(c.fd);
      return false;
    }
    stats_.bytes_sent += static_cast<std::uint64_t>(n);
    if (static_cast<std::size_t>(n) < queued) ++stats_.partial_writes;
    // Retire fully-written buffers; a partially-written head stays put with
    // its offset advanced, so its remaining bytes always go out first and
    // two frames can never interleave on the wire.
    std::size_t left = static_cast<std::size_t>(n);
    while (left > 0) {
      serial::Bytes& head = c.outq.front();
      const std::size_t head_rem = head.size() - c.out_pos;
      if (left >= head_rem) {
        left -= head_rem;
        c.out_pos = 0;
        c.outq.pop_front();
      } else {
        c.out_pos += left;
        left = 0;
      }
    }
  }
  const bool want = !c.outq.empty();
  if (want != c.want_write) {
    c.want_write = want;
    update_epoll(c);
  }
  return true;
}

void TcpTransport::flush() {
  // Collect fds first: try_drain may close (and erase) a connection.
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (const auto& [fd, c] : conns_) {
    if (!c.connecting && !c.outq.empty()) fds.push_back(fd);
  }
  for (int fd : fds) {
    auto it = conns_.find(fd);
    if (it != conns_.end()) try_drain(it->second);
  }
}

void TcpTransport::update_epoll(Conn& c) {
  epoll_event ev{};
  ev.events = EPOLLIN | (c.want_write ? EPOLLOUT : 0u);
  ev.data.fd = c.fd;
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev);
}

TcpTransport::Conn& TcpTransport::connect_to(const Endpoint& to) {
  const sockaddr_in addr = parse_tcp(to);

  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) sys_fail("socket");
  set_nonblocking(fd);
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  apply_socket_buffers(fd);
  ++stats_.conns_opened;

  int rc = connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    ::close(fd);
    sys_fail("connect");
  }

  Conn c;
  c.fd = fd;
  c.connecting = (rc < 0);
  c.peer = to;  // we dialed, so we already know who this is

  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLOUT;  // EPOLLOUT signals connect completion
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    ::close(fd);
    sys_fail("epoll_ctl add");
  }
  c.want_write = true;

  auto [it, _] = conns_.emplace(fd, std::move(c));
  by_peer_[to.value] = fd;

  // Introduce ourselves so the peer can label our frames.
  serial::Frame hello;
  hello.type = serial::FrameType::kHeartbeat;
  hello.payload = serial::to_bytes(local().value);
  queue_frame(it->second, hello);
  return it->second;
}

void TcpTransport::send(const Endpoint& to, serial::Frame frame) {
  Conn* c = nullptr;
  if (auto it = by_peer_.find(to.value); it != by_peer_.end()) {
    auto cit = conns_.find(it->second);
    if (cit != conns_.end()) c = &cit->second;
  }
  if (!c) c = &connect_to(to);
  queue_frame(*c, frame);
}

void TcpTransport::accept_ready() {
  for (;;) {
    int fd = accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      return;  // transient accept errors: keep serving
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    apply_socket_buffers(fd);
    ++stats_.conns_accepted;

    Conn c;
    c.fd = fd;

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    auto [it, _] = conns_.emplace(fd, std::move(c));

    // Send our HELLO so the dialer can label inbound frames too.
    serial::Frame hello;
    hello.type = serial::FrameType::kHeartbeat;
    hello.payload = serial::to_bytes(local().value);
    queue_frame(it->second, hello);
  }
}

void TcpTransport::conn_readable(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& c = it->second;

  // Zero-copy read: land bytes straight in the decoder's buffer.
  for (;;) {
    auto span = c.decoder.recv_span(16384);
    ssize_t n = ::read(fd, span.data(), span.size());
    ++stats_.read_calls;
    c.decoder.commit(n > 0 ? static_cast<std::size_t>(n) : 0);
    if (n > 0) {
      stats_.bytes_received += static_cast<std::uint64_t>(n);
      if (static_cast<std::size_t>(n) == span.size()) continue;
      break;  // short read: the socket buffer is drained
    }
    if (n == 0) {  // orderly shutdown
      close_conn(fd);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    close_conn(fd);
    return;
  }

  // Dispatch complete frames. A HELLO (first heartbeat) is consumed to
  // learn the peer's listening endpoint.
  for (;;) {
    std::optional<serial::Frame> f;
    try {
      f = c.decoder.next();
    } catch (const serial::DecodeError&) {
      close_conn(fd);
      return;
    }
    if (!f) break;
    if (f->type == serial::FrameType::kHeartbeat && !c.hello_seen) {
      // Both sides open with a HELLO; consume it. On accepted connections
      // it also tells us the dialer's listening endpoint.
      c.hello_seen = true;
      if (c.peer.empty()) {
        c.peer = Endpoint{serial::to_string(f->payload)};
        by_peer_[c.peer.value] = fd;
      }
      continue;
    }
    if (handler_) {
      ++delivered_in_poll_;
      ++stats_.frames_delivered;
      handler_(c.peer, std::move(*f));
      // The handler may have closed this connection (indirectly); re-check.
      if (conns_.find(fd) == conns_.end()) return;
    }
  }
}

void TcpTransport::conn_writable(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& c = it->second;
  c.connecting = false;
  try_drain(c);
}

void TcpTransport::close_conn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  if (!it->second.peer.empty()) {
    auto pit = by_peer_.find(it->second.peer.value);
    if (pit != by_peer_.end() && pit->second == fd) by_peer_.erase(pit);
  }
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  conns_.erase(it);
  ++stats_.conns_closed;
}

std::size_t TcpTransport::poll_wait(int timeout_ms) {
  delivered_in_poll_ = 0;
  epoll_event events[64];
  int n = epoll_wait(epoll_fd_, events, 64, timeout_ms);
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    const std::uint32_t ev = events[i].events;
    if (fd == listen_fd_) {
      accept_ready();
      continue;
    }
    if (ev & (EPOLLERR | EPOLLHUP)) {
      // For an in-flight connect this is connection-refused; either way the
      // connection is unusable.
      close_conn(fd);
      continue;
    }
    if (ev & EPOLLOUT) conn_writable(fd);
    if (ev & EPOLLIN) conn_readable(fd);
  }
  return delivered_in_poll_;
}

}  // namespace cg::net
