#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "serial/reader.hpp"

namespace cg::net {

struct TcpTransport::Conn {
  int fd = -1;
  bool connecting = false;      ///< non-blocking connect still in flight
  bool hello_seen = false;      ///< first inbound HELLO consumed
  Endpoint peer;                ///< who the frames are "from"
  serial::FrameDecoder decoder;
  serial::Bytes outbuf;
  std::size_t out_pos = 0;      ///< bytes of outbuf already written
  bool want_write = false;      ///< EPOLLOUT currently requested
};

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    sys_fail("fcntl O_NONBLOCK");
  }
}

/// Parse "tcp:<host>:<port>"; only dotted-quad IPv4 and "localhost".
sockaddr_in parse_tcp(const Endpoint& e) {
  if (e.value.rfind("tcp:", 0) != 0) {
    throw std::invalid_argument("TcpTransport can only address tcp: endpoints, got " +
                                e.value);
  }
  const std::string rest = e.value.substr(4);
  const auto colon = rest.rfind(':');
  if (colon == std::string::npos) {
    throw std::invalid_argument("malformed tcp endpoint: " + e.value);
  }
  std::string host = rest.substr(0, colon);
  if (host == "localhost") host = "127.0.0.1";
  const int port = std::stoi(rest.substr(colon + 1));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::invalid_argument("unresolvable host in endpoint: " + e.value);
  }
  return addr;
}

}  // namespace

TcpTransport::TcpTransport(std::uint16_t port) {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) sys_fail("epoll_create1");

  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) sys_fail("socket");
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    sys_fail("bind");
  }
  if (listen(listen_fd_, 64) < 0) sys_fail("listen");

  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    sys_fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  set_nonblocking(listen_fd_);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
    sys_fail("epoll_ctl listen");
  }
}

TcpTransport::~TcpTransport() {
  for (auto& [fd, c] : conns_) {
    (void)c;
    ::close(fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Endpoint TcpTransport::local() const { return tcp_endpoint("127.0.0.1", port_); }

void TcpTransport::queue_frame(Conn& c, const serial::Frame& f) {
  const auto wire = serial::encode_frame(f);
  c.outbuf.insert(c.outbuf.end(), wire.begin(), wire.end());
  if (!c.want_write) {
    c.want_write = true;
    update_epoll(c);
  }
}

void TcpTransport::update_epoll(Conn& c) {
  epoll_event ev{};
  ev.events = EPOLLIN | (c.want_write ? EPOLLOUT : 0u);
  ev.data.fd = c.fd;
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev);
}

TcpTransport::Conn& TcpTransport::connect_to(const Endpoint& to) {
  const sockaddr_in addr = parse_tcp(to);

  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) sys_fail("socket");
  set_nonblocking(fd);
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  int rc = connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    ::close(fd);
    sys_fail("connect");
  }

  Conn c;
  c.fd = fd;
  c.connecting = (rc < 0);
  c.peer = to;  // we dialed, so we already know who this is

  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLOUT;  // EPOLLOUT signals connect completion
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    ::close(fd);
    sys_fail("epoll_ctl add");
  }
  c.want_write = true;

  auto [it, _] = conns_.emplace(fd, std::move(c));
  by_peer_[to.value] = fd;

  // Introduce ourselves so the peer can label our frames.
  serial::Frame hello;
  hello.type = serial::FrameType::kHeartbeat;
  hello.payload = serial::to_bytes(local().value);
  queue_frame(it->second, hello);
  return it->second;
}

void TcpTransport::send(const Endpoint& to, serial::Frame frame) {
  Conn* c = nullptr;
  if (auto it = by_peer_.find(to.value); it != by_peer_.end()) {
    auto cit = conns_.find(it->second);
    if (cit != conns_.end()) c = &cit->second;
  }
  if (!c) c = &connect_to(to);
  queue_frame(*c, frame);
}

void TcpTransport::accept_ready() {
  for (;;) {
    int fd = accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      return;  // transient accept errors: keep serving
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    Conn c;
    c.fd = fd;

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    auto [it, _] = conns_.emplace(fd, std::move(c));

    // Send our HELLO so the dialer can label inbound frames too.
    serial::Frame hello;
    hello.type = serial::FrameType::kHeartbeat;
    hello.payload = serial::to_bytes(local().value);
    queue_frame(it->second, hello);
  }
}

void TcpTransport::conn_readable(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& c = it->second;

  std::uint8_t buf[16384];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      try {
        c.decoder.feed(buf, static_cast<std::size_t>(n));
      } catch (const serial::DecodeError&) {
        close_conn(fd);
        return;
      }
      continue;
    }
    if (n == 0) {  // orderly shutdown
      close_conn(fd);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    close_conn(fd);
    return;
  }

  // Dispatch complete frames. A HELLO (first heartbeat) is consumed to
  // learn the peer's listening endpoint.
  for (;;) {
    std::optional<serial::Frame> f;
    try {
      f = c.decoder.next();
    } catch (const serial::DecodeError&) {
      close_conn(fd);
      return;
    }
    if (!f) break;
    if (f->type == serial::FrameType::kHeartbeat && !c.hello_seen) {
      // Both sides open with a HELLO; consume it. On accepted connections
      // it also tells us the dialer's listening endpoint.
      c.hello_seen = true;
      if (c.peer.empty()) {
        c.peer = Endpoint{serial::to_string(f->payload)};
        by_peer_[c.peer.value] = fd;
      }
      continue;
    }
    if (handler_) {
      ++delivered_in_poll_;
      handler_(c.peer, std::move(*f));
      // The handler may have closed this connection (indirectly); re-check.
      if (conns_.find(fd) == conns_.end()) return;
    }
  }
}

void TcpTransport::conn_writable(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& c = it->second;
  c.connecting = false;

  while (c.out_pos < c.outbuf.size()) {
    ssize_t n = ::write(fd, c.outbuf.data() + c.out_pos,
                        c.outbuf.size() - c.out_pos);
    if (n > 0) {
      c.out_pos += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    close_conn(fd);
    return;
  }
  c.outbuf.clear();
  c.out_pos = 0;
  c.want_write = false;
  update_epoll(c);
}

void TcpTransport::close_conn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  if (!it->second.peer.empty()) {
    auto pit = by_peer_.find(it->second.peer.value);
    if (pit != by_peer_.end() && pit->second == fd) by_peer_.erase(pit);
  }
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  conns_.erase(it);
}

std::size_t TcpTransport::poll_wait(int timeout_ms) {
  delivered_in_poll_ = 0;
  epoll_event events[64];
  int n = epoll_wait(epoll_fd_, events, 64, timeout_ms);
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    const std::uint32_t ev = events[i].events;
    if (fd == listen_fd_) {
      accept_ready();
      continue;
    }
    if (ev & (EPOLLERR | EPOLLHUP)) {
      // For an in-flight connect this is connection-refused; either way the
      // connection is unusable.
      close_conn(fd);
      continue;
    }
    if (ev & EPOLLOUT) conn_writable(fd);
    if (ev & EPOLLIN) conn_readable(fd);
  }
  return delivered_in_poll_;
}

}  // namespace cg::net
