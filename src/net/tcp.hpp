// ConGrid -- TCP transport (epoll reactor).
//
// A from-scratch asio substitute sized for what ConGrid needs: one
// non-blocking listener plus on-demand outbound connections, driven by a
// single-threaded epoll loop that the owner pumps via poll(). Frames are
// delimited with the serial framing layer, so a Frame sent here is
// byte-identical to one sent over the simulator.
//
// Identity: a freshly accepted connection only reveals the peer's ephemeral
// port, not the endpoint other nodes dial. Each side therefore opens every
// connection with a HELLO frame (type kHeartbeat, payload = its listening
// endpoint string); the transport consumes HELLOs internally and labels all
// subsequent frames on that connection with the advertised endpoint.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "net/transport.hpp"

namespace cg::net {

/// I/O counters for one TcpTransport (diagnostics + bench_wire). Syscall
/// counts are the interesting part: batching should show frames_sent >>
/// writev_calls on a chatty workload.
struct TcpStats {
  std::uint64_t frames_sent = 0;      ///< frames queued towards the wire
  std::uint64_t frames_delivered = 0; ///< frames handed to the handler
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t writev_calls = 0;
  std::uint64_t read_calls = 0;
  std::uint64_t partial_writes = 0;   ///< writev drained less than queued
  std::uint64_t conns_opened = 0;     ///< outbound dials
  std::uint64_t conns_accepted = 0;
  std::uint64_t conns_closed = 0;
};

/// Polled TCP transport bound to 127.0.0.1. Not thread-safe: construct,
/// send and poll from one thread (run one per peer thread).
///
/// Output path: each send() encodes the frame into a per-connection queue of
/// wire buffers, then opportunistically drains with scatter-gather writev().
/// A short write or EAGAIN leaves the partially-sent buffer at the queue
/// head with its offset recorded, so frame bytes are never reordered or
/// interleaved -- the remainder goes out first when EPOLLOUT fires.
/// Input path: read() lands directly in the frame decoder's buffer
/// (FrameDecoder::recv_span), no staging copy.
class TcpTransport final : public Transport {
 public:
  /// Bind and listen on the given port; 0 picks an ephemeral port (read it
  /// back from local()). Throws std::runtime_error on socket errors.
  explicit TcpTransport(std::uint16_t port = 0);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  Endpoint local() const override;
  void send(const Endpoint& to, serial::Frame frame) override;
  void set_handler(FrameHandler handler) override { handler_ = std::move(handler); }

  /// Non-blocking: process whatever I/O is ready now.
  std::size_t poll() override { return poll_wait(0); }

  /// Attempt to drain all queued output immediately.
  void flush() override;

  /// Block up to timeout_ms for I/O, then process it. Returns frames
  /// delivered to the handler.
  std::size_t poll_wait(int timeout_ms);

  /// Open connections (diagnostic).
  std::size_t connection_count() const { return conns_.size(); }

  /// I/O counters since construction.
  const TcpStats& stats() const { return stats_; }

  /// Force SO_SNDBUF/SO_RCVBUF on every subsequently created socket.
  /// Test hook: a tiny send buffer makes partial writes certain, which is
  /// how the no-interleaving guarantee is exercised. 0 = kernel default.
  void set_socket_buffer_bytes(int bytes) { socket_buf_bytes_ = bytes; }

 private:
  struct Conn;

  void accept_ready();
  void conn_readable(int fd);
  void conn_writable(int fd);
  void close_conn(int fd);
  Conn& connect_to(const Endpoint& to);
  void queue_frame(Conn& c, const serial::Frame& f);
  bool try_drain(Conn& c);  ///< returns false if the conn was closed
  void apply_socket_buffers(int fd);
  void update_epoll(Conn& c);

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  int socket_buf_bytes_ = 0;
  FrameHandler handler_;
  TcpStats stats_;
  std::unordered_map<int, Conn> conns_;          // by fd
  std::unordered_map<std::string, int> by_peer_; // endpoint value -> fd
  std::size_t delivered_in_poll_ = 0;
};

}  // namespace cg::net
