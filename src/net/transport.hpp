// ConGrid -- transport abstraction.
//
// Everything above this layer (pipes, discovery, the service/controller
// protocol) is transport-agnostic: the same peer code runs over the
// discrete-event simulator (for 1000s of peers in benches), the in-process
// hub (for multi-threaded tests) and real TCP sockets (for the
// p2p_discovery example). This is ConGrid's version of the paper's
// "middleware independence" design constraint (section 3.3).
//
// The model is polled message passing: send() enqueues a frame towards an
// endpoint; poll() drives progress and invokes the registered handler for
// each delivered frame. Transports never call the handler from inside
// send(), so handlers may freely send().
#pragma once

#include <functional>

#include "net/endpoint.hpp"
#include "serial/frame.hpp"

namespace cg::net {

/// Callback invoked once per delivered frame.
using FrameHandler =
    std::function<void(const Endpoint& from, serial::Frame frame)>;

/// Abstract polled transport. Implementations: SimTransport (sim_network.hpp),
/// InprocTransport (inproc.hpp), TcpTransport (tcp.hpp).
class Transport {
 public:
  virtual ~Transport() = default;

  /// The address other nodes use to reach this transport.
  virtual Endpoint local() const = 0;

  /// Queue a frame for delivery. Never blocks on the receiver. Delivery is
  /// best-effort: simulated links may drop, TCP peers may be gone.
  virtual void send(const Endpoint& to, serial::Frame frame) = 0;

  /// Register the delivery callback (replaces any previous handler).
  virtual void set_handler(FrameHandler handler) = 0;

  /// Deliver pending inbound frames to the handler. Returns the number of
  /// frames delivered. For the simulated transport this is a no-op (the
  /// SimNetwork event loop delivers); for inproc/tcp the owner must poll.
  virtual std::size_t poll() = 0;

  /// Push any coalesced-but-unsent output towards the wire now instead of
  /// waiting for the next size threshold or flush tick. Latency hint only;
  /// default is a no-op. Layered transports (ReliableTransport batching)
  /// flush their own buffers and then their inner transport's.
  virtual void flush() {}
};

}  // namespace cg::net
