// ConGrid -- shared loopback socket helpers.
//
// TcpTransport (src/net/tcp.cpp) and the obs HTTP server
// (src/obs/http_server.cpp) need the same few lines of listener plumbing: a
// loopback TCP listener on an ephemeral-or-fixed port, non-blocking mode,
// and a readable failure path. Header-only on purpose: cg_net links cg_obs,
// so the obs layer cannot link back into cg_net -- but it can share inline
// helpers that depend only on the system headers.
#pragma once

#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>

namespace cg::net {

[[noreturn]] inline void sys_fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

inline void set_nonblocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    sys_fail("fcntl O_NONBLOCK");
  }
}

/// A bound, listening, non-blocking loopback TCP socket and the port it
/// actually got (read back for port 0 / ephemeral binds).
struct Listener {
  int fd = -1;
  std::uint16_t port = 0;
};

/// Create a loopback listener on 127.0.0.1:`port` (0 picks an ephemeral
/// port). SO_REUSEADDR + CLOEXEC + O_NONBLOCK are applied; throws
/// std::runtime_error on any socket error. The caller owns the fd.
/// Binding loopback-only is a deliberate security posture: nothing in
/// ConGrid listens on a routable interface by default.
inline Listener make_loopback_listener(std::uint16_t port, int backlog = 64) {
  Listener l;
  l.fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (l.fd < 0) sys_fail("socket");
  int one = 1;
  setsockopt(l.fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (bind(l.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(l.fd);
    errno = err;
    sys_fail("bind");
  }
  if (listen(l.fd, backlog) < 0) {
    const int err = errno;
    ::close(l.fd);
    errno = err;
    sys_fail("listen");
  }
  socklen_t len = sizeof(addr);
  if (getsockname(l.fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    const int err = errno;
    ::close(l.fd);
    errno = err;
    sys_fail("getsockname");
  }
  l.port = ntohs(addr.sin_port);
  set_nonblocking(l.fd);
  return l;
}

}  // namespace cg::net
