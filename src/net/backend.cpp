#include "net/backend.hpp"

namespace cg::net {

bool SimBackend::run_until(double t_s, const std::function<bool()>& done) {
  while (!done()) {
    if (net_.now() >= t_s) break;
    if (!net_.step()) break;  // event queue drained early
  }
  return done();
}

void SimBackend::arm_faults(const FaultPlan& plan, std::uint64_t seed) {
  injector_ = std::make_unique<FaultInjector>(net_, plan, seed);
  injector_->arm();
}

}  // namespace cg::net
