// ConGrid -- power spectra.
//
// The Figure 1 reference network ends in a power spectrum averaged over
// iterations by the AccumStat unit; this module supplies the spectrum
// computation the PowerSpectrum unit wraps.
#pragma once

#include <cstddef>
#include <vector>

#include "dsp/window.hpp"

namespace cg::dsp {

/// One-sided power spectrum of a real signal.
struct Spectrum {
  double sample_rate = 1.0;       ///< Hz of the originating signal
  double bin_width = 1.0;         ///< Hz between adjacent bins
  std::vector<double> power;      ///< one-sided power, DC .. Nyquist
};

/// Compute the one-sided periodogram of `signal` (zero-padded to a power of
/// two). Power is normalised by the window energy so different windows give
/// comparable levels.
Spectrum power_spectrum(const std::vector<double>& signal, double sample_rate,
                        WindowKind window = WindowKind::kRectangular);

/// Index of the strongest bin.
std::size_t peak_bin(const Spectrum& s);

/// Frequency (Hz) of the strongest bin.
double peak_frequency(const Spectrum& s);

/// Ratio of the peak bin's power to the median bin power: a simple
/// spectral-domain SNR proxy used by E1 to show the Figure 2 effect.
double peak_to_median_ratio(const Spectrum& s);

}  // namespace cg::dsp
