// ConGrid -- small statistics toolkit.
#pragma once

#include <cstddef>
#include <vector>

namespace cg::dsp {

double mean(const std::vector<double>& v);
double variance(const std::vector<double>& v);   ///< population variance
double stddev(const std::vector<double>& v);
double rms(const std::vector<double>& v);
double max_abs(const std::vector<double>& v);
std::size_t argmax(const std::vector<double>& v);
/// p in [0,1]; linear interpolation between order statistics.
double percentile(std::vector<double> v, double p);

/// Welford's online mean/variance accumulator; numerically stable across
/// millions of samples (used by the AccumStat unit and the bench reports).
class RunningStats {
 public:
  void add(double x);
  /// Merge another accumulator (parallel reduction).
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;  ///< population variance; 0 when count < 2
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace cg::dsp
