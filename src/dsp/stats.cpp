#include "dsp/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cg::dsp {

double mean(const std::vector<double>& v) {
  if (v.empty()) throw std::invalid_argument("mean: empty vector");
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double variance(const std::vector<double>& v) {
  if (v.empty()) throw std::invalid_argument("variance: empty vector");
  const double m = mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size());
}

double stddev(const std::vector<double>& v) { return std::sqrt(variance(v)); }

double rms(const std::vector<double>& v) {
  if (v.empty()) throw std::invalid_argument("rms: empty vector");
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s / static_cast<double>(v.size()));
}

double max_abs(const std::vector<double>& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

std::size_t argmax(const std::vector<double>& v) {
  if (v.empty()) throw std::invalid_argument("argmax: empty vector");
  return static_cast<std::size_t>(
      std::max_element(v.begin(), v.end()) - v.begin());
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) throw std::invalid_argument("percentile: empty vector");
  p = std::clamp(p, 0.0, 1.0);
  std::sort(v.begin(), v.end());
  const double idx = p * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace cg::dsp
