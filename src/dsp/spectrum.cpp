#include "dsp/spectrum.hpp"

#include <algorithm>
#include <stdexcept>

#include "dsp/fft.hpp"

namespace cg::dsp {

Spectrum power_spectrum(const std::vector<double>& signal, double sample_rate,
                        WindowKind window) {
  if (signal.empty()) {
    throw std::invalid_argument("power_spectrum: empty signal");
  }
  std::vector<double> windowed = signal;
  const auto w = make_window(window, signal.size());
  apply_window(windowed, w);

  const auto half = rfft(windowed);
  const std::size_t padded = next_pow2(signal.size());

  Spectrum s;
  s.sample_rate = sample_rate;
  s.bin_width = sample_rate / static_cast<double>(padded);
  s.power.resize(half.size());
  const double norm = 1.0 / window_power(w);
  for (std::size_t i = 0; i < half.size(); ++i) {
    s.power[i] = std::norm(half[i]) * norm;
  }
  return s;
}

std::size_t peak_bin(const Spectrum& s) {
  if (s.power.empty()) throw std::invalid_argument("peak_bin: empty spectrum");
  return static_cast<std::size_t>(
      std::max_element(s.power.begin(), s.power.end()) - s.power.begin());
}

double peak_frequency(const Spectrum& s) {
  return static_cast<double>(peak_bin(s)) * s.bin_width;
}

double peak_to_median_ratio(const Spectrum& s) {
  if (s.power.size() < 3) return 1.0;
  std::vector<double> sorted = s.power;
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  const double median = sorted[sorted.size() / 2];
  if (median <= 0.0) return 1.0;
  return s.power[peak_bin(s)] / median;
}

}  // namespace cg::dsp
