#include "dsp/fft.hpp"

#include <cmath>
#include <stdexcept>

namespace cg::dsp {
namespace {

void transform(std::vector<Complex>& a, bool inverse) {
  const std::size_t n = a.size();
  if (!is_pow2(n)) {
    throw std::invalid_argument("fft size must be a power of two, got " +
                                std::to_string(n));
  }

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  // Butterfly passes. Twiddle factors are recomputed per stage with a
  // recurrence; accuracy is re-anchored by calling std::polar per stage.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = (inverse ? 2.0 : -2.0) * M_PI /
                       static_cast<double>(len);
    const Complex wlen = std::polar(1.0, ang);
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        Complex u = a[i + k];
        Complex v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const double inv = 1.0 / static_cast<double>(n);
    for (auto& x : a) x *= inv;
  }
}

}  // namespace

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

void fft(std::vector<Complex>& data) { transform(data, /*inverse=*/false); }
void ifft(std::vector<Complex>& data) { transform(data, /*inverse=*/true); }

std::vector<Complex> rfft(const std::vector<double>& signal) {
  const std::size_t n = next_pow2(signal.size());
  std::vector<Complex> a(n, Complex(0.0, 0.0));
  for (std::size_t i = 0; i < signal.size(); ++i) a[i] = signal[i];
  fft(a);
  a.resize(n / 2 + 1);
  return a;
}

std::vector<double> irfft(const std::vector<Complex>& half, std::size_t n) {
  if (!is_pow2(n) || half.size() != n / 2 + 1) {
    throw std::invalid_argument("irfft: half spectrum size mismatch");
  }
  std::vector<Complex> full(n);
  for (std::size_t i = 0; i <= n / 2; ++i) full[i] = half[i];
  for (std::size_t i = n / 2 + 1; i < n; ++i) {
    full[i] = std::conj(half[n - i]);
  }
  ifft(full);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = full[i].real();
  return out;
}

}  // namespace cg::dsp
