#include "dsp/correlate.hpp"

#include <cmath>
#include <stdexcept>

#include "dsp/fft.hpp"

namespace cg::dsp {

std::vector<double> fast_correlate(const std::vector<double>& data,
                                   const std::vector<double>& tmpl) {
  if (data.empty() || tmpl.empty()) {
    throw std::invalid_argument("fast_correlate: empty input");
  }
  const std::size_t n = next_pow2(data.size() + tmpl.size() - 1);

  std::vector<Complex> a(n, Complex(0, 0)), b(n, Complex(0, 0));
  for (std::size_t i = 0; i < data.size(); ++i) a[i] = data[i];
  for (std::size_t i = 0; i < tmpl.size(); ++i) b[i] = tmpl[i];
  fft(a);
  fft(b);
  // Correlation theorem: corr = ifft(fft(data) * conj(fft(tmpl))).
  for (std::size_t i = 0; i < n; ++i) a[i] *= std::conj(b[i]);
  ifft(a);

  std::vector<double> out(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) out[i] = a[i].real();
  return out;
}

std::vector<double> direct_correlate(const std::vector<double>& data,
                                     const std::vector<double>& tmpl) {
  if (data.empty() || tmpl.empty()) {
    throw std::invalid_argument("direct_correlate: empty input");
  }
  std::vector<double> out(data.size(), 0.0);
  for (std::size_t lag = 0; lag < data.size(); ++lag) {
    double acc = 0.0;
    const std::size_t m = std::min(tmpl.size(), data.size() - lag);
    for (std::size_t j = 0; j < m; ++j) acc += data[lag + j] * tmpl[j];
    out[lag] = acc;
  }
  return out;
}

MatchResult matched_filter(const std::vector<double>& data,
                           const std::vector<double>& tmpl) {
  double energy = 0.0;
  for (double t : tmpl) energy += t * t;
  if (energy <= 0.0) {
    throw std::invalid_argument("matched_filter: zero-energy template");
  }
  const double norm = 1.0 / std::sqrt(energy);

  const auto corr = fast_correlate(data, tmpl);
  MatchResult r;
  for (std::size_t i = 0; i < corr.size(); ++i) {
    const double v = std::abs(corr[i]) * norm;
    if (v > r.peak) {
      r.peak = v;
      r.offset = i;
    }
  }
  return r;
}

}  // namespace cg::dsp
