// ConGrid -- window functions for spectral analysis.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace cg::dsp {

enum class WindowKind {
  kRectangular,
  kHann,
  kHamming,
  kBlackman,
};

/// Window coefficients of length n for the given kind.
std::vector<double> make_window(WindowKind kind, std::size_t n);

/// Multiply a signal by a window in place; sizes must match.
void apply_window(std::vector<double>& signal,
                  const std::vector<double>& window);

/// Sum of squared coefficients; used to normalise power spectra so the
/// reported PSD level is window-independent.
double window_power(const std::vector<double>& window);

/// Parse a window name ("rect", "hann", "hamming", "blackman"); throws
/// std::invalid_argument on anything else.
WindowKind window_from_name(const std::string& name);
std::string window_name(WindowKind kind);

}  // namespace cg::dsp
