// ConGrid -- fast Fourier transform.
//
// The inspiral search (paper section 3.6.2) performs "fast correlation on
// the data set with each template", i.e. FFT-based matched filtering, and
// the reference Triana network of Figure 1 takes a power spectrum. This is
// the shared FFT those paths use: an iterative radix-2 Cooley-Tukey
// transform with a real-input convenience wrapper.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace cg::dsp {

using Complex = std::complex<double>;

/// Smallest power of two >= n (n == 0 maps to 1).
std::size_t next_pow2(std::size_t n);

/// True when n is a power of two (and nonzero).
bool is_pow2(std::size_t n);

/// In-place forward FFT. `data.size()` must be a power of two; throws
/// std::invalid_argument otherwise. No normalisation is applied.
void fft(std::vector<Complex>& data);

/// In-place inverse FFT, normalised by 1/N so ifft(fft(x)) == x.
void ifft(std::vector<Complex>& data);

/// Forward FFT of a real signal. The input is zero-padded to the next power
/// of two; the returned spectrum has padded_size/2 + 1 bins (DC .. Nyquist).
std::vector<Complex> rfft(const std::vector<double>& signal);

/// Inverse of rfft for a half-spectrum of n/2+1 bins, returning n real
/// samples (n must be the power-of-two padded length).
std::vector<double> irfft(const std::vector<Complex>& half, std::size_t n);

}  // namespace cg::dsp
