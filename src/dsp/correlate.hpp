// ConGrid -- FFT-based correlation / matched filtering.
//
// Implements the "fast correlation on the data set with each template"
// operation at the heart of the inspiral-search scenario (paper 3.6.2).
// The direct O(N*M) correlation is also provided as a cross-check and for
// the M1 micro-benchmark comparing the two.
#pragma once

#include <cstddef>
#include <vector>

namespace cg::dsp {

/// Result of scanning a data stretch with one template.
struct MatchResult {
  double peak = 0.0;        ///< maximum normalised correlation value
  std::size_t offset = 0;   ///< sample offset of the maximum
};

/// Circular cross-correlation of `data` with `tmpl` computed via FFT.
/// Both inputs are zero-padded to the next power of two that fits
/// data.size() + tmpl.size() - 1, so the result is effectively linear
/// correlation; the returned series has data.size() valid lags.
std::vector<double> fast_correlate(const std::vector<double>& data,
                                   const std::vector<double>& tmpl);

/// Direct (time-domain) linear correlation -- O(N*M) reference.
std::vector<double> direct_correlate(const std::vector<double>& data,
                                     const std::vector<double>& tmpl);

/// Normalised matched filter: correlate `data` against a unit-energy copy
/// of `tmpl` and report the best match. The normalisation divides by
/// sqrt(template energy) so peaks are comparable across templates.
MatchResult matched_filter(const std::vector<double>& data,
                           const std::vector<double>& tmpl);

}  // namespace cg::dsp
