#include "dsp/window.hpp"

#include <cmath>
#include <stdexcept>

namespace cg::dsp {

std::vector<double> make_window(WindowKind kind, std::size_t n) {
  std::vector<double> w(n, 1.0);
  if (n < 2) return w;
  const double denom = static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) / denom;
    switch (kind) {
      case WindowKind::kRectangular:
        w[i] = 1.0;
        break;
      case WindowKind::kHann:
        w[i] = 0.5 - 0.5 * std::cos(2.0 * M_PI * x);
        break;
      case WindowKind::kHamming:
        w[i] = 0.54 - 0.46 * std::cos(2.0 * M_PI * x);
        break;
      case WindowKind::kBlackman:
        w[i] = 0.42 - 0.5 * std::cos(2.0 * M_PI * x) +
               0.08 * std::cos(4.0 * M_PI * x);
        break;
    }
  }
  return w;
}

void apply_window(std::vector<double>& signal,
                  const std::vector<double>& window) {
  if (signal.size() != window.size()) {
    throw std::invalid_argument("apply_window: size mismatch");
  }
  for (std::size_t i = 0; i < signal.size(); ++i) signal[i] *= window[i];
}

double window_power(const std::vector<double>& window) {
  double s = 0.0;
  for (double w : window) s += w * w;
  return s;
}

WindowKind window_from_name(const std::string& name) {
  if (name == "rect" || name == "rectangular") return WindowKind::kRectangular;
  if (name == "hann") return WindowKind::kHann;
  if (name == "hamming") return WindowKind::kHamming;
  if (name == "blackman") return WindowKind::kBlackman;
  throw std::invalid_argument("unknown window: " + name);
}

std::string window_name(WindowKind kind) {
  switch (kind) {
    case WindowKind::kRectangular: return "rect";
    case WindowKind::kHann: return "hann";
    case WindowKind::kHamming: return "hamming";
    case WindowKind::kBlackman: return "blackman";
  }
  return "rect";
}

}  // namespace cg::dsp
