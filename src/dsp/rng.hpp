// ConGrid -- deterministic random number generation.
//
// Benchmarks and tests must be reproducible run-to-run, so every stochastic
// component in ConGrid (noise units, churn traces, synthetic workloads)
// draws from this engine with an explicit seed rather than from global or
// time-seeded state.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace cg::dsp {

/// SplitMix64: used to expand a single seed into engine state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
/// Satisfies UniformRandomBitGenerator so it composes with <random>
/// distributions, but ConGrid mostly uses the built-in helpers below.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5EEDC0DEull) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) {
    // Lemire's multiply-shift rejection-free-in-practice reduction.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * n) >> 64);
  }

  /// Standard normal deviate (Box-Muller; one value cached).
  double gaussian() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u1 = 0.0;
    while (u1 == 0.0) u1 = uniform();
    double u2 = uniform();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    spare_ = r * std::sin(theta);
    have_spare_ = true;
    return r * std::cos(theta);
  }

  /// Normal deviate with the given mean and standard deviation.
  double gaussian(double mean, double stddev) {
    return mean + stddev * gaussian();
  }

  /// Exponentially distributed deviate with the given mean (rate = 1/mean).
  double exponential(double mean) {
    double u = 0.0;
    while (u == 0.0) u = uniform();
    return -mean * std::log(u);
  }

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) { return uniform() < p; }

  /// Derive an independent child generator (for per-peer / per-unit streams
  /// that must not correlate with the parent).
  Rng fork() { return Rng((*this)()); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace cg::dsp
