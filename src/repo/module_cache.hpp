// ConGrid -- the executing peer's module cache.
//
// Paper, section 3.3: "This dynamic download of code ... allows the peer to
// only host code that is necessary", and "a resource-constrained device may
// also decide to selectively download and release executable modules based
// on dependencies inherent within the connectivity graph". The cache is a
// byte-budgeted LRU with pinning: modules in use (and their dependency
// closure) are pinned and cannot be evicted; everything else is released
// LRU-first when space is needed. Experiment E6 sweeps the byte budget.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "cas/store.hpp"
#include "obs/obs.hpp"
#include "repo/artifact.hpp"

namespace cg::repo {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t bytes_fetched = 0;   ///< sum of inserted artifact sizes
  std::uint64_t rejected_too_large = 0;
  std::uint64_t rejected_pinned = 0;  ///< replace attempt on an in-use module
  std::uint64_t backing_hits = 0;  ///< misses satisfied by the backing store

  double hit_rate() const {
    const auto total = hits + misses;
    return total ? static_cast<double>(hits) / static_cast<double>(total)
                 : 0.0;
  }
};

/// Byte-budgeted LRU module cache with pin counts. Keyed by module name:
/// inserting a different version of a cached name replaces it (the paper's
/// "request from the owner" rule means the owner's version always wins) --
/// unless the resident copy is pinned, i.e. a job is executing it, in
/// which case the insert is rejected and the refresh happens at the next
/// deploy after the job releases it.
class ModuleCache {
 public:
  explicit ModuleCache(std::size_t budget_bytes)
      : budget_bytes_(budget_bytes) {}

  /// Attach a content-addressed store behind the cache. Inserts write
  /// through to it (keyed "module/<name>" -> digest of the encoded
  /// artifact) and lookup misses fall back to it, so re-deploys after a
  /// restart hit the disk tier instead of the network. Pass nullptr to
  /// detach. The store is borrowed, not owned, and must outlive the cache.
  void set_backing_store(cas::ContentStore* store) { backing_ = store; }
  cas::ContentStore* backing_store() const { return backing_; }

  /// Look up a module; a hit refreshes recency. Records hit/miss stats.
  /// On an in-memory miss, consults the backing store (when attached) and
  /// promotes a decoded copy into the cache -- counted as a miss plus a
  /// backing_hit, since the caller avoided a network fetch but not a load.
  std::optional<ModuleArtifact> lookup(const std::string& name);

  /// True without touching stats or recency (introspection).
  bool contains(const std::string& name) const {
    return entries_.contains(name);
  }

  /// Insert a fetched artifact, evicting unpinned LRU entries as needed.
  /// Returns false (and does not insert) when the artifact cannot fit even
  /// after evicting everything unpinned.
  bool insert(const ModuleArtifact& a);

  /// Pin / unpin by name. Pinned entries are never evicted. Pinning an
  /// absent name is an error (std::out_of_range).
  void pin(const std::string& name);
  void unpin(const std::string& name);
  bool is_pinned(const std::string& name) const;

  /// Explicitly release a module (no-op when pinned or absent). Returns
  /// true when something was dropped.
  bool release(const std::string& name);

  std::size_t resident_bytes() const { return resident_bytes_; }
  std::size_t budget_bytes() const { return budget_bytes_; }
  std::size_t entry_count() const { return entries_.size(); }
  const CacheStats& stats() const { return stats_; }

  /// Bind metrics: "<scope>.cache.*" counters plus a resident-bytes gauge.
  void set_obs(obs::Registry& registry, std::string_view scope = {});

 private:
  struct Obs {
    obs::CounterRef hits, misses, insertions, evictions, bytes_fetched,
        backing_hits;
    obs::GaugeRef resident_bytes;
  };
  struct Entry {
    ModuleArtifact artifact;
    int pin_count = 0;
    std::list<std::string>::iterator lru_it;  ///< position in lru_
  };

  void touch(Entry& e, const std::string& name);
  bool make_room(std::size_t need);
  void erase_entry(const std::string& name);
  bool insert_internal(const ModuleArtifact& a, bool write_through);

  cas::ContentStore* backing_ = nullptr;
  std::size_t budget_bytes_;
  std::size_t resident_bytes_ = 0;
  Obs obs_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  ///< front = most recent
  CacheStats stats_;
};

}  // namespace cg::repo
