#include "repo/code_exchange.hpp"

#include "serial/reader.hpp"
#include "serial/writer.hpp"

namespace cg::repo {
namespace {

constexpr std::uint8_t kRequest = 1;
constexpr std::uint8_t kResponse = 2;

}  // namespace

void CodeExchange::set_obs(obs::Tracer* tracer, std::string_view node) {
  tracer_ = tracer;
  trace_node_ = node.empty() ? transport_.local().value : std::string(node);
}

std::uint64_t CodeExchange::fetch(const net::Endpoint& owner,
                                  const std::string& name,
                                  const std::string& version,
                                  FetchHandler on_done,
                                  const obs::TraceContext& trace) {
  const std::uint64_t id = next_req_++;
  pending_[id] = std::move(on_done);

  serial::Writer w;
  w.u8(kRequest);
  w.u64(id);
  w.u64(trace.trace_id);
  w.u64(trace.parent_span);
  w.u64(trace.lamport);
  w.string(name);
  w.string(version);

  serial::Frame f;
  f.type = serial::FrameType::kCode;
  f.payload = w.take();
  transport_.send(owner, std::move(f));
  ++stats_.requests_sent;
  return id;
}

void CodeExchange::on_frame(const net::Endpoint& from, serial::Frame frame) {
  if (frame.type != serial::FrameType::kCode) {
    if (fallback_) fallback_(from, std::move(frame));
    return;
  }
  serial::Reader r(frame.payload);
  const std::uint8_t kind = r.u8();

  if (kind == kRequest) {
    const std::uint64_t id = r.u64();
    obs::TraceContext trace;
    trace.trace_id = r.u64();
    trace.parent_span = r.u64();
    trace.lamport = r.u64();
    const std::string name = r.string();
    const std::string version = r.string();

    std::optional<ModuleArtifact> a;
    if (repo_) {
      a = version.empty() ? repo_->latest(name) : repo_->get(name, version);
    }
    if (tracer_) {
      tracer_.event(trace_node_, "code.serve", trace,
                    "module=" + name + " found=" + (a ? "1" : "0"));
    }

    serial::Writer w;
    w.u8(kResponse);
    w.u64(id);
    w.boolean(a.has_value());
    if (a) {
      const auto bytes = encode_artifact(*a);
      w.blob(bytes);
      stats_.bytes_served += bytes.size();
      ++stats_.requests_served;
    } else {
      ++stats_.requests_not_found;
    }
    serial::Frame resp;
    resp.type = serial::FrameType::kCode;
    resp.payload = w.take();
    transport_.send(from, std::move(resp));
    return;
  }

  if (kind == kResponse) {
    const std::uint64_t id = r.u64();
    const bool found = r.boolean();
    std::optional<ModuleArtifact> a;
    if (found) {
      const auto bytes = r.blob();
      a = decode_artifact(bytes);
      ++stats_.artifacts_received;
      stats_.bytes_received += bytes.size();
    }
    auto it = pending_.find(id);
    if (it == pending_.end()) return;  // late or duplicate response
    auto handler = std::move(it->second);
    pending_.erase(it);
    handler(std::move(a));
    return;
  }
  // Unknown kind: drop (forward-compatibility).
}

}  // namespace cg::repo
