// ConGrid -- code transfer protocol.
//
// The wire half of on-demand code download: an executing peer fetches a
// module artifact from its owner; the owner answers from its
// ModuleRepository. Rides in kCode frames so it composes with the same
// frame-handler chain as discovery and pipes.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>
#include <unordered_map>

#include "net/transport.hpp"
#include "obs/trace.hpp"
#include "repo/repository.hpp"

namespace cg::repo {

struct CodeExchangeStats {
  std::uint64_t requests_sent = 0;
  std::uint64_t requests_served = 0;
  std::uint64_t requests_not_found = 0;
  std::uint64_t artifacts_received = 0;
  std::uint64_t bytes_served = 0;
  std::uint64_t bytes_received = 0;  ///< encoded-artifact bytes fetched
};

/// One per peer. Chain it behind PipeServe:
///   pipes.set_fallback_handler([&](auto& f, auto fr){ code.on_frame(f, fr); });
class CodeExchange {
 public:
  using FetchHandler = std::function<void(std::optional<ModuleArtifact>)>;

  /// `transport` is used for sending; inbound frames must be fed to
  /// on_frame by whoever owns the handler chain.
  explicit CodeExchange(net::Transport& transport) : transport_(transport) {}

  /// Serve requests from this repository (nullptr = serve nothing).
  void serve_from(const ModuleRepository* repo) { repo_ = repo; }

  /// Request `name` (at `version`, or the owner's latest when empty) from
  /// `owner`. The handler fires once, with nullopt when the owner does not
  /// have the module. `trace` is the causal context of whatever caused the
  /// fetch (e.g. the deploy span waiting on the module); it travels in the
  /// request -- a fixed 24 bytes, zero-filled when untraced -- and is
  /// echoed in the response, so the owner's serve event joins the trace.
  std::uint64_t fetch(const net::Endpoint& owner, const std::string& name,
                      const std::string& version, FetchHandler on_done,
                      const obs::TraceContext& trace = {});

  /// Bind a tracer: served requests become "code.serve" events on `node`,
  /// stamped with the requester's causal context.
  void set_obs(obs::Tracer* tracer, std::string_view node = {});

  /// Feed a frame from the handler chain. Consumes kCode frames; passes
  /// everything else to the fallback.
  void on_frame(const net::Endpoint& from, serial::Frame frame);

  void set_fallback_handler(net::FrameHandler h) { fallback_ = std::move(h); }

  const CodeExchangeStats& stats() const { return stats_; }

 private:
  net::Transport& transport_;
  const ModuleRepository* repo_ = nullptr;
  std::unordered_map<std::uint64_t, FetchHandler> pending_;
  std::uint64_t next_req_ = 1;
  net::FrameHandler fallback_;
  CodeExchangeStats stats_;
  obs::TracerRef tracer_;
  std::string trace_node_;
};

}  // namespace cg::repo
