// ConGrid -- module artifacts.
//
// The paper distributes Java class files on demand: "the peer can request
// executable code for modules that are present within the connectivity
// graph ... the executable must be requested from the owner whenever an
// execution is to be undertaken", which also solves version skew
// (section 3.3). ConGrid's substitution is a ModuleArtifact: a named,
// versioned, content-hashed byte blob with declared dependencies -- the
// bytes are synthetic "bytecode", but the transfer, caching, versioning and
// dependency-release paths are the real thing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cas/hash.hpp"
#include "serial/bytes.hpp"

namespace cg::repo {

struct ModuleArtifact {
  std::string name;
  std::string version;
  serial::Bytes code;                  ///< the "bytecode"
  std::vector<std::string> deps;       ///< module names this one needs

  /// Content hash over name/version/code (FNV-1a 64); admission control
  /// and the certified library key on this.
  std::uint64_t content_hash() const;

  /// "name@version" -- the repository key.
  std::string key() const { return name + "@" + version; }

  std::size_t size_bytes() const { return code.size(); }

  bool operator==(const ModuleArtifact&) const = default;
};

/// Serialise / parse an artifact for kCode frames.
serial::Bytes encode_artifact(const ModuleArtifact& a);
ModuleArtifact decode_artifact(const serial::Bytes& b);

/// SHA-256 of the encoded artifact -- the content-addressed store key.
/// Unlike content_hash() (a fast 64-bit admission check) this digest is
/// what deploys advertise on the wire and what peers dedup against.
cas::Digest artifact_digest(const ModuleArtifact& a);

/// Deterministically fabricate an artifact of roughly `size` bytes -- the
/// synthetic stand-in for real compiled module code in tests and benches.
ModuleArtifact make_synthetic_artifact(const std::string& name,
                                       const std::string& version,
                                       std::size_t size,
                                       std::vector<std::string> deps = {});

}  // namespace cg::repo
