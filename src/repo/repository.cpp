#include "repo/repository.hpp"

#include <set>
#include <stdexcept>

namespace cg::repo {

void ModuleRepository::put(ModuleArtifact a) {
  store_[a.key()] = std::move(a);
}

std::optional<ModuleArtifact> ModuleRepository::get(
    const std::string& name, const std::string& version) const {
  auto it = store_.find(name + "@" + version);
  if (it == store_.end()) return std::nullopt;
  return it->second;
}

std::optional<ModuleArtifact> ModuleRepository::latest(
    const std::string& name) const {
  std::optional<ModuleArtifact> best;
  for (const auto& [key, a] : store_) {
    if (a.name != name) continue;
    if (!best || a.version > best->version) best = a;
  }
  return best;
}

std::vector<std::string> ModuleRepository::module_names() const {
  std::set<std::string> names;
  for (const auto& [key, a] : store_) names.insert(a.name);
  return {names.begin(), names.end()};
}

std::vector<ModuleArtifact> ModuleRepository::closure(
    const std::string& name, const std::string& version) const {
  std::vector<ModuleArtifact> out;
  std::set<std::string> visited;

  // Depth-first, dependencies before dependents.
  auto visit = [&](auto&& self, const std::string& n,
                   const std::string& v) -> void {
    const std::string key = v.empty() ? n : n + "@" + v;
    if (visited.contains(key)) return;
    visited.insert(key);

    std::optional<ModuleArtifact> a =
        v.empty() ? latest(n) : get(n, v);
    if (!a) {
      throw std::out_of_range("module not in repository: " + key);
    }
    for (const auto& d : a->deps) self(self, d, "");
    out.push_back(std::move(*a));
  };
  visit(visit, name, version);
  return out;
}

std::size_t ModuleRepository::total_bytes() const {
  std::size_t n = 0;
  for (const auto& [key, a] : store_) n += a.size_bytes();
  return n;
}

}  // namespace cg::repo
