#include "repo/artifact.hpp"

#include "serial/reader.hpp"
#include "serial/writer.hpp"

namespace cg::repo {
namespace {

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace

std::uint64_t ModuleArtifact::content_hash() const {
  std::uint64_t h = 0xCBF29CE484222325ull;
  h = fnv1a(h, name.data(), name.size());
  h = fnv1a(h, version.data(), version.size());
  h = fnv1a(h, code.data(), code.size());
  return h;
}

serial::Bytes encode_artifact(const ModuleArtifact& a) {
  serial::Writer w(a.code.size() + 64);
  w.string(a.name);
  w.string(a.version);
  w.blob(a.code);
  w.varint(a.deps.size());
  for (const auto& d : a.deps) w.string(d);
  return w.take();
}

ModuleArtifact decode_artifact(const serial::Bytes& b) {
  serial::Reader r(b);
  ModuleArtifact a;
  a.name = r.string();
  a.version = r.string();
  a.code = r.blob();
  const std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) a.deps.push_back(r.string());
  return a;
}

cas::Digest artifact_digest(const ModuleArtifact& a) {
  return cas::sha256(encode_artifact(a));
}

ModuleArtifact make_synthetic_artifact(const std::string& name,
                                       const std::string& version,
                                       std::size_t size,
                                       std::vector<std::string> deps) {
  ModuleArtifact a;
  a.name = name;
  a.version = version;
  a.deps = std::move(deps);
  a.code.resize(size);
  // Content depends on name/version so different versions hash differently.
  std::uint64_t seed = fnv1a(0xCBF29CE484222325ull, name.data(), name.size());
  seed = fnv1a(seed, version.data(), version.size());
  for (std::size_t i = 0; i < size; ++i) {
    seed = seed * 6364136223846793005ull + 1442695040888963407ull;
    a.code[i] = static_cast<std::uint8_t>(seed >> 56);
  }
  return a;
}

}  // namespace cg::repo
