// ConGrid -- authoritative module repository.
//
// The "owner" side of the on-demand code model: the peer that publishes a
// workflow also serves the executable modules it references, so every
// execution fetches the owner's current version (paper 3.3 -- this is the
// version-consistency argument).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "repo/artifact.hpp"

namespace cg::repo {

class ModuleRepository {
 public:
  /// Store (or replace) an artifact under name@version.
  void put(ModuleArtifact a);

  /// Exact lookup; nullopt when absent.
  std::optional<ModuleArtifact> get(const std::string& name,
                                    const std::string& version) const;

  /// Highest version for `name` by lexicographic version compare (versions
  /// here are dotted decimals of equal arity; good enough for the model).
  std::optional<ModuleArtifact> latest(const std::string& name) const;

  /// Names of all stored modules (deduplicated).
  std::vector<std::string> module_names() const;

  /// The artifact plus its full transitive dependency closure, in
  /// dependency-first order. Throws std::out_of_range when a dependency is
  /// not in the repository (broken publish).
  std::vector<ModuleArtifact> closure(const std::string& name,
                                      const std::string& version) const;

  std::size_t size() const { return store_.size(); }
  std::size_t total_bytes() const;

 private:
  std::map<std::string, ModuleArtifact> store_;  // by key()
};

}  // namespace cg::repo
