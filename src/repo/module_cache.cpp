#include "repo/module_cache.hpp"

#include <stdexcept>

#include "serial/reader.hpp"

namespace cg::repo {

void ModuleCache::set_obs(obs::Registry& registry, std::string_view scope) {
  obs_.hits = registry.counter(obs::scoped(scope, "cache.hits"));
  obs_.misses = registry.counter(obs::scoped(scope, "cache.misses"));
  obs_.insertions = registry.counter(obs::scoped(scope, "cache.insertions"));
  obs_.evictions = registry.counter(obs::scoped(scope, "cache.evictions"));
  obs_.bytes_fetched =
      registry.counter(obs::scoped(scope, "cache.bytes_fetched"));
  obs_.backing_hits =
      registry.counter(obs::scoped(scope, "cache.backing_hits"));
  obs_.resident_bytes =
      registry.gauge(obs::scoped(scope, "cache.resident_bytes"));
  obs_.resident_bytes.set(static_cast<double>(resident_bytes_));
}

std::optional<ModuleArtifact> ModuleCache::lookup(const std::string& name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    ++stats_.misses;
    obs_.misses.inc();
    if (backing_) {
      if (auto bytes = backing_->get_by_key("module/" + name)) {
        try {
          ModuleArtifact a = decode_artifact(*bytes);
          ++stats_.backing_hits;
          obs_.backing_hits.inc();
          // Promote without writing through: the bytes came from the store.
          insert_internal(a, /*write_through=*/false);
          return a;
        } catch (const serial::DecodeError&) {
          // Store handed back bytes that don't parse as an artifact (ref
          // pointed at something else): treat as a plain miss.
        }
      }
    }
    return std::nullopt;
  }
  ++stats_.hits;
  obs_.hits.inc();
  touch(it->second, name);
  return it->second.artifact;
}

void ModuleCache::touch(Entry& e, const std::string& name) {
  lru_.erase(e.lru_it);
  lru_.push_front(name);
  e.lru_it = lru_.begin();
}

bool ModuleCache::insert(const ModuleArtifact& a) {
  return insert_internal(a, /*write_through=*/true);
}

bool ModuleCache::insert_internal(const ModuleArtifact& a,
                                  bool write_through) {
  // Write through to the backing store regardless of whether the in-memory
  // insert below succeeds: a module too large for the LRU budget is still
  // worth keeping on disk for the next deploy.
  if (backing_ && write_through) {
    backing_->put_keyed("module/" + a.name, encode_artifact(a));
  }
  // Replace any resident version of the same name first.
  if (auto it = entries_.find(a.name); it != entries_.end()) {
    if (it->second.pin_count > 0) {
      // In use: swapping the code underneath a running job is never safe.
      // The new version lands on the next insert after the job unpins.
      ++stats_.rejected_pinned;
      return false;
    }
    if (a.size_bytes() > budget_bytes_) {
      // Would never fit; keep the old version rather than losing both.
      ++stats_.rejected_too_large;
      return false;
    }
    resident_bytes_ -= it->second.artifact.size_bytes();
    lru_.erase(it->second.lru_it);
    entries_.erase(it);
    if (!make_room(a.size_bytes())) {
      ++stats_.rejected_too_large;
      return false;
    }
    lru_.push_front(a.name);
    Entry e{a, 0, lru_.begin()};
    resident_bytes_ += a.size_bytes();
    entries_.emplace(a.name, std::move(e));
    ++stats_.insertions;
    stats_.bytes_fetched += a.size_bytes();
    obs_.insertions.inc();
    obs_.bytes_fetched.inc(a.size_bytes());
    obs_.resident_bytes.set(static_cast<double>(resident_bytes_));
    return true;
  }

  if (!make_room(a.size_bytes())) {
    ++stats_.rejected_too_large;
    return false;
  }
  lru_.push_front(a.name);
  Entry e{a, 0, lru_.begin()};
  resident_bytes_ += a.size_bytes();
  entries_.emplace(a.name, std::move(e));
  ++stats_.insertions;
  stats_.bytes_fetched += a.size_bytes();
  obs_.insertions.inc();
  obs_.bytes_fetched.inc(a.size_bytes());
  obs_.resident_bytes.set(static_cast<double>(resident_bytes_));
  return true;
}

bool ModuleCache::make_room(std::size_t need) {
  if (need > budget_bytes_) return false;
  while (resident_bytes_ + need > budget_bytes_) {
    // Evict the least-recently-used unpinned entry.
    auto victim = lru_.end();
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      if (entries_.at(*it).pin_count == 0) {
        victim = std::next(it).base();
        break;
      }
    }
    if (victim == lru_.end()) return false;  // everything pinned
    ++stats_.evictions;
    obs_.evictions.inc();
    erase_entry(*victim);
  }
  return true;
}

void ModuleCache::erase_entry(const std::string& name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) return;
  resident_bytes_ -= it->second.artifact.size_bytes();
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
  obs_.resident_bytes.set(static_cast<double>(resident_bytes_));
}

void ModuleCache::pin(const std::string& name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::out_of_range("pin of non-resident module: " + name);
  }
  ++it->second.pin_count;
}

void ModuleCache::unpin(const std::string& name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) return;
  if (it->second.pin_count > 0) --it->second.pin_count;
}

bool ModuleCache::is_pinned(const std::string& name) const {
  auto it = entries_.find(name);
  return it != entries_.end() && it->second.pin_count > 0;
}

bool ModuleCache::release(const std::string& name) {
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.pin_count > 0) return false;
  erase_entry(name);
  return true;
}

}  // namespace cg::repo
