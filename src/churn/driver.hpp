// ConGrid -- churn driver: replay availability traces onto a SimNetwork.
//
// Turns a sampled Trace into scheduled set_up(node, true/false) calls so
// peers in a simulated experiment actually drop off and return at the
// trace's boundaries.
#pragma once

#include <cstdint>

#include "churn/availability.hpp"
#include "net/sim_network.hpp"

namespace cg::churn {

/// Schedule up/down transitions for `node` according to `trace`. The node
/// is marked down at t=0 unless the trace's first interval starts at 0.
/// Call before running the simulation.
void apply_trace(net::SimNetwork& net, std::uint32_t node, const Trace& trace);

/// Sample a trace from `model` and apply it; returns the trace for
/// bookkeeping (e.g. computing expected availability).
Trace apply_model(net::SimNetwork& net, std::uint32_t node,
                  const AvailabilityModel& model, double duration_s,
                  dsp::Rng& rng);

}  // namespace cg::churn
