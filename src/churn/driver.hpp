// ConGrid -- churn driver: replay availability traces onto a SimNetwork.
//
// Turns a sampled Trace into scheduled set_up(node, true/false) calls so
// peers in a simulated experiment actually drop off and return at the
// trace's boundaries.
#pragma once

#include <cstdint>

#include "churn/availability.hpp"
#include "net/sim_network.hpp"
#include "obs/obs.hpp"

namespace cg::churn {

/// Schedule up/down transitions for `node` according to `trace`. The node
/// is marked down at t=0 unless the trace's first interval starts at 0.
/// Call before running the simulation.
///
/// When `registry` is given, each applied transition bumps
/// "churn.node_up" / "churn.node_down" and, with a tracer, emits a
/// per-node "churn.up"/"churn.down" event at the transition's sim time --
/// this is how availability shows up next to retransmit and recovery
/// metrics in one snapshot.
void apply_trace(net::SimNetwork& net, std::uint32_t node, const Trace& trace,
                 obs::Registry* registry = nullptr,
                 obs::Tracer* tracer = nullptr);

/// Sample a trace from `model` and apply it; returns the trace for
/// bookkeeping (e.g. computing expected availability).
Trace apply_model(net::SimNetwork& net, std::uint32_t node,
                  const AvailabilityModel& model, double duration_s,
                  dsp::Rng& rng, obs::Registry* registry = nullptr,
                  obs::Tracer* tracer = nullptr);

}  // namespace cg::churn
