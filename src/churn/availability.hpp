// ConGrid -- volunteer availability models.
//
// The paper's resource population is "users that are potentially
// permanently connected" but whose machines are only usable "when their
// workstation is idle i.e. when the screen saver turns on" (section 3.7,
// the Condor/SETI@home model), and whose contributions suffer "various
// types of downtime e.g. connection lost, user intervenes, computational
// bandwidth not reached" (section 3.6.2). This module turns those phrases
// into samplable availability traces:
//
//   * AlwaysOnModel     -- dedicated machines (the paper's "20 PCs" line);
//   * PoissonChurnModel -- memoryless connect/disconnect (DSL drops);
//   * DiurnalIdleModel  -- screensaver harvesting with working-hours
//                          pressure and overnight idleness;
//   * intersect()       -- compose models (idle AND connected).
//
// A trace is a sorted list of disjoint [start, end) intervals during which
// the host is usable. Helpers compute the aggregate statistics benches
// report and the "work actually completed" arithmetic used by E3/E8.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "dsp/rng.hpp"

namespace cg::churn {

/// Half-open availability interval [start, end) in seconds.
struct Interval {
  double start = 0;
  double end = 0;
  double length() const { return end - start; }
  bool operator==(const Interval&) const = default;
};

using Trace = std::vector<Interval>;

/// Generates availability traces. Implementations must be deterministic
/// given the Rng state.
class AvailabilityModel {
 public:
  virtual ~AvailabilityModel() = default;
  /// Sample a trace covering [0, duration_s). Intervals are sorted,
  /// disjoint, and clipped to the duration.
  virtual Trace sample(double duration_s, dsp::Rng& rng) const = 0;
};

/// A dedicated, never-failing host.
class AlwaysOnModel final : public AvailabilityModel {
 public:
  Trace sample(double duration_s, dsp::Rng& rng) const override;
};

/// Alternating exponential up/down periods (connection-level churn).
class PoissonChurnModel final : public AvailabilityModel {
 public:
  PoissonChurnModel(double mean_up_s, double mean_down_s)
      : mean_up_s_(mean_up_s), mean_down_s_(mean_down_s) {}
  Trace sample(double duration_s, dsp::Rng& rng) const override;

 private:
  double mean_up_s_;
  double mean_down_s_;
};

/// Screensaver-idle harvesting with a daily rhythm. Each hour of the day
/// has an idle probability: low during working hours, high overnight; the
/// trace marks whole hours as available, then punches out short
/// user-returns (exponential arrivals) inside available hours.
struct DiurnalOptions {
  double work_start_hour = 9.0;
  double work_end_hour = 18.0;
  double p_idle_work_hours = 0.25;  ///< chance an office-hour is free
  double p_idle_off_hours = 0.90;   ///< chance an off-hour is free
  double mean_interrupt_gap_s = 7200.0;  ///< user-return arrivals
  double mean_interrupt_length_s = 300.0;
};

class DiurnalIdleModel final : public AvailabilityModel {
 public:
  using Options = DiurnalOptions;
  explicit DiurnalIdleModel(Options o = {}) : o_(o) {}
  Trace sample(double duration_s, dsp::Rng& rng) const override;

 private:
  Options o_;
};

// -- trace algebra ----------------------------------------------------------

/// Intersection of two traces: available when both are (idle AND online).
Trace intersect(const Trace& a, const Trace& b);

/// Coalesce touching/overlapping intervals and drop empties; asserts the
/// trace is sorted.
Trace normalise(Trace t);

/// Fraction of [0, duration) covered.
double availability_fraction(const Trace& t, double duration_s);

/// Mean available-interval length (0 for an empty trace).
double mean_session_length(const Trace& t);

/// How much *task* work a host completes in [0, duration): tasks take
/// `task_s` of contiguous availability; an interval ending mid-task loses
/// the partial task unless checkpointing is on, in which case only the
/// work since the last checkpoint (every `checkpoint_s`, 0 = none) is lost
/// and the task resumes in the next interval. Returns completed task count.
std::size_t completed_tasks(const Trace& t, double duration_s, double task_s,
                            double checkpoint_s = 0.0);

}  // namespace cg::churn
