#include "churn/availability.hpp"

#include <algorithm>
#include <cmath>

namespace cg::churn {

Trace AlwaysOnModel::sample(double duration_s, dsp::Rng&) const {
  if (duration_s <= 0) return {};
  return {Interval{0.0, duration_s}};
}

Trace PoissonChurnModel::sample(double duration_s, dsp::Rng& rng) const {
  Trace t;
  // Random initial phase: starts up with probability = long-run fraction.
  const double up_fraction = mean_up_s_ / (mean_up_s_ + mean_down_s_);
  bool up = rng.chance(up_fraction);
  double now = 0.0;
  while (now < duration_s) {
    const double len =
        rng.exponential(up ? mean_up_s_ : mean_down_s_);
    const double end = std::min(now + len, duration_s);
    if (up && end > now) t.push_back(Interval{now, end});
    now = end;
    up = !up;
  }
  return normalise(std::move(t));
}

Trace DiurnalIdleModel::sample(double duration_s, dsp::Rng& rng) const {
  // Hour-granular idle blocks.
  Trace idle;
  const double hour = 3600.0;
  for (double start = 0.0; start < duration_s; start += hour) {
    const double hour_of_day = std::fmod(start / hour, 24.0);
    const bool working = hour_of_day >= o_.work_start_hour &&
                         hour_of_day < o_.work_end_hour;
    const double p = working ? o_.p_idle_work_hours : o_.p_idle_off_hours;
    if (rng.chance(p)) {
      idle.push_back(Interval{start, std::min(start + hour, duration_s)});
    }
  }
  idle = normalise(std::move(idle));

  // Punch out short user-returns.
  Trace interrupts;
  double t = rng.exponential(o_.mean_interrupt_gap_s);
  while (t < duration_s) {
    const double len = rng.exponential(o_.mean_interrupt_length_s);
    interrupts.push_back(Interval{t, std::min(t + len, duration_s)});
    t += len + rng.exponential(o_.mean_interrupt_gap_s);
  }
  if (interrupts.empty()) return idle;

  // available = idle minus interrupts = intersect(idle, complement).
  Trace complement;
  double cursor = 0.0;
  for (const auto& iv : normalise(std::move(interrupts))) {
    if (iv.start > cursor) complement.push_back(Interval{cursor, iv.start});
    cursor = std::max(cursor, iv.end);
  }
  if (cursor < duration_s) complement.push_back(Interval{cursor, duration_s});
  return intersect(idle, complement);
}

Trace normalise(Trace t) {
  std::sort(t.begin(), t.end(), [](const Interval& a, const Interval& b) {
    return a.start < b.start;
  });
  Trace out;
  for (const auto& iv : t) {
    if (iv.end <= iv.start) continue;
    if (!out.empty() && iv.start <= out.back().end) {
      out.back().end = std::max(out.back().end, iv.end);
    } else {
      out.push_back(iv);
    }
  }
  return out;
}

Trace intersect(const Trace& a, const Trace& b) {
  Trace out;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const double lo = std::max(a[i].start, b[j].start);
    const double hi = std::min(a[i].end, b[j].end);
    if (hi > lo) out.push_back(Interval{lo, hi});
    (a[i].end < b[j].end) ? ++i : ++j;
  }
  return out;
}

double availability_fraction(const Trace& t, double duration_s) {
  if (duration_s <= 0) return 0.0;
  double covered = 0.0;
  for (const auto& iv : t) covered += iv.length();
  return covered / duration_s;
}

double mean_session_length(const Trace& t) {
  if (t.empty()) return 0.0;
  double total = 0.0;
  for (const auto& iv : t) total += iv.length();
  return total / static_cast<double>(t.size());
}

std::size_t completed_tasks(const Trace& t, double duration_s, double task_s,
                            double checkpoint_s) {
  if (task_s <= 0) return 0;
  std::size_t done = 0;
  double progress = 0.0;  // seconds into the current task
  for (const auto& iv : t) {
    if (iv.start >= duration_s) break;
    double remaining = std::min(iv.end, duration_s) - iv.start;
    // Finish the carried-over task first.
    if (progress > 0.0) {
      const double need = task_s - progress;
      if (remaining >= need) {
        ++done;
        remaining -= need;
        progress = 0.0;
      } else {
        progress += remaining;
        remaining = 0.0;
      }
    }
    if (remaining > 0.0) {
      done += static_cast<std::size_t>(remaining / task_s);
      progress = std::fmod(remaining, task_s);
    }
    // Interval ends: partial work survives only up to the last checkpoint.
    if (checkpoint_s > 0.0) {
      progress = std::floor(progress / checkpoint_s) * checkpoint_s;
    } else {
      progress = 0.0;
    }
  }
  return done;
}

}  // namespace cg::churn
