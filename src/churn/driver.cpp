#include "churn/driver.hpp"

namespace cg::churn {

void apply_trace(net::SimNetwork& net, std::uint32_t node,
                 const Trace& trace) {
  const bool up_at_zero = !trace.empty() && trace.front().start <= 0.0;
  net.set_up(node, up_at_zero);
  for (const auto& iv : trace) {
    if (iv.start > 0.0) {
      net.schedule(iv.start, [&net, node] { net.set_up(node, true); });
    }
    net.schedule(iv.end, [&net, node] { net.set_up(node, false); });
  }
}

Trace apply_model(net::SimNetwork& net, std::uint32_t node,
                  const AvailabilityModel& model, double duration_s,
                  dsp::Rng& rng) {
  Trace t = model.sample(duration_s, rng);
  apply_trace(net, node, t);
  return t;
}

}  // namespace cg::churn
