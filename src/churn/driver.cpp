#include "churn/driver.hpp"

namespace cg::churn {

void apply_trace(net::SimNetwork& net, std::uint32_t node, const Trace& trace,
                 obs::Registry* registry, obs::Tracer* tracer) {
  obs::CounterRef ups, downs;
  if (registry) {
    ups = registry->counter("churn.node_up");
    downs = registry->counter("churn.node_down");
  }
  obs::TracerRef trc(tracer);
  const std::string node_scope = "sim:" + std::to_string(node);

  const bool up_at_zero = !trace.empty() && trace.front().start <= 0.0;
  net.set_up(node, up_at_zero);
  for (const auto& iv : trace) {
    if (iv.start > 0.0) {
      net.schedule(iv.start, [&net, node, ups, trc, node_scope] {
        net.set_up(node, true);
        ups.inc();
        trc.event(node_scope, "churn.up");
      });
    }
    net.schedule(iv.end, [&net, node, downs, trc, node_scope] {
      net.set_up(node, false);
      downs.inc();
      trc.event(node_scope, "churn.down");
    });
  }
}

Trace apply_model(net::SimNetwork& net, std::uint32_t node,
                  const AvailabilityModel& model, double duration_s,
                  dsp::Rng& rng, obs::Registry* registry,
                  obs::Tracer* tracer) {
  Trace t = model.sample(duration_s, rng);
  apply_trace(net, node, t, registry, tracer);
  return t;
}

}  // namespace cg::churn
