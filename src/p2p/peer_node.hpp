// ConGrid -- peer node: overlay membership, advertisement cache, discovery.
//
// A PeerNode is the P2P personality of a Consumer Grid host. It owns the
// advertisement cache, knows its overlay neighbours, and implements the
// discovery protocols compared in experiment E4:
//
//   * flooding  -- forward the query to all neighbours with a TTL, answer
//     from the local cache, respond directly to the origin. This is the
//     "flooding mechanism ... [that] severely restricts scalability" the
//     paper's section 4 discusses;
//   * rendezvous -- peers publish their adverts to super-peers; queries go
//     to a rendezvous, which answers from its cache and (once) fans the
//     query out to fellow rendezvous. This is the JXTA-style mitigation;
//   * expanding ring -- retried flooding with growing TTL (discovery.hpp).
//
// PeerNode installs itself as the transport's frame handler and consumes
// kDiscovery frames; everything else is passed to the fallback handler, so
// pipes (pipes.hpp) and the Triana service protocol chain behind it.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/time.hpp"
#include "net/transport.hpp"
#include "obs/trace.hpp"
#include "p2p/cache.hpp"
#include "p2p/messages.hpp"

namespace cg::p2p {

/// Time source, in seconds. Bind to SimNetwork::now for simulated peers or
/// to a steady_clock lambda for real ones. Advertisement expiry, cache
/// purging and search timeouts all read this clock.
using Clock = net::Clock;

/// Deferred execution: run `fn` after `delay_s`. Bind to
/// SimNetwork::schedule (simulated) or a local timer wheel (real).
using Scheduler = net::Scheduler;

struct PeerConfig {
  std::string peer_id;                 ///< defaults to the endpoint value
  double advert_lifetime_s = 300.0;    ///< lifetime stamped on own adverts
  std::size_t cache_capacity = 4096;
  std::size_t seen_query_capacity = 8192;
  std::size_t max_response_adverts = 16;  ///< cap per response message
};

struct PeerNodeStats {
  std::uint64_t queries_initiated = 0;
  std::uint64_t queries_received = 0;   ///< excluding duplicates
  std::uint64_t duplicate_queries = 0;
  std::uint64_t widened_queries = 0;    ///< re-seen with a larger TTL
  std::uint64_t queries_forwarded = 0;  ///< messages sent onward
  std::uint64_t responses_sent = 0;
  std::uint64_t responses_received = 0;
  std::uint64_t adverts_published = 0;
  std::uint64_t publishes_received = 0;
};

class PeerNode {
 public:
  /// The transport must outlive the node. The node takes over the
  /// transport's frame handler.
  PeerNode(net::Transport& transport, Clock clock, PeerConfig config = {});

  PeerNode(const PeerNode&) = delete;
  PeerNode& operator=(const PeerNode&) = delete;

  const std::string& id() const { return config_.peer_id; }
  net::Endpoint endpoint() const { return transport_.local(); }
  net::Transport& transport() { return transport_; }
  double now() const { return clock_(); }

  // -- overlay -----------------------------------------------------------
  void add_neighbor(const net::Endpoint& e);
  const std::vector<net::Endpoint>& neighbors() const { return neighbors_; }

  // -- virtual peer groups (paper section 4) --------------------------------
  /// Join/leave a named virtual peer group; membership is folded into the
  /// "groups" attribute of subsequently built peer adverts.
  void join_group(const std::string& group);
  void leave_group(const std::string& group);
  const std::vector<std::string>& groups() const { return groups_; }

  // -- advertisements ------------------------------------------------------
  /// Build a peer advert describing this node with the given capability
  /// attributes (e.g. {"cpu_mhz","2000"},{"free_mem_mb","256"}). Virtual
  /// group memberships are added as the "groups" attribute.
  Advertisement make_peer_advert(
      std::map<std::string, std::string> attrs) const;

  /// Build a pipe advert for an input pipe hosted here.
  Advertisement make_pipe_advert(const std::string& pipe_name) const;

  /// Build a module advert for code served from here.
  Advertisement make_module_advert(const std::string& module_name,
                                   const std::string& version) const;

  /// Insert into the local cache (it will answer matching queries).
  void publish_local(const Advertisement& a);

  /// Push adverts to a remote cache -- the peer->rendezvous publish path.
  void publish_to(const net::Endpoint& target,
                  const std::vector<Advertisement>& adverts);

  AdvertisementCache& cache() { return cache_; }

  // -- rendezvous role ------------------------------------------------------
  /// A rendezvous node answers queries from its cache and forwards
  /// unanswered ones (once) to fellow rendezvous.
  void set_rendezvous_role(bool on) { is_rendezvous_ = on; }
  bool is_rendezvous() const { return is_rendezvous_; }
  /// Known rendezvous peers: the publish/query target for edge peers, the
  /// fan-out set for rendezvous themselves.
  void add_rendezvous(const net::Endpoint& e) { rendezvous_.push_back(e); }
  const std::vector<net::Endpoint>& rendezvous() const { return rendezvous_; }

  // -- discovery -------------------------------------------------------------
  /// Called once per response message for a query this node initiated.
  using ResponseHandler =
      std::function<void(const std::vector<Advertisement>&)>;

  /// Flood `q` to all neighbours with the given TTL. Also checks the local
  /// cache synchronously. Returns the query id (use cancel() when done).
  ///
  /// `reuse_id` lets an expanding-ring retry re-issue the SAME query id at
  /// a larger TTL: peers that consumed the narrow ring recognise the id,
  /// skip re-answering, and only forward the widened frontier -- the
  /// visited set carries across rings instead of being re-flooded.
  std::uint64_t discover_flood(const Query& q, int ttl, ResponseHandler on,
                               std::uint64_t reuse_id = 0);

  /// Ask this node's first known rendezvous.
  std::uint64_t discover_rendezvous(const Query& q, ResponseHandler on);

  /// Stop routing responses for a query id (handlers may be called again
  /// otherwise, as stragglers arrive).
  void cancel(std::uint64_t query_id);

  /// Query only the local cache.
  std::vector<Advertisement> find_local(const Query& q,
                                        std::size_t limit = SIZE_MAX);

  // -- frame plumbing ---------------------------------------------------------
  /// Receives every non-discovery frame (pipes, service protocol).
  void set_fallback_handler(net::FrameHandler h) { fallback_ = std::move(h); }

  /// The currently installed fallback (empty when none). A new chain link
  /// (e.g. PipeServe) captures this before replacing it, so earlier links
  /// keep receiving the frame types they consume whatever the install
  /// order.
  const net::FrameHandler& fallback_handler() const { return fallback_; }

  /// Receives kDiscovery frames whose subtype this node does not speak
  /// (the structured-overlay RPCs, subtypes >= 4). An attached OverlayNode
  /// installs itself here; without one such frames are dropped.
  using DiscoveryExtension =
      std::function<void(const net::Endpoint&, const serial::Frame&)>;
  void set_discovery_extension(DiscoveryExtension h) {
    extension_ = std::move(h);
  }

  // -- observability -----------------------------------------------------
  /// Bind a tracer: query initiation, query/response arrival and publish
  /// arrival become instant events on `node` (the peer id by default),
  /// each stamped with the causal context the message carried.
  void set_obs(obs::Tracer* tracer, std::string_view node = {});

  /// Adopt a causal context: queries and publishes this node initiates are
  /// stamped with it, so whole discovery rounds (including every forwarded
  /// hop and response) hang off the run that issued them. Forwarded
  /// queries keep the ORIGINATOR's context; responses echo the query's.
  void set_trace(const obs::TraceContext& ctx) { trace_ctx_ = ctx; }
  const obs::TraceContext& trace() const { return trace_ctx_; }

  const PeerNodeStats& stats() const { return stats_; }

 private:
  /// How an arriving (origin, query id, ttl) relates to what we've seen.
  enum class SeenGate : std::uint8_t {
    kNew,        ///< first sighting: answer and forward
    kWiden,      ///< same query back with MORE ttl: forward, don't re-answer
    kDuplicate,  ///< already covered at this reach or better: drop
  };

  void on_frame(const net::Endpoint& from, serial::Frame frame);
  void handle_query(const net::Endpoint& from, QueryMsg m);
  void handle_response(ResponseMsg m);
  void handle_publish(PublishMsg m);
  SeenGate seen_gate(const std::string& key, std::uint8_t ttl);
  std::uint64_t fresh_query_id();

  net::Transport& transport_;
  Clock clock_;
  PeerConfig config_;
  AdvertisementCache cache_;
  std::vector<net::Endpoint> neighbors_;
  std::vector<std::string> groups_;
  std::vector<net::Endpoint> rendezvous_;
  bool is_rendezvous_ = false;

  /// Seen queries, keyed "origin#id", valued with the largest remaining
  /// TTL witnessed -- an expanding ring's wider retry re-arrives with
  /// MORE ttl and must extend the frontier without being re-answered.
  std::unordered_map<std::string, std::uint8_t> seen_;
  std::deque<std::string> seen_fifo_;

  std::unordered_map<std::uint64_t, ResponseHandler> pending_;
  std::uint64_t next_query_ = 1;

  net::FrameHandler fallback_;
  DiscoveryExtension extension_;
  PeerNodeStats stats_;
  obs::TracerRef tracer_;
  std::string trace_node_;
  obs::TraceContext trace_ctx_;
};

}  // namespace cg::p2p
