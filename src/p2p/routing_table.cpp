#include "p2p/routing_table.hpp"

#include <algorithm>

#include "dsp/rng.hpp"

namespace cg::p2p {

RoutingTable::RoutingTable(NodeId self, RoutingOptions options)
    : self_(self), options_(options) {
  if (options_.k == 0) options_.k = 1;
}

RoutingTable::Entry* RoutingTable::find(NodeId id) {
  for (auto& e : entries_) {
    if (e.contact.id == id) return &e;
  }
  return nullptr;
}

const RoutingTable::Entry* RoutingTable::find(NodeId id) const {
  for (const auto& e : entries_) {
    if (e.contact.id == id) return &e;
  }
  return nullptr;
}

std::size_t RoutingTable::bucket_count(int bucket) const {
  std::size_t n = 0;
  for (const auto& e : entries_) {
    if (bucket_index(xor_distance(self_, e.contact.id)) == bucket) ++n;
  }
  return n;
}

bool RoutingTable::suspect(const Entry& e, double now) const {
  // Until the detector has an interval history to model, fall back to
  // plain consecutive-timeout counting (failure_detector.hpp's guidance).
  if (e.detector && e.detector->samples() >= 2) {
    return e.detector->phi(now) > options_.phi_evict;
  }
  return e.failures >= options_.max_failures;
}

void RoutingTable::erase(NodeId id) {
  std::erase_if(entries_,
                [id](const Entry& e) { return e.contact.id == id; });
}

bool RoutingTable::observe(const Contact& c, double now) {
  if (c.id == self_) return false;
  if (Entry* e = find(c.id)) {
    e->contact.endpoint = c.endpoint;  // peers may re-appear elsewhere
    e->last_seen = now;
    e->failures = 0;
    if (!e->detector) {
      e->detector = std::make_unique<net::PhiAccrualDetector>();
    }
    e->detector->heartbeat(now);
    return true;
  }
  const int bucket = bucket_index(xor_distance(self_, c.id));
  if (bucket_count(bucket) >= options_.k) {
    // Full bucket: a suspect member forfeits its slot; otherwise the
    // incumbents (proven stayers) win and the newcomer is dropped.
    Entry* worst = nullptr;
    for (auto& e : entries_) {
      if (bucket_index(xor_distance(self_, e.contact.id)) != bucket) continue;
      if (!suspect(e, now)) continue;
      if (worst == nullptr || e.last_seen < worst->last_seen) worst = &e;
    }
    if (worst == nullptr) return false;
    ++evictions_;
    erase(worst->contact.id);
  }
  Entry e;
  e.contact = c;
  e.last_seen = now;
  e.detector = std::make_unique<net::PhiAccrualDetector>();
  e.detector->heartbeat(now);
  entries_.push_back(std::move(e));
  return true;
}

bool RoutingTable::observe_candidate(const Contact& c, double now) {
  if (c.id == self_) return false;
  if (find(c.id) != nullptr) return true;
  const int bucket = bucket_index(xor_distance(self_, c.id));
  if (bucket_count(bucket) >= options_.k) return false;
  Entry e;
  e.contact = c;
  e.last_seen = now;
  entries_.push_back(std::move(e));
  return true;
}

void RoutingTable::touch(NodeId id, double now) {
  if (Entry* e = find(id)) {
    e->last_seen = now;
    e->failures = 0;
    if (e->detector) e->detector->touch(now);
  }
}

bool RoutingTable::failure(NodeId id, double now) {
  Entry* e = find(id);
  if (e == nullptr) return false;
  ++e->failures;
  if (!suspect(*e, now)) return false;
  ++evictions_;
  erase(id);
  return true;
}

std::vector<Contact> RoutingTable::sweep(double now) {
  std::vector<Contact> evicted;
  for (const auto& e : entries_) {
    // The sweep convicts on silence alone, so it only trusts entries
    // with a modelled cadence; failure() handles the rest.
    if (e.detector && e.detector->samples() >= 2 &&
        e.detector->phi(now) > options_.phi_evict) {
      evicted.push_back(e.contact);
    }
  }
  for (const auto& c : evicted) {
    ++evictions_;
    erase(c.id);
  }
  return evicted;
}

std::vector<Contact> RoutingTable::closest(NodeId target,
                                           std::size_t n) const {
  std::vector<const Entry*> order;
  order.reserve(entries_.size());
  for (const auto& e : entries_) order.push_back(&e);
  const std::size_t take = std::min(n, order.size());
  std::partial_sort(order.begin(), order.begin() + take, order.end(),
                    [target](const Entry* a, const Entry* b) {
                      return xor_distance(a->contact.id, target) <
                             xor_distance(b->contact.id, target);
                    });
  std::vector<Contact> out;
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) out.push_back(order[i]->contact);
  return out;
}

std::vector<Contact> RoutingTable::contacts() const {
  std::vector<Contact> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.contact);
  return out;
}

std::vector<NodeId> RoutingTable::refresh_targets(double now,
                                                  std::uint64_t seed) {
  dsp::Rng rng(seed);
  bool stale[64] = {};
  for (const auto& e : entries_) {
    const int b = bucket_index(xor_distance(self_, e.contact.id));
    if (now - std::max(e.last_seen, bucket_refreshed_[b]) >=
        options_.refresh_interval_s) {
      stale[b] = true;
    }
  }
  std::vector<NodeId> targets;
  for (int b = 0; b < 64; ++b) {
    if (!stale[b]) continue;
    bucket_refreshed_[b] = now;
    // A random id inside bucket b's distance range [2^b, 2^{b+1}).
    const std::uint64_t low_bits =
        b == 0 ? 0 : (rng() & ((1ull << b) - 1));
    targets.push_back(NodeId{self_.bits ^ ((1ull << b) | low_bits)});
  }
  return targets;
}

}  // namespace cg::p2p
