#include "p2p/cache.hpp"

#include <algorithm>

namespace cg::p2p {

bool AdvertisementCache::put(const Advertisement& a, double now) {
  // Reclaim stale space before considering eviction.
  if (entries_.size() >= capacity_) purge(now);
  auto it = entries_.find(a.id);
  if (it != entries_.end()) {
    it->second = a;
    return false;
  }
  if (entries_.size() >= capacity_) evict_one();
  entries_.emplace(a.id, a);
  return true;
}

std::vector<Advertisement> AdvertisementCache::find(const Query& q, double now,
                                                    std::size_t limit) {
  std::vector<Advertisement> out;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.expires_at <= now) {
      it = entries_.erase(it);
      continue;
    }
    if (q.matches(it->second)) {
      out.push_back(it->second);
      if (out.size() >= limit) break;
    }
    ++it;
  }
  return out;
}

const Advertisement* AdvertisementCache::get(const std::string& id,
                                             double now) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return nullptr;
  if (it->second.expires_at <= now) {
    entries_.erase(it);
    return nullptr;
  }
  return &it->second;
}

std::size_t AdvertisementCache::purge(double now) {
  std::size_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.expires_at <= now) {
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::size_t AdvertisementCache::drop_provider(const net::Endpoint& provider) {
  std::size_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.provider == provider) {
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::size_t AdvertisementCache::drop_name(AdvertKind kind,
                                          const std::string& name) {
  std::size_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.kind == kind && it->second.name == name) {
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

void AdvertisementCache::evict_one() {
  if (entries_.empty()) return;
  auto victim = std::min_element(
      entries_.begin(), entries_.end(), [](const auto& a, const auto& b) {
        return a.second.expires_at < b.second.expires_at;
      });
  entries_.erase(victim);
}

}  // namespace cg::p2p
