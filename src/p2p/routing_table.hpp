// ConGrid -- Kademlia-style k-bucket routing table.
//
// Each peer keeps up to k contacts per XOR-distance bucket (node_id.hpp).
// Buckets far from self cover huge id ranges and fill instantly; buckets
// near self cover tiny ranges and hold the peer's actual overlay
// neighbourhood -- together they give every peer O(log N) contacts and
// let an iterative lookup halve its distance to any target per hop.
//
// Churn policy follows the original Kademlia insight (live-long contacts
// stay) fused with the phi-accrual liveness machinery from PR 7: a full
// bucket prefers its existing members over newcomers, but a member whose
// silence scores phi above `phi_evict` -- or which times out
// `max_failures` times before the detector has enough samples to model
// it -- is evicted on the spot, making room for the newcomer or for the
// next learned contact. Direct replies count as heartbeats (they extend
// the interval model); passively learned liveness is a touch (evidence
// without polluting the cadence history), exactly as the supervisor
// grades its own probes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/endpoint.hpp"
#include "net/failure_detector.hpp"
#include "p2p/node_id.hpp"

namespace cg::p2p {

/// A routable overlay peer: ring id plus transport address.
struct Contact {
  NodeId id;
  net::Endpoint endpoint;

  friend bool operator==(const Contact&, const Contact&) = default;
};

struct RoutingOptions {
  std::size_t k = 8;             ///< bucket capacity (and lookup width)
  double phi_evict = 8.0;        ///< suspicion level that forfeits a slot
  int max_failures = 2;          ///< pre-history eviction: timeouts in a row
  double refresh_interval_s = 300.0;  ///< stale-bucket refresh cadence
};

class RoutingTable {
 public:
  explicit RoutingTable(NodeId self, RoutingOptions options = {});

  NodeId self() const { return self_; }
  std::size_t size() const { return entries_.size(); }
  bool contains(NodeId id) const { return find(id) != nullptr; }

  /// Direct evidence of life (the contact answered us): insert it, or
  /// refresh + heartbeat it if present. A full bucket first evicts any
  /// member currently over the suspicion bar; if none is, the newcomer
  /// is dropped (old live contacts outlast new ones under churn).
  /// Returns true when the contact is in the table afterwards.
  bool observe(const Contact& c, double now);

  /// Hearsay (the contact appeared in someone else's FIND_NODE reply):
  /// insert only into a bucket with free space -- no eviction, no
  /// heartbeat credit. Returns true when inserted or already present.
  bool observe_candidate(const Contact& c, double now);

  /// Passive proof of life (a frame from this contact reached us).
  void touch(NodeId id, double now);

  /// An RPC to this contact timed out. Applies the eviction policy and
  /// returns true when the contact was evicted.
  bool failure(NodeId id, double now);

  /// Evict every member whose silence now scores over phi_evict --
  /// the periodic churn sweep. Returns the evicted contacts.
  std::vector<Contact> sweep(double now);

  /// Up to n contacts closest to `target` by XOR distance, nearest first.
  std::vector<Contact> closest(NodeId target, std::size_t n) const;

  /// All contacts (tests / diagnostics).
  std::vector<Contact> contacts() const;

  /// One random id per bucket that holds at least one contact but heard
  /// no direct evidence for refresh_interval_s -- lookup targets that
  /// would re-validate the bucket. Marks the buckets refreshed.
  std::vector<NodeId> refresh_targets(double now, std::uint64_t seed);

  std::uint64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    Contact contact;
    double last_seen = 0;  ///< last direct or passive evidence
    int failures = 0;      ///< consecutive timeouts since last evidence
    /// Lazily allocated: most entries in a million-peer sim never carry
    /// traffic, and the detector's sample window dwarfs the entry.
    std::unique_ptr<net::PhiAccrualDetector> detector;
  };

  Entry* find(NodeId id);
  const Entry* find(NodeId id) const;
  bool suspect(const Entry& e, double now) const;
  void erase(NodeId id);
  std::size_t bucket_count(int bucket) const;

  NodeId self_;
  RoutingOptions options_;
  /// Flat storage: a table tops out at 64 * k entries, so linear scans
  /// beat 64 separately allocated buckets on both memory and cache
  /// behaviour (a bench at 10^6 peers holds one table per touched node).
  std::vector<Entry> entries_;
  double bucket_refreshed_[64] = {};
  std::uint64_t evictions_ = 0;
};

}  // namespace cg::p2p
