// ConGrid -- sorted attribute index for rendezvous shards.
//
// The flat AdvertisementCache answers a query by scanning every live
// entry. That is fine for a peer's working set, but a rendezvous replica
// in the sharded federation holds its whole shard's adverts and is asked
// almost exclusively range queries on the primary attribute ("cpu_mhz >=
// 1800"). This index keeps the adverts sorted by that attribute so a
// range query is a lower_bound plus a walk over only the matching band,
// with the remaining (rarer) constraints checked per hit by
// Query::matches.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "p2p/advert.hpp"

namespace cg::p2p {

class AttributeIndex {
 public:
  /// `primary` is the attribute the index sorts on; adverts lacking it
  /// (or with a non-numeric value) sort at -inf so exact-match queries
  /// still see them.
  explicit AttributeIndex(std::string primary = "cpu_mhz")
      : primary_(std::move(primary)) {}

  const std::string& primary() const { return primary_; }
  std::size_t size() const { return by_id_.size(); }

  /// Insert or refresh (same advert id => replace). Returns true when
  /// the entry was new.
  bool put(const Advertisement& a, double now);

  /// Live adverts matching `q`, cheapest constraint first: when `q` has
  /// a minimum on the primary attribute only the tail band above it is
  /// scanned. Stale entries encountered on the walk are dropped.
  std::vector<Advertisement> find(const Query& q, double now,
                                  std::size_t limit = SIZE_MAX);

  /// Remove adverts whose expiry has passed. Returns how many.
  std::size_t purge(double now);

  /// Remove one advert by id; returns true when present.
  bool remove(const std::string& id);

 private:
  struct Entry {
    Advertisement advert;
    std::multimap<double, std::string>::iterator pos;  ///< slot in order_
  };

  double key_of(const Advertisement& a) const;

  std::string primary_;
  std::unordered_map<std::string, Entry> by_id_;
  std::multimap<double, std::string> order_;  ///< primary value -> advert id
};

}  // namespace cg::p2p
