// ConGrid -- named pipes (the JXTAServe analogue).
//
// The paper, section 3.4: "for each input connection, the remote service
// advertises an input pipe with that connection's unique name. Since the
// local service knows the connection's unique name it locates the pipe with
// that name and binds to it". PipeServe is ConGrid's version of JXTAServe:
// a stable facade that hides the discovery/advertisement machinery from the
// layers above (the Triana service protocol uses only this interface, so
// swapping the discovery substrate never touches the engine -- the paper's
// motivation for JXTAServe).
//
// Input side:  advertise_input(name, handler)  -> pipe advert + dispatch
// Output side: bind_output(name, ...)          -> discovery -> OutputPipe
//              send(pipe, bytes)               -> kData frame to the binding
#pragma once

#include <functional>
#include <string>
#include <unordered_map>

#include "p2p/discovery.hpp"
#include "p2p/peer_node.hpp"

namespace cg::p2p {

/// A bound output pipe: where payloads for `name` should be sent.
struct OutputPipe {
  std::string name;
  net::Endpoint target;
  bool bound() const { return !target.empty(); }
};

struct PipeServeStats {
  std::uint64_t payloads_sent = 0;
  std::uint64_t payloads_received = 0;
  std::uint64_t payloads_for_unknown_pipe = 0;
  /// Stale-epoch payloads rejected by a producer fence: counted here,
  /// never delivered (recovery double-fire suppression).
  std::uint64_t payloads_fenced = 0;
  std::uint64_t bytes_sent = 0;
};

class PipeServe {
 public:
  /// Payload handler for an input pipe; `from` is the sending transport
  /// endpoint.
  using PipeHandler =
      std::function<void(const net::Endpoint& from, serial::Bytes payload)>;
  using BindHandler = std::function<void(OutputPipe)>;
  /// Consulted for payloads that match no input pipe (withdrawn after a
  /// lease suspension, or never served here). Return true when the
  /// payload was taken over (e.g. bounced back to its sender); false
  /// counts it as payloads_for_unknown_pipe as before.
  using UnknownPipeHandler = std::function<bool(
      const std::string& pipe, const net::Endpoint& from,
      serial::Bytes payload)>;

  /// The node and scheduler must outlive the PipeServe. PipeServe installs
  /// itself as the node's fallback handler and consumes kData frames; any
  /// fallback previously installed on the node is captured and chained
  /// behind this one (until set_fallback_handler replaces it).
  PipeServe(PeerNode& node, Scheduler scheduler);

  PipeServe(const PipeServe&) = delete;
  PipeServe& operator=(const PipeServe&) = delete;

  // -- input pipes -----------------------------------------------------------
  /// Register a handler and advertise the pipe: always in the local cache,
  /// and pushed to this node's rendezvous when it has one. `epoch` is the
  /// provider's recovery epoch, carried as an advert attribute so a
  /// rebinding sender prefers the newest incarnation over a stale cached
  /// advert of the host it just migrated away from.
  void advertise_input(const std::string& pipe_name, PipeHandler handler,
                       std::uint64_t epoch = 0);

  /// Stop serving an input pipe (payloads for it become "unknown").
  void remove_input(const std::string& pipe_name);

  bool has_input(const std::string& pipe_name) const {
    return inputs_.contains(pipe_name);
  }

  // -- output pipes -----------------------------------------------------------
  /// Resolve `pipe_name` to a provider. Checks the local cache, then the
  /// rendezvous when configured, then expanding-ring floods. Calls
  /// `on_bound` exactly once -- with an unbound OutputPipe on failure.
  void bind_output(const std::string& pipe_name, BindHandler on_bound,
                   ExpandingRingOptions ring = {});

  /// Fire-and-forget payload delivery over a bound pipe, stamped with the
  /// sending job's fencing epoch (0 = unfenced). Throws std::logic_error
  /// if the pipe is unbound.
  void send(const OutputPipe& pipe, serial::Bytes payload,
            std::uint64_t epoch = 0);

  // -- fencing -----------------------------------------------------------------
  /// Reject payloads for `pipe_name` stamped with an epoch below
  /// `min_epoch` (monotonic: a lower fence never replaces a higher one).
  /// `from` scopes the fence to one sending endpoint's value -- essential
  /// for fan-in labels, where many producers share a pipe name and each has
  /// its own epoch; empty `from` fences the label for every sender.
  /// Rejected payloads bump payloads_fenced and are dropped before any
  /// handler runs.
  void fence(const std::string& pipe_name, std::uint64_t min_epoch,
             const std::string& from = {});

  /// Current fence for a pipe as seen by sender `from` (0 = none); the
  /// wildcard and the sender-scoped fence combine as max.
  std::uint64_t fence_of(const std::string& pipe_name,
                         const std::string& from = {}) const;

  // -- plumbing ----------------------------------------------------------------
  /// Frames that are neither discovery (PeerNode) nor pipe data end up
  /// here -- the Triana service protocol chains on this.
  void set_fallback_handler(net::FrameHandler h) { fallback_ = std::move(h); }

  /// Install the unknown-pipe hook (the service's bounce path).
  void set_unknown_pipe_handler(UnknownPipeHandler h) {
    unknown_ = std::move(h);
  }

  const PipeServeStats& stats() const { return stats_; }
  PeerNode& node() { return node_; }

 private:
  void on_frame(const net::Endpoint& from, serial::Frame frame);

  PeerNode& node_;
  Scheduler scheduler_;
  std::unordered_map<std::string, PipeHandler> inputs_;
  /// label -> (sender endpoint value, "" = any sender) -> min epoch
  std::unordered_map<std::string,
                     std::unordered_map<std::string, std::uint64_t>>
      fences_;
  net::FrameHandler fallback_;
  UnknownPipeHandler unknown_;
  PipeServeStats stats_;
};

}  // namespace cg::p2p
