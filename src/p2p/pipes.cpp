#include "p2p/pipes.hpp"

#include <algorithm>
#include <stdexcept>

#include "serial/reader.hpp"
#include "serial/writer.hpp"

namespace cg::p2p {
namespace {

/// Highest-epoch advert wins: after a migration the replacement publishes
/// its pipe with a bumped "epoch" attribute, and a sender re-resolving the
/// label must not rebind to a stale cached advert of the dead host.
/// Missing attribute reads as 0, ties keep the earliest advert.
const Advertisement& best_advert(const std::vector<Advertisement>& adverts) {
  const Advertisement* best = &adverts.front();
  double best_epoch = best->numeric_attr("epoch").value_or(0.0);
  for (const auto& a : adverts) {
    const double e = a.numeric_attr("epoch").value_or(0.0);
    if (e > best_epoch) {
      best = &a;
      best_epoch = e;
    }
  }
  return *best;
}

}  // namespace

PipeServe::PipeServe(PeerNode& node, Scheduler scheduler)
    : node_(node),
      scheduler_(std::move(scheduler)),
      // Chain, don't clobber: whatever fallback was installed on the node
      // before us keeps receiving the frames we don't consume.
      fallback_(node.fallback_handler()) {
  node_.set_fallback_handler(
      [this](const net::Endpoint& from, serial::Frame f) {
        on_frame(from, std::move(f));
      });
}

void PipeServe::advertise_input(const std::string& pipe_name,
                                PipeHandler handler, std::uint64_t epoch) {
  inputs_[pipe_name] = std::move(handler);
  Advertisement advert = node_.make_pipe_advert(pipe_name);
  advert.attrs["epoch"] = std::to_string(epoch);
  node_.publish_local(advert);
  for (const auto& r : node_.rendezvous()) {
    node_.publish_to(r, {advert});
    break;  // one rendezvous is responsible for this peer's adverts
  }
}

void PipeServe::remove_input(const std::string& pipe_name) {
  inputs_.erase(pipe_name);
  // Withdraw our advert too: a dead pipe must not keep answering
  // discovery (it would capture rebinding senders after a migration).
  node_.cache().remove(node_.make_pipe_advert(pipe_name).id);
}

void PipeServe::bind_output(const std::string& pipe_name, BindHandler on_bound,
                            ExpandingRingOptions ring) {
  Query q;
  q.kind = AdvertKind::kPipe;
  q.name = pipe_name;

  // 1. Local cache (free).
  auto local = node_.find_local(q);
  if (!local.empty()) {
    on_bound(OutputPipe{pipe_name, best_advert(local).provider});
    return;
  }

  // 2. Rendezvous (one round trip) -- fall through to flooding on timeout.
  if (!node_.rendezvous().empty()) {
    auto done = std::make_shared<bool>(false);
    auto handler_copy = on_bound;
    const std::uint64_t qid = node_.discover_rendezvous(
        q, [this, pipe_name, done, handler_copy](
               const std::vector<Advertisement>& adverts) {
          if (*done || adverts.empty()) return;
          *done = true;
          handler_copy(OutputPipe{pipe_name, best_advert(adverts).provider});
        });
    scheduler_(ring.ring_timeout_s, [this, qid, done, pipe_name,
                                     on_bound = std::move(on_bound), ring] {
      if (*done) return;
      node_.cancel(qid);
      *done = true;
      // 3. Expanding-ring flood as the fallback.
      Query fallback_query;
      fallback_query.kind = AdvertKind::kPipe;
      fallback_query.name = pipe_name;
      auto search = std::make_shared<ExpandingRingSearch>(
          node_, scheduler_, std::move(fallback_query), ring);
      search->start([pipe_name, on_bound](SearchResult r) {
        if (r.adverts.empty()) {
          on_bound(OutputPipe{pipe_name, net::Endpoint{}});
        } else {
          on_bound(OutputPipe{pipe_name, best_advert(r.adverts).provider});
        }
      });
    });
    return;
  }

  // No rendezvous configured: straight to expanding ring.
  auto search = std::make_shared<ExpandingRingSearch>(
      node_, scheduler_, q, ring);
  search->start([pipe_name, on_bound = std::move(on_bound)](SearchResult r) {
    if (r.adverts.empty()) {
      on_bound(OutputPipe{pipe_name, net::Endpoint{}});
    } else {
      on_bound(OutputPipe{pipe_name, best_advert(r.adverts).provider});
    }
  });
}

void PipeServe::send(const OutputPipe& pipe, serial::Bytes payload,
                     std::uint64_t epoch) {
  if (!pipe.bound()) {
    throw std::logic_error("send on unbound pipe '" + pipe.name + "'");
  }
  serial::Writer w(pipe.name.size() + payload.size() + 24);
  w.string(pipe.name);
  w.u64(epoch);
  w.blob(payload);

  serial::Frame f;
  f.type = serial::FrameType::kData;
  f.payload = w.take();
  stats_.bytes_sent += f.payload.size();
  ++stats_.payloads_sent;
  node_.transport().send(pipe.target, std::move(f));
}

void PipeServe::fence(const std::string& pipe_name, std::uint64_t min_epoch,
                      const std::string& from) {
  std::uint64_t& cur = fences_[pipe_name][from];
  if (min_epoch > cur) cur = min_epoch;
}

std::uint64_t PipeServe::fence_of(const std::string& pipe_name,
                                  const std::string& from) const {
  auto it = fences_.find(pipe_name);
  if (it == fences_.end()) return 0;
  std::uint64_t best = 0;
  if (auto w = it->second.find(std::string{}); w != it->second.end()) {
    best = w->second;
  }
  if (!from.empty()) {
    if (auto s = it->second.find(from); s != it->second.end()) {
      best = std::max(best, s->second);
    }
  }
  return best;
}

void PipeServe::on_frame(const net::Endpoint& from, serial::Frame frame) {
  if (frame.type != serial::FrameType::kData) {
    if (fallback_) fallback_(from, std::move(frame));
    return;
  }
  serial::Reader r(frame.payload);
  const std::string pipe_name = r.string();
  const std::uint64_t epoch = r.u64();
  serial::Bytes payload = r.blob();

  // Producer fence: a payload from before its sender's last recovery is a
  // potential double-fire -- count it, never apply it.
  if (epoch < fence_of(pipe_name, from.value)) {
    ++stats_.payloads_fenced;
    return;
  }

  auto it = inputs_.find(pipe_name);
  if (it == inputs_.end()) {
    if (unknown_ && unknown_(pipe_name, from, std::move(payload))) return;
    ++stats_.payloads_for_unknown_pipe;
    return;
  }
  ++stats_.payloads_received;
  it->second(from, std::move(payload));
}

}  // namespace cg::p2p
